//! # base-victim
//!
//! A full reproduction of **"Base-Victim Compression: An Opportunistic
//! Cache Compression Architecture"** (Gaur, Alameldeen, Subramoney —
//! ISCA 2016) as a Rust workspace: the Base-Victim compressed LLC, the
//! two-tag baselines it is compared against, the BDI/FPC/C-Pack
//! compression algorithms, a trace-driven CPU + memory timing simulator,
//! a 100-trace synthetic workload registry, and an energy model — plus the
//! experiment harness that regenerates every figure in the paper's
//! evaluation.
//!
//! This crate is a facade: it re-exports the workspace's public API under
//! one roof so downstream users can depend on a single crate.
//!
//! ## The architecture in one paragraph
//!
//! Each physical LLC way carries two tags. Tag 0 of every way forms the
//! **Baseline cache**, which runs the unmodified replacement policy and
//! therefore always holds exactly the lines an uncompressed cache would —
//! guaranteeing the hit rate never drops. Tag 1 forms the **Victim
//! cache**: when the Baseline cache displaces a line, it is written back
//! (if dirty) and then *opportunistically* parked in any way whose base
//! line is compressed small enough (BDI, 4-byte segments) to share the
//! physical 64 bytes. Victim lines are always clean, so they can be
//! dropped silently — at most one writeback per fill, no re-compaction,
//! and no changes to the data array.
//!
//! ## Quickstart
//!
//! ```
//! use base_victim::{
//!     BaseVictimLlc, CacheGeometry, CacheLine, LineAddr, LlcOrganization, NoInner,
//!     PolicyKind, VictimPolicyKind,
//! };
//!
//! // The paper's single-thread LLC: 2 MB, 16 ways, 1-bit NRU.
//! let geom = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
//! let mut llc = BaseVictimLlc::new(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
//!
//! let mut inner = NoInner; // no L1/L2 in this example
//! let addr = LineAddr::from_byte_addr(0x4000_0000);
//! assert!(!llc.read(addr, &mut inner).is_hit());
//! llc.fill(addr, CacheLine::zeroed(), &mut inner);
//! assert!(llc.read(addr, &mut inner).is_hit());
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`compress`] | BDI, FPC, C-Pack, the [`Compressor`] trait |
//! | [`cache`] | geometry, replacement policies, the L1/L2 substrate |
//! | [`llc`] | the LLC organizations (Base-Victim + baselines) |
//! | [`trace`] | synthetic workloads, the 100-trace registry, mixes |
//! | [`sim`] | the timing simulator (core, DRAM, prefetch, hierarchy) |
//! | [`energy`] | the Figure 14 energy model |
//! | [`telemetry`] | epoch time series, histograms, the JSONL sink |
//! | [`runner`] | parallel job execution, checkpoint/resume, run journal |
//! | [`mod@bench`] | the experiment harness and per-figure functions |
//! | [`cli`] | argument parsing for the `bvsim` binary |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Cache-line compression algorithms (re-export of `bv-compress`).
pub mod compress {
    pub use bv_compress::*;
}

/// Generic cache substrate (re-export of `bv-cache`).
pub mod cache {
    pub use bv_cache::*;
}

/// LLC organizations (re-export of `bv-core`).
pub mod llc {
    pub use bv_core::*;
}

/// Synthetic workloads and traces (re-export of `bv-trace`).
pub mod trace {
    pub use bv_trace::*;
}

/// The timing simulator (re-export of `bv-sim`).
pub mod sim {
    pub use bv_sim::*;
}

/// The energy model (re-export of `bv-energy`).
pub mod energy {
    pub use bv_energy::*;
}

/// Observability primitives and the JSONL sink (re-export of
/// `bv-telemetry`).
pub mod telemetry {
    pub use bv_telemetry::*;
}

/// Experiment orchestration (re-export of `bv-runner`).
pub mod runner {
    pub use bv_runner::*;
}

/// The experiment harness and figure functions (re-export of `bv-bench`).
pub mod bench {
    pub use bv_bench::*;
}

pub mod cli;

// Convenience re-exports of the most common types.
pub use bv_cache::{BasicCache, CacheGeometry, CacheStats, LineAddr, PolicyKind};
pub use bv_compress::{Bdi, CPack, CacheLine, CompressionStats, Compressor, Fpc, SegmentCount};
pub use bv_core::{
    BaseVictimLlc, DccLlc, HitKind, InclusionAgent, InclusionMode, LlcOrganization, LlcStats,
    NoInner, TwoTagEcmLlc, TwoTagLlc, UncompressedLlc, VictimPolicyKind, VscLlc,
};
pub use bv_energy::{EnergyBreakdown, EnergyModel, LlcEnergyClass};
pub use bv_sim::{CompressorKind, LlcKind, MulticoreSystem, RunResult, SimConfig, System};
pub use bv_trace::{TraceRegistry, TraceSpec, WorkloadCategory};
