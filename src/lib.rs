//! # base-victim
//!
//! A full reproduction of **"Base-Victim Compression: An Opportunistic
//! Cache Compression Architecture"** (Gaur, Alameldeen, Subramoney —
//! ISCA 2016) as a Rust workspace: the Base-Victim compressed LLC, the
//! two-tag baselines it is compared against, the BDI/FPC/C-Pack
//! compression algorithms, a trace-driven CPU + memory timing simulator,
//! a 100-trace synthetic workload registry, and an energy model — plus the
//! experiment harness that regenerates every figure in the paper's
//! evaluation.
//!
//! This crate is a facade: it re-exports the workspace's public API under
//! one roof so downstream users can depend on a single crate.
//!
//! ## The architecture in one paragraph
//!
//! Each physical LLC way carries two tags. Tag 0 of every way forms the
//! **Baseline cache**, which runs the unmodified replacement policy and
//! therefore always holds exactly the lines an uncompressed cache would —
//! guaranteeing the hit rate never drops. Tag 1 forms the **Victim
//! cache**: when the Baseline cache displaces a line, it is written back
//! (if dirty) and then *opportunistically* parked in any way whose base
//! line is compressed small enough (BDI, 4-byte segments) to share the
//! physical 64 bytes. Victim lines are always clean, so they can be
//! dropped silently — at most one writeback per fill, no re-compaction,
//! and no changes to the data array.
//!
//! ## Quickstart
//!
//! ```
//! use base_victim::{
//!     BaseVictimLlc, CacheGeometry, CacheLine, LineAddr, LlcOrganization, NoInner,
//!     PolicyKind, VictimPolicyKind,
//! };
//!
//! // The paper's single-thread LLC: 2 MB, 16 ways, 1-bit NRU.
//! let geom = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
//! let mut llc = BaseVictimLlc::new(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
//!
//! let mut inner = NoInner; // no L1/L2 in this example
//! let addr = LineAddr::from_byte_addr(0x4000_0000);
//! assert!(!llc.read(addr, &mut inner).is_hit());
//! llc.fill(addr, CacheLine::zeroed(), &mut inner);
//! assert!(llc.read(addr, &mut inner).is_hit());
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`compress`] | BDI, FPC, C-Pack, the [`Compressor`] trait |
//! | [`cache`] | geometry, replacement policies, the L1/L2 substrate |
//! | [`llc`] | the LLC organizations (Base-Victim + baselines) |
//! | [`trace`] | synthetic workloads, the 100-trace registry, mixes |
//! | [`sim`] | the timing simulator (core, DRAM, prefetch, hierarchy) |
//! | [`kvcache`] | the software-managed compressed key-value cache tier |
//! | [`energy`] | the Figure 14 energy model |
//! | [`telemetry`] | epoch time series, histograms, the JSONL sinks |
//! | [`metrics`] | live runtime metrics: registry, snapshots, exposition |
//! | [`events`] | event-level cache tracing: records, sinks, filters |
//! | [`fuzz`] | adversarial workload fuzzing with shrinking |
//! | [`runner`] | parallel job execution, checkpoint/resume, run journal |
//! | [`mod@bench`] | the experiment harness and per-figure functions |
//! | [`cli`] | argument parsing for the `bvsim` binary |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Cache-line compression algorithms (re-export of `bv-compress`).
pub mod compress {
    pub use bv_compress::*;
}

/// Generic cache substrate (re-export of `bv-cache`).
pub mod cache {
    pub use bv_cache::*;
}

/// LLC organizations (re-export of `bv-core`).
pub mod llc {
    pub use bv_core::*;
}

/// Synthetic workloads and traces (re-export of `bv-trace`).
pub mod trace {
    pub use bv_trace::*;
}

/// The timing simulator (re-export of `bv-sim`).
pub mod sim {
    pub use bv_sim::*;
}

/// The software-managed compressed key-value cache tier (re-export of
/// `bv-kvcache`).
pub mod kvcache {
    pub use bv_kvcache::*;
}

/// The energy model (re-export of `bv-energy`).
pub mod energy {
    pub use bv_energy::*;
}

/// Observability primitives and the JSONL sink (re-export of
/// `bv-telemetry`).
pub mod telemetry {
    pub use bv_telemetry::*;
}

/// Event-level cache tracing (re-export of `bv-events`).
pub mod events {
    pub use bv_events::*;
}

/// Adversarial workload fuzzing with shrinking (re-export of `bv-fuzz`).
pub mod fuzz {
    pub use bv_fuzz::*;
}

/// Experiment orchestration (re-export of `bv-runner`).
pub mod runner {
    pub use bv_runner::*;
}

/// The runtime metrics registry: atomic counters/gauges/histograms with
/// Prometheus text exposition (re-export of `bv-metrics`).
pub mod metrics {
    pub use bv_metrics::*;
}

/// The sweep-serving daemon and its client (re-export of `bv-serve`).
pub mod serve {
    pub use bv_serve::*;
}

/// The experiment harness and figure functions (re-export of `bv-bench`).
pub mod bench {
    pub use bv_bench::*;
}

pub mod cli;

// Convenience re-exports of the most common types.
pub use bv_cache::{BasicCache, CacheGeometry, CacheStats, LineAddr, PolicyKind};
pub use bv_compress::{Bdi, CPack, CacheLine, CompressionStats, Compressor, Fpc, SegmentCount};
pub use bv_core::{
    BaseVictimLlc, DccLlc, HitKind, InclusionAgent, InclusionMode, LlcOrganization, LlcStats,
    NoInner, TwoTagEcmLlc, TwoTagLlc, UncompressedLlc, VictimPolicyKind, VscLlc,
};
pub use bv_energy::{EnergyBreakdown, EnergyModel, LlcEnergyClass};
pub use bv_sim::{CompressorKind, LlcKind, MulticoreSystem, RunResult, SimConfig, System};
pub use bv_trace::{TraceRegistry, TraceSpec, WorkloadCategory};

/// Loads an epoch-sampled telemetry report from a JSONL file.
///
/// Wraps [`telemetry::TelemetryReport::from_jsonl`] with file I/O and
/// prefixes every failure — unreadable file, wrong schema, corrupt row,
/// truncated stream — with the path, so callers (the `bvsim report`
/// subcommand in particular) can print the error verbatim and exit.
///
/// # Errors
///
/// Returns `"{path}: reason"` where the reason from the parser already
/// carries the 1-based line number (`"line N: ..."`).
pub fn load_report(path: &std::path::Path) -> Result<telemetry::TelemetryReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    telemetry::TelemetryReport::from_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod facade_tests {
    use super::load_report;
    use std::path::PathBuf;

    fn tmp(name: &str, body: &str) -> PathBuf {
        // CARGO_TARGET_TMPDIR only exists for integration tests.
        let path = std::env::temp_dir().join(format!("bvsim-load-report-{name}"));
        std::fs::write(&path, body).expect("write fixture");
        path
    }

    #[test]
    fn load_report_names_the_file_on_empty_input() {
        let path = tmp("load-report-empty.jsonl", "");
        let err = load_report(&path).expect_err("empty file must fail");
        assert!(err.starts_with(&path.display().to_string()), "{err}");
        assert!(err.contains("empty telemetry file"), "{err}");
    }

    #[test]
    fn load_report_names_the_line_on_wrong_schema() {
        let path = tmp(
            "load-report-schema.jsonl",
            "{\"schema\":\"not-telemetry\",\"epoch_insts\":1,\"epochs\":0}\n",
        );
        let err = load_report(&path).expect_err("wrong schema must fail");
        assert!(err.contains("line 1:"), "{err}");
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn load_report_names_the_line_on_truncation() {
        use crate::telemetry::{TelemetryReport, TimeSeries};
        let mut series = TimeSeries::new();
        let insts = series.u64_column("insts");
        for epoch in 0..4u64 {
            series.push_u64(insts, (epoch + 1) * 1_000);
            series.end_row();
        }
        let report = TelemetryReport {
            epoch_insts: 1_000,
            series,
            ..TelemetryReport::default()
        };
        let full = report.to_jsonl();
        let cut = full.lines().take(3).fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });
        let path = tmp("load-report-truncated.jsonl", &cut);
        let err = load_report(&path).expect_err("truncated file must fail");
        assert!(err.contains("line 4:"), "{err}");
        assert!(err.contains("truncated"), "{err}");
    }
}
