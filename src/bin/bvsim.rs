//! `bvsim` — command-line driver for the Base-Victim simulator.
//!
//! ```text
//! bvsim --list-traces
//! bvsim --trace specint.mcf.07 --llc base-victim --compare
//! bvsim --trace client.octane.00 --llc two-tag --policy srrip \
//!       --llc-mb 4 --ways 16 --warmup 2000000 --insts 3000000
//! ```

use base_victim::{LlcKind, PolicyKind, SimConfig, System, TraceRegistry, VictimPolicyKind};
use std::process::ExitCode;

struct Args {
    trace: Option<String>,
    list: bool,
    llc: LlcKind,
    policy: PolicyKind,
    llc_mb: usize,
    ways: usize,
    warmup: u64,
    insts: u64,
    compare: bool,
}

const USAGE: &str = "\
bvsim — trace-driven simulation of the Base-Victim compressed LLC

USAGE:
    bvsim --trace <name> [options]
    bvsim --list-traces

OPTIONS:
    --trace <name>      registry trace to run (see --list-traces)
    --list-traces       print the 100-trace registry and exit
    --llc <kind>        uncompressed | two-tag | two-tag-ecm | base-victim
                        | base-victim-ni | vsc   (default: base-victim)
    --policy <name>     lru | nru | srrip | char | camp | random
                        (default: nru, as in the paper)
    --llc-mb <n>        LLC capacity in MB (default: 2)
    --ways <n>          LLC associativity (default: 16)
    --warmup <n>        warmup instructions (default: 1000000)
    --insts <n>         measured instructions (default: 1500000)
    --compare           also run the uncompressed baseline and print ratios
    --help              this text
";

fn parse_llc(s: &str) -> Option<LlcKind> {
    Some(match s {
        "uncompressed" => LlcKind::Uncompressed,
        "two-tag" => LlcKind::TwoTag,
        "two-tag-ecm" => LlcKind::TwoTagEcm,
        "base-victim" => LlcKind::BaseVictim,
        "base-victim-ni" => LlcKind::BaseVictimNonInclusive,
        "base-victim-random-fit" => LlcKind::BaseVictimWith(VictimPolicyKind::RandomFit),
        "vsc" => LlcKind::Vsc,
        _ => return None,
    })
}

fn parse_policy(s: &str) -> Option<PolicyKind> {
    Some(match s {
        "lru" => PolicyKind::Lru,
        "nru" => PolicyKind::Nru,
        "srrip" => PolicyKind::Srrip,
        "char" => PolicyKind::CharLite,
        "camp" => PolicyKind::CampLite,
        "random" => PolicyKind::Random,
        _ => return None,
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trace: None,
        list: false,
        llc: LlcKind::BaseVictim,
        policy: PolicyKind::Nru,
        llc_mb: 2,
        ways: 16,
        warmup: 1_000_000,
        insts: 1_500_000,
        compare: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--trace" => args.trace = Some(value("--trace")?),
            "--list-traces" => args.list = true,
            "--llc" => {
                let v = value("--llc")?;
                args.llc = parse_llc(&v).ok_or_else(|| format!("unknown LLC kind '{v}'"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                args.policy = parse_policy(&v).ok_or_else(|| format!("unknown policy '{v}'"))?;
            }
            "--llc-mb" => {
                args.llc_mb = value("--llc-mb")?
                    .parse()
                    .map_err(|e| format!("--llc-mb: {e}"))?;
            }
            "--ways" => {
                args.ways = value("--ways")?
                    .parse()
                    .map_err(|e| format!("--ways: {e}"))?;
            }
            "--warmup" => {
                args.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--insts" => {
                args.insts = value("--insts")?
                    .parse()
                    .map_err(|e| format!("--insts: {e}"))?;
            }
            "--compare" => args.compare = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let registry = TraceRegistry::paper_default();

    if args.list {
        println!(
            "{:28} {:12} {:10} {:12} {:>8}",
            "name", "category", "sensitive", "compressible", "WS(MB)"
        );
        for t in registry.all() {
            println!(
                "{:28} {:12} {:10} {:12} {:>8}",
                t.name,
                t.category.name(),
                t.cache_sensitive,
                t.compression_friendly,
                t.workload.working_set_bytes() >> 20
            );
        }
        return ExitCode::SUCCESS;
    }

    let Some(name) = args.trace.as_deref() else {
        eprintln!("error: --trace <name> or --list-traces required\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(trace) = registry.get(name) else {
        eprintln!("error: trace '{name}' not in the registry (try --list-traces)");
        return ExitCode::FAILURE;
    };

    let cfg = SimConfig::single_thread(args.llc)
        .with_llc_size(args.llc_mb * 1024 * 1024, args.ways)
        .with_policy(args.policy);
    println!(
        "trace {} | LLC {} {} MB {}-way, {} policy | warmup {} + measure {} instructions",
        trace.name,
        args.llc.name(),
        args.llc_mb,
        args.ways,
        args.policy.name(),
        args.warmup,
        args.insts
    );

    let run = System::new(cfg).run_with_warmup(&trace.workload, args.warmup, args.insts);
    println!("\n=== {} ===", run.llc_name);
    println!("IPC                 : {:.4}", run.ipc());
    println!("cycles              : {}", run.cycles);
    println!(
        "LLC hits            : {} base + {} victim, {} misses (hit rate {:.1}%)",
        run.llc.base_hits,
        run.llc.victim_hits,
        run.llc.read_misses,
        run.llc.hit_rate() * 100.0
    );
    println!(
        "DRAM                : {} reads, {} writes (row-hit {:.0}%)",
        run.dram.reads,
        run.dram.writes,
        run.dram.row_hit_rate() * 100.0
    );
    println!(
        "compressed size     : {:.0}% of uncompressed (mean over LLC fills)",
        run.compression.mean_ratio() * 100.0
    );
    println!("level mix (L1/L2/LLCb/LLCv/mem): {:?}", run.level_hits);

    if args.compare {
        let base_cfg = SimConfig::single_thread(LlcKind::Uncompressed)
            .with_llc_size(args.llc_mb * 1024 * 1024, args.ways)
            .with_policy(args.policy);
        let base = System::new(base_cfg).run_with_warmup(&trace.workload, args.warmup, args.insts);
        println!("\n=== vs uncompressed baseline ===");
        println!(
            "IPC ratio           : {:.4} ({:+.2}%)",
            run.ipc_ratio(&base),
            (run.ipc_ratio(&base) - 1.0) * 100.0
        );
        println!("DRAM read ratio     : {:.4}", run.dram_read_ratio(&base));
        println!(
            "baseline IPC        : {:.4}, reads {}",
            base.ipc(),
            base.dram.reads
        );
    }
    ExitCode::SUCCESS
}
