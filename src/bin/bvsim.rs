//! `bvsim` — command-line driver for the Base-Victim simulator.
//!
//! ```text
//! bvsim --list-traces
//! bvsim --trace specint.mcf.07 --llc base-victim --compare
//! bvsim --trace client.octane.00 --llc two-tag --policy srrip \
//!       --llc-mb 4 --ways 16 --warmup 2000000 --insts 3000000
//! bvsim --trace specint.mcf.07 --telemetry mcf.jsonl --epoch 100000
//! bvsim sweep --jobs 8 --journal results/journal
//! bvsim sweep --resume        # continue an interrupted sweep
//! bvsim sweep --telemetry-dir results/telemetry
//! bvsim bench                 # full perf suite, writes BENCH.json
//! bvsim bench --quick --baseline BENCH.json   # CI regression gate
//! bvsim report mcf.jsonl      # per-epoch TSV + sparklines
//! bvsim sweep --spans spans.json              # Perfetto span export
//! bvsim trace --trace specint.mcf.07 --out events.jsonl --kinds eviction,victim-hit
//! bvsim trace --audit --inject 200            # divergence-auditor self-test
//! bvsim kv --dist web --compare               # kv tier: all three organizations
//! bvsim kv --sweep                            # every org x dist via the runner pool
//! bvsim kv --lockstep --dist social           # kv baseline-mirror auditor
//! bvsim fuzz --cases 200 --seed 1             # adversarial property fuzzing
//! bvsim fuzz --inject                         # fault-detection self-test
//! bvsim fuzz --replay tests/corpus/kv-inject-mirror.bvfuzz.json
//! bvsim serve --addr 127.0.0.1:0 --port-file serve.addr    # sweep daemon
//! bvsim submit --traces specint.mcf.07,client.octane.00 --llcs uncompressed,base-victim
//! bvsim watch --ticket 1                      # re-attach to a running sweep
//! bvsim ctl --status                          # daemon counters
//! bvsim ctl --shutdown                        # drain in-flight work, then exit
//! ```
//!
//! Argument parsing lives in [`base_victim::cli`] so it can be
//! unit-tested; this binary only dispatches the parsed command.

use base_victim::bench::perf;
use base_victim::cli::{
    self, BenchArgs, Command, CtlAction, CtlArgs, FuzzArgs, KvArgs, RunArgs, ServeArgs, SubmitArgs,
    SweepArgs, TopArgs, TraceArgs, WatchArgs, USAGE,
};
use base_victim::events::{CacheEvent, EventFilter, EventKind, RingSink};
use base_victim::fuzz as bvfuzz;
use base_victim::kvcache::{
    run_kv as kv_replay, run_kv_sampled, run_kv_traced, KvConfig, KvOrgKind, KvRunResult,
    KvTelemetry, LockstepConfig,
};
use base_victim::llc::audit::{self, AuditConfig};
use base_victim::serve::{
    client, Daemon, DoneSummary, Request, Response, ResultRow, ServeConfig, SweepGrid, TopView,
};
use base_victim::sim::SimTelemetry;
use base_victim::trace::request::RequestProfile;
use base_victim::{CacheGeometry, LlcKind, SimConfig, System, TraceRegistry};
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&argv) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::ListTraces) => {
            list_traces();
            ExitCode::SUCCESS
        }
        Ok(Command::Run(run)) => run_one(&run),
        Ok(Command::Sweep(sweep)) => run_sweep(&sweep),
        Ok(Command::Bench(bench)) => run_bench(&bench),
        Ok(Command::Report(path)) => run_report(&path),
        Ok(Command::Trace(trace)) => run_trace(&trace),
        Ok(Command::Kv(kv)) => run_kv(&kv),
        Ok(Command::Fuzz(fuzz)) => run_fuzz(&fuzz),
        Ok(Command::Serve(serve)) => run_serve(&serve),
        Ok(Command::Submit(submit)) => run_submit(&submit),
        Ok(Command::Watch(watch)) => run_watch(&watch),
        Ok(Command::Ctl(ctl)) => run_ctl(&ctl),
        Ok(Command::Top(top)) => run_top(&top),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn list_traces() {
    let registry = TraceRegistry::paper_default();
    println!(
        "{:28} {:12} {:10} {:12} {:>8}",
        "name", "category", "sensitive", "compressible", "WS(MB)"
    );
    for t in registry.all() {
        println!(
            "{:28} {:12} {:10} {:12} {:>8}",
            t.name,
            t.category.name(),
            t.cache_sensitive,
            t.compression_friendly,
            t.workload.working_set_bytes() >> 20
        );
    }
}

fn run_one(args: &RunArgs) -> ExitCode {
    let registry = TraceRegistry::paper_default();
    let Some(trace) = registry.get(&args.trace) else {
        eprintln!(
            "error: trace '{}' not in the registry (try --list-traces)",
            args.trace
        );
        return ExitCode::FAILURE;
    };

    let cfg = SimConfig::single_thread(args.llc)
        .with_llc_size(args.llc_mb * 1024 * 1024, args.ways)
        .with_policy(args.policy);
    println!(
        "trace {} | LLC {} {} MB {}-way, {} policy | warmup {} + measure {} instructions",
        trace.name,
        args.llc.name(),
        args.llc_mb,
        args.ways,
        args.policy.name(),
        args.warmup,
        args.insts
    );

    let system = System::new(cfg);
    let run = match &args.telemetry {
        Some(path) => {
            let mut tel = SimTelemetry::new(args.epoch)
                .with_meta("trace", &trace.name)
                .with_meta("llc", args.llc.name())
                .with_meta("policy", args.policy.name());
            let run = system.run_sampled(&trace.workload, args.warmup, args.insts, &mut tel);
            let report = tel.into_report();
            if let Err(e) = std::fs::write(path, report.to_jsonl()) {
                eprintln!("error: cannot write telemetry {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "telemetry           : {} epochs of {} insts -> {}",
                report.series.rows(),
                args.epoch,
                path.display()
            );
            run
        }
        None => system.run_with_warmup(&trace.workload, args.warmup, args.insts),
    };
    println!("\n=== {} ===", run.llc_name);
    println!("IPC                 : {:.4}", run.ipc());
    println!("cycles              : {}", run.cycles);
    println!(
        "LLC hits            : {} base + {} victim, {} misses (hit rate {:.1}%)",
        run.llc.base_hits,
        run.llc.victim_hits,
        run.llc.read_misses,
        run.llc.hit_rate() * 100.0
    );
    println!(
        "DRAM                : {} reads, {} writes (row-hit {:.0}%)",
        run.dram.reads,
        run.dram.writes,
        run.dram.row_hit_rate() * 100.0
    );
    println!(
        "compressed size     : {:.0}% of uncompressed (mean over LLC fills)",
        run.compression.mean_ratio() * 100.0
    );
    println!("level mix (L1/L2/LLCb/LLCv/mem): {:?}", run.level_hits);

    if args.compare {
        let base_cfg = SimConfig::single_thread(LlcKind::Uncompressed)
            .with_llc_size(args.llc_mb * 1024 * 1024, args.ways)
            .with_policy(args.policy);
        let base = System::new(base_cfg).run_with_warmup(&trace.workload, args.warmup, args.insts);
        println!("\n=== vs uncompressed baseline ===");
        println!(
            "IPC ratio           : {:.4} ({:+.2}%)",
            run.ipc_ratio(&base),
            (run.ipc_ratio(&base) - 1.0) * 100.0
        );
        println!("DRAM read ratio     : {:.4}", run.dram_read_ratio(&base));
        println!(
            "baseline IPC        : {:.4}, reads {}",
            base.ipc(),
            base.dram.reads
        );
    }
    ExitCode::SUCCESS
}

fn run_sweep(args: &SweepArgs) -> ExitCode {
    let workers = args
        .jobs
        .unwrap_or_else(base_victim::runner::pool::default_workers);
    let runner =
        match base_victim::runner::Runner::new(workers).with_journal(&args.journal, args.resume) {
            Ok(r) => r.with_progress(true),
            Err(e) => {
                eprintln!("error: cannot open journal {}: {e}", args.journal.display());
                return ExitCode::FAILURE;
            }
        };
    let runner = match &args.telemetry_dir {
        Some(dir) => match runner.with_telemetry(dir, args.epoch) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: cannot create telemetry dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        None => runner,
    };
    let runner = if args.spans.is_some() {
        runner.with_spans()
    } else {
        runner
    };
    // Ctrl-C checkpoints in-flight state and leaves a resumable journal
    // instead of killing the process mid-write.
    let interrupted = sigint::install();
    let runner = runner.with_cancel(std::sync::Arc::clone(&interrupted));
    let ctx = base_victim::bench::Ctx::with_runner(runner);
    println!(
        "sweep: {} worker(s), journal {}{}, warmup {} + measure {} instructions per run",
        ctx.runner.workers(),
        args.journal.display(),
        if args.resume { " (resuming)" } else { "" },
        ctx.budget.warmup,
        ctx.budget.insts
    );
    let t0 = std::time::Instant::now();
    let report = base_victim::bench::figures::plan_suite(&ctx);
    println!(
        "sweep: {} jobs requested, {} unique; {} from memory, {} from journal, {} simulated; {:.1}s",
        report.requested,
        report.unique,
        report.from_memory,
        report.from_journal,
        report.simulated,
        t0.elapsed().as_secs_f64()
    );
    if report.canceled > 0 {
        println!("sweep: {} job(s) skipped after Ctrl-C", report.canceled);
    }
    if let Some(journal) = ctx.runner.journal() {
        println!(
            "sweep: {} checkpoints under {} (runs.jsonl has one line per completed job)",
            journal.checkpoint_count(),
            journal.dir().display()
        );
    }
    if let Some(path) = &args.spans {
        let spans = ctx.runner.take_spans();
        let text = base_victim::runner::chrome_trace_json(&spans);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write spans {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "sweep: {} -> {} (load in Perfetto or chrome://tracing)",
            base_victim::runner::utilization_summary(&spans),
            path.display()
        );
    }
    if report.canceled > 0 {
        eprintln!(
            "sweep: interrupted — completed work is checkpointed; rerun with --resume \
             --journal {} to continue",
            args.journal.display()
        );
        // The conventional exit status for death-by-SIGINT.
        return ExitCode::from(130);
    }
    ExitCode::SUCCESS
}

fn run_report(path: &Path) -> ExitCode {
    match base_victim::load_report(path) {
        Ok(report) => {
            print!("{}", base_victim::telemetry::render(&report));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_trace(args: &TraceArgs) -> ExitCode {
    if args.audit {
        return run_audit(args);
    }
    let registry = TraceRegistry::paper_default();
    let Some(trace) = registry.get(&args.trace) else {
        eprintln!(
            "error: trace '{}' not in the registry (try --list-traces)",
            args.trace
        );
        return ExitCode::FAILURE;
    };

    let cfg = SimConfig::single_thread(args.llc)
        .with_llc_size(args.llc_mb * 1024 * 1024, args.ways)
        .with_policy(args.policy);
    let mut filter = EventFilter::all();
    if let Some(kinds) = &args.kinds {
        filter = match filter.with_kind_names(kinds) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    // CLI ranges are inclusive; the filter is half-open.
    if let Some((lo, hi)) = args.sets {
        filter = filter.with_sets(lo, hi.saturating_add(1));
    }
    if let Some((lo, hi)) = args.window {
        filter = filter.with_seq_window(lo, hi.saturating_add(1));
    }
    let sink = RingSink::new(args.capacity).with_filter(filter);
    let llc = cfg.llc_kind.build_traced(cfg.llc, cfg.llc_policy, sink);

    println!(
        "trace {} | LLC {} {} MB {}-way, {} policy | warmup {} + capture {} instructions, \
         ring capacity {}",
        trace.name,
        args.llc.name(),
        args.llc_mb,
        args.ways,
        args.policy.name(),
        args.warmup,
        args.budget,
        args.capacity
    );
    let system = System::new(cfg);
    let (run, mut llc) = system.run_traced(&trace.workload, args.warmup, args.budget, llc);
    let events = llc.drain_events();
    let dropped = llc.events_dropped();

    println!(
        "captured {} event(s) ({} overwritten by newer ones) | run IPC {:.4}",
        events.len(),
        dropped,
        run.ipc()
    );
    print_kind_summary(&events);
    if args.heatmap {
        print_set_heatmap(&events, cfg.llc.sets());
    }

    if let Some(path) = &args.out {
        let mut meta = BTreeMap::new();
        meta.insert("trace".to_string(), trace.name.clone());
        meta.insert("llc".to_string(), args.llc.name().to_string());
        meta.insert("policy".to_string(), args.policy.name().to_string());
        let text = base_victim::telemetry::write_events(&events, dropped, &meta);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("events -> {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Per-kind event counts, most frequent first.
fn print_kind_summary(events: &[CacheEvent]) {
    let mut counts = [0u64; EventKind::NAMES.len()];
    for ev in events {
        counts[ev.kind.bit() as usize] += 1;
    }
    let mut rows: Vec<(u64, &str)> = EventKind::NAMES
        .iter()
        .enumerate()
        .filter(|&(i, _)| counts[i] > 0)
        .map(|(i, &name)| (counts[i], name))
        .collect();
    rows.sort_by(|a, b| b.cmp(a));
    for (count, name) in rows {
        println!("{name:>18} {count:>10}");
    }
}

/// Event density per set, bucketed into a terminal-width sparkline.
fn print_set_heatmap(events: &[CacheEvent], sets: usize) {
    let mut per_set = vec![0u64; sets];
    for ev in events {
        if let Some(slot) = per_set.get_mut(ev.set as usize) {
            *slot += 1;
        }
    }
    const WIDTH: usize = 64;
    let bucket = sets.div_ceil(WIDTH).max(1);
    let density: Vec<f64> = per_set
        .chunks(bucket)
        .map(|c| c.iter().sum::<u64>() as f64)
        .collect();
    println!(
        "set heatmap ({} sets per column): {}",
        bucket,
        base_victim::telemetry::sparkline(&density, WIDTH)
    );
}

fn run_audit(args: &TraceArgs) -> ExitCode {
    // A small LLC so the op budget exercises evictions in every set.
    let geom = CacheGeometry::new(64 * 1024, 8, 64);
    let cfg = AuditConfig {
        ops: args.ops,
        seed: args.seed,
        context: args.context,
        inject_at: args.inject,
        policy: args.policy,
        ..AuditConfig::default()
    };
    println!(
        "audit: {} ops, seed {}, {} policy, 64 KiB 8-way LLC{}",
        cfg.ops,
        cfg.seed,
        args.policy.name(),
        match args.inject {
            Some(op) => format!(", injecting a policy perturbation at op {op}"),
            None => String::new(),
        }
    );
    let report = audit::run_audit(geom, &cfg);
    println!(
        "audit: {} ops run, {} event(s) observed",
        report.ops_run, report.events_seen
    );
    match (&report.divergence, report.injected) {
        (Some(d), injected) => {
            print!("{}", audit::render_divergence(d));
            if injected {
                println!("audit: injected fault detected, as required");
                ExitCode::SUCCESS
            } else {
                eprintln!("audit: FAILED — base-victim Baseline diverged from uncompressed");
                ExitCode::FAILURE
            }
        }
        (None, true) => {
            eprintln!("audit: FAILED — injected fault was not detected");
            ExitCode::FAILURE
        }
        (None, false) => {
            println!("audit: PASSED — Baseline contents matched the uncompressed LLC throughout");
            ExitCode::SUCCESS
        }
    }
}

fn run_kv(args: &KvArgs) -> ExitCode {
    if args.lockstep {
        return run_kv_lockstep(args);
    }
    if args.sweep {
        return run_kv_sweep(args);
    }
    let profile = RequestProfile::by_name(&args.dist).expect("dist validated at parse time");
    let mut cfg = KvConfig::new(args.org, profile);
    cfg.budget = args.budget_kib * 1024;
    cfg.requests = args.requests;
    cfg.warmup = args.warmup;
    cfg.seed = args.seed;

    if args.compare {
        println!(
            "kv compare | dist {} | budget {} KiB | warmup {} + measure {} requests, seed {}",
            args.dist, args.budget_kib, args.warmup, args.requests, args.seed
        );
        print_kv_header();
        for org in KvOrgKind::ALL {
            cfg.org = org;
            print_kv_row(&kv_replay(&cfg));
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "kv {} | dist {} | budget {} KiB | warmup {} + measure {} requests, seed {}",
        args.org.name(),
        args.dist,
        args.budget_kib,
        args.warmup,
        args.requests,
        args.seed
    );
    let result = if let Some(path) = &args.telemetry {
        let mut tel = KvTelemetry::new(args.epoch)
            .with_meta("org", args.org.name())
            .with_meta("dist", &args.dist);
        let result = run_kv_sampled(&cfg, &mut tel);
        let report = tel.into_report();
        if let Err(e) = std::fs::write(path, report.to_jsonl()) {
            eprintln!("error: cannot write telemetry {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "telemetry           : {} epochs of {} requests -> {}",
            report.series.rows(),
            args.epoch,
            path.display()
        );
        result
    } else if let Some(path) = &args.events {
        let (result, events, dropped) = run_kv_traced(&cfg, RingSink::new(args.capacity));
        println!(
            "captured {} event(s) ({} overwritten by newer ones)",
            events.len(),
            dropped
        );
        print_kind_summary(&events);
        let mut meta = BTreeMap::new();
        meta.insert("kv-org".to_string(), args.org.name().to_string());
        meta.insert("kv-dist".to_string(), args.dist.clone());
        let text = base_victim::telemetry::write_events(&events, dropped, &meta);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("events -> {}", path.display());
        result
    } else {
        kv_replay(&cfg)
    };

    let s = &result.stats;
    println!(
        "hit rate            : {:.2}% ({} base + {} victim hits, {} misses)",
        result.hit_rate() * 100.0,
        s.base_hits,
        s.victim_hits,
        s.misses
    );
    println!(
        "admissions          : {} admitted, {} bypassed, {} evictions",
        s.admitted, s.bypassed, s.evictions
    );
    println!(
        "victim area         : {} parked, {} no-room, {} displaced, {} slack drops",
        s.victim_inserts, s.victim_insert_failures, s.victim_evictions, s.victim_overflow_drops
    );
    println!(
        "occupancy           : {} physical / {} logical bytes, {} + {} entries \
         (bytes-effective {:.2}x)",
        result.occupancy.resident_bytes,
        result.occupancy.logical_bytes,
        result.occupancy.entries,
        result.occupancy.victim_entries,
        result.bytes_effective()
    );
    println!(
        "compression         : {:.0}% of uncompressed (mean over admissions)",
        s.compression_ratio() * 100.0
    );
    ExitCode::SUCCESS
}

fn print_kv_header() {
    println!(
        "\n{:14} {:10} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "org", "dist", "hit rate", "base hits", "vict hits", "misses", "byte eff", "ratio"
    );
}

fn print_kv_row(r: &KvRunResult) {
    println!(
        "{:14} {:10} {:>8.2}% {:>10} {:>10} {:>10} {:>7.2}x {:>7.0}%",
        r.org.name(),
        r.profile,
        r.hit_rate() * 100.0,
        r.stats.base_hits,
        r.stats.victim_hits,
        r.stats.misses,
        r.bytes_effective(),
        r.stats.compression_ratio() * 100.0
    );
}

fn run_kv_sweep(args: &KvArgs) -> ExitCode {
    let workers = args
        .jobs
        .unwrap_or_else(base_victim::runner::pool::default_workers);
    let mut jobs = Vec::new();
    for name in RequestProfile::NAMES {
        for org in KvOrgKind::ALL {
            let mut cfg = KvConfig::new(org, RequestProfile::by_name(name).expect("preset name"));
            cfg.budget = args.budget_kib * 1024;
            cfg.requests = args.requests;
            cfg.warmup = args.warmup;
            cfg.seed = args.seed;
            jobs.push(cfg);
        }
    }
    println!(
        "kv sweep: {} jobs ({} dists x {} orgs) on {} worker(s), budget {} KiB, \
         warmup {} + measure {} requests",
        jobs.len(),
        RequestProfile::NAMES.len(),
        KvOrgKind::ALL.len(),
        workers,
        args.budget_kib,
        args.warmup,
        args.requests
    );
    let t0 = std::time::Instant::now();
    let results =
        base_victim::runner::pool::parallel_map(jobs, workers, |_w, _i, cfg| kv_replay(&cfg));
    println!("kv sweep: done in {:.1}s", t0.elapsed().as_secs_f64());
    print_kv_header();
    for r in &results {
        print_kv_row(r);
    }
    // The guarantee, checked across the whole sweep: base-victim never
    // hits less than uncompressed on the same traffic.
    for chunk in results.chunks(KvOrgKind::ALL.len()) {
        let unc = chunk.iter().find(|r| r.org == KvOrgKind::Uncompressed);
        let bv = chunk.iter().find(|r| r.org == KvOrgKind::BaseVictim);
        if let (Some(unc), Some(bv)) = (unc, bv) {
            if bv.stats.hits() < unc.stats.hits() {
                eprintln!(
                    "kv sweep: FAILED — base-victim hits {} below uncompressed {} on {}",
                    bv.stats.hits(),
                    unc.stats.hits(),
                    unc.profile
                );
                return ExitCode::FAILURE;
            }
        }
    }
    println!("kv sweep: base-victim >= uncompressed hits on every dist");
    ExitCode::SUCCESS
}

fn run_kv_lockstep(args: &KvArgs) -> ExitCode {
    let profile = RequestProfile::by_name(&args.dist).expect("dist validated at parse time");
    let cfg = LockstepConfig {
        profile,
        seed: args.seed,
        requests: args.requests,
        budget: args.budget_kib * 1024,
        inject_at: args.inject,
    };
    println!(
        "kv lockstep: dist {}, budget {} KiB, {} requests, seed {}{}",
        args.dist,
        args.budget_kib,
        args.requests,
        args.seed,
        match args.inject {
            Some(op) => format!(", injecting a baseline perturbation at request {op}"),
            None => String::new(),
        }
    );
    let report = base_victim::kvcache::run_lockstep(&cfg);
    println!(
        "kv lockstep: {} requests run; base-victim {} hits ({} from the victim area) \
         vs uncompressed {}",
        report.ops, report.bv_hits, report.victim_hits, report.unc_hits
    );
    match (&report.divergence, args.inject.is_some()) {
        (Some(d), injected) => {
            println!(
                "divergence at request {} ({:?} client {} key {}): {}",
                d.op_index, d.request.op, d.request.client, d.request.key, d.detail
            );
            if injected {
                println!("kv lockstep: injected fault detected, as required");
                ExitCode::SUCCESS
            } else {
                eprintln!("kv lockstep: FAILED — baseline diverged from the uncompressed tier");
                ExitCode::FAILURE
            }
        }
        (None, true) => {
            eprintln!("kv lockstep: FAILED — injected fault was not detected");
            ExitCode::FAILURE
        }
        (None, false) => {
            println!(
                "kv lockstep: PASSED — baseline mirrored the uncompressed tier after every request"
            );
            ExitCode::SUCCESS
        }
    }
}

/// A current-over-baseline throughput ratio, rendered as `1.23x`, or `-`
/// when the row has no baseline counterpart.
fn vs_baseline(ratio: Option<f64>) -> String {
    match ratio {
        Some(r) => format!("{r:.2}x"),
        None => "-".to_string(),
    }
}

fn run_bench(args: &BenchArgs) -> ExitCode {
    let cfg = if args.quick {
        perf::BenchConfig::quick()
    } else {
        perf::BenchConfig::full()
    };
    // Load the baseline up front so every row prints with its
    // speedup-vs-baseline column, not just a raw rate.
    let baseline = match &args.baseline {
        Some(baseline_path) => match std::fs::read_to_string(baseline_path) {
            Ok(t) => match perf::BenchReport::from_json(&t) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("error: bad baseline {}: {e}", baseline_path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    println!(
        "bench: {} suite ({} corpus lines x {} sample(s), {} sim insts x {} sample(s))",
        if args.quick { "quick" } else { "full" },
        cfg.corpus_lines,
        cfg.kernel_samples,
        cfg.sim_insts,
        cfg.sim_samples
    );
    let t0 = std::time::Instant::now();
    let report = perf::run(&cfg);
    println!("bench: done in {:.1}s\n", t0.elapsed().as_secs_f64());

    println!(
        "{:12} {:10} {:>14} {:>12}",
        "kernel", "impl", "rate/s", "vs-baseline"
    );
    for k in &report.kernels {
        let ratio = baseline
            .as_ref()
            .and_then(|b| b.kernel(&k.kernel, &k.implementation))
            .map(|b| k.lines_per_sec / b.lines_per_sec.max(f64::MIN_POSITIVE));
        println!(
            "{:12} {:10} {:>14.3e} {:>12}",
            k.kernel,
            k.implementation,
            k.lines_per_sec,
            vs_baseline(ratio)
        );
    }
    for (kernel, speedup) in report.kernel_speedups() {
        println!("{kernel:12} speedup    {speedup:>13.2}x");
    }
    println!(
        "\n{:24} {:>14} {:>12}",
        "end-to-end llc", "insts/s", "vs-baseline"
    );
    for e in &report.end_to_end {
        let ratio = baseline
            .as_ref()
            .and_then(|b| b.end_to_end.iter().find(|be| be.llc == e.llc))
            .map(|b| e.insts_per_sec / b.insts_per_sec.max(f64::MIN_POSITIVE));
        println!(
            "{:24} {:>14.3e} {:>12}",
            e.llc,
            e.insts_per_sec,
            vs_baseline(ratio)
        );
    }
    if let Some(pct) = report.telemetry_overhead_pct() {
        println!("{:24} {:>13.2}%", "telemetry overhead", pct);
    }
    if let Some(pct) = report.events_disabled_overhead_pct() {
        println!("{:24} {:>13.2}%", "events-off overhead", pct);
    }
    if let Some(pct) = report.serve_metrics_overhead_pct() {
        println!("{:24} {:>13.2}%", "serve-metrics overhead", pct);
    }

    let mut text = report.to_json();
    text.push('\n');
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("error: cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("\nbench: report written to {}", args.out.display());

    if let Some(baseline) = &baseline {
        let baseline_path = args.baseline.as_ref().expect("baseline parsed from path");
        let regressions = perf::compare(&report, baseline, f64::from(args.max_regress));
        if regressions.is_empty() {
            println!(
                "bench: no regression beyond {}% vs {}",
                args.max_regress,
                baseline_path.display()
            );
        } else {
            for r in &regressions {
                eprintln!("regression: {r}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Op-count bound a minimized `--inject` reproducer must meet: larger
/// means the shrinker regressed.
const FUZZ_INJECT_BOUND: u64 = 64;

fn run_fuzz(args: &FuzzArgs) -> ExitCode {
    if let Some(path) = &args.replay {
        return run_fuzz_replay(args, path);
    }
    if args.inject {
        return run_fuzz_inject(args);
    }
    run_fuzz_campaign(args)
}

/// Writes the reproducer to `--out` when given, else prints its JSON so
/// it can be piped straight into a `tests/corpus/` file.
fn emit_reproducer(out: Option<&Path>, case: &bvfuzz::FuzzCase) -> ExitCode {
    match out {
        Some(path) => {
            if let Err(e) = bvfuzz::save(path, case) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            println!("reproducer          : {}", path.display());
            ExitCode::SUCCESS
        }
        None => {
            println!("reproducer ({} ops):", case.op_count());
            println!("{}", bvfuzz::to_json(case));
            ExitCode::SUCCESS
        }
    }
}

fn run_fuzz_campaign(args: &FuzzArgs) -> ExitCode {
    let cfg = bvfuzz::FuzzConfig {
        cases: args.cases,
        seed: args.seed,
        domain: args.domain,
        shrink: true,
    };
    println!(
        "fuzz | {} case(s), seed {}, domains {}",
        args.cases,
        args.seed,
        args.domain.map_or("llc+kv", bvfuzz::Domain::name)
    );
    let report = bvfuzz::run_fuzz(&cfg, |done, total| {
        if done % 50 == 0 && done < total {
            println!("  checked {done}/{total}");
        }
    });
    for (name, v) in report.counters.iter() {
        println!("{name:<20}: {v}");
    }
    match &report.failure {
        None => {
            println!("all {} case(s) passed", report.cases_run);
            ExitCode::SUCCESS
        }
        Some(f) => {
            eprintln!(
                "FAIL case {} (seed {}) | {}: {}",
                f.case_index, f.case_seed, f.failure.property, f.failure.detail
            );
            let minimized = f.shrunk.as_ref().map_or(&f.original, |s| &s.case);
            if let Some(s) = &f.shrunk {
                println!(
                    "shrunk {} -> {} ops ({} candidate(s), {} accepted)",
                    f.original.op_count(),
                    s.case.op_count(),
                    s.attempts,
                    s.accepted
                );
            }
            emit_reproducer(args.out.as_deref(), minimized);
            ExitCode::FAILURE
        }
    }
}

fn run_fuzz_inject(args: &FuzzArgs) -> ExitCode {
    let cfg = bvfuzz::FuzzConfig {
        cases: args.cases,
        seed: args.seed,
        domain: args.domain,
        shrink: true,
    };
    println!(
        "fuzz inject self-test | seed {}, domains {}",
        args.seed,
        args.domain.map_or("llc+kv", bvfuzz::Domain::name)
    );
    let mut ok = true;
    for r in bvfuzz::run_inject_selftest(&cfg) {
        match (&r.detected_seed, &r.shrunk) {
            (Some(seed), Some(s)) => {
                println!(
                    "{:<4}: fault detected (seed {seed}, {} tried), shrunk {} -> {} ops",
                    r.domain.name(),
                    r.tried,
                    r.original_ops,
                    s.case.op_count()
                );
                // One domain per file: suffix when the other may follow.
                if let Some(out) = &args.out {
                    let path = if args.domain.is_some() {
                        out.clone()
                    } else {
                        out.with_extension(format!("{}.{}", r.domain.name(), bvfuzz::EXTENSION))
                    };
                    if emit_reproducer(Some(&path), &s.case) == ExitCode::FAILURE {
                        ok = false;
                    }
                }
            }
            _ => eprintln!(
                "{:<4}: no injected fault surfaced in {} seed(s) — the auditor is blind",
                r.domain.name(),
                r.tried
            ),
        }
        if !r.passed(FUZZ_INJECT_BOUND) {
            ok = false;
        }
    }
    if ok {
        println!("inject self-test passed (reproducers within {FUZZ_INJECT_BOUND} ops)");
        ExitCode::SUCCESS
    } else {
        eprintln!("inject self-test FAILED");
        ExitCode::FAILURE
    }
}

fn run_fuzz_replay(args: &FuzzArgs, path: &Path) -> ExitCode {
    let case = match bvfuzz::load(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fuzz replay {} | {} case, {} ops{}",
        path.display(),
        case.domain().name(),
        case.op_count(),
        case.inject_at
            .map_or(String::new(), |at| format!(", fault injected at op {at}"))
    );
    match bvfuzz::verdict(&case) {
        Ok(()) => {
            println!(
                "reproducer passes{}",
                if case.inject_at.is_some() {
                    " (injected fault detected)"
                } else {
                    ""
                }
            );
            ExitCode::SUCCESS
        }
        Err(f) => {
            eprintln!("FAIL {}: {}", f.property, f.detail);
            if args.shrink && bvfuzz::observe(&case).is_some() {
                let out = bvfuzz::shrink(&case);
                println!(
                    "shrunk {} -> {} ops ({} candidate(s), {} accepted)",
                    case.op_count(),
                    out.case.op_count(),
                    out.attempts,
                    out.accepted
                );
                emit_reproducer(args.out.as_deref(), &out.case);
            }
            ExitCode::FAILURE
        }
    }
}

/// SIGINT -> a shared flag the sweep runner polls between jobs, so
/// Ctrl-C checkpoints in-flight state instead of killing the process
/// mid-write. The handler only performs an atomic store, which is
/// async-signal-safe.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, OnceLock};

    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    extern "C" fn on_sigint(_sig: i32) {
        if let Some(flag) = FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the handler (idempotent) and returns the flag it sets.
    pub fn install() -> Arc<AtomicBool> {
        const SIGINT: i32 = 2;
        let flag = Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))));
        // SAFETY: libc `signal` with a handler that only stores to a
        // static atomic — the minimal async-signal-safe use.
        unsafe {
            signal(SIGINT, on_sigint);
        }
        flag
    }
}

/// Non-unix fallback: no handler is installed; the flag never trips and
/// Ctrl-C keeps its default behavior.
#[cfg(not(unix))]
mod sigint {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub fn install() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }
}

fn run_serve(args: &ServeArgs) -> ExitCode {
    let workers = args
        .workers
        .unwrap_or_else(base_victim::runner::pool::default_workers);
    let daemon = match Daemon::start(ServeConfig {
        addr: args.addr.clone(),
        workers,
        journal: args.journal.clone(),
        timeout: std::time::Duration::from_secs(args.timeout_secs),
        retries: args.retries,
        port_file: args.port_file.clone(),
        spans: args.spans.clone(),
        metrics: args.metrics,
        metrics_port: args.metrics_port,
    }) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot start daemon on {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serve: listening on {} | {} worker(s), journal {}, job timeout {}s, {} retries",
        daemon.addr(),
        workers,
        args.journal.display(),
        args.timeout_secs,
        args.retries
    );
    if let Some(addr) = daemon.metrics_addr() {
        println!("serve: metrics exposition on http://{addr}/metrics");
    }
    println!(
        "serve: submit with `bvsim submit --addr {0} --traces <a,b,...>`; stop with \
         `bvsim ctl --addr {0} --shutdown`",
        daemon.addr()
    );
    match daemon.wait() {
        Ok(summary) => {
            if let (Some(summary), Some(path)) = (summary, &args.spans) {
                println!("serve: {summary} -> {}", path.display());
            }
            println!("serve: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: span export failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints each streamed result row and optionally appends it to an
/// `--out` file as a bare runs.jsonl-shaped line.
struct RowSink {
    file: Option<std::fs::File>,
    write_err: Option<String>,
    rows: u64,
}

impl RowSink {
    fn open(out: Option<&Path>) -> Result<RowSink, String> {
        let file = match out {
            Some(path) => Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("cannot open {}: {e}", path.display()))?,
            ),
            None => None,
        };
        Ok(RowSink {
            file,
            write_err: None,
            rows: 0,
        })
    }

    fn push(&mut self, row: &ResultRow) {
        self.rows += 1;
        println!(
            "  [{}] {} {} {} | IPC {:.4}, hit {:.1}%, size {:.0}% | {} \
             (worker {}, attempt {})",
            row.seq,
            row.trace,
            row.llc,
            row.policy,
            row.ipc,
            row.llc_hit_rate * 100.0,
            row.comp_ratio * 100.0,
            row.source,
            row.worker,
            row.attempt
        );
        if let Some(file) = &mut self.file {
            let mut line = row.to_jsonl_line();
            line.push('\n');
            // One write_all per row keeps appended lines atomic.
            if let Err(e) = std::io::Write::write_all(file, line.as_bytes()) {
                let _ = self
                    .write_err
                    .get_or_insert_with(|| format!("cannot append result row: {e}"));
            }
        }
    }

    fn finish(self) -> Result<u64, String> {
        match self.write_err {
            Some(e) => Err(e),
            None => Ok(self.rows),
        }
    }
}

fn print_done(done: &DoneSummary) {
    println!(
        "done: ticket {} | {} job(s): {} simulated, {} journaled, {} merged, {} failed{}",
        done.ticket,
        done.jobs,
        done.simulated,
        done.journaled,
        done.merged,
        done.failed,
        if done.canceled { " (canceled)" } else { "" }
    );
}

/// Drains the sink; on success reports the `--out` row count.
fn close_sink(sink: RowSink, out: Option<&Path>) -> ExitCode {
    match sink.finish() {
        Ok(rows) => {
            if let Some(out) = out {
                println!("{rows} row(s) -> {}", out.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_submit(args: &SubmitArgs) -> ExitCode {
    let grid = SweepGrid {
        traces: args.traces.clone(),
        llcs: args.llcs.clone(),
        policies: args.policies.clone(),
        llc_mb: args.llc_mb,
        ways: args.ways,
        warmup: args.warmup,
        insts: args.insts,
    };
    let mut sink = match RowSink::open(args.out.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match client::submit(&args.addr, &grid, !args.no_wait, |row| sink.push(row)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "submit: ticket {} | {} job(s): {} fresh, {} journaled, {} merged",
        outcome.ticket, outcome.jobs, outcome.fresh, outcome.journaled, outcome.merged
    );
    match &outcome.done {
        Some(done) => print_done(done),
        None => println!(
            "submit: not waiting — stream later with `bvsim watch --addr {} --ticket {}`",
            args.addr, outcome.ticket
        ),
    }
    if close_sink(sink, args.out.as_deref()) == ExitCode::FAILURE {
        return ExitCode::FAILURE;
    }
    match &outcome.done {
        Some(done) if done.failed > 0 || done.canceled => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}

fn run_watch(args: &WatchArgs) -> ExitCode {
    let mut sink = match RowSink::open(args.out.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let done = match client::watch(&args.addr, args.ticket, |row| sink.push(row)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_done(&done);
    if close_sink(sink, args.out.as_deref()) == ExitCode::FAILURE {
        return ExitCode::FAILURE;
    }
    if done.failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_ctl(args: &CtlArgs) -> ExitCode {
    let req = match &args.action {
        CtlAction::Status => Request::Status,
        CtlAction::Cancel(ticket) => Request::Cancel { ticket: *ticket },
        CtlAction::KillWorker(worker) => Request::KillWorker { worker: *worker },
        CtlAction::Shutdown => Request::Shutdown,
    };
    match client::control(&args.addr, &req) {
        Ok(Response::Status(s)) => {
            println!(
                "workers             : {} started, {} alive",
                s.workers, s.alive
            );
            println!(
                "jobs                : {} pending, {} running, {} done, {} failed",
                s.pending, s.running, s.done, s.failed
            );
            println!("tickets             : {}", s.tickets);
            println!(
                "recovery            : {} worker crash(es), {} job re-queue(s)",
                s.crashes, s.retries
            );
            println!(
                "job duration        : p50 {} ms, p95 {} ms, p99 {} ms",
                s.p50_ms, s.p95_ms, s.p99_ms
            );
            let per: Vec<String> = s.per_worker_done.iter().map(u64::to_string).collect();
            println!("per-worker done     : [{}]", per.join(", "));
            ExitCode::SUCCESS
        }
        Ok(Response::Ok { info }) => {
            println!("ok: {info}");
            ExitCode::SUCCESS
        }
        Ok(Response::Error { error }) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
        Ok(other) => {
            eprintln!("error: unexpected reply: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The live dashboard: polls the daemon's `metrics` snapshot every
/// interval and redraws the frame in place. `--once` prints a single
/// frame without clearing the screen (for scripts and smoke tests).
fn run_top(args: &TopArgs) -> ExitCode {
    let mut view = TopView::new();
    let interval = std::time::Duration::from_millis(args.interval_ms);
    let mut last = std::time::Instant::now();
    loop {
        let snap = match client::metrics(&args.addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let elapsed = last.elapsed().as_secs_f64();
        last = std::time::Instant::now();
        let frame = view.frame(&snap, elapsed, &args.addr);
        if args.once {
            print!("{frame}");
            return ExitCode::SUCCESS;
        }
        // Clear + home, then the frame; the daemon going away ends the
        // loop through the connect error above.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::Write::flush(&mut std::io::stdout());
        std::thread::sleep(interval);
    }
}
