//! `bvsim` — command-line driver for the Base-Victim simulator.
//!
//! ```text
//! bvsim --list-traces
//! bvsim --trace specint.mcf.07 --llc base-victim --compare
//! bvsim --trace client.octane.00 --llc two-tag --policy srrip \
//!       --llc-mb 4 --ways 16 --warmup 2000000 --insts 3000000
//! bvsim --trace specint.mcf.07 --telemetry mcf.jsonl --epoch 100000
//! bvsim sweep --jobs 8 --journal results/journal
//! bvsim sweep --resume        # continue an interrupted sweep
//! bvsim sweep --telemetry-dir results/telemetry
//! bvsim bench                 # full perf suite, writes BENCH.json
//! bvsim bench --quick --baseline BENCH.json   # CI regression gate
//! bvsim report mcf.jsonl      # per-epoch TSV + sparklines
//! ```
//!
//! Argument parsing lives in [`base_victim::cli`] so it can be
//! unit-tested; this binary only dispatches the parsed command.

use base_victim::bench::perf;
use base_victim::cli::{self, BenchArgs, Command, RunArgs, SweepArgs, USAGE};
use base_victim::sim::SimTelemetry;
use base_victim::telemetry::TelemetryReport;
use base_victim::{LlcKind, SimConfig, System, TraceRegistry};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&argv) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::ListTraces) => {
            list_traces();
            ExitCode::SUCCESS
        }
        Ok(Command::Run(run)) => run_one(&run),
        Ok(Command::Sweep(sweep)) => run_sweep(&sweep),
        Ok(Command::Bench(bench)) => run_bench(&bench),
        Ok(Command::Report(path)) => run_report(&path),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn list_traces() {
    let registry = TraceRegistry::paper_default();
    println!(
        "{:28} {:12} {:10} {:12} {:>8}",
        "name", "category", "sensitive", "compressible", "WS(MB)"
    );
    for t in registry.all() {
        println!(
            "{:28} {:12} {:10} {:12} {:>8}",
            t.name,
            t.category.name(),
            t.cache_sensitive,
            t.compression_friendly,
            t.workload.working_set_bytes() >> 20
        );
    }
}

fn run_one(args: &RunArgs) -> ExitCode {
    let registry = TraceRegistry::paper_default();
    let Some(trace) = registry.get(&args.trace) else {
        eprintln!(
            "error: trace '{}' not in the registry (try --list-traces)",
            args.trace
        );
        return ExitCode::FAILURE;
    };

    let cfg = SimConfig::single_thread(args.llc)
        .with_llc_size(args.llc_mb * 1024 * 1024, args.ways)
        .with_policy(args.policy);
    println!(
        "trace {} | LLC {} {} MB {}-way, {} policy | warmup {} + measure {} instructions",
        trace.name,
        args.llc.name(),
        args.llc_mb,
        args.ways,
        args.policy.name(),
        args.warmup,
        args.insts
    );

    let system = System::new(cfg);
    let run = match &args.telemetry {
        Some(path) => {
            let mut tel = SimTelemetry::new(args.epoch)
                .with_meta("trace", &trace.name)
                .with_meta("llc", args.llc.name())
                .with_meta("policy", args.policy.name());
            let run = system.run_sampled(&trace.workload, args.warmup, args.insts, &mut tel);
            let report = tel.into_report();
            if let Err(e) = std::fs::write(path, report.to_jsonl()) {
                eprintln!("error: cannot write telemetry {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "telemetry           : {} epochs of {} insts -> {}",
                report.series.rows(),
                args.epoch,
                path.display()
            );
            run
        }
        None => system.run_with_warmup(&trace.workload, args.warmup, args.insts),
    };
    println!("\n=== {} ===", run.llc_name);
    println!("IPC                 : {:.4}", run.ipc());
    println!("cycles              : {}", run.cycles);
    println!(
        "LLC hits            : {} base + {} victim, {} misses (hit rate {:.1}%)",
        run.llc.base_hits,
        run.llc.victim_hits,
        run.llc.read_misses,
        run.llc.hit_rate() * 100.0
    );
    println!(
        "DRAM                : {} reads, {} writes (row-hit {:.0}%)",
        run.dram.reads,
        run.dram.writes,
        run.dram.row_hit_rate() * 100.0
    );
    println!(
        "compressed size     : {:.0}% of uncompressed (mean over LLC fills)",
        run.compression.mean_ratio() * 100.0
    );
    println!("level mix (L1/L2/LLCb/LLCv/mem): {:?}", run.level_hits);

    if args.compare {
        let base_cfg = SimConfig::single_thread(LlcKind::Uncompressed)
            .with_llc_size(args.llc_mb * 1024 * 1024, args.ways)
            .with_policy(args.policy);
        let base = System::new(base_cfg).run_with_warmup(&trace.workload, args.warmup, args.insts);
        println!("\n=== vs uncompressed baseline ===");
        println!(
            "IPC ratio           : {:.4} ({:+.2}%)",
            run.ipc_ratio(&base),
            (run.ipc_ratio(&base) - 1.0) * 100.0
        );
        println!("DRAM read ratio     : {:.4}", run.dram_read_ratio(&base));
        println!(
            "baseline IPC        : {:.4}, reads {}",
            base.ipc(),
            base.dram.reads
        );
    }
    ExitCode::SUCCESS
}

fn run_sweep(args: &SweepArgs) -> ExitCode {
    let workers = args
        .jobs
        .unwrap_or_else(base_victim::runner::pool::default_workers);
    let runner =
        match base_victim::runner::Runner::new(workers).with_journal(&args.journal, args.resume) {
            Ok(r) => r.with_progress(true),
            Err(e) => {
                eprintln!("error: cannot open journal {}: {e}", args.journal.display());
                return ExitCode::FAILURE;
            }
        };
    let runner = match &args.telemetry_dir {
        Some(dir) => match runner.with_telemetry(dir, args.epoch) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: cannot create telemetry dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        },
        None => runner,
    };
    let ctx = base_victim::bench::Ctx::with_runner(runner);
    println!(
        "sweep: {} worker(s), journal {}{}, warmup {} + measure {} instructions per run",
        ctx.runner.workers(),
        args.journal.display(),
        if args.resume { " (resuming)" } else { "" },
        ctx.budget.warmup,
        ctx.budget.insts
    );
    let t0 = std::time::Instant::now();
    let report = base_victim::bench::figures::plan_suite(&ctx);
    println!(
        "sweep: {} jobs requested, {} unique; {} from memory, {} from journal, {} simulated; {:.1}s",
        report.requested,
        report.unique,
        report.from_memory,
        report.from_journal,
        report.simulated,
        t0.elapsed().as_secs_f64()
    );
    if let Some(journal) = ctx.runner.journal() {
        println!(
            "sweep: {} checkpoints under {} (runs.jsonl has one line per completed job)",
            journal.checkpoint_count(),
            journal.dir().display()
        );
    }
    ExitCode::SUCCESS
}

fn run_report(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match TelemetryReport::from_jsonl(&text) {
        Ok(report) => {
            print!("{}", base_victim::telemetry::render(&report));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: bad telemetry file {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn run_bench(args: &BenchArgs) -> ExitCode {
    let cfg = if args.quick {
        perf::BenchConfig::quick()
    } else {
        perf::BenchConfig::full()
    };
    println!(
        "bench: {} suite ({} corpus lines x {} sample(s), {} sim insts x {} sample(s))",
        if args.quick { "quick" } else { "full" },
        cfg.corpus_lines,
        cfg.kernel_samples,
        cfg.sim_insts,
        cfg.sim_samples
    );
    let t0 = std::time::Instant::now();
    let report = perf::run(&cfg);
    println!("bench: done in {:.1}s\n", t0.elapsed().as_secs_f64());

    println!("{:8} {:10} {:>14}", "kernel", "impl", "lines/s");
    for k in &report.kernels {
        println!(
            "{:8} {:10} {:>14.3e}",
            k.kernel, k.implementation, k.lines_per_sec
        );
    }
    for (kernel, speedup) in report.kernel_speedups() {
        println!("{kernel:8} speedup    {speedup:>13.2}x");
    }
    println!("\n{:24} {:>14}", "end-to-end llc", "insts/s");
    for e in &report.end_to_end {
        println!("{:24} {:>14.3e}", e.llc, e.insts_per_sec);
    }
    if let Some(pct) = report.telemetry_overhead_pct() {
        println!("{:24} {:>13.2}%", "telemetry overhead", pct);
    }

    let mut text = report.to_json();
    text.push('\n');
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("error: cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("\nbench: report written to {}", args.out.display());

    if let Some(baseline_path) = &args.baseline {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(t) => match perf::BenchReport::from_json(&t) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: bad baseline {}: {e}", baseline_path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let regressions = perf::compare(&report, &baseline, f64::from(args.max_regress));
        if regressions.is_empty() {
            println!(
                "bench: no regression beyond {}% vs {}",
                args.max_regress,
                baseline_path.display()
            );
        } else {
            for r in &regressions {
                eprintln!("regression: {r}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
