//! Argument parsing for the `bvsim` binary, separated from the binary so
//! it can be unit-tested: parsing consumes a plain `&[String]` (no
//! process state) and returns either a [`Command`] or an error message.

use bv_cache::PolicyKind;
use bv_kvcache::KvOrgKind;
use bv_sim::LlcKind;
use std::path::PathBuf;

/// The `bvsim` usage text.
pub const USAGE: &str = "\
bvsim — trace-driven simulation of the Base-Victim compressed LLC

USAGE:
    bvsim --trace <name> [options]
    bvsim --list-traces
    bvsim sweep [--jobs <n>] [--resume] [--journal <dir>] [--telemetry-dir <dir>]
                [--spans <trace.json>]
    bvsim bench [--quick] [--out <file>] [--baseline <file>] [--max-regress <pct>]
    bvsim report <telemetry.jsonl>
    bvsim trace --trace <name> [--out <events.jsonl>] [filters]
    bvsim trace --audit [--ops <n>] [--seed <n>] [--inject <op>]
    bvsim kv [--dist <name>] [--org <name>] [--compare | --sweep | --lockstep]
    bvsim fuzz [--cases <n>] [--seed <n>] [--llc | --kv] [--inject]
    bvsim fuzz --replay <file> [--shrink] [--out <file>]
    bvsim serve [--addr <host:port>] [--workers <n>] [--journal <dir>]
                [--metrics-port <p>] [--no-metrics]
    bvsim submit --traces <a,b,...> [--llcs <a,b,...>] [--policies <a,b,...>]
    bvsim watch --ticket <n> [--addr <host:port>] [--out <file>]
    bvsim ctl [--addr <host:port>] (--status | --cancel <t> | --kill-worker <w>
                                    | --shutdown)
    bvsim top [--addr <host:port>] [--interval-ms <n>] [--once]

OPTIONS:
    --trace <name>      registry trace to run (see --list-traces)
    --list-traces       print the 100-trace registry and exit
    --llc <kind>        uncompressed | two-tag | two-tag-ecm | base-victim
                        | base-victim-ni | base-victim-random-fit | vsc | dcc
                        (default: base-victim; dcc is the decoupled
                        super-block state of the art, vsc the decoupled
                        variable-segment cache)
    --policy <name>     lru | nru | srrip | char | camp | random
                        (default: nru, as in the paper)
    --llc-mb <n>        LLC capacity in MB (default: 2)
    --ways <n>          LLC associativity (default: 16)
    --warmup <n>        warmup instructions (default: 1000000)
    --insts <n>         measured instructions (default: 1500000)
    --compare           also run the uncompressed baseline and print ratios
    --telemetry <file>  write an epoch-sampled bvsim-telemetry-v1 JSONL
                        time series of the measured phase
    --epoch <insts>     telemetry sampling period in committed
                        instructions (default: 100000)
    --help              this text

SWEEP (runs the full experiment suite's job set through the parallel runner):
    --jobs <n>          worker threads (default: $BV_JOBS, else all cores)
    --resume            satisfy jobs from existing journal checkpoints
    --journal <dir>     checkpoint/journal directory (default: results/journal)
    --telemetry-dir <dir>  write one <hash>.telemetry.jsonl per simulated
                        job; the path is recorded in runs.jsonl
    --epoch <insts>     telemetry sampling period (default: 100000)
    --spans <file>      export per-job wall-clock spans as Chrome
                        trace-event JSON (open in Perfetto / chrome://tracing)
  Budgets come from BV_WARMUP / BV_INSTS as for the experiment binaries.

TRACE (captures event-level cache activity from one run, or audits fidelity):
    --trace <name>      registry trace to run (required unless --audit)
    --llc, --policy, --llc-mb, --ways, --warmup  as for a plain run
    --budget <n>        measured instructions (default: 1500000)
    --out <file>        write the capture as bvsim-events-v1 JSONL
                        (default: print a per-kind summary only)
    --kinds <list>      comma-separated event kinds to keep (e.g.
                        fill,eviction,victim-hit; default: all)
    --sets <lo:hi>      keep only events in this inclusive set range
    --window <lo:hi>    keep only events in this inclusive seq range
    --capacity <n>      ring-buffer capacity; older events drop first
                        (default: 65536)
    --heatmap           print a per-set event-density sparkline
    --audit             run the baseline-divergence auditor instead: a
                        base-victim LLC and an uncompressed LLC run the
                        same ops in lockstep on a small 64 KiB cache, and
                        any Baseline-content mismatch is reported with
                        the diverging set's recent events
    --ops <n>           audit operation count (default: 2000)
    --seed <n>          audit op-stream seed (default: 1)
    --context <n>       divergence context events to show (default: 8)
    --inject <op>       inject a baseline-policy perturbation at this op
                        (self-test: the auditor must then report a
                        divergence, and exits nonzero if it does not)

REPORT (renders a telemetry file: per-epoch TSV plus sparkline summaries):
    bvsim report results/telemetry/0123456789abcdef.telemetry.jsonl

KV (replays server-style request traffic against the compressed kv tier):
    --dist <name>       request profile: web | analytics | social
                        (default: web)
    --org <name>        tier organization: uncompressed | compressed
                        | base-victim (default: base-victim)
    --budget-kib <n>    tier byte budget in KiB (default: 1024)
    --requests <n>      measured requests (default: 150000)
    --warmup <n>        warmup requests (default: 50000)
    --seed <n>          request-stream seed (default: 42)
    --compare           run all three organizations and print a table
    --sweep             run every organization x profile through the
                        parallel runner pool
    --jobs <n>          sweep worker threads (default: all cores)
    --telemetry <file>  write an epoch-sampled bvsim-telemetry-v1 JSONL
                        (epochs are counted in requests)
    --epoch <requests>  telemetry sampling period (default: 10000)
    --events <file>     capture per-decision events as bvsim-events-v1
                        JSONL (sets are 1024 key buckets, sizes in
                        64-byte lines)
    --capacity <n>      event ring capacity (default: 65536)
    --lockstep          run the baseline-mirror auditor: a base-victim
                        tier and an uncompressed tier replay the same
                        stream and the recency state is compared after
                        every request; exits nonzero on divergence
    --inject <op>       perturb the baseline at this request (lockstep
                        self-test: the auditor must report divergence)

FUZZ (hunts for hit-rate-guarantee violations on adversarial random workloads):
    --cases <n>         workloads to generate and check (default: 100)
    --seed <n>          campaign master seed (default: 1)
    --llc               only LLC cases: the baseline-divergence auditor
                        plus stats identity across every organization
    --kv                only kv cases: the lockstep auditor plus budget
                        and determinism across the three organizations
    --inject            self-test: arm a synthetic fault per domain and
                        require the auditors to detect it and the
                        shrinker to minimize it; exits nonzero otherwise
    --replay <file>     replay one committed .bvfuzz.json reproducer
                        instead of a campaign (injected reproducers pass
                        when the fault is detected)
    --shrink            with --replay: minimize a failing reproducer
    --out <file>        write the failing (or minimized) case as a
                        .bvfuzz.json reproducer (default: print it)

SERVE (runs the multi-tenant sweep-serving daemon over bvsim-serve-v1):
    --addr <host:port>  listen address; port 0 picks an ephemeral port
                        (default: 127.0.0.1:7070)
    --workers <n>       simulation worker threads (default: all cores)
    --journal <dir>     crash-recovery journal; restarts re-simulate
                        nothing already journaled (default: results/journal)
    --timeout-secs <n>  per-job wall-clock timeout before re-queue
                        (default: 300)
    --retries <n>       per-job retry budget after crash/timeout (default: 3)
    --port-file <file>  atomically write the bound address here once
                        listening (for scripts using port 0); with
                        --metrics-port the exposition address lands in a
                        sibling <file>.metrics
    --spans <file>      export per-worker job spans as Chrome trace-event
                        JSON on shutdown, plus a utilization summary
    --metrics-port <p>  also serve Prometheus text exposition over plain
                        HTTP (`GET /metrics`) on this port; 0 picks an
                        ephemeral port
    --no-metrics        disable the metrics registry entirely: every
                        record call becomes a no-op and snapshots are
                        empty

SUBMIT (plans a sweep grid and submits it to a running daemon):
    --addr <host:port>  daemon address (default: 127.0.0.1:7070)
    --traces <a,b,...>  comma-separated registry trace names (required)
    --llcs <a,b,...>    LLC kinds to cross (default: base-victim)
    --policies <a,...>  replacement policies to cross (default: nru)
    --llc-mb, --ways, --warmup, --insts  as for a plain run
    --out <file>        append streamed result rows as runs.jsonl lines
    --no-wait           return the ticket immediately instead of
                        streaming results to completion

WATCH (attaches to an existing ticket and streams its results):
    --ticket <n>        ticket number from submit (required)
    --addr <host:port>  daemon address (default: 127.0.0.1:7070)
    --out <file>        append streamed rows as runs.jsonl lines

CTL (single-shot daemon control; exactly one action):
    --status            print worker/queue/ticket counters plus
                        p50/p95/p99 job-duration percentiles
    --cancel <t>        cancel ticket <t>; pending jobs are dropped
    --kill-worker <w>   arm worker <w> to crash after its next claim
                        (crash-recovery drills)
    --shutdown          drain all in-flight work, then exit

TOP (live daemon dashboard, refreshed from the metrics snapshot):
    --addr <host:port>  daemon address (default: 127.0.0.1:7070)
    --interval-ms <n>   refresh period in milliseconds (default: 1000)
    --once              render a single frame and exit (no screen
                        clearing; for scripts and smoke tests)

BENCH (times the compression kernels and end-to-end simulation, writes BENCH.json):
    --quick             smaller corpus and budgets (the CI gate sizing)
    --out <file>        report destination (default: BENCH.json)
    --baseline <file>   compare against a committed report; exit nonzero on
                        regression
    --max-regress <pct> allowed throughput drop vs the baseline, percent
                        (default: 20)
";

/// A parsed `bvsim` invocation.
#[derive(Debug, PartialEq, Eq)]
pub enum Command {
    /// `--help`: print [`USAGE`] and exit successfully.
    Help,
    /// `--list-traces`: print the trace registry.
    ListTraces,
    /// Single-trace simulation (the default command).
    Run(RunArgs),
    /// `sweep`: run the experiment suite's jobs through the runner.
    Sweep(SweepArgs),
    /// `bench`: run the perf suite and write/compare `BENCH.json`.
    Bench(BenchArgs),
    /// `report`: render a telemetry JSONL file for human reading.
    Report(PathBuf),
    /// `trace`: capture event-level cache activity, or run the
    /// baseline-divergence auditor (`--audit`).
    Trace(TraceArgs),
    /// `kv`: replay server-style request traffic against the
    /// software-managed compressed kv tier.
    Kv(KvArgs),
    /// `fuzz`: hunt for hit-rate-guarantee violations on adversarial
    /// random workloads, with shrinking and reproducer replay.
    Fuzz(FuzzArgs),
    /// `serve`: run the multi-tenant sweep-serving daemon.
    Serve(ServeArgs),
    /// `submit`: submit a sweep grid to a running daemon.
    Submit(SubmitArgs),
    /// `watch`: attach to a daemon ticket and stream its results.
    Watch(WatchArgs),
    /// `ctl`: one-shot daemon control (status/cancel/kill-worker/shutdown).
    Ctl(CtlArgs),
    /// `top`: live refreshing daemon dashboard.
    Top(TopArgs),
}

/// The `--llc` values [`parse_llc`] accepts, for error messages.
pub const LLC_KINDS: &str = LlcKind::NAMES;

/// The `--policy` values [`parse_policy`] accepts, for error messages.
pub const POLICY_NAMES: &str = PolicyKind::NAMES;

/// The kv `--org` values [`parse_kv_org`] accepts, for error messages.
pub const KV_ORGS: &str = "uncompressed, compressed, base-victim";

/// The kv `--dist` values `kv` accepts, for error messages.
pub const KV_DISTS: &str = "web, analytics, social";

/// Arguments for a single-trace simulation.
#[derive(Debug, PartialEq, Eq)]
pub struct RunArgs {
    /// Registry trace name.
    pub trace: String,
    /// LLC organization.
    pub llc: LlcKind,
    /// Baseline replacement policy.
    pub policy: PolicyKind,
    /// LLC capacity in megabytes.
    pub llc_mb: usize,
    /// LLC associativity.
    pub ways: usize,
    /// Warmup instructions.
    pub warmup: u64,
    /// Measured instructions.
    pub insts: u64,
    /// Also run the uncompressed baseline and print ratios.
    pub compare: bool,
    /// Write an epoch-sampled telemetry JSONL file here, if set.
    pub telemetry: Option<PathBuf>,
    /// Telemetry sampling period in committed instructions.
    pub epoch: u64,
}

impl Default for RunArgs {
    fn default() -> RunArgs {
        RunArgs {
            trace: String::new(),
            llc: LlcKind::BaseVictim,
            policy: PolicyKind::Nru,
            llc_mb: 2,
            ways: 16,
            warmup: 1_000_000,
            insts: 1_500_000,
            compare: false,
            telemetry: None,
            epoch: bv_sim::DEFAULT_EPOCH_INSTS,
        }
    }
}

/// Arguments for the `sweep` subcommand.
#[derive(Debug, PartialEq, Eq)]
pub struct SweepArgs {
    /// Worker threads; `None` defers to `BV_JOBS` / the core count.
    pub jobs: Option<usize>,
    /// Satisfy jobs from existing checkpoints instead of re-simulating.
    pub resume: bool,
    /// Checkpoint/journal directory.
    pub journal: PathBuf,
    /// Write one telemetry file per simulated job here, if set.
    pub telemetry_dir: Option<PathBuf>,
    /// Telemetry sampling period in committed instructions.
    pub epoch: u64,
    /// Export per-job wall-clock spans as Chrome trace-event JSON here,
    /// if set.
    pub spans: Option<PathBuf>,
}

impl Default for SweepArgs {
    fn default() -> SweepArgs {
        SweepArgs {
            jobs: None,
            resume: false,
            journal: PathBuf::from("results/journal"),
            telemetry_dir: None,
            epoch: bv_sim::DEFAULT_EPOCH_INSTS,
            spans: None,
        }
    }
}

/// Arguments for the `trace` subcommand.
#[derive(Debug, PartialEq, Eq)]
pub struct TraceArgs {
    /// Registry trace name (empty in `--audit` mode).
    pub trace: String,
    /// LLC organization to trace.
    pub llc: LlcKind,
    /// Baseline replacement policy.
    pub policy: PolicyKind,
    /// LLC capacity in megabytes.
    pub llc_mb: usize,
    /// LLC associativity.
    pub ways: usize,
    /// Warmup instructions (events are not captured during warmup).
    pub warmup: u64,
    /// Measured (captured) instructions.
    pub budget: u64,
    /// Write the capture as `bvsim-events-v1` JSONL here, if set.
    pub out: Option<PathBuf>,
    /// Comma-separated event-kind filter, validated at parse time.
    pub kinds: Option<String>,
    /// Inclusive set-index filter range.
    pub sets: Option<(u32, u32)>,
    /// Inclusive sequence-number filter window.
    pub window: Option<(u64, u64)>,
    /// Ring-buffer capacity: the capture keeps the last N matching
    /// events.
    pub capacity: usize,
    /// Print a per-set event-density sparkline.
    pub heatmap: bool,
    /// Run the baseline-divergence auditor instead of a capture.
    pub audit: bool,
    /// Auditor operation count.
    pub ops: usize,
    /// Auditor op-stream seed.
    pub seed: u64,
    /// Divergence context events to report.
    pub context: usize,
    /// Inject a baseline-policy perturbation at this op (auditor
    /// self-test).
    pub inject: Option<usize>,
}

impl Default for TraceArgs {
    fn default() -> TraceArgs {
        TraceArgs {
            trace: String::new(),
            llc: LlcKind::BaseVictim,
            policy: PolicyKind::Nru,
            llc_mb: 2,
            ways: 16,
            warmup: 1_000_000,
            budget: 1_500_000,
            out: None,
            kinds: None,
            sets: None,
            window: None,
            capacity: 65_536,
            heatmap: false,
            audit: false,
            ops: 2_000,
            seed: 1,
            context: 8,
            inject: None,
        }
    }
}

/// Arguments for the `kv` subcommand.
#[derive(Debug, PartialEq, Eq)]
pub struct KvArgs {
    /// Tier organization.
    pub org: KvOrgKind,
    /// Request-profile name (validated at parse time; resolved by the
    /// binary).
    pub dist: String,
    /// Tier byte budget in KiB.
    pub budget_kib: u64,
    /// Measured requests.
    pub requests: u64,
    /// Warmup requests.
    pub warmup: u64,
    /// Request-stream seed.
    pub seed: u64,
    /// Run all three organizations and print a comparison table.
    pub compare: bool,
    /// Run every organization x profile through the runner pool.
    pub sweep: bool,
    /// Sweep worker threads; `None` uses every core.
    pub jobs: Option<usize>,
    /// Write an epoch-sampled telemetry JSONL file here, if set.
    pub telemetry: Option<PathBuf>,
    /// Telemetry sampling period in requests.
    pub epoch: u64,
    /// Write a per-decision event capture here, if set.
    pub events: Option<PathBuf>,
    /// Event ring capacity.
    pub capacity: usize,
    /// Run the baseline-mirror auditor instead of a replay.
    pub lockstep: bool,
    /// Perturb the baseline at this request (auditor self-test).
    pub inject: Option<u64>,
}

impl Default for KvArgs {
    fn default() -> KvArgs {
        KvArgs {
            org: KvOrgKind::BaseVictim,
            dist: "web".to_string(),
            budget_kib: 1024,
            requests: 150_000,
            warmup: 50_000,
            seed: 42,
            compare: false,
            sweep: false,
            jobs: None,
            telemetry: None,
            epoch: bv_kvcache::DEFAULT_EPOCH_REQUESTS,
            events: None,
            capacity: 65_536,
            lockstep: false,
            inject: None,
        }
    }
}

/// Arguments for the `fuzz` subcommand.
#[derive(Debug, PartialEq, Eq)]
pub struct FuzzArgs {
    /// Workloads to generate and check.
    pub cases: u64,
    /// Campaign master seed.
    pub seed: u64,
    /// Restrict to one property domain (`--llc` / `--kv`).
    pub domain: Option<bv_fuzz::Domain>,
    /// Run the per-domain injection self-test instead of a campaign.
    pub inject: bool,
    /// Replay this reproducer file instead of running a campaign.
    pub replay: Option<PathBuf>,
    /// With `--replay`: minimize a failing reproducer.
    pub shrink: bool,
    /// Write the failing (or minimized) case here instead of printing it.
    pub out: Option<PathBuf>,
}

impl Default for FuzzArgs {
    fn default() -> FuzzArgs {
        FuzzArgs {
            cases: 100,
            seed: 1,
            domain: None,
            inject: false,
            replay: None,
            shrink: false,
            out: None,
        }
    }
}

/// Arguments for the `bench` subcommand.
#[derive(Debug, PartialEq, Eq)]
pub struct BenchArgs {
    /// Use the smaller quick sizing (the CI gate) instead of the full
    /// suite.
    pub quick: bool,
    /// Where the report is written.
    pub out: PathBuf,
    /// Baseline report to compare against, if any.
    pub baseline: Option<PathBuf>,
    /// Allowed throughput drop vs the baseline, in percent.
    pub max_regress: u32,
}

impl Default for BenchArgs {
    fn default() -> BenchArgs {
        BenchArgs {
            quick: false,
            out: PathBuf::from("BENCH.json"),
            baseline: None,
            max_regress: 20,
        }
    }
}

/// The default daemon address for `serve` / `submit` / `watch` / `ctl`.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7070";

/// Arguments for the `serve` subcommand (the sweep daemon).
#[derive(Debug, PartialEq, Eq)]
pub struct ServeArgs {
    /// Bind address (`:0` selects an ephemeral port).
    pub addr: String,
    /// Worker threads; `None` defers to `BV_JOBS` / the core count.
    pub workers: Option<usize>,
    /// Checkpoint/journal directory (shared with `sweep`).
    pub journal: PathBuf,
    /// Per-job hang timeout in seconds.
    pub timeout_secs: u64,
    /// Re-queues allowed per job after its first attempt.
    pub retries: u32,
    /// Write the actual bound address here once listening.
    pub port_file: Option<PathBuf>,
    /// Export worker spans as Chrome trace-event JSON on shutdown.
    pub spans: Option<PathBuf>,
    /// Record live metrics (`--no-metrics` clears it).
    pub metrics: bool,
    /// Serve HTTP `GET /metrics` on this port (0 = ephemeral).
    pub metrics_port: Option<u16>,
}

impl Default for ServeArgs {
    fn default() -> ServeArgs {
        ServeArgs {
            addr: DEFAULT_SERVE_ADDR.to_string(),
            workers: None,
            journal: PathBuf::from("results/journal"),
            timeout_secs: 300,
            retries: 3,
            port_file: None,
            spans: None,
            metrics: true,
            metrics_port: None,
        }
    }
}

/// Arguments for the `submit` subcommand (client of a running daemon).
#[derive(Debug, PartialEq, Eq)]
pub struct SubmitArgs {
    /// Daemon address.
    pub addr: String,
    /// Trace names (comma-separated on the command line).
    pub traces: Vec<String>,
    /// LLC organization names.
    pub llcs: Vec<String>,
    /// Replacement policy names.
    pub policies: Vec<String>,
    /// LLC capacity in megabytes.
    pub llc_mb: u64,
    /// LLC associativity.
    pub ways: u64,
    /// Warmup instructions per job.
    pub warmup: u64,
    /// Measured instructions per job.
    pub insts: u64,
    /// Append received result lines here (runs.jsonl-shaped).
    pub out: Option<PathBuf>,
    /// Return after the ticket ack instead of streaming to completion.
    pub no_wait: bool,
}

impl Default for SubmitArgs {
    fn default() -> SubmitArgs {
        SubmitArgs {
            addr: DEFAULT_SERVE_ADDR.to_string(),
            traces: Vec::new(),
            llcs: vec!["base-victim".to_string()],
            policies: vec!["nru".to_string()],
            llc_mb: 2,
            ways: 16,
            warmup: 1_000_000,
            insts: 1_500_000,
            out: None,
            no_wait: false,
        }
    }
}

/// Arguments for the `watch` subcommand.
#[derive(Debug, PartialEq, Eq)]
pub struct WatchArgs {
    /// Daemon address.
    pub addr: String,
    /// The ticket to stream.
    pub ticket: u64,
    /// Append received result lines here.
    pub out: Option<PathBuf>,
}

/// What a `ctl` invocation asks the daemon to do.
#[derive(Debug, PartialEq, Eq)]
pub enum CtlAction {
    /// Print queue/worker counters.
    Status,
    /// Cancel a ticket.
    Cancel(u64),
    /// Arm a worker to die on its next claim (crash-recovery testing).
    KillWorker(u64),
    /// Drain and stop the daemon.
    Shutdown,
}

/// Arguments for the `ctl` subcommand.
#[derive(Debug, PartialEq, Eq)]
pub struct CtlArgs {
    /// Daemon address.
    pub addr: String,
    /// The control action to perform.
    pub action: CtlAction,
}

/// Arguments for the `top` subcommand (live dashboard).
#[derive(Debug, PartialEq, Eq)]
pub struct TopArgs {
    /// Daemon address.
    pub addr: String,
    /// Refresh period in milliseconds.
    pub interval_ms: u64,
    /// Render one frame and exit instead of refreshing.
    pub once: bool,
}

impl Default for TopArgs {
    fn default() -> TopArgs {
        TopArgs {
            addr: DEFAULT_SERVE_ADDR.to_string(),
            interval_ms: 1_000,
            once: false,
        }
    }
}

/// Parses an LLC organization name.
#[must_use]
pub fn parse_llc(s: &str) -> Option<LlcKind> {
    LlcKind::from_name(s)
}

/// Parses a kv-tier organization name.
#[must_use]
pub fn parse_kv_org(s: &str) -> Option<KvOrgKind> {
    KvOrgKind::from_name(s)
}

/// Parses a replacement-policy name.
#[must_use]
pub fn parse_policy(s: &str) -> Option<PolicyKind> {
    PolicyKind::from_name(s)
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// or unparsable numbers; the caller prints it alongside [`USAGE`].
pub fn parse(args: &[String]) -> Result<Command, String> {
    if args.first().map(String::as_str) == Some("sweep") {
        return parse_sweep(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        return parse_bench(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("report") {
        return parse_report(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return parse_trace(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("kv") {
        return parse_kv(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        return parse_fuzz(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return parse_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("submit") {
        return parse_submit(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("watch") {
        return parse_watch(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("ctl") {
        return parse_ctl(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("top") {
        return parse_top(&args[1..]);
    }
    let mut run = RunArgs::default();
    let mut trace = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--trace" => trace = Some(value("--trace")?),
            "--list-traces" => return Ok(Command::ListTraces),
            "--llc" => {
                let v = value("--llc")?;
                run.llc = parse_llc(&v)
                    .ok_or_else(|| format!("unknown LLC kind '{v}' (valid: {LLC_KINDS})"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                run.policy = parse_policy(&v)
                    .ok_or_else(|| format!("unknown policy '{v}' (valid: {POLICY_NAMES})"))?;
            }
            "--llc-mb" => {
                run.llc_mb = value("--llc-mb")?
                    .parse()
                    .map_err(|e| format!("--llc-mb: {e}"))?;
            }
            "--ways" => {
                run.ways = value("--ways")?
                    .parse()
                    .map_err(|e| format!("--ways: {e}"))?;
            }
            "--warmup" => {
                run.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--insts" => {
                run.insts = value("--insts")?
                    .parse()
                    .map_err(|e| format!("--insts: {e}"))?;
            }
            "--compare" => run.compare = true,
            "--telemetry" => run.telemetry = Some(PathBuf::from(value("--telemetry")?)),
            "--epoch" => run.epoch = parse_epoch(&value("--epoch")?)?,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    match trace {
        Some(t) => {
            run.trace = t;
            Ok(Command::Run(run))
        }
        None => Err("--trace <name> or --list-traces required".into()),
    }
}

fn parse_sweep(args: &[String]) -> Result<Command, String> {
    let mut sweep = SweepArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--jobs" => {
                let v: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if v == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                sweep.jobs = Some(v);
            }
            "--resume" => sweep.resume = true,
            "--journal" => sweep.journal = PathBuf::from(value("--journal")?),
            "--telemetry-dir" => {
                sweep.telemetry_dir = Some(PathBuf::from(value("--telemetry-dir")?));
            }
            "--epoch" => sweep.epoch = parse_epoch(&value("--epoch")?)?,
            "--spans" => sweep.spans = Some(PathBuf::from(value("--spans")?)),
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown sweep flag '{other}' (try --help)")),
        }
    }
    Ok(Command::Sweep(sweep))
}

fn parse_serve(args: &[String]) -> Result<Command, String> {
    let mut serve = ServeArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => serve.addr = value("--addr")?,
            "--workers" => {
                let v: usize = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if v == 0 {
                    return Err("--workers must be at least 1".into());
                }
                serve.workers = Some(v);
            }
            "--journal" => serve.journal = PathBuf::from(value("--journal")?),
            "--timeout-secs" => {
                serve.timeout_secs = value("--timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--timeout-secs: {e}"))?;
            }
            "--retries" => {
                serve.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--port-file" => serve.port_file = Some(PathBuf::from(value("--port-file")?)),
            "--spans" => serve.spans = Some(PathBuf::from(value("--spans")?)),
            "--metrics-port" => {
                serve.metrics_port = Some(
                    value("--metrics-port")?
                        .parse()
                        .map_err(|e| format!("--metrics-port: {e}"))?,
                );
            }
            "--no-metrics" => serve.metrics = false,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown serve flag '{other}' (try --help)")),
        }
    }
    Ok(Command::Serve(serve))
}

/// Splits a comma-separated list, rejecting empty elements.
fn parse_list(flag: &str, v: &str) -> Result<Vec<String>, String> {
    let items: Vec<String> = v.split(',').map(str::trim).map(str::to_string).collect();
    if items.iter().any(String::is_empty) {
        return Err(format!(
            "{flag}: expected a comma-separated list, got '{v}'"
        ));
    }
    Ok(items)
}

fn parse_submit(args: &[String]) -> Result<Command, String> {
    let mut submit = SubmitArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => submit.addr = value("--addr")?,
            "--traces" => submit.traces = parse_list("--traces", &value("--traces")?)?,
            "--llcs" => {
                let list = parse_list("--llcs", &value("--llcs")?)?;
                for name in &list {
                    if LlcKind::from_name(name).is_none() {
                        return Err(format!("unknown LLC kind '{name}' (valid: {LLC_KINDS})"));
                    }
                }
                submit.llcs = list;
            }
            "--policies" => {
                let list = parse_list("--policies", &value("--policies")?)?;
                for name in &list {
                    if PolicyKind::from_name(name).is_none() {
                        return Err(format!("unknown policy '{name}' (valid: {POLICY_NAMES})"));
                    }
                }
                submit.policies = list;
            }
            "--llc-mb" => {
                submit.llc_mb = value("--llc-mb")?
                    .parse()
                    .map_err(|e| format!("--llc-mb: {e}"))?;
            }
            "--ways" => {
                submit.ways = value("--ways")?
                    .parse()
                    .map_err(|e| format!("--ways: {e}"))?;
            }
            "--warmup" => {
                submit.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--insts" => {
                submit.insts = value("--insts")?
                    .parse()
                    .map_err(|e| format!("--insts: {e}"))?;
            }
            "--out" => submit.out = Some(PathBuf::from(value("--out")?)),
            "--no-wait" => submit.no_wait = true,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown submit flag '{other}' (try --help)")),
        }
    }
    if submit.traces.is_empty() {
        return Err("submit requires --traces <a,b,...>".into());
    }
    Ok(Command::Submit(submit))
}

fn parse_watch(args: &[String]) -> Result<Command, String> {
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut ticket = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--ticket" => {
                ticket = Some(
                    value("--ticket")?
                        .parse()
                        .map_err(|e| format!("--ticket: {e}"))?,
                );
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown watch flag '{other}' (try --help)")),
        }
    }
    let ticket = ticket.ok_or("watch requires --ticket <n>")?;
    Ok(Command::Watch(WatchArgs { addr, ticket, out }))
}

fn parse_ctl(args: &[String]) -> Result<Command, String> {
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut action = None;
    let set = |a: CtlAction, action: &mut Option<CtlAction>| -> Result<(), String> {
        if action.is_some() {
            return Err("ctl takes exactly one action".into());
        }
        *action = Some(a);
        Ok(())
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--status" => set(CtlAction::Status, &mut action)?,
            "--cancel" => {
                let t = value("--cancel")?
                    .parse()
                    .map_err(|e| format!("--cancel: {e}"))?;
                set(CtlAction::Cancel(t), &mut action)?;
            }
            "--kill-worker" => {
                let w = value("--kill-worker")?
                    .parse()
                    .map_err(|e| format!("--kill-worker: {e}"))?;
                set(CtlAction::KillWorker(w), &mut action)?;
            }
            "--shutdown" => set(CtlAction::Shutdown, &mut action)?,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown ctl flag '{other}' (try --help)")),
        }
    }
    let action =
        action.ok_or("ctl requires one of --status | --cancel | --kill-worker | --shutdown")?;
    Ok(Command::Ctl(CtlArgs { addr, action }))
}

fn parse_top(args: &[String]) -> Result<Command, String> {
    let mut top = TopArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => top.addr = value("--addr")?,
            "--interval-ms" => {
                let v: u64 = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
                if v == 0 {
                    return Err("--interval-ms must be at least 1".into());
                }
                top.interval_ms = v;
            }
            "--once" => top.once = true,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown top flag '{other}' (try --help)")),
        }
    }
    Ok(Command::Top(top))
}

/// Parses an inclusive `lo:hi` range with `lo <= hi`.
fn parse_range<T: std::str::FromStr + PartialOrd>(flag: &str, v: &str) -> Result<(T, T), String> {
    let (lo, hi) = v
        .split_once(':')
        .ok_or_else(|| format!("{flag}: expected <lo>:<hi>, got '{v}'"))?;
    let lo: T = lo
        .parse()
        .map_err(|_| format!("{flag}: bad lower bound '{lo}'"))?;
    let hi: T = hi
        .parse()
        .map_err(|_| format!("{flag}: bad upper bound '{hi}'"))?;
    if lo > hi {
        return Err(format!("{flag}: range is inverted"));
    }
    Ok((lo, hi))
}

fn parse_trace(args: &[String]) -> Result<Command, String> {
    let mut t = TraceArgs::default();
    let mut trace = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--trace" => trace = Some(value("--trace")?),
            "--llc" => {
                let v = value("--llc")?;
                t.llc = parse_llc(&v)
                    .ok_or_else(|| format!("unknown LLC kind '{v}' (valid: {LLC_KINDS})"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                t.policy = parse_policy(&v)
                    .ok_or_else(|| format!("unknown policy '{v}' (valid: {POLICY_NAMES})"))?;
            }
            "--llc-mb" => {
                t.llc_mb = value("--llc-mb")?
                    .parse()
                    .map_err(|e| format!("--llc-mb: {e}"))?;
            }
            "--ways" => {
                t.ways = value("--ways")?
                    .parse()
                    .map_err(|e| format!("--ways: {e}"))?;
            }
            "--warmup" => {
                t.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--budget" => {
                t.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
            }
            "--out" => t.out = Some(PathBuf::from(value("--out")?)),
            "--kinds" => {
                let v = value("--kinds")?;
                // Validate now so an unknown kind fails before a long run.
                bv_events::EventFilter::all().with_kind_names(&v)?;
                t.kinds = Some(v);
            }
            "--sets" => t.sets = Some(parse_range("--sets", &value("--sets")?)?),
            "--window" => t.window = Some(parse_range("--window", &value("--window")?)?),
            "--capacity" => {
                let v: usize = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
                if v == 0 {
                    return Err("--capacity must be at least 1".into());
                }
                t.capacity = v;
            }
            "--heatmap" => t.heatmap = true,
            "--audit" => t.audit = true,
            "--ops" => {
                t.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?;
            }
            "--seed" => {
                t.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--context" => {
                t.context = value("--context")?
                    .parse()
                    .map_err(|e| format!("--context: {e}"))?;
            }
            "--inject" => {
                t.inject = Some(
                    value("--inject")?
                        .parse()
                        .map_err(|e| format!("--inject: {e}"))?,
                );
            }
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown trace flag '{other}' (try --help)")),
        }
    }
    match (trace, t.audit) {
        (Some(name), _) => {
            t.trace = name;
            Ok(Command::Trace(t))
        }
        (None, true) => Ok(Command::Trace(t)),
        (None, false) => Err("trace requires --trace <name> (or --audit)".into()),
    }
}

fn parse_kv(args: &[String]) -> Result<Command, String> {
    let mut kv = KvArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--org" => {
                let v = value("--org")?;
                kv.org = parse_kv_org(&v)
                    .ok_or_else(|| format!("unknown kv org '{v}' (valid: {KV_ORGS})"))?;
            }
            "--dist" => {
                let v = value("--dist")?;
                if bv_trace::request::RequestProfile::by_name(&v).is_none() {
                    return Err(format!("unknown kv dist '{v}' (valid: {KV_DISTS})"));
                }
                kv.dist = v;
            }
            "--budget-kib" => {
                let v: u64 = value("--budget-kib")?
                    .parse()
                    .map_err(|e| format!("--budget-kib: {e}"))?;
                if v == 0 {
                    return Err("--budget-kib must be at least 1".into());
                }
                kv.budget_kib = v;
            }
            "--requests" => {
                kv.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--warmup" => {
                kv.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--seed" => {
                kv.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--compare" => kv.compare = true,
            "--sweep" => kv.sweep = true,
            "--jobs" => {
                let v: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if v == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                kv.jobs = Some(v);
            }
            "--telemetry" => kv.telemetry = Some(PathBuf::from(value("--telemetry")?)),
            "--epoch" => kv.epoch = parse_epoch(&value("--epoch")?)?,
            "--events" => kv.events = Some(PathBuf::from(value("--events")?)),
            "--capacity" => {
                let v: usize = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
                if v == 0 {
                    return Err("--capacity must be at least 1".into());
                }
                kv.capacity = v;
            }
            "--lockstep" => kv.lockstep = true,
            "--inject" => {
                kv.inject = Some(
                    value("--inject")?
                        .parse()
                        .map_err(|e| format!("--inject: {e}"))?,
                );
            }
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown kv flag '{other}' (try --help)")),
        }
    }
    if kv.compare && kv.sweep {
        return Err("--compare and --sweep are mutually exclusive".into());
    }
    if kv.lockstep && (kv.compare || kv.sweep) {
        return Err("--lockstep runs alone (drop --compare/--sweep)".into());
    }
    if kv.inject.is_some() && !kv.lockstep {
        return Err("--inject requires --lockstep".into());
    }
    Ok(Command::Kv(kv))
}

fn parse_fuzz(args: &[String]) -> Result<Command, String> {
    let mut f = FuzzArgs::default();
    let mut cases_given = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cases" => {
                let v: u64 = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
                if v == 0 {
                    return Err("--cases must be at least 1".into());
                }
                f.cases = v;
                cases_given = true;
            }
            "--seed" => {
                f.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--llc" => f.domain = Some(bv_fuzz::Domain::Llc),
            "--kv" => f.domain = Some(bv_fuzz::Domain::Kv),
            "--inject" => f.inject = true,
            "--replay" => f.replay = Some(PathBuf::from(value("--replay")?)),
            "--shrink" => f.shrink = true,
            "--out" => f.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown fuzz flag '{other}' (try --help)")),
        }
    }
    // --llc/--kv may each appear, but the last one silently winning
    // would hide a typo; catch the contradiction instead.
    if args.iter().any(|a| a == "--llc") && args.iter().any(|a| a == "--kv") {
        return Err("--llc and --kv are mutually exclusive".into());
    }
    if f.replay.is_some() && f.inject {
        return Err("--replay and --inject are mutually exclusive".into());
    }
    if f.replay.is_some() && cases_given {
        return Err("--cases has no effect with --replay".into());
    }
    if f.shrink && f.replay.is_none() {
        return Err("--shrink requires --replay (campaigns always shrink)".into());
    }
    Ok(Command::Fuzz(f))
}

fn parse_epoch(v: &str) -> Result<u64, String> {
    let epoch: u64 = v.parse().map_err(|e| format!("--epoch: {e}"))?;
    if epoch == 0 {
        return Err("--epoch must be at least 1 instruction".into());
    }
    Ok(epoch)
}

fn parse_report(args: &[String]) -> Result<Command, String> {
    match args {
        [flag] if flag == "--help" || flag == "-h" => Ok(Command::Help),
        [path] => Ok(Command::Report(PathBuf::from(path))),
        [] => Err("report requires a telemetry file path".into()),
        _ => Err("report takes exactly one telemetry file path".into()),
    }
}

fn parse_bench(args: &[String]) -> Result<Command, String> {
    let mut bench = BenchArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--quick" => bench.quick = true,
            "--out" => bench.out = PathBuf::from(value("--out")?),
            "--baseline" => bench.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--max-regress" => {
                let v: u32 = value("--max-regress")?
                    .parse()
                    .map_err(|e| format!("--max-regress: {e}"))?;
                if v >= 100 {
                    return Err("--max-regress must be below 100".into());
                }
                bench.max_regress = v;
            }
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown bench flag '{other}' (try --help)")),
        }
    }
    Ok(Command::Bench(bench))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn run_with_defaults() {
        let cmd = parse(&argv("--trace specint.mcf.07")).expect("parse");
        let Command::Run(run) = cmd else {
            panic!("expected Run, got {cmd:?}")
        };
        assert_eq!(run.trace, "specint.mcf.07");
        assert_eq!(run.llc, LlcKind::BaseVictim);
        assert_eq!(run.policy, PolicyKind::Nru);
        assert_eq!((run.llc_mb, run.ways), (2, 16));
        assert!(!run.compare);
    }

    #[test]
    fn run_with_every_flag() {
        let cmd = parse(&argv(
            "--trace t --llc two-tag-ecm --policy srrip --llc-mb 4 --ways 8 \
             --warmup 5 --insts 7 --compare",
        ))
        .expect("parse");
        let Command::Run(run) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(run.llc, LlcKind::TwoTagEcm);
        assert_eq!(run.policy, PolicyKind::Srrip);
        assert_eq!((run.llc_mb, run.ways), (4, 8));
        assert_eq!((run.warmup, run.insts), (5, 7));
        assert!(run.compare);
    }

    #[test]
    fn list_and_help_short_circuit() {
        assert_eq!(parse(&argv("--list-traces")).unwrap(), Command::ListTraces);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("sweep --help")).unwrap(), Command::Help);
    }

    #[test]
    fn sweep_defaults() {
        let cmd = parse(&argv("sweep")).expect("parse");
        assert_eq!(cmd, Command::Sweep(SweepArgs::default()));
    }

    #[test]
    fn sweep_with_flags() {
        let cmd = parse(&argv(
            "sweep --jobs 4 --resume --journal /tmp/j --telemetry-dir /tmp/t --epoch 50000 \
             --spans /tmp/spans.json",
        ))
        .expect("parse");
        assert_eq!(
            cmd,
            Command::Sweep(SweepArgs {
                jobs: Some(4),
                resume: true,
                journal: PathBuf::from("/tmp/j"),
                telemetry_dir: Some(PathBuf::from("/tmp/t")),
                epoch: 50_000,
                spans: Some(PathBuf::from("/tmp/spans.json")),
            })
        );
    }

    #[test]
    fn trace_capture_flags() {
        let cmd = parse(&argv(
            "trace --trace t --llc base-victim --policy lru --budget 9000 --warmup 100 \
             --out ev.jsonl --kinds fill,eviction --sets 0:15 --window 10:99 \
             --capacity 128 --heatmap",
        ))
        .expect("parse");
        let Command::Trace(t) = cmd else {
            panic!("expected Trace")
        };
        assert_eq!(t.trace, "t");
        assert_eq!(t.policy, PolicyKind::Lru);
        assert_eq!((t.warmup, t.budget), (100, 9_000));
        assert_eq!(t.out, Some(PathBuf::from("ev.jsonl")));
        assert_eq!(t.kinds.as_deref(), Some("fill,eviction"));
        assert_eq!(t.sets, Some((0, 15)));
        assert_eq!(t.window, Some((10, 99)));
        assert_eq!(t.capacity, 128);
        assert!(t.heatmap && !t.audit);
    }

    #[test]
    fn trace_audit_flags() {
        let cmd = parse(&argv(
            "trace --audit --ops 500 --seed 9 --context 4 --inject 50",
        ))
        .expect("parse");
        let Command::Trace(t) = cmd else {
            panic!("expected Trace")
        };
        assert!(t.audit);
        assert!(t.trace.is_empty());
        assert_eq!((t.ops, t.seed, t.context), (500, 9, 4));
        assert_eq!(t.inject, Some(50));
        assert_eq!(parse(&argv("trace --help")).unwrap(), Command::Help);
    }

    #[test]
    fn trace_rejects_bad_filters() {
        // A capture needs a trace name; audit mode does not.
        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("trace --heatmap")).is_err());
        // Unknown kinds fail at parse time, naming the valid set.
        let err = parse(&argv("trace --trace t --kinds fill,bogus")).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        // Malformed and inverted ranges.
        assert!(parse(&argv("trace --trace t --sets 5")).is_err());
        assert!(parse(&argv("trace --trace t --sets 9:2")).is_err());
        assert!(parse(&argv("trace --trace t --window a:b")).is_err());
        assert!(parse(&argv("trace --trace t --capacity 0")).is_err());
    }

    #[test]
    fn run_telemetry_flags() {
        let cmd = parse(&argv("--trace t --telemetry /tmp/t.jsonl --epoch 1000")).expect("parse");
        let Command::Run(run) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(run.telemetry, Some(PathBuf::from("/tmp/t.jsonl")));
        assert_eq!(run.epoch, 1_000);
        // The default epoch applies when only the destination is given.
        let cmd = parse(&argv("--trace t --telemetry out.jsonl")).expect("parse");
        let Command::Run(run) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(run.epoch, bv_sim::DEFAULT_EPOCH_INSTS);
        assert!(parse(&argv("--trace t --epoch 0")).is_err());
        assert!(parse(&argv("--trace t --epoch soon")).is_err());
        assert!(parse(&argv("sweep --epoch 0")).is_err());
    }

    #[test]
    fn report_takes_one_path() {
        let cmd = parse(&argv("report results/t.jsonl")).expect("parse");
        assert_eq!(cmd, Command::Report(PathBuf::from("results/t.jsonl")));
        assert_eq!(parse(&argv("report --help")).unwrap(), Command::Help);
        assert!(parse(&argv("report")).is_err());
        assert!(parse(&argv("report a b")).is_err());
    }

    #[test]
    fn unknown_llc_error_lists_valid_kinds() {
        let err = parse(&argv("--trace t --llc nonsense")).unwrap_err();
        assert!(err.contains("unknown LLC kind 'nonsense'"), "{err}");
        for kind in ["uncompressed", "base-victim-random-fit", "vsc", "dcc"] {
            assert!(err.contains(kind), "error lists '{kind}': {err}");
        }
    }

    #[test]
    fn unknown_policy_error_lists_valid_names() {
        let err = parse(&argv("--trace t --policy mru")).unwrap_err();
        assert!(err.contains("unknown policy 'mru'"), "{err}");
        for name in ["lru", "nru", "srrip", "char", "camp", "random"] {
            assert!(err.contains(name), "error lists '{name}': {err}");
        }
    }

    #[test]
    fn kv_defaults() {
        let cmd = parse(&argv("kv")).expect("parse");
        assert_eq!(cmd, Command::Kv(KvArgs::default()));
        assert_eq!(parse(&argv("kv --help")).unwrap(), Command::Help);
    }

    #[test]
    fn kv_with_every_flag() {
        let cmd = parse(&argv(
            "kv --org compressed --dist analytics --budget-kib 512 --requests 9000 \
             --warmup 100 --seed 7 --telemetry /tmp/kv.jsonl --epoch 500 \
             --events /tmp/kv.events.jsonl --capacity 256",
        ))
        .expect("parse");
        let Command::Kv(kv) = cmd else {
            panic!("expected Kv")
        };
        assert_eq!(kv.org, KvOrgKind::Compressed);
        assert_eq!(kv.dist, "analytics");
        assert_eq!(kv.budget_kib, 512);
        assert_eq!((kv.requests, kv.warmup, kv.seed), (9_000, 100, 7));
        assert_eq!(kv.telemetry, Some(PathBuf::from("/tmp/kv.jsonl")));
        assert_eq!(kv.epoch, 500);
        assert_eq!(kv.events, Some(PathBuf::from("/tmp/kv.events.jsonl")));
        assert_eq!(kv.capacity, 256);
    }

    #[test]
    fn kv_modes_parse_and_exclude_each_other() {
        let Command::Kv(kv) = parse(&argv("kv --compare")).expect("parse") else {
            panic!("expected Kv")
        };
        assert!(kv.compare);
        let Command::Kv(kv) = parse(&argv("kv --sweep --jobs 2")).expect("parse") else {
            panic!("expected Kv")
        };
        assert!(kv.sweep);
        assert_eq!(kv.jobs, Some(2));
        let Command::Kv(kv) = parse(&argv("kv --lockstep --inject 99")).expect("parse") else {
            panic!("expected Kv")
        };
        assert!(kv.lockstep);
        assert_eq!(kv.inject, Some(99));
        assert!(parse(&argv("kv --compare --sweep")).is_err());
        assert!(parse(&argv("kv --lockstep --compare")).is_err());
        assert!(parse(&argv("kv --inject 5")).is_err());
    }

    #[test]
    fn unknown_kv_org_error_lists_valid_orgs() {
        let err = parse(&argv("kv --org nonsense")).unwrap_err();
        assert!(err.contains("unknown kv org 'nonsense'"), "{err}");
        for org in ["uncompressed", "compressed", "base-victim"] {
            assert!(err.contains(org), "error lists '{org}': {err}");
        }
    }

    #[test]
    fn unknown_kv_dist_error_lists_valid_dists() {
        let err = parse(&argv("kv --dist nonsense")).unwrap_err();
        assert!(err.contains("unknown kv dist 'nonsense'"), "{err}");
        for dist in ["web", "analytics", "social"] {
            assert!(err.contains(dist), "error lists '{dist}': {err}");
        }
    }

    #[test]
    fn kv_rejects_bad_values() {
        assert!(parse(&argv("kv --budget-kib 0")).is_err());
        assert!(parse(&argv("kv --budget-kib big")).is_err());
        assert!(parse(&argv("kv --jobs 0")).is_err());
        assert!(parse(&argv("kv --capacity 0")).is_err());
        assert!(parse(&argv("kv --epoch 0")).is_err());
        assert!(parse(&argv("kv --requests soon")).is_err());
        assert!(parse(&argv("kv --bogus")).is_err());
        assert!(parse(&argv("kv --dist")).is_err());
    }

    #[test]
    fn fuzz_defaults() {
        let cmd = parse(&argv("fuzz")).expect("parse");
        assert_eq!(cmd, Command::Fuzz(FuzzArgs::default()));
        assert_eq!(parse(&argv("fuzz --help")).unwrap(), Command::Help);
    }

    #[test]
    fn fuzz_campaign_flags() {
        let cmd = parse(&argv(
            "fuzz --cases 25 --seed 7 --kv --out /tmp/f.bvfuzz.json",
        ))
        .expect("parse");
        let Command::Fuzz(f) = cmd else {
            panic!("expected Fuzz")
        };
        assert_eq!((f.cases, f.seed), (25, 7));
        assert_eq!(f.domain, Some(bv_fuzz::Domain::Kv));
        assert_eq!(f.out, Some(PathBuf::from("/tmp/f.bvfuzz.json")));
        assert!(!f.inject && f.replay.is_none() && !f.shrink);
        let Command::Fuzz(f) = parse(&argv("fuzz --llc --inject")).expect("parse") else {
            panic!("expected Fuzz")
        };
        assert_eq!(f.domain, Some(bv_fuzz::Domain::Llc));
        assert!(f.inject);
    }

    #[test]
    fn fuzz_replay_flags() {
        let cmd = parse(&argv("fuzz --replay tests/corpus/x.bvfuzz.json --shrink")).expect("parse");
        let Command::Fuzz(f) = cmd else {
            panic!("expected Fuzz")
        };
        assert_eq!(f.replay, Some(PathBuf::from("tests/corpus/x.bvfuzz.json")));
        assert!(f.shrink);
    }

    #[test]
    fn fuzz_rejects_contradictions() {
        assert!(parse(&argv("fuzz --llc --kv")).is_err());
        assert!(parse(&argv("fuzz --replay f --inject")).is_err());
        assert!(parse(&argv("fuzz --replay f --cases 5")).is_err());
        assert!(parse(&argv("fuzz --shrink")).is_err());
        assert!(parse(&argv("fuzz --cases 0")).is_err());
        assert!(parse(&argv("fuzz --cases many")).is_err());
        assert!(parse(&argv("fuzz --replay")).is_err());
        assert!(parse(&argv("fuzz --bogus")).is_err());
    }

    #[test]
    fn bench_defaults() {
        let cmd = parse(&argv("bench")).expect("parse");
        assert_eq!(
            cmd,
            Command::Bench(BenchArgs {
                quick: false,
                out: PathBuf::from("BENCH.json"),
                baseline: None,
                max_regress: 20,
            })
        );
    }

    #[test]
    fn bench_with_flags() {
        let cmd = parse(&argv(
            "bench --quick --out /tmp/b.json --baseline BENCH.json --max-regress 35",
        ))
        .expect("parse");
        assert_eq!(
            cmd,
            Command::Bench(BenchArgs {
                quick: true,
                out: PathBuf::from("/tmp/b.json"),
                baseline: Some(PathBuf::from("BENCH.json")),
                max_regress: 35,
            })
        );
        assert_eq!(parse(&argv("bench --help")).unwrap(), Command::Help);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("--trace")).is_err());
        assert!(parse(&argv("--trace t --llc nonsense")).is_err());
        assert!(parse(&argv("--trace t --ways wide")).is_err());
        assert!(parse(&argv("sweep --jobs 0")).is_err());
        assert!(parse(&argv("sweep --jobs many")).is_err());
        assert!(parse(&argv("sweep --journal")).is_err());
        assert!(parse(&argv("sweep --trace t")).is_err());
        assert!(parse(&argv("bench --out")).is_err());
        assert!(parse(&argv("bench --max-regress 150")).is_err());
        assert!(parse(&argv("bench --max-regress some")).is_err());
        assert!(parse(&argv("bench --trace t")).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve(ServeArgs::default())
        );
        let cmd = parse(&argv(
            "serve --addr 127.0.0.1:0 --workers 3 --journal /tmp/j --timeout-secs 10 \
             --retries 1 --port-file /tmp/p --spans /tmp/s.json --metrics-port 9100 \
             --no-metrics",
        ))
        .expect("parse");
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                addr: "127.0.0.1:0".to_string(),
                workers: Some(3),
                journal: PathBuf::from("/tmp/j"),
                timeout_secs: 10,
                retries: 1,
                port_file: Some(PathBuf::from("/tmp/p")),
                spans: Some(PathBuf::from("/tmp/s.json")),
                metrics: false,
                metrics_port: Some(9100),
            })
        );
        assert_eq!(parse(&argv("serve --help")).unwrap(), Command::Help);
        assert!(parse(&argv("serve --workers 0")).is_err());
        assert!(parse(&argv("serve --metrics-port 66000")).is_err());
        assert!(parse(&argv("serve --bogus")).is_err());
    }

    #[test]
    fn top_defaults_and_flags() {
        assert_eq!(
            parse(&argv("top")).unwrap(),
            Command::Top(TopArgs::default())
        );
        let cmd = parse(&argv("top --addr h:3 --interval-ms 250 --once")).expect("parse");
        assert_eq!(
            cmd,
            Command::Top(TopArgs {
                addr: "h:3".to_string(),
                interval_ms: 250,
                once: true,
            })
        );
        assert!(parse(&argv("top --interval-ms 0")).is_err());
        assert!(parse(&argv("top --bogus")).is_err());
    }

    #[test]
    fn submit_flags_and_validation() {
        let cmd = parse(&argv(
            "submit --traces a,b --llcs uncompressed,base-victim --policies nru,lru \
             --llc-mb 4 --ways 8 --warmup 10 --insts 20 --out /tmp/o.jsonl --no-wait",
        ))
        .expect("parse");
        assert_eq!(
            cmd,
            Command::Submit(SubmitArgs {
                addr: DEFAULT_SERVE_ADDR.to_string(),
                traces: vec!["a".to_string(), "b".to_string()],
                llcs: vec!["uncompressed".to_string(), "base-victim".to_string()],
                policies: vec!["nru".to_string(), "lru".to_string()],
                llc_mb: 4,
                ways: 8,
                warmup: 10,
                insts: 20,
                out: Some(PathBuf::from("/tmp/o.jsonl")),
                no_wait: true,
            })
        );
        // --traces is required; llc/policy names are checked at parse time.
        assert!(parse(&argv("submit")).is_err());
        let err = parse(&argv("submit --traces t --llcs bogus")).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        let err = parse(&argv("submit --traces t --policies bogus")).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(parse(&argv("submit --traces t,,u")).is_err());
    }

    #[test]
    fn watch_and_ctl_flags() {
        let cmd = parse(&argv("watch --ticket 7 --addr h:1 --out /tmp/w.jsonl")).expect("parse");
        assert_eq!(
            cmd,
            Command::Watch(WatchArgs {
                addr: "h:1".to_string(),
                ticket: 7,
                out: Some(PathBuf::from("/tmp/w.jsonl")),
            })
        );
        assert!(parse(&argv("watch")).is_err(), "--ticket is required");

        let status = parse(&argv("ctl --status")).expect("parse");
        assert_eq!(
            status,
            Command::Ctl(CtlArgs {
                addr: DEFAULT_SERVE_ADDR.to_string(),
                action: CtlAction::Status,
            })
        );
        let cancel = parse(&argv("ctl --cancel 3 --addr h:2")).expect("parse");
        assert_eq!(
            cancel,
            Command::Ctl(CtlArgs {
                addr: "h:2".to_string(),
                action: CtlAction::Cancel(3),
            })
        );
        let kill = parse(&argv("ctl --kill-worker 1")).expect("parse");
        assert_eq!(
            kill,
            Command::Ctl(CtlArgs {
                addr: DEFAULT_SERVE_ADDR.to_string(),
                action: CtlAction::KillWorker(1),
            })
        );
        let stop = parse(&argv("ctl --shutdown")).expect("parse");
        assert_eq!(
            stop,
            Command::Ctl(CtlArgs {
                addr: DEFAULT_SERVE_ADDR.to_string(),
                action: CtlAction::Shutdown,
            })
        );
        // Exactly one action: none or two both fail.
        assert!(parse(&argv("ctl")).is_err());
        assert!(parse(&argv("ctl --status --shutdown")).is_err());
    }
}
