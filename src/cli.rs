//! Argument parsing for the `bvsim` binary, separated from the binary so
//! it can be unit-tested: parsing consumes a plain `&[String]` (no
//! process state) and returns either a [`Command`] or an error message.

use bv_cache::PolicyKind;
use bv_core::VictimPolicyKind;
use bv_sim::LlcKind;
use std::path::PathBuf;

/// The `bvsim` usage text.
pub const USAGE: &str = "\
bvsim — trace-driven simulation of the Base-Victim compressed LLC

USAGE:
    bvsim --trace <name> [options]
    bvsim --list-traces
    bvsim sweep [--jobs <n>] [--resume] [--journal <dir>] [--telemetry-dir <dir>]
    bvsim bench [--quick] [--out <file>] [--baseline <file>] [--max-regress <pct>]
    bvsim report <telemetry.jsonl>

OPTIONS:
    --trace <name>      registry trace to run (see --list-traces)
    --list-traces       print the 100-trace registry and exit
    --llc <kind>        uncompressed | two-tag | two-tag-ecm | base-victim
                        | base-victim-ni | base-victim-random-fit | vsc | dcc
                        (default: base-victim; dcc is the decoupled
                        super-block state of the art, vsc the decoupled
                        variable-segment cache)
    --policy <name>     lru | nru | srrip | char | camp | random
                        (default: nru, as in the paper)
    --llc-mb <n>        LLC capacity in MB (default: 2)
    --ways <n>          LLC associativity (default: 16)
    --warmup <n>        warmup instructions (default: 1000000)
    --insts <n>         measured instructions (default: 1500000)
    --compare           also run the uncompressed baseline and print ratios
    --telemetry <file>  write an epoch-sampled bvsim-telemetry-v1 JSONL
                        time series of the measured phase
    --epoch <insts>     telemetry sampling period in committed
                        instructions (default: 100000)
    --help              this text

SWEEP (runs the full experiment suite's job set through the parallel runner):
    --jobs <n>          worker threads (default: $BV_JOBS, else all cores)
    --resume            satisfy jobs from existing journal checkpoints
    --journal <dir>     checkpoint/journal directory (default: results/journal)
    --telemetry-dir <dir>  write one <hash>.telemetry.jsonl per simulated
                        job; the path is recorded in runs.jsonl
    --epoch <insts>     telemetry sampling period (default: 100000)
  Budgets come from BV_WARMUP / BV_INSTS as for the experiment binaries.

REPORT (renders a telemetry file: per-epoch TSV plus sparkline summaries):
    bvsim report results/telemetry/0123456789abcdef.telemetry.jsonl

BENCH (times the compression kernels and end-to-end simulation, writes BENCH.json):
    --quick             smaller corpus and budgets (the CI gate sizing)
    --out <file>        report destination (default: BENCH.json)
    --baseline <file>   compare against a committed report; exit nonzero on
                        regression
    --max-regress <pct> allowed throughput drop vs the baseline, percent
                        (default: 20)
";

/// A parsed `bvsim` invocation.
#[derive(Debug, PartialEq, Eq)]
pub enum Command {
    /// `--help`: print [`USAGE`] and exit successfully.
    Help,
    /// `--list-traces`: print the trace registry.
    ListTraces,
    /// Single-trace simulation (the default command).
    Run(RunArgs),
    /// `sweep`: run the experiment suite's jobs through the runner.
    Sweep(SweepArgs),
    /// `bench`: run the perf suite and write/compare `BENCH.json`.
    Bench(BenchArgs),
    /// `report`: render a telemetry JSONL file for human reading.
    Report(PathBuf),
}

/// The `--llc` values [`parse_llc`] accepts, for error messages.
pub const LLC_KINDS: &str = "uncompressed, two-tag, two-tag-ecm, base-victim, \
     base-victim-ni, base-victim-random-fit, vsc, dcc";

/// The `--policy` values [`parse_policy`] accepts, for error messages.
pub const POLICY_NAMES: &str = "lru, nru, srrip, char, camp, random";

/// Arguments for a single-trace simulation.
#[derive(Debug, PartialEq, Eq)]
pub struct RunArgs {
    /// Registry trace name.
    pub trace: String,
    /// LLC organization.
    pub llc: LlcKind,
    /// Baseline replacement policy.
    pub policy: PolicyKind,
    /// LLC capacity in megabytes.
    pub llc_mb: usize,
    /// LLC associativity.
    pub ways: usize,
    /// Warmup instructions.
    pub warmup: u64,
    /// Measured instructions.
    pub insts: u64,
    /// Also run the uncompressed baseline and print ratios.
    pub compare: bool,
    /// Write an epoch-sampled telemetry JSONL file here, if set.
    pub telemetry: Option<PathBuf>,
    /// Telemetry sampling period in committed instructions.
    pub epoch: u64,
}

impl Default for RunArgs {
    fn default() -> RunArgs {
        RunArgs {
            trace: String::new(),
            llc: LlcKind::BaseVictim,
            policy: PolicyKind::Nru,
            llc_mb: 2,
            ways: 16,
            warmup: 1_000_000,
            insts: 1_500_000,
            compare: false,
            telemetry: None,
            epoch: bv_sim::DEFAULT_EPOCH_INSTS,
        }
    }
}

/// Arguments for the `sweep` subcommand.
#[derive(Debug, PartialEq, Eq)]
pub struct SweepArgs {
    /// Worker threads; `None` defers to `BV_JOBS` / the core count.
    pub jobs: Option<usize>,
    /// Satisfy jobs from existing checkpoints instead of re-simulating.
    pub resume: bool,
    /// Checkpoint/journal directory.
    pub journal: PathBuf,
    /// Write one telemetry file per simulated job here, if set.
    pub telemetry_dir: Option<PathBuf>,
    /// Telemetry sampling period in committed instructions.
    pub epoch: u64,
}

impl Default for SweepArgs {
    fn default() -> SweepArgs {
        SweepArgs {
            jobs: None,
            resume: false,
            journal: PathBuf::from("results/journal"),
            telemetry_dir: None,
            epoch: bv_sim::DEFAULT_EPOCH_INSTS,
        }
    }
}

/// Arguments for the `bench` subcommand.
#[derive(Debug, PartialEq, Eq)]
pub struct BenchArgs {
    /// Use the smaller quick sizing (the CI gate) instead of the full
    /// suite.
    pub quick: bool,
    /// Where the report is written.
    pub out: PathBuf,
    /// Baseline report to compare against, if any.
    pub baseline: Option<PathBuf>,
    /// Allowed throughput drop vs the baseline, in percent.
    pub max_regress: u32,
}

impl Default for BenchArgs {
    fn default() -> BenchArgs {
        BenchArgs {
            quick: false,
            out: PathBuf::from("BENCH.json"),
            baseline: None,
            max_regress: 20,
        }
    }
}

/// Parses an LLC organization name.
#[must_use]
pub fn parse_llc(s: &str) -> Option<LlcKind> {
    Some(match s {
        "uncompressed" => LlcKind::Uncompressed,
        "two-tag" => LlcKind::TwoTag,
        "two-tag-ecm" => LlcKind::TwoTagEcm,
        "base-victim" => LlcKind::BaseVictim,
        "base-victim-ni" => LlcKind::BaseVictimNonInclusive,
        "base-victim-random-fit" => LlcKind::BaseVictimWith(VictimPolicyKind::RandomFit),
        "vsc" => LlcKind::Vsc,
        "dcc" => LlcKind::Dcc,
        _ => return None,
    })
}

/// Parses a replacement-policy name.
#[must_use]
pub fn parse_policy(s: &str) -> Option<PolicyKind> {
    Some(match s {
        "lru" => PolicyKind::Lru,
        "nru" => PolicyKind::Nru,
        "srrip" => PolicyKind::Srrip,
        "char" => PolicyKind::CharLite,
        "camp" => PolicyKind::CampLite,
        "random" => PolicyKind::Random,
        _ => return None,
    })
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// or unparsable numbers; the caller prints it alongside [`USAGE`].
pub fn parse(args: &[String]) -> Result<Command, String> {
    if args.first().map(String::as_str) == Some("sweep") {
        return parse_sweep(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        return parse_bench(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("report") {
        return parse_report(&args[1..]);
    }
    let mut run = RunArgs::default();
    let mut trace = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--trace" => trace = Some(value("--trace")?),
            "--list-traces" => return Ok(Command::ListTraces),
            "--llc" => {
                let v = value("--llc")?;
                run.llc = parse_llc(&v)
                    .ok_or_else(|| format!("unknown LLC kind '{v}' (valid: {LLC_KINDS})"))?;
            }
            "--policy" => {
                let v = value("--policy")?;
                run.policy = parse_policy(&v)
                    .ok_or_else(|| format!("unknown policy '{v}' (valid: {POLICY_NAMES})"))?;
            }
            "--llc-mb" => {
                run.llc_mb = value("--llc-mb")?
                    .parse()
                    .map_err(|e| format!("--llc-mb: {e}"))?;
            }
            "--ways" => {
                run.ways = value("--ways")?
                    .parse()
                    .map_err(|e| format!("--ways: {e}"))?;
            }
            "--warmup" => {
                run.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--insts" => {
                run.insts = value("--insts")?
                    .parse()
                    .map_err(|e| format!("--insts: {e}"))?;
            }
            "--compare" => run.compare = true,
            "--telemetry" => run.telemetry = Some(PathBuf::from(value("--telemetry")?)),
            "--epoch" => run.epoch = parse_epoch(&value("--epoch")?)?,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    match trace {
        Some(t) => {
            run.trace = t;
            Ok(Command::Run(run))
        }
        None => Err("--trace <name> or --list-traces required".into()),
    }
}

fn parse_sweep(args: &[String]) -> Result<Command, String> {
    let mut sweep = SweepArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--jobs" => {
                let v: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if v == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                sweep.jobs = Some(v);
            }
            "--resume" => sweep.resume = true,
            "--journal" => sweep.journal = PathBuf::from(value("--journal")?),
            "--telemetry-dir" => {
                sweep.telemetry_dir = Some(PathBuf::from(value("--telemetry-dir")?));
            }
            "--epoch" => sweep.epoch = parse_epoch(&value("--epoch")?)?,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown sweep flag '{other}' (try --help)")),
        }
    }
    Ok(Command::Sweep(sweep))
}

fn parse_epoch(v: &str) -> Result<u64, String> {
    let epoch: u64 = v.parse().map_err(|e| format!("--epoch: {e}"))?;
    if epoch == 0 {
        return Err("--epoch must be at least 1 instruction".into());
    }
    Ok(epoch)
}

fn parse_report(args: &[String]) -> Result<Command, String> {
    match args {
        [flag] if flag == "--help" || flag == "-h" => Ok(Command::Help),
        [path] => Ok(Command::Report(PathBuf::from(path))),
        [] => Err("report requires a telemetry file path".into()),
        _ => Err("report takes exactly one telemetry file path".into()),
    }
}

fn parse_bench(args: &[String]) -> Result<Command, String> {
    let mut bench = BenchArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--quick" => bench.quick = true,
            "--out" => bench.out = PathBuf::from(value("--out")?),
            "--baseline" => bench.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--max-regress" => {
                let v: u32 = value("--max-regress")?
                    .parse()
                    .map_err(|e| format!("--max-regress: {e}"))?;
                if v >= 100 {
                    return Err("--max-regress must be below 100".into());
                }
                bench.max_regress = v;
            }
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown bench flag '{other}' (try --help)")),
        }
    }
    Ok(Command::Bench(bench))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn run_with_defaults() {
        let cmd = parse(&argv("--trace specint.mcf.07")).expect("parse");
        let Command::Run(run) = cmd else {
            panic!("expected Run, got {cmd:?}")
        };
        assert_eq!(run.trace, "specint.mcf.07");
        assert_eq!(run.llc, LlcKind::BaseVictim);
        assert_eq!(run.policy, PolicyKind::Nru);
        assert_eq!((run.llc_mb, run.ways), (2, 16));
        assert!(!run.compare);
    }

    #[test]
    fn run_with_every_flag() {
        let cmd = parse(&argv(
            "--trace t --llc two-tag-ecm --policy srrip --llc-mb 4 --ways 8 \
             --warmup 5 --insts 7 --compare",
        ))
        .expect("parse");
        let Command::Run(run) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(run.llc, LlcKind::TwoTagEcm);
        assert_eq!(run.policy, PolicyKind::Srrip);
        assert_eq!((run.llc_mb, run.ways), (4, 8));
        assert_eq!((run.warmup, run.insts), (5, 7));
        assert!(run.compare);
    }

    #[test]
    fn list_and_help_short_circuit() {
        assert_eq!(parse(&argv("--list-traces")).unwrap(), Command::ListTraces);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("sweep --help")).unwrap(), Command::Help);
    }

    #[test]
    fn sweep_defaults() {
        let cmd = parse(&argv("sweep")).expect("parse");
        assert_eq!(cmd, Command::Sweep(SweepArgs::default()));
    }

    #[test]
    fn sweep_with_flags() {
        let cmd = parse(&argv(
            "sweep --jobs 4 --resume --journal /tmp/j --telemetry-dir /tmp/t --epoch 50000",
        ))
        .expect("parse");
        assert_eq!(
            cmd,
            Command::Sweep(SweepArgs {
                jobs: Some(4),
                resume: true,
                journal: PathBuf::from("/tmp/j"),
                telemetry_dir: Some(PathBuf::from("/tmp/t")),
                epoch: 50_000,
            })
        );
    }

    #[test]
    fn run_telemetry_flags() {
        let cmd = parse(&argv("--trace t --telemetry /tmp/t.jsonl --epoch 1000")).expect("parse");
        let Command::Run(run) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(run.telemetry, Some(PathBuf::from("/tmp/t.jsonl")));
        assert_eq!(run.epoch, 1_000);
        // The default epoch applies when only the destination is given.
        let cmd = parse(&argv("--trace t --telemetry out.jsonl")).expect("parse");
        let Command::Run(run) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(run.epoch, bv_sim::DEFAULT_EPOCH_INSTS);
        assert!(parse(&argv("--trace t --epoch 0")).is_err());
        assert!(parse(&argv("--trace t --epoch soon")).is_err());
        assert!(parse(&argv("sweep --epoch 0")).is_err());
    }

    #[test]
    fn report_takes_one_path() {
        let cmd = parse(&argv("report results/t.jsonl")).expect("parse");
        assert_eq!(cmd, Command::Report(PathBuf::from("results/t.jsonl")));
        assert_eq!(parse(&argv("report --help")).unwrap(), Command::Help);
        assert!(parse(&argv("report")).is_err());
        assert!(parse(&argv("report a b")).is_err());
    }

    #[test]
    fn unknown_llc_error_lists_valid_kinds() {
        let err = parse(&argv("--trace t --llc nonsense")).unwrap_err();
        assert!(err.contains("unknown LLC kind 'nonsense'"), "{err}");
        for kind in ["uncompressed", "base-victim-random-fit", "vsc", "dcc"] {
            assert!(err.contains(kind), "error lists '{kind}': {err}");
        }
    }

    #[test]
    fn unknown_policy_error_lists_valid_names() {
        let err = parse(&argv("--trace t --policy mru")).unwrap_err();
        assert!(err.contains("unknown policy 'mru'"), "{err}");
        for name in ["lru", "nru", "srrip", "char", "camp", "random"] {
            assert!(err.contains(name), "error lists '{name}': {err}");
        }
    }

    #[test]
    fn bench_defaults() {
        let cmd = parse(&argv("bench")).expect("parse");
        assert_eq!(
            cmd,
            Command::Bench(BenchArgs {
                quick: false,
                out: PathBuf::from("BENCH.json"),
                baseline: None,
                max_regress: 20,
            })
        );
    }

    #[test]
    fn bench_with_flags() {
        let cmd = parse(&argv(
            "bench --quick --out /tmp/b.json --baseline BENCH.json --max-regress 35",
        ))
        .expect("parse");
        assert_eq!(
            cmd,
            Command::Bench(BenchArgs {
                quick: true,
                out: PathBuf::from("/tmp/b.json"),
                baseline: Some(PathBuf::from("BENCH.json")),
                max_regress: 35,
            })
        );
        assert_eq!(parse(&argv("bench --help")).unwrap(), Command::Help);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("--trace")).is_err());
        assert!(parse(&argv("--trace t --llc nonsense")).is_err());
        assert!(parse(&argv("--trace t --ways wide")).is_err());
        assert!(parse(&argv("sweep --jobs 0")).is_err());
        assert!(parse(&argv("sweep --jobs many")).is_err());
        assert!(parse(&argv("sweep --journal")).is_err());
        assert!(parse(&argv("sweep --trace t")).is_err());
        assert!(parse(&argv("bench --out")).is_err());
        assert!(parse(&argv("bench --max-regress 150")).is_err());
        assert!(parse(&argv("bench --max-regress some")).is_err());
        assert!(parse(&argv("bench --trace t")).is_err());
    }
}
