//! Quickstart: drive a Base-Victim compressed LLC directly and watch the
//! opportunistic victim cache at work.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use base_victim::{
    BaseVictimLlc, Bdi, CacheGeometry, CacheLine, Compressor, LineAddr, LlcOrganization, NoInner,
    PolicyKind, VictimPolicyKind,
};

fn main() {
    // A small 4-set, 4-way cache so evictions happen quickly. Real
    // configurations (2 MB, 16-way) work identically.
    let geom = CacheGeometry::new(1024, 4, 64);
    let mut llc = BaseVictimLlc::new(geom, PolicyKind::Lru, VictimPolicyKind::EcmLargestBase);
    let mut inner = NoInner; // no L1/L2 in this standalone example
    let bdi = Bdi::new();

    // Pointer-heavy data compresses to 5 of 16 segments under BDI.
    let pointers = CacheLine::from_u64_words(&core::array::from_fn(|i| {
        0x7fff_8000_0000u64 + i as u64 * 8
    }));
    println!(
        "pointer-like line compresses to {} (of 16 segments)",
        bdi.compressed_size(&pointers)
    );

    // Fill one set past its 4-way capacity.
    let set0 = |k: u64| LineAddr::new(k * 4); // all map to set 0
    for k in 0..4 {
        llc.fill(set0(k), pointers, &mut inner);
    }
    println!("\nfilled 4 lines into a 4-way set; all resident:");
    for k in 0..4 {
        println!("  line {k}: {}", llc.contains(set0(k)));
    }

    // A 5th fill would evict the LRU line in an uncompressed cache. Here
    // it is opportunistically retained in the Victim cache instead.
    llc.fill(set0(4), pointers, &mut inner);
    println!("\nafter a 5th fill:");
    println!("  victim-cache lines: {:?}", llc.victim_lines());
    println!("  line 0 still resident: {}", llc.contains(set0(0)));

    // Reading the displaced line is a Victim-cache hit: it is promoted
    // back into the Baseline cache, displacing the current LRU line into
    // the Victim cache in turn.
    let outcome = llc.read(set0(0), &mut inner);
    println!("\nread of displaced line: {:?}", outcome.kind);
    println!("  baseline now: {:?}", {
        let mut v = llc.baseline_lines();
        v.sort();
        v
    });
    println!("  victim now:   {:?}", llc.victim_lines());

    let stats = llc.stats();
    println!(
        "\nstats: {} base hits, {} victim hits, {} misses, {} memory writes",
        stats.base_hits, stats.victim_hits, stats.read_misses, stats.memory_writes
    );
    println!(
        "victim cache saved {} memory read(s) an uncompressed cache would have made",
        stats.victim_hits
    );

    // The invariants the architecture guarantees, checked explicitly:
    llc.assert_invariants();
    println!("\ninvariants hold: victim lines clean, every pair fits in 64 B");
}
