//! Multi-program example: four traces contending for one shared LLC, the
//! Figure 13 experiment in miniature.
//!
//! ```bash
//! cargo run --release --example multiprogram_mix
//! ```

use base_victim::trace::mix::paper_mixes;
use base_victim::{LlcKind, MulticoreSystem, SimConfig, TraceRegistry};

fn main() {
    let registry = TraceRegistry::paper_default();
    let mixes = paper_mixes(&registry);
    let mix = &mixes[0];
    let members = mix.resolve(&registry);
    println!("mix {}:", mix.name);
    for m in &members {
        println!(
            "  {} ({}, {})",
            m.name,
            m.category,
            if m.compression_friendly {
                "compressible"
            } else {
                "low compressibility"
            }
        );
    }

    let workloads: Vec<_> = members.iter().map(|t| t.workload.clone()).collect();
    let insts = 600_000;

    let base = MulticoreSystem::new(SimConfig::multi_program(LlcKind::Uncompressed))
        .run(&workloads, insts);
    let bv =
        MulticoreSystem::new(SimConfig::multi_program(LlcKind::BaseVictim)).run(&workloads, insts);
    let big = MulticoreSystem::new(
        SimConfig::multi_program(LlcKind::Uncompressed).with_llc_size(6 * 1024 * 1024, 24),
    )
    .run(&workloads, insts);

    println!("\nper-thread IPC (4 MB uncompressed baseline -> Base-Victim):");
    for (i, (b, n)) in base.thread_ipc.iter().zip(bv.thread_ipc.iter()).enumerate() {
        println!(
            "  thread {i}: {b:.3} -> {n:.3} ({:+.1}%)",
            (n / b - 1.0) * 100.0
        );
    }

    println!(
        "\nweighted speedup: Base-Victim 4 MB {:+.1}%, 6 MB uncompressed {:+.1}%",
        (bv.weighted_speedup(&base) - 1.0) * 100.0,
        (big.weighted_speedup(&base) - 1.0) * 100.0,
    );
    println!(
        "shared-LLC victim hits: {} (hit rate {:.1}% vs baseline {:.1}%)",
        bv.llc.victim_hits,
        bv.llc.hit_rate() * 100.0,
        base.llc.hit_rate() * 100.0,
    );
    assert!(
        bv.llc.hit_rate() >= base.llc.hit_rate(),
        "the hit-rate guarantee holds for shared caches too"
    );
    println!("hit-rate guarantee held under contention ✓");
}
