//! Compression explorer: compare BDI, FPC, and C-Pack on the value
//! patterns real programs produce, and see why the paper picks BDI.
//!
//! ```bash
//! cargo run --example compression_explorer
//! ```

use base_victim::trace::DataProfile;
use base_victim::{Bdi, CPack, CacheLine, CompressionStats, Compressor, Fpc};

fn main() {
    let algorithms: Vec<Box<dyn Compressor>> = vec![
        Box::new(Bdi::new()),
        Box::new(Fpc::new()),
        Box::new(CPack::new()),
    ];

    println!("mean compressed size (% of 64 B) by data pattern, 1000 lines each\n");
    print!("{:12}", "pattern");
    for a in &algorithms {
        print!("{:>8}", a.name());
    }
    println!();

    for profile in DataProfile::ALL {
        print!("{:12}", format!("{profile:?}"));
        for a in &algorithms {
            let mut stats = CompressionStats::new();
            for i in 0..1000u64 {
                let line = profile.synthesize(i * 97, 0);
                stats.record(a.compressed_size(&line));
            }
            print!("{:>7.0}%", stats.mean_ratio() * 100.0);
        }
        println!();
    }

    // Show a concrete line end to end.
    println!("\n--- one pointer-like line under BDI ---");
    let line = CacheLine::from_u64_words(&core::array::from_fn(|i| {
        0x5555_0000_1000u64 + i as u64 * 16
    }));
    let bdi = Bdi::new();
    let compressed = bdi.compress(&line);
    println!("original : {line:?}");
    println!(
        "encoding : {:?}, payload {} bytes -> {} segments",
        bdi.select_encoding(&line),
        compressed.payload().len() - 1, // first byte is the encoding tag
        compressed.segments()
    );
    let restored = bdi.decompress(&compressed);
    assert_eq!(restored, line);
    println!("roundtrip: lossless ✓");

    // Why BDI for an LLC: latency. Zero and full lines skip the codec.
    println!("\n--- decompression latency model (base 2 cycles) ---");
    for (what, l) in [
        ("zero line", CacheLine::zeroed()),
        ("pointer line", line),
        (
            "random line",
            CacheLine::from_u64_words(&core::array::from_fn(|i| {
                (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            })),
        ),
    ] {
        let size = bdi.compressed_size(&l);
        println!(
            "{what:13}: {size} -> {} extra cycles",
            bdi.decompression_latency(size, 2)
        );
    }
}
