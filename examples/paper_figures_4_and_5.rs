//! A step-by-step walkthrough of the paper's worked examples: the
//! compressed-LLC miss of Figure 4 and the Victim-cache read hit of
//! Figure 5, on the same 4-way LRU toy cache the paper draws.
//!
//! ```bash
//! cargo run -p base-victim --example paper_figures_4_and_5
//! ```

use base_victim::{
    BaseVictimLlc, Bdi, CacheGeometry, CacheLine, Compressor, LineAddr, LlcOrganization, NoInner,
    PolicyKind, VictimPolicyKind,
};

/// Builds a line whose BDI size is `segments` (supported: 2, 5, 6, 11).
fn line(segments: u8) -> CacheLine {
    let l = match segments {
        2 => CacheLine::from_u64_words(&[0xfeed_f00d_dead_0000; 8]),
        5 => CacheLine::from_u64_words(&core::array::from_fn(|i| 0x7f00_0000_0000 + i as u64)),
        6 => CacheLine::from_u32_words(&core::array::from_fn(|i| {
            0x0100_0000 + (i as u32 % 5) * 8 + (i as u32 & 1)
        })),
        11 => CacheLine::from_u64_words(&core::array::from_fn(|i| {
            0x7f00_0000_0000 + i as u64 * 1_000_000
        })),
        _ => panic!("unsupported size"),
    };
    assert_eq!(Bdi::new().compressed_size(&l).get(), segments);
    l
}

fn show(llc: &BaseVictimLlc, names: &dyn Fn(LineAddr) -> &'static str) {
    let mut base: Vec<&str> = llc.baseline_lines().iter().map(|&a| names(a)).collect();
    let mut vict: Vec<&str> = llc.victim_lines().iter().map(|&a| names(a)).collect();
    base.sort_unstable();
    vict.sort_unstable();
    println!("    Baseline (B) set: {base:?}");
    println!("    Victim   (V) set: {vict:?}");
}

fn main() {
    // One 4-way set, LRU baseline, ECM-inspired victim policy — the
    // paper's toy configuration (the paper draws 8-byte segments; this
    // implementation uses the evaluation's 4-byte segments, so "6 of 8"
    // in the figure corresponds to ~11 of 16 here).
    let geom = CacheGeometry::new(256, 4, 64);
    let mut llc = BaseVictimLlc::new(geom, PolicyKind::Lru, VictimPolicyKind::EcmLargestBase);
    let mut inner = NoInner;

    // Addresses A..F + Z, all mapping to the single set.
    let addr = |k: u64| LineAddr::new(k);
    let names = |a: LineAddr| match a.get() {
        0 => "A",
        1 => "B",
        2 => "C",
        3 => "D",
        4 => "E",
        5 => "F",
        6 => "X",
        9 => "Z",
        _ => "?",
    };

    println!("=== Setup: build the Figure 4 'before' state ===");
    // Base lines A, B, C, D fill the four ways (sizes chosen so victims
    // can pair with some bases but not others).
    for (k, size) in [(0, 11), (1, 5), (2, 11), (3, 5)] {
        llc.fill(addr(k), line(size), &mut inner);
    }
    // Park E, F, X in the victim cache by displacing them through the
    // baseline: fill each, then refill the original so it displaces.
    for (k, size) in [(4, 5), (5, 2), (6, 2)] {
        llc.fill(addr(k), line(size), &mut inner);
        // The LRU baseline line was displaced into the victim cache;
        // promote it back by reading it, which parks the new line.
        let displaced = llc.victim_lines().first().copied().expect("a line parked");
        let _ = llc.read(displaced, &mut inner);
        let _ = k;
        let _ = size;
    }
    show(&llc, &names);
    llc.assert_invariants();

    println!("\n=== Figure 4: a miss to Z (needs 11 of 16 segments) ===");
    println!("  1. LRU victim chosen from the Baseline cache");
    println!("  2. (if modified) victim written back — Victim-cache lines stay clean");
    println!("  3. partner that no longer fits is silently evicted");
    println!("  4. Z installed; the displaced base line parks in any fitting way");
    let before_writes = llc.stats().memory_writes;
    let out = llc.fill(addr(9), line(11), &mut inner);
    show(&llc, &names);
    println!(
        "    effects: {} writeback(s), {} partner eviction(s), {} migration(s)",
        llc.stats().memory_writes - before_writes,
        out.effects.partner_evictions,
        out.effects.migrations
    );
    assert!(
        llc.stats().memory_writes - before_writes <= 1,
        "at most one writeback per fill — the paper's guarantee"
    );
    llc.assert_invariants();

    println!("\n=== Figure 5: a read that hits the Victim cache ===");
    let victim_line = llc
        .victim_lines()
        .first()
        .copied()
        .expect("victim cache is not empty");
    println!("  read of '{}' hits the Victim cache:", names(victim_line));
    println!("  1. the LRU baseline line is displaced (written back if dirty)");
    println!("  2. the hit line is promoted into the Baseline cache");
    println!("  3. the displaced line parks opportunistically in the Victim cache");
    let out = llc.read(victim_line, &mut inner);
    println!("    outcome: {:?}", out.kind);
    show(&llc, &names);
    assert!(
        out.is_hit(),
        "victim hits are hits — the cache kept the line"
    );
    assert!(
        llc.baseline_lines().contains(&victim_line),
        "promoted into the Baseline cache"
    );
    llc.assert_invariants();

    println!("\nThe Baseline cache went through exactly the states an uncompressed");
    println!("LRU cache would have — that is the architecture's hit-rate guarantee.");
}
