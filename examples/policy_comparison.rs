//! End-to-end comparison of the LLC organizations on one cache-sensitive
//! workload: the experiment of Figures 6-8 in miniature.
//!
//! ```bash
//! cargo run --release --example policy_comparison
//! ```

use base_victim::sim::report::geomean;
use base_victim::{LlcKind, SimConfig, System, TraceRegistry};

fn main() {
    let registry = TraceRegistry::paper_default();
    // Three compression-friendly, cache-sensitive traces from different
    // categories.
    let names = ["specint.xalancbmk.00", "specfp.milc.01", "client.octane.00"];
    let warmup = 1_000_000;
    let insts = 1_000_000;

    println!(
        "{:22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "trace", "base-IPC", "two-tag", "ecm", "base-vict", "3MB"
    );

    let mut ratios: Vec<(f64, f64, f64, f64)> = Vec::new();
    for name in names {
        let t = registry.get(name).expect("known trace");
        let base = System::new(SimConfig::single_thread(LlcKind::Uncompressed)).run_with_warmup(
            &t.workload,
            warmup,
            insts,
        );
        let tt = System::new(SimConfig::single_thread(LlcKind::TwoTag)).run_with_warmup(
            &t.workload,
            warmup,
            insts,
        );
        let ecm = System::new(SimConfig::single_thread(LlcKind::TwoTagEcm)).run_with_warmup(
            &t.workload,
            warmup,
            insts,
        );
        let bv = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_with_warmup(
            &t.workload,
            warmup,
            insts,
        );
        let big = System::new(
            SimConfig::single_thread(LlcKind::Uncompressed).with_llc_size(3 * 1024 * 1024, 24),
        )
        .run_with_warmup(&t.workload, warmup, insts);

        println!(
            "{:22} {:>10.3} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            name,
            base.ipc(),
            (tt.ipc_ratio(&base) - 1.0) * 100.0,
            (ecm.ipc_ratio(&base) - 1.0) * 100.0,
            (bv.ipc_ratio(&base) - 1.0) * 100.0,
            (big.ipc_ratio(&base) - 1.0) * 100.0,
        );
        ratios.push((
            tt.ipc_ratio(&base),
            ecm.ipc_ratio(&base),
            bv.ipc_ratio(&base),
            big.ipc_ratio(&base),
        ));

        // The architectural guarantee, verified per trace.
        assert!(
            bv.dram.reads <= base.dram.reads,
            "{name}: Base-Victim must never read more from memory"
        );
    }

    println!(
        "\ngeomean gains: two-tag {:+.1}%, ecm {:+.1}%, base-victim {:+.1}%, 3MB {:+.1}%",
        (geomean(ratios.iter().map(|r| r.0)) - 1.0) * 100.0,
        (geomean(ratios.iter().map(|r| r.1)) - 1.0) * 100.0,
        (geomean(ratios.iter().map(|r| r.2)) - 1.0) * 100.0,
        (geomean(ratios.iter().map(|r| r.3)) - 1.0) * 100.0,
    );
    println!("\nBase-Victim read guarantee held on every trace ✓");
    println!("(run the `experiments` binary in crates/bench for the full 60-trace sweep)");
}
