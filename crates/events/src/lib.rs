//! # bv-events — event-level cache tracing
//!
//! One level below `bv-telemetry`: where telemetry aggregates per-epoch
//! deltas, this crate records *individual* cache decisions — each fill,
//! hit, miss, victim parking, silent drop, writeback, and eviction — so
//! the paper's event-level claims (the Baseline mirror guarantee, the
//! two-tag replacement-pollution negative result) can be audited one
//! decision at a time.
//!
//! The design mirrors `bv_sim`'s `Instrument` trick: every emission site
//! is generic over an [`EventSink`] whose `const ENABLED: bool` lets
//! monomorphization delete the disabled path entirely. The default sink,
//! [`NoEventSink`], compiles to nothing, so the untraced simulator stays
//! bit- and cycle-identical to a build without this crate.
//!
//! Capture is bounded: [`RingSink`] keeps the most recent `capacity`
//! events in a pre-allocated ring (oldest dropped first, never a
//! reallocation on the hot path) and counts what it dropped.
//! [`EventFilter`] narrows a capture or a reading pass by event kind,
//! set range, or sequence window.
//!
//! The crate is dependency-free; the `bvsim-events-v1` JSONL
//! reader/writer lives in `bv-telemetry` (which owns the JSON code).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Why a clean line left the cache without a writeback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropCause {
    /// A victim-cache occupant was overwritten by a newly parked line.
    Displaced,
    /// A victim line no longer fit beside its base partner (the base
    /// grew, or pairing was re-enforced after a writeback).
    PairOverflow,
}

impl DropCause {
    /// Stable lower-case name used by the JSONL schema and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DropCause::Displaced => "displaced",
            DropCause::PairOverflow => "pair-overflow",
        }
    }

    /// Parses [`DropCause::name`] back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<DropCause> {
        Some(match s {
            "displaced" => DropCause::Displaced,
            "pair-overflow" => DropCause::PairOverflow,
            _ => return None,
        })
    }
}

/// Why a line was evicted from the tag array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictCause {
    /// The replacement policy chose it to make room for a fill.
    Replacement,
    /// An explicit invalidation (inclusion enforcement, back-probe).
    Invalidation,
    /// Compressed-size pressure: the line was removed not because the
    /// policy aged it out but because segments or a partner slot were
    /// needed (two-tag partner eviction, VSC compaction, DCC super-block
    /// displacement).
    SizePressure,
}

impl EvictCause {
    /// Stable lower-case name used by the JSONL schema and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvictCause::Replacement => "replacement",
            EvictCause::Invalidation => "invalidation",
            EvictCause::SizePressure => "size-pressure",
        }
    }

    /// Parses [`EvictCause::name`] back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<EvictCause> {
        Some(match s {
            "replacement" => EvictCause::Replacement,
            "invalidation" => EvictCause::Invalidation,
            "size-pressure" => EvictCause::SizePressure,
            _ => return None,
        })
    }
}

/// What happened. Sizes are compressed sizes in 4-byte segments
/// (`1..=16`); tags are engine tags, so an address is reconstructed with
/// the owning organization's geometry (for DCC the tag names a
/// super-block, not a line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A demand fill installed a line.
    Fill {
        /// Engine tag of the installed line.
        tag: u64,
        /// Compressed size in segments.
        size: u8,
    },
    /// A prefetch fill installed a line.
    PrefetchFill {
        /// Engine tag of the installed line.
        tag: u64,
        /// Compressed size in segments.
        size: u8,
    },
    /// A demand read hit the baseline (tag-0) array.
    DemandHit {
        /// Engine tag of the hit line.
        tag: u64,
    },
    /// A demand read missed the whole organization.
    DemandMiss,
    /// A demand read was rescued by the victim cache; the line is
    /// promoted back into the baseline array.
    VictimHit {
        /// Engine tag of the rescued line.
        tag: u64,
        /// Compressed size in segments.
        size: u8,
    },
    /// A displaced baseline line was parked in the victim cache.
    VictimInsert {
        /// Engine tag of the parked line.
        tag: u64,
        /// Compressed size in segments.
        size: u8,
    },
    /// A displaced baseline line found no victim way with room.
    VictimInsertFail {
        /// Engine tag of the line that failed to park.
        tag: u64,
        /// Compressed size in segments.
        size: u8,
    },
    /// A clean line was dropped without a writeback.
    SilentDrop {
        /// Engine tag of the dropped line.
        tag: u64,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A dirty line was written toward memory.
    Writeback {
        /// Engine tag of the written line.
        tag: u64,
        /// Compressed size in segments.
        size: u8,
    },
    /// A line left the tag array.
    Eviction {
        /// Engine tag of the evicted line.
        tag: u64,
        /// Why it left.
        cause: EvictCause,
    },
    /// A compression outcome: which encoder won and at what size.
    Compression {
        /// Encoder index in the organization's encoder table.
        encoder: u8,
        /// Compressed size in segments.
        size: u8,
    },
}

impl EventKind {
    /// Every kind name, in bit order, for CLI help and filters.
    pub const NAMES: [&'static str; 11] = [
        "fill",
        "prefetch-fill",
        "hit",
        "miss",
        "victim-hit",
        "victim-insert",
        "victim-insert-fail",
        "silent-drop",
        "writeback",
        "eviction",
        "compression",
    ];

    /// Stable lower-case name used by the JSONL schema and the CLI.
    #[must_use]
    pub fn name(&self) -> &'static str {
        Self::NAMES[self.bit() as usize]
    }

    /// The kind's bit position in an [`EventFilter`] mask.
    #[must_use]
    pub fn bit(&self) -> u32 {
        match self {
            EventKind::Fill { .. } => 0,
            EventKind::PrefetchFill { .. } => 1,
            EventKind::DemandHit { .. } => 2,
            EventKind::DemandMiss => 3,
            EventKind::VictimHit { .. } => 4,
            EventKind::VictimInsert { .. } => 5,
            EventKind::VictimInsertFail { .. } => 6,
            EventKind::SilentDrop { .. } => 7,
            EventKind::Writeback { .. } => 8,
            EventKind::Eviction { .. } => 9,
            EventKind::Compression { .. } => 10,
        }
    }

    /// The filter-mask bit for a kind name, if the name is known.
    #[must_use]
    pub fn bit_by_name(name: &str) -> Option<u32> {
        Self::NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| i as u32)
    }

    /// The engine tag carried by this event, if it names a line.
    #[must_use]
    pub fn tag(&self) -> Option<u64> {
        match *self {
            EventKind::Fill { tag, .. }
            | EventKind::PrefetchFill { tag, .. }
            | EventKind::DemandHit { tag }
            | EventKind::VictimHit { tag, .. }
            | EventKind::VictimInsert { tag, .. }
            | EventKind::VictimInsertFail { tag, .. }
            | EventKind::SilentDrop { tag, .. }
            | EventKind::Writeback { tag, .. }
            | EventKind::Eviction { tag, .. } => Some(tag),
            EventKind::DemandMiss | EventKind::Compression { .. } => None,
        }
    }
}

/// One cache decision: where (`set`, `way`), when (`seq`, stamped by the
/// capturing sink in emission order), and what ([`EventKind`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheEvent {
    /// Emission order stamp, assigned by the sink (0 until captured).
    pub seq: u64,
    /// Set index.
    pub set: u32,
    /// Way index, or [`CacheEvent::NO_WAY`] for set-wide events
    /// (demand misses, failed victim inserts).
    pub way: u8,
    /// What happened.
    pub kind: EventKind,
}

impl CacheEvent {
    /// Sentinel way for events not tied to one way.
    pub const NO_WAY: u8 = u8::MAX;

    /// An unstamped event at `(set, way)`; the sink assigns `seq`.
    #[must_use]
    pub fn new(set: usize, way: usize, kind: EventKind) -> CacheEvent {
        CacheEvent {
            seq: 0,
            set: set as u32,
            way: way.min(usize::from(Self::NO_WAY)) as u8,
            kind,
        }
    }

    /// A set-wide event with no meaningful way.
    #[must_use]
    pub fn set_wide(set: usize, kind: EventKind) -> CacheEvent {
        CacheEvent {
            seq: 0,
            set: set as u32,
            way: Self::NO_WAY,
            kind,
        }
    }
}

/// Where emitted events go.
///
/// The trait mirrors `bv_sim`'s `Instrument`: emission sites guard on
/// [`EventSink::ENABLED`], a compile-time constant, so a disabled sink
/// costs nothing after monomorphization — not even the argument
/// construction, because the `if` is dead code.
pub trait EventSink {
    /// `false` only for [`NoEventSink`]; lets organizations skip event
    /// construction entirely in the untraced build.
    const ENABLED: bool = true;

    /// Accepts one event. Sinks that keep events stamp `seq` here.
    fn emit(&mut self, ev: CacheEvent);

    /// Removes and returns every retained event, oldest first. Sinks
    /// that do not retain events return nothing.
    fn drain(&mut self) -> Vec<CacheEvent> {
        Vec::new()
    }

    /// How many retained events were overwritten by newer ones (bounded
    /// sinks); 0 for sinks that never drop.
    fn dropped(&self) -> u64 {
        0
    }
}

/// The do-nothing sink the untraced build monomorphizes over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoEventSink;

impl EventSink for NoEventSink {
    const ENABLED: bool = false;

    #[inline]
    fn emit(&mut self, _ev: CacheEvent) {}
}

/// A kind / set-range / sequence-window filter.
///
/// The default filter matches everything; each constraint narrows it.
/// Filters are applied either at capture time ([`RingSink::with_filter`])
/// or when reading a capture back (`bvsim trace`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventFilter {
    /// Bitmask over [`EventKind::bit`]; a set bit admits the kind.
    pub kinds: u32,
    /// Half-open admitted set range `[lo, hi)`, if constrained.
    pub sets: Option<(u32, u32)>,
    /// Half-open admitted sequence window `[lo, hi)`, if constrained.
    /// Sequence numbers count emissions, so a window selects a phase of
    /// the run the way telemetry's epoch windows select wall-phase.
    pub seq_window: Option<(u64, u64)>,
}

impl Default for EventFilter {
    fn default() -> EventFilter {
        EventFilter {
            kinds: u32::MAX,
            sets: None,
            seq_window: None,
        }
    }
}

impl EventFilter {
    /// The match-everything filter.
    #[must_use]
    pub fn all() -> EventFilter {
        EventFilter::default()
    }

    /// Restricts to a comma-separated list of kind names
    /// (see [`EventKind::NAMES`]).
    ///
    /// # Errors
    ///
    /// Returns the offending name if it is not a known kind.
    pub fn with_kind_names(mut self, list: &str) -> Result<EventFilter, String> {
        let mut mask = 0u32;
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let bit = EventKind::bit_by_name(name)
                .ok_or_else(|| format!("unknown event kind '{name}'"))?;
            mask |= 1 << bit;
        }
        self.kinds = if mask == 0 { u32::MAX } else { mask };
        Ok(self)
    }

    /// Restricts to sets in `[lo, hi)`.
    #[must_use]
    pub fn with_sets(mut self, lo: u32, hi: u32) -> EventFilter {
        self.sets = Some((lo, hi));
        self
    }

    /// Restricts to sequence numbers in `[lo, hi)`.
    #[must_use]
    pub fn with_seq_window(mut self, lo: u64, hi: u64) -> EventFilter {
        self.seq_window = Some((lo, hi));
        self
    }

    /// Whether `ev` passes every constraint.
    #[must_use]
    pub fn matches(&self, ev: &CacheEvent) -> bool {
        if self.kinds & (1 << ev.kind.bit()) == 0 {
            return false;
        }
        if let Some((lo, hi)) = self.sets {
            if ev.set < lo || ev.set >= hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.seq_window {
            if ev.seq < lo || ev.seq >= hi {
                return false;
            }
        }
        true
    }
}

/// A bounded capture sink: a pre-allocated ring of the most recent
/// `capacity` events.
///
/// Every emission is stamped with a monotone sequence number (filtered
/// or not, so `seq` stays a global emission index). At capacity the
/// oldest retained event is overwritten — never a reallocation — and
/// [`RingSink::dropped`] counts the overwritten ones.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: Vec<CacheEvent>,
    capacity: usize,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    next_seq: u64,
    dropped: u64,
    filter: EventFilter,
}

impl RingSink {
    /// An empty ring retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring capacity must be at least 1");
        RingSink {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            next_seq: 0,
            dropped: 0,
            filter: EventFilter::all(),
        }
    }

    /// Applies `filter` at capture time: non-matching events are
    /// stamped (they advance `seq`) but not retained or counted dropped.
    #[must_use]
    pub fn with_filter(mut self, filter: EventFilter) -> RingSink {
        self.filter = filter;
        self
    }

    /// The configured retention bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained event count (at most [`RingSink::capacity`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many retained events were overwritten by newer ones.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total emissions seen (matching the next `seq` to be stamped).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, mut ev: CacheEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        if !self.filter.matches(&ev) {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            // Full: overwrite the oldest in place. `buf` never grows
            // past the initial allocation.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> Vec<CacheEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        out
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(tag: u64) -> EventKind {
        EventKind::Fill { tag, size: 4 }
    }

    #[test]
    fn no_sink_is_disabled_and_silent() {
        const { assert!(!NoEventSink::ENABLED) };
        let mut s = NoEventSink;
        s.emit(CacheEvent::new(0, 0, fill(1)));
        assert!(s.drain().is_empty());
    }

    #[test]
    fn ring_stamps_monotone_sequence_numbers() {
        let mut s = RingSink::new(8);
        for i in 0..5 {
            s.emit(CacheEvent::new(i, 0, fill(i as u64)));
        }
        let events = s.drain();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.emitted(), 5);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_first_at_capacity_without_reallocation() {
        let mut s = RingSink::new(4);
        let cap_before = s.buf.capacity();
        for i in 0..10u64 {
            s.emit(CacheEvent::new(0, 0, fill(i)));
        }
        // Still the original allocation: the ring never grew.
        assert_eq!(s.buf.capacity(), cap_before);
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped(), 6);
        // Oldest-first semantics: the survivors are the newest four, in
        // emission order.
        let seqs: Vec<u64> = s.drain().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert!(s.is_empty());
    }

    #[test]
    fn drain_resets_but_seq_keeps_counting() {
        let mut s = RingSink::new(4);
        s.emit(CacheEvent::new(0, 0, fill(0)));
        assert_eq!(s.drain().len(), 1);
        s.emit(CacheEvent::new(0, 0, fill(1)));
        let events = s.drain();
        assert_eq!(events[0].seq, 1);
    }

    #[test]
    fn filter_narrows_by_kind_set_and_window() {
        let f = EventFilter::all()
            .with_kind_names("fill, eviction")
            .unwrap()
            .with_sets(2, 4)
            .with_seq_window(1, 10);
        let mut ok = CacheEvent::new(2, 0, fill(7));
        ok.seq = 3;
        assert!(f.matches(&ok));
        let mut wrong_kind = CacheEvent::new(2, 0, EventKind::DemandMiss);
        wrong_kind.seq = 3;
        assert!(!f.matches(&wrong_kind));
        let mut wrong_set = ok;
        wrong_set.set = 4;
        assert!(!f.matches(&wrong_set));
        let mut wrong_seq = ok;
        wrong_seq.seq = 10;
        assert!(!f.matches(&wrong_seq));
        assert!(EventFilter::all().with_kind_names("bogus").is_err());
    }

    #[test]
    fn capture_filter_skips_without_counting_drops() {
        let f = EventFilter::all().with_kind_names("eviction").unwrap();
        let mut s = RingSink::new(4).with_filter(f);
        for i in 0..6u64 {
            s.emit(CacheEvent::new(0, 0, fill(i)));
        }
        s.emit(CacheEvent::new(
            0,
            1,
            EventKind::Eviction {
                tag: 9,
                cause: EvictCause::Replacement,
            },
        ));
        assert_eq!(s.len(), 1);
        assert_eq!(s.dropped(), 0);
        let events = s.drain();
        // seq is a global emission index, not a retained-event index.
        assert_eq!(events[0].seq, 6);
    }

    #[test]
    fn kind_names_round_trip() {
        for (i, name) in EventKind::NAMES.iter().enumerate() {
            assert_eq!(EventKind::bit_by_name(name), Some(i as u32));
        }
        assert_eq!(fill(0).name(), "fill");
        assert_eq!(EventKind::DemandMiss.name(), "miss");
        assert_eq!(
            DropCause::from_name(DropCause::PairOverflow.name()),
            Some(DropCause::PairOverflow)
        );
        assert_eq!(
            EvictCause::from_name(EvictCause::SizePressure.name()),
            Some(EvictCause::SizePressure)
        );
    }
}
