//! Differential tests: the word-wise fast-path kernels must be
//! observationally identical to the frozen byte-at-a-time kernels in
//! `bv_compress::reference`.
//!
//! For every generated line we require, per algorithm:
//! - identical compressed payload bytes and segment count,
//! - identical `compressed_size` (the size-only fast path),
//! - lossless round-trip through **both** implementations,
//! - cross-decompression: the optimized decompressor reads reference
//!   payloads and vice versa (possible because both report the same
//!   algorithm name).
//!
//! Lines come from 10k SplitMix64 draws over a mix of data shapes plus a
//! fixed adversarial corpus (all-zero, ±1 deltas at each element width,
//! sign-boundary values, incompressible noise).

use bv_compress::reference::{RefBdi, RefCPack, RefFpc};
use bv_compress::{Bdi, CPack, CacheLine, Compressor, Fpc};
use bv_testkit::Rng;

/// Asserts optimized and reference kernels agree on one line.
fn assert_equivalent(opt: &dyn Compressor, reference: &dyn Compressor, line: &CacheLine) {
    let co = opt.compress(line);
    let cr = reference.compress(line);
    assert_eq!(
        co.payload(),
        cr.payload(),
        "{}: payload bytes differ on {line:?}",
        opt.name()
    );
    assert_eq!(
        co.segments(),
        cr.segments(),
        "{}: segment counts differ on {line:?}",
        opt.name()
    );
    assert_eq!(
        opt.compressed_size(line),
        reference.compressed_size(line),
        "{}: size-only pass differs on {line:?}",
        opt.name()
    );
    assert_eq!(
        co.segments(),
        opt.compressed_size(line),
        "{}: compress and compressed_size disagree on {line:?}",
        opt.name()
    );
    // Round-trips, including cross-decompression of each other's payloads.
    assert_eq!(&opt.decompress(&co), line, "{} roundtrip", opt.name());
    assert_eq!(
        &reference.decompress(&cr),
        line,
        "{} reference roundtrip",
        opt.name()
    );
    assert_eq!(
        &opt.decompress(&cr),
        line,
        "{}: optimized kernel must read reference payloads",
        opt.name()
    );
    assert_eq!(
        &reference.decompress(&co),
        line,
        "{}: reference kernel must read optimized payloads",
        opt.name()
    );
}

fn assert_all_equivalent(line: &CacheLine) {
    assert_equivalent(&Bdi::new(), &RefBdi::new(), line);
    assert_equivalent(&Fpc::new(), &RefFpc::new(), line);
    assert_equivalent(&CPack::new(), &RefCPack::new(), line);
}

/// Draws one line from a family of data shapes chosen to exercise every
/// encoding path: raw noise, small deltas at each element width,
/// zero-dominated lines, repeated values, and byte-sparse words.
fn random_line(rng: &mut Rng) -> CacheLine {
    match rng.below(8) {
        // Pure noise: exercises the incompressible fallbacks.
        0 => random_bytes(rng),
        // u64 base + small deltas (B8D1/B8D2/B8D4 territory).
        1 => {
            let base = rng.next_u64();
            let spread = *rng.choose(&[1u64 << 6, 1 << 14, 1 << 30, 1 << 62]);
            let words: [u64; 8] = core::array::from_fn(|_| {
                base.wrapping_add(rng.below(spread))
                    .wrapping_sub(spread / 2)
            });
            CacheLine::from_u64_words(&words)
        }
        // u32 base + small deltas (B4D1/B4D2, FPC halfword patterns).
        2 => {
            let base = rng.next_u32();
            let spread = *rng.choose(&[1u32 << 6, 1 << 14, 1 << 30]);
            let words: [u32; 16] = core::array::from_fn(|_| {
                base.wrapping_add((rng.below(u64::from(spread))) as u32)
                    .wrapping_sub(spread / 2)
            });
            CacheLine::from_u32_words(&words)
        }
        // Small signed ints (FPC sign patterns, BDI immediate-zero base).
        3 => {
            let words: [u32; 16] = core::array::from_fn(|_| rng.range_i64(-0x8000, 0x8000) as u32);
            CacheLine::from_u32_words(&words)
        }
        // Zero-dominated (FPC zero runs, C-Pack ZZZZ).
        4 => {
            let mut words = [0u32; 16];
            for w in &mut words {
                if rng.below(4) == 0 {
                    *w = rng.next_u32();
                }
            }
            CacheLine::from_u32_words(&words)
        }
        // Repeated values with occasional mutations (C-Pack dictionary).
        5 => {
            let v = rng.next_u32();
            let words: [u32; 16] = core::array::from_fn(|_| {
                if rng.below(4) == 0 {
                    v ^ (1 << rng.below(32))
                } else {
                    v
                }
            });
            CacheLine::from_u32_words(&words)
        }
        // Byte-sparse words (C-Pack ZZZX, FPC rep-byte boundaries).
        6 => {
            let words: [u32; 16] = core::array::from_fn(|_| match rng.below(3) {
                0 => rng.below(0x100) as u32,
                1 => (rng.below(0x100) as u32) * 0x0101_0101,
                _ => (rng.next_u32()) << 16,
            });
            CacheLine::from_u32_words(&words)
        }
        // u16 elements around a base (B2D1).
        _ => {
            let base = rng.next_u64() as u16;
            let mut bytes = [0u8; 64];
            for i in 0..32 {
                let v = base.wrapping_add(rng.below(64) as u16).wrapping_sub(32);
                bytes[i * 2..i * 2 + 2].copy_from_slice(&v.to_le_bytes());
            }
            CacheLine::from_bytes(bytes)
        }
    }
}

fn random_bytes(rng: &mut Rng) -> CacheLine {
    let mut bytes = [0u8; 64];
    for chunk in bytes.chunks_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    CacheLine::from_bytes(bytes)
}

#[test]
fn ten_thousand_random_lines_match_reference() {
    bv_testkit::cases(10_000, |rng| {
        assert_all_equivalent(&random_line(rng));
    });
}

/// Fixed adversarial corpus: the lines most likely to expose an encoding
/// boundary handled differently by the two implementations.
fn adversarial_corpus() -> Vec<CacheLine> {
    let mut corpus = Vec::new();

    // All-zero and near-zero.
    corpus.push(CacheLine::zeroed());
    corpus.push(CacheLine::zeroed().with_u64_at(0, 1));
    corpus.push(CacheLine::zeroed().with_u64_at(56, 1));

    // Repeated word, and repeated word broken in one place.
    corpus.push(CacheLine::from_u64_words(&[0xdead_beef_0bad_f00d; 8]));
    corpus.push(CacheLine::from_u64_words(&[0xdead_beef_0bad_f00d; 8]).with_u64_at(24, 7));

    // ±1 deltas at each element width.
    corpus.push(CacheLine::from_u64_words(&core::array::from_fn(|i| {
        0x7f00_0000_0000u64.wrapping_add(i as u64) // +1 steps, 8-byte elems
    })));
    corpus.push(CacheLine::from_u64_words(&core::array::from_fn(|i| {
        0x7f00_0000_0000u64.wrapping_sub(i as u64) // -1 steps
    })));
    corpus.push(CacheLine::from_u32_words(&core::array::from_fn(|i| {
        0x7f00_0000u32.wrapping_add(i as u32) // 4-byte elems
    })));
    let mut bytes = [0u8; 64];
    for i in 0..32 {
        let v = 0x7f00u16.wrapping_add(i as u16); // 2-byte elems
        bytes[i * 2..i * 2 + 2].copy_from_slice(&v.to_le_bytes());
    }
    corpus.push(CacheLine::from_bytes(bytes));

    // Sign boundaries of every delta width: deltas of exactly ±2^(d*8-1)
    // and ±(2^(d*8-1) - 1) from the base, where the fit test flips.
    for d_bits in [7u32, 15, 31] {
        for sign in [1i64, -1] {
            for off in [0i64, 1] {
                let delta = sign * ((1i64 << d_bits) - off);
                let base = 0x0123_4567_89abu64;
                let words: [u64; 8] = core::array::from_fn(|i| {
                    if i == 0 {
                        base
                    } else {
                        base.wrapping_add(delta as u64)
                    }
                });
                corpus.push(CacheLine::from_u64_words(&words));
            }
        }
    }

    // Zero-delta (immediate base) sign boundaries: elements that barely
    // fit / barely miss a delta from the implicit zero base.
    for v in [0x7fu64, 0x80, 0xff, 0x100, 0x7fff, 0x8000] {
        let words: [u64; 8] = core::array::from_fn(|i| if i % 2 == 0 { v } else { !v });
        corpus.push(CacheLine::from_u64_words(&words));
        let words: [u64; 8] =
            core::array::from_fn(|i| if i % 2 == 0 { v } else { v.wrapping_neg() });
        corpus.push(CacheLine::from_u64_words(&words));
    }

    // Deltas that wrap modulo the element width.
    corpus.push(CacheLine::from_u64_words(&core::array::from_fn(|i| {
        (u64::MAX - 3).wrapping_add(i as u64)
    })));
    let mut bytes = [0u8; 64];
    for i in 0..32 {
        let v = 0xfffeu16.wrapping_add(i as u16);
        bytes[i * 2..i * 2 + 2].copy_from_slice(&v.to_le_bytes());
    }
    corpus.push(CacheLine::from_bytes(bytes));

    // FPC pattern boundaries.
    corpus.push(CacheLine::from_u32_words(&[0xffff_8000; 16])); // SIGN16 edge
    corpus.push(CacheLine::from_u32_words(&[0xabcd_0000; 16])); // zero-padded half
    corpus.push(CacheLine::from_u32_words(&[0x0011_0003; 16])); // two sign bytes
    corpus.push(CacheLine::from_u32_words(&[0x4747_4747; 16])); // repeated bytes
    corpus.push(CacheLine::from_u32_words(&core::array::from_fn(|i| {
        (i as i32 - 8) as u32 // small signed ints crossing zero
    })));

    // C-Pack dictionary stress: partial-match patterns and near-collisions.
    corpus.push(CacheLine::from_u32_words(&core::array::from_fn(|i| {
        0x1234_5600 | i as u32 // MMMX chains
    })));
    corpus.push(CacheLine::from_u32_words(&core::array::from_fn(|i| {
        0x1234_0000 | (i as u32 * 0x111) // MMXX chains
    })));
    corpus.push(CacheLine::from_u32_words(&core::array::from_fn(|i| {
        0x8000_0000 + (i as u32 % 15) * 0x0101_0101
    })));

    // Incompressible: every encoding must fall back identically.
    corpus.push(CacheLine::from_u64_words(&core::array::from_fn(|i| {
        (i as u64 + 1) * 0x0123_4567_89ab_cdef
    })));
    corpus.push(CacheLine::from_u32_words(&core::array::from_fn(|i| {
        (i as u32 + 1).wrapping_mul(0x9e37_79b9)
    })));

    corpus
}

#[test]
fn adversarial_corpus_matches_reference() {
    for line in adversarial_corpus() {
        assert_all_equivalent(&line);
    }
}

#[test]
fn bdi_encoding_selection_matches_reference() {
    let bdi = Bdi::new();
    let reference = RefBdi::new();
    for line in adversarial_corpus() {
        assert_eq!(
            bdi.select_encoding(&line),
            reference.select_encoding(&line),
            "encoding choice differs on {line:?}"
        );
    }
    bv_testkit::cases(2_000, |rng| {
        let line = random_line(rng);
        assert_eq!(bdi.select_encoding(&line), reference.select_encoding(&line));
    });
}
