//! Property-based tests: every compressor must be lossless on arbitrary
//! 64-byte lines and on lines drawn from realistic value distributions.

use bv_compress::{Bdi, CPack, CacheLine, Compressor, Fpc, NullCompressor, SegmentCount, ZeroOnly};
use bv_testkit::{cases, Rng};

fn compressors() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Bdi::new()),
        Box::new(Fpc::new()),
        Box::new(CPack::new()),
        Box::new(ZeroOnly::new()),
        Box::new(NullCompressor::new()),
    ]
}

/// Arbitrary raw lines (uniform halfword soup).
fn any_line(rng: &mut Rng) -> CacheLine {
    let mut bytes = [0u8; 64];
    for chunk in bytes.chunks_exact_mut(2) {
        chunk.copy_from_slice(&(rng.next_u32() as u16).to_le_bytes());
    }
    CacheLine::from_bytes(bytes)
}

/// Lines that look like real program data: a base pointer/int plus small
/// deltas, with occasional zero elements.
fn structured_line(rng: &mut Rng) -> CacheLine {
    let base = rng.next_u64();
    let mut words = [0u64; 8];
    for w in &mut words {
        *w = if rng.flip() {
            0
        } else {
            base.wrapping_add(rng.range_i64(-128, 128) as u64)
        };
    }
    CacheLine::from_u64_words(&words)
}

#[test]
fn roundtrip_arbitrary_lines() {
    cases(512, |rng| {
        let line = any_line(rng);
        for c in compressors() {
            let compressed = c.compress(&line);
            assert_eq!(
                c.decompress(&compressed),
                line,
                "algorithm {} not lossless",
                c.name()
            );
            assert!(compressed.segments() <= SegmentCount::FULL);
            assert_eq!(compressed.segments(), c.compressed_size(&line));
        }
    });
}

#[test]
fn roundtrip_structured_lines() {
    cases(512, |rng| {
        let line = structured_line(rng);
        for c in compressors() {
            let compressed = c.compress(&line);
            assert_eq!(c.decompress(&compressed), line);
        }
    });
}

#[test]
fn bdi_compresses_structured_data() {
    // BDI is designed for base+delta data: structured lines with at most
    // one non-zero base cluster must compress below a full line.
    cases(512, |rng| {
        let line = structured_line(rng);
        let bdi = Bdi::new();
        assert!(bdi.compressed_size(&line).get() <= 16);
    });
}

#[test]
fn zero_only_agrees_with_is_zero() {
    cases(512, |rng| {
        // Mix fully-zero lines in: uniform halfwords are almost never zero.
        let line = if rng.below(8) == 0 {
            CacheLine::zeroed()
        } else {
            any_line(rng)
        };
        let z = ZeroOnly::new();
        let size = z.compressed_size(&line);
        assert_eq!(size == SegmentCount::MIN, line.is_zero());
    });
}

#[test]
fn sizes_are_deterministic() {
    cases(512, |rng| {
        let line = any_line(rng);
        for c in compressors() {
            assert_eq!(c.compressed_size(&line), c.compressed_size(&line));
        }
    });
}
