//! Property-based tests: every compressor must be lossless on arbitrary
//! 64-byte lines and on lines drawn from realistic value distributions.

use bv_compress::{Bdi, CPack, CacheLine, Compressor, Fpc, NullCompressor, SegmentCount, ZeroOnly};
use proptest::prelude::*;

fn compressors() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Bdi::new()),
        Box::new(Fpc::new()),
        Box::new(CPack::new()),
        Box::new(ZeroOnly::new()),
        Box::new(NullCompressor::new()),
    ]
}

/// Arbitrary raw lines.
fn any_line() -> impl Strategy<Value = CacheLine> {
    prop::array::uniform32(any::<u16>()).prop_map(|halves| {
        let mut bytes = [0u8; 64];
        for (i, h) in halves.iter().enumerate() {
            bytes[i * 2..i * 2 + 2].copy_from_slice(&h.to_le_bytes());
        }
        CacheLine::from_bytes(bytes)
    })
}

/// Lines that look like real program data: a base pointer/int plus small
/// deltas, with occasional zero elements.
fn structured_line() -> impl Strategy<Value = CacheLine> {
    (
        any::<u64>(),
        prop::array::uniform8(-128i64..128),
        prop::array::uniform8(any::<bool>()),
    )
        .prop_map(|(base, deltas, zeros)| {
            let mut words = [0u64; 8];
            for i in 0..8 {
                words[i] = if zeros[i] {
                    0
                } else {
                    base.wrapping_add(deltas[i] as u64)
                };
            }
            CacheLine::from_u64_words(&words)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip_arbitrary_lines(line in any_line()) {
        for c in compressors() {
            let compressed = c.compress(&line);
            prop_assert_eq!(
                c.decompress(&compressed), line,
                "algorithm {} not lossless", c.name()
            );
            prop_assert!(compressed.segments() <= SegmentCount::FULL);
            prop_assert_eq!(compressed.segments(), c.compressed_size(&line));
        }
    }

    #[test]
    fn roundtrip_structured_lines(line in structured_line()) {
        for c in compressors() {
            let compressed = c.compress(&line);
            prop_assert_eq!(c.decompress(&compressed), line);
        }
    }

    #[test]
    fn bdi_compresses_structured_data(line in structured_line()) {
        // BDI is designed for base+delta data: structured lines with at most
        // one non-zero base cluster must compress below a full line.
        let bdi = Bdi::new();
        prop_assert!(bdi.compressed_size(&line).get() <= 16);
    }

    #[test]
    fn zero_only_agrees_with_is_zero(line in any_line()) {
        let z = ZeroOnly::new();
        let size = z.compressed_size(&line);
        prop_assert_eq!(size == SegmentCount::MIN, line.is_zero());
    }

    #[test]
    fn sizes_are_deterministic(line in any_line()) {
        for c in compressors() {
            prop_assert_eq!(c.compressed_size(&line), c.compressed_size(&line));
        }
    }
}
