//! C-Pack (Cache Packer) compression.
//!
//! Implements the dictionary-based algorithm of Chen et al., "C-Pack: A
//! High-Performance Microprocessor Cache Compression Algorithm" (IEEE TVLSI
//! 2010). Each 32-bit word is matched against a small FIFO dictionary built
//! while scanning the line; full and partial matches emit short codes.

use crate::bits::{BitReader, BitWriter};
use crate::line::CacheLine;
use crate::{Compressed, Compressor, SegmentCount};

const DICT_ENTRIES: usize = 16;
const INDEX_BITS: u32 = 4;

// Pattern codes from the C-Pack paper (Table I).
const C_ZZZZ: u64 = 0b00; // all-zero word
const C_XXXX: u64 = 0b01; // no match: literal word
const C_MMMM: u64 = 0b10; // full dictionary match
const C_MMXX: u64 = 0b1100; // high 2 bytes match dictionary entry
const C_ZZZX: u64 = 0b1101; // zero word except low byte
const C_MMMX: u64 = 0b1110; // high 3 bytes match dictionary entry

/// A FIFO word dictionary as used by the C-Pack hardware.
///
/// Backed by a fixed stack array: a 64-byte line holds exactly
/// [`DICT_ENTRIES`] 32-bit words, so within one line the FIFO never
/// actually evicts and `push` is a plain indexed store.
#[derive(Debug, Clone, Copy)]
struct Dictionary {
    entries: [u32; DICT_ENTRIES],
    len: usize,
}

impl Dictionary {
    fn new() -> Dictionary {
        Dictionary {
            entries: [0; DICT_ENTRIES],
            len: 0,
        }
    }

    fn push(&mut self, word: u32) {
        if self.len == DICT_ENTRIES {
            self.entries.copy_within(1.., 0);
            self.len -= 1;
        }
        self.entries[self.len] = word;
        self.len += 1;
    }

    fn full_match(&self, word: u32) -> Option<usize> {
        self.entries[..self.len].iter().position(|&e| e == word)
    }

    fn match_high_bytes(&self, word: u32, bytes: u32) -> Option<usize> {
        let shift = 8 * (4 - bytes);
        self.entries[..self.len]
            .iter()
            .position(|&e| e >> shift == word >> shift)
    }

    fn get(&self, index: usize) -> u32 {
        self.entries[index]
    }
}

/// The C-Pack compressor.
///
/// # Examples
///
/// ```
/// use bv_compress::{CacheLine, Compressor, CPack};
///
/// let cpack = CPack::new();
/// let line = CacheLine::from_u32_words(&[0xdead_beef; 16]);
/// let c = cpack.compress(&line);
/// assert!(c.segments().get() < 16, "repeated words hit the dictionary");
/// assert_eq!(cpack.decompress(&c), line);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct CPack {
    _private: (),
}

impl CPack {
    /// Creates a C-Pack compressor.
    #[must_use]
    pub fn new() -> CPack {
        CPack::default()
    }
}

impl CPack {
    /// Size-only pass: walks the dictionary exactly as
    /// [`Compressor::compress`] does but only accumulates code widths.
    fn size_bits(&self, line: &CacheLine) -> usize {
        let mut dict = Dictionary::new();
        let mut bits = 0usize;
        for word in line.u32_array() {
            if word == 0 {
                bits += 2;
            } else if word & 0xffff_ff00 == 0 {
                bits += 4 + 8;
            } else if dict.full_match(word).is_some() {
                bits += 2 + INDEX_BITS as usize;
            } else if dict.match_high_bytes(word, 3).is_some() {
                bits += 4 + INDEX_BITS as usize + 8;
                dict.push(word);
            } else if dict.match_high_bytes(word, 2).is_some() {
                bits += 4 + INDEX_BITS as usize + 16;
                dict.push(word);
            } else {
                bits += 2 + 32;
                dict.push(word);
            }
        }
        bits
    }
}

impl Compressor for CPack {
    fn name(&self) -> &'static str {
        "cpack"
    }

    fn compressed_size(&self, line: &CacheLine) -> SegmentCount {
        SegmentCount::from_bytes(self.size_bits(line).div_ceil(8))
    }

    fn compress(&self, line: &CacheLine) -> Compressed {
        let mut w = BitWriter::new();
        let mut dict = Dictionary::new();
        for word in line.u32_array() {
            if word == 0 {
                w.push(C_ZZZZ, 2);
            } else if word & 0xffff_ff00 == 0 {
                w.push(C_ZZZX, 4);
                w.push(u64::from(word & 0xff), 8);
            } else if let Some(idx) = dict.full_match(word) {
                w.push(C_MMMM, 2);
                w.push(idx as u64, INDEX_BITS);
            } else if let Some(idx) = dict.match_high_bytes(word, 3) {
                w.push(C_MMMX, 4);
                w.push(idx as u64, INDEX_BITS);
                w.push(u64::from(word & 0xff), 8);
                dict.push(word);
            } else if let Some(idx) = dict.match_high_bytes(word, 2) {
                w.push(C_MMXX, 4);
                w.push(idx as u64, INDEX_BITS);
                w.push(u64::from(word & 0xffff), 16);
                dict.push(word);
            } else {
                w.push(C_XXXX, 2);
                w.push(u64::from(word), 32);
                dict.push(word);
            }
        }
        let payload = w.into_bytes();
        Compressed::new(
            self.name(),
            SegmentCount::from_bytes(payload.len()),
            payload,
        )
    }

    fn decompress(&self, compressed: &Compressed) -> CacheLine {
        assert_eq!(compressed.algorithm(), self.name());
        let mut r = BitReader::new(compressed.payload());
        let mut dict = Dictionary::new();
        let mut words = [0u32; 16];
        for word in &mut words {
            let c2 = r.read(2);
            *word = match c2 {
                c if c == C_ZZZZ => 0,
                c if c == C_XXXX => {
                    let v = r.read(32) as u32;
                    dict.push(v);
                    v
                }
                c if c == C_MMMM => {
                    let idx = r.read(INDEX_BITS) as usize;
                    dict.get(idx)
                }
                _ => {
                    // 0b11 prefix: read 2 more bits for the 4-bit code.
                    let c4 = 0b1100 | r.read(2);
                    match c4 {
                        c if c == C_MMXX => {
                            let idx = r.read(INDEX_BITS) as usize;
                            let low = r.read(16) as u32;
                            let v = (dict.get(idx) & 0xffff_0000) | low;
                            dict.push(v);
                            v
                        }
                        c if c == C_ZZZX => r.read(8) as u32,
                        c if c == C_MMMX => {
                            let idx = r.read(INDEX_BITS) as usize;
                            let low = r.read(8) as u32;
                            let v = (dict.get(idx) & 0xffff_ff00) | low;
                            dict.push(v);
                            v
                        }
                        other => panic!("invalid C-Pack code {other:04b}"),
                    }
                }
            };
        }
        CacheLine::from_u32_words(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(line: &CacheLine) -> SegmentCount {
        let cpack = CPack::new();
        let c = cpack.compress(line);
        assert_eq!(&cpack.decompress(&c), line);
        c.segments()
    }

    #[test]
    fn zero_line_is_minimal() {
        // 16 words * 2 bits = 32 bits = 4 bytes = 1 segment.
        assert_eq!(roundtrip(&CacheLine::zeroed()), SegmentCount::MIN);
    }

    #[test]
    fn repeated_word_hits_dictionary() {
        let line = CacheLine::from_u32_words(&[0xcafe_babe; 16]);
        // First word literal (2+32), rest full matches (2+4 each).
        let size = roundtrip(&line);
        assert!(
            size.get() <= 4,
            "expected heavy dictionary reuse, got {size}"
        );
    }

    #[test]
    fn partial_match_mmmx() {
        let words: [u32; 16] = core::array::from_fn(|i| 0x1234_5600 | i as u32);
        let size = roundtrip(&CacheLine::from_u32_words(&words));
        assert!(size.get() < 16);
    }

    #[test]
    fn partial_match_mmxx() {
        let words: [u32; 16] = core::array::from_fn(|i| 0x1234_0000 | (i as u32 * 0x111));
        let size = roundtrip(&CacheLine::from_u32_words(&words));
        assert!(size.get() < 16);
    }

    #[test]
    fn low_byte_only_words_use_zzzx() {
        let words: [u32; 16] = core::array::from_fn(|i| (i as u32 % 7) + 1);
        let size = roundtrip(&CacheLine::from_u32_words(&words));
        assert!(size.get() <= 6);
    }

    #[test]
    fn incompressible_line_roundtrips() {
        let words: [u32; 16] = core::array::from_fn(|i| (i as u32 + 1).wrapping_mul(0x9e37_79b9));
        let line = CacheLine::from_u32_words(&words);
        let cpack = CPack::new();
        let c = cpack.compress(&line);
        assert_eq!(cpack.decompress(&c), line);
    }

    #[test]
    fn dictionary_fifo_eviction_is_consistent() {
        // More than 16 distinct literals forces FIFO eviction; a later
        // repeat of an evicted word must re-emit a literal, and decompression
        // must track the identical dictionary state.
        let words: [u32; 16] =
            core::array::from_fn(|i| 0x8000_0000 + (i as u32 % 15) * 0x0101_0101);
        let _ = roundtrip(&CacheLine::from_u32_words(&words));
    }
}
