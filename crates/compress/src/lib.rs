//! Hardware-style cache-line compression algorithms.
//!
//! This crate provides the compression substrate used by the Base-Victim
//! compressed last-level cache reproduction (Gaur, Alameldeen, Subramoney,
//! ISCA 2016). The paper evaluates with **Base-Delta-Immediate (BDI)**
//! compression at a 4-byte segment granularity; for completeness and for
//! ablation studies this crate also implements **Frequent Pattern
//! Compression (FPC)** and **C-Pack**, the two other classic cache
//! compression algorithms discussed in the paper's related work.
//!
//! All algorithms operate on one 64-byte [`CacheLine`] at a time and report
//! sizes in 4-byte [`SegmentCount`] units, matching the paper's metadata
//! encoding (4 size bits per tag, 16 possible sizes).
//!
//! # Examples
//!
//! ```
//! use bv_compress::{Bdi, CacheLine, Compressor};
//!
//! // A line of small deltas around a common base compresses well under BDI.
//! let words: [u64; 8] = core::array::from_fn(|i| 0x7fff_2000_0000 + i as u64 * 8);
//! let line = CacheLine::from_u64_words(&words);
//!
//! let bdi = Bdi::new();
//! let compressed = bdi.compress(&line);
//! assert!(compressed.segments().get() < 16, "line should compress");
//! assert_eq!(bdi.decompress(&compressed), line, "lossless roundtrip");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdi;
mod bits;
mod cpack;
mod fpc;
mod line;
pub mod reference;
mod stats;
mod zero;

pub use bdi::{Bdi, BdiEncoding};
pub use cpack::CPack;
pub use fpc::Fpc;
pub use line::{CacheLine, CACHE_LINE_BYTES, SEGMENTS_PER_LINE, SEGMENT_BYTES};
pub use stats::{CompressionStats, EncoderStats};
pub use zero::{NullCompressor, ZeroOnly};

use core::fmt;
use core::num::NonZeroU8;

/// A compressed-line size measured in 4-byte segments.
///
/// The Base-Victim architecture aligns compressed lines at 4-byte boundaries
/// (Section IV.C of the paper), so every size is between 1 and
/// [`SEGMENTS_PER_LINE`] (= 16) segments. A full uncompressed line is 16
/// segments; a detected all-zero line is 1 segment.
///
/// # Examples
///
/// ```
/// use bv_compress::SegmentCount;
///
/// let size = SegmentCount::from_bytes(17);
/// assert_eq!(size.get(), 5); // ceil(17 / 4)
/// assert_eq!(size.bytes(), 20);
/// assert!(!size.is_full_line());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentCount(NonZeroU8);

impl SegmentCount {
    /// The size of a full, uncompressed cache line (16 segments).
    pub const FULL: SegmentCount = match NonZeroU8::new(SEGMENTS_PER_LINE as u8) {
        Some(n) => SegmentCount(n),
        None => unreachable!(),
    };

    /// The smallest representable size (1 segment), used for zero lines.
    pub const MIN: SegmentCount = match NonZeroU8::new(1) {
        Some(n) => SegmentCount(n),
        None => unreachable!(),
    };

    /// Creates a size from a raw segment count.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is 0 or greater than [`SEGMENTS_PER_LINE`].
    #[must_use]
    pub fn new(segments: u8) -> SegmentCount {
        assert!(
            segments >= 1 && segments as usize <= SEGMENTS_PER_LINE,
            "segment count {segments} out of range 1..={SEGMENTS_PER_LINE}"
        );
        SegmentCount(NonZeroU8::new(segments).expect("checked nonzero"))
    }

    /// Creates a size from a byte count, rounding up to whole segments and
    /// clamping to a full line.
    ///
    /// A compressed representation larger than 64 bytes is clamped to the
    /// full-line size: hardware would store such a line uncompressed.
    #[must_use]
    pub fn from_bytes(bytes: usize) -> SegmentCount {
        let segs = bytes.div_ceil(SEGMENT_BYTES).clamp(1, SEGMENTS_PER_LINE);
        SegmentCount::new(segs as u8)
    }

    /// Returns the size in segments (1..=16).
    #[must_use]
    pub fn get(self) -> u8 {
        self.0.get()
    }

    /// Returns the size in bytes (a multiple of 4).
    #[must_use]
    pub fn bytes(self) -> usize {
        self.0.get() as usize * SEGMENT_BYTES
    }

    /// Returns `true` if this is a full (incompressible) line.
    #[must_use]
    pub fn is_full_line(self) -> bool {
        self.0.get() as usize == SEGMENTS_PER_LINE
    }

    /// Returns `true` if a line of this size and one of `other` fit together
    /// in a single physical way.
    ///
    /// This is the pairing test at the heart of every two-tag organization:
    /// the base line and the victim line may share one 64-byte data way only
    /// when their compressed sizes sum to at most 16 segments.
    #[must_use]
    pub fn fits_with(self, other: SegmentCount) -> bool {
        self.get() as usize + other.get() as usize <= SEGMENTS_PER_LINE
    }

    /// Remaining free segments when a line of this size occupies a way.
    #[must_use]
    pub fn free_segments(self) -> u8 {
        (SEGMENTS_PER_LINE as u8) - self.get()
    }
}

impl fmt::Debug for SegmentCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SegmentCount({})", self.get())
    }
}

impl fmt::Display for SegmentCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} seg", self.get())
    }
}

/// A compressed cache line: the encoding metadata plus the packed payload.
///
/// The payload is retained so that [`Compressor::decompress`] can verify
/// losslessness; a hardware implementation would store exactly
/// `size.bytes()` bytes in the data array.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Compressed {
    algorithm: &'static str,
    size: SegmentCount,
    payload: Vec<u8>,
}

impl Compressed {
    /// Creates a compressed representation. Intended for use by
    /// [`Compressor`] implementations.
    #[must_use]
    pub fn new(algorithm: &'static str, size: SegmentCount, payload: Vec<u8>) -> Compressed {
        Compressed {
            algorithm,
            size,
            payload,
        }
    }

    /// Name of the algorithm that produced this representation.
    #[must_use]
    pub fn algorithm(&self) -> &'static str {
        self.algorithm
    }

    /// The size this line occupies in the data array, in segments.
    #[must_use]
    pub fn segments(&self) -> SegmentCount {
        self.size
    }

    /// The packed payload bytes (encoding-specific).
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }
}

/// A lossless, hardware-implementable cache-line compression algorithm.
///
/// Implementations must guarantee `decompress(compress(line)) == line` for
/// every possible 64-byte line, and must never report a size larger than a
/// full line ([`SegmentCount::FULL`] is the incompressible fallback).
pub trait Compressor {
    /// Short, stable algorithm name (e.g. `"bdi"`).
    fn name(&self) -> &'static str;

    /// Compresses a line, returning the packed representation.
    fn compress(&self, line: &CacheLine) -> Compressed;

    /// Reconstructs the original line from a compressed representation.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `compressed` was produced by a different
    /// algorithm (checked via [`Compressed::algorithm`]).
    fn decompress(&self, compressed: &Compressed) -> CacheLine;

    /// Returns only the compressed size, in segments.
    ///
    /// The default computes a full compression; implementations may override
    /// with a cheaper size-only pass, which is what the cache model calls on
    /// every fill.
    fn compressed_size(&self, line: &CacheLine) -> SegmentCount {
        self.compress(line).segments()
    }

    /// Names of this algorithm's encoding classes, indexed by the class
    /// index [`Compressor::classified_size`] reports.
    ///
    /// Empty (the default) when the algorithm does not distinguish
    /// internal encodings; telemetry then records nothing for it.
    fn encodings(&self) -> &'static [&'static str] {
        &[]
    }

    /// Like [`Compressor::compressed_size`], but also reports which
    /// encoding class the line selected (an index into
    /// [`Compressor::encodings`]), in the same single pass.
    ///
    /// `None` (the default) means the algorithm exposes no classes.
    fn classified_size(&self, line: &CacheLine) -> (SegmentCount, Option<usize>) {
        (self.compressed_size(line), None)
    }

    /// Decompression latency in core cycles for a line of the given size.
    ///
    /// Matches the paper's model: zero lines and uncompressed lines are
    /// detected from the size field in the tag metadata and incur no
    /// decompression latency; all other sizes pay `base_latency` cycles
    /// (2 cycles for BDI in the paper).
    fn decompression_latency(&self, size: SegmentCount, base_latency: u32) -> u32 {
        if size == SegmentCount::MIN || size.is_full_line() {
            0
        } else {
            base_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_count_from_bytes_rounds_up() {
        assert_eq!(SegmentCount::from_bytes(1).get(), 1);
        assert_eq!(SegmentCount::from_bytes(4).get(), 1);
        assert_eq!(SegmentCount::from_bytes(5).get(), 2);
        assert_eq!(SegmentCount::from_bytes(64).get(), 16);
    }

    #[test]
    fn segment_count_clamps_oversized_to_full() {
        assert_eq!(SegmentCount::from_bytes(65), SegmentCount::FULL);
        assert_eq!(SegmentCount::from_bytes(1000), SegmentCount::FULL);
    }

    #[test]
    fn segment_count_zero_bytes_is_min() {
        assert_eq!(SegmentCount::from_bytes(0), SegmentCount::MIN);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_count_rejects_zero() {
        let _ = SegmentCount::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_count_rejects_oversize() {
        let _ = SegmentCount::new(17);
    }

    #[test]
    fn fits_with_is_symmetric_and_bounded() {
        let a = SegmentCount::new(6);
        let b = SegmentCount::new(10);
        let c = SegmentCount::new(11);
        assert!(a.fits_with(b));
        assert!(b.fits_with(a));
        assert!(!a.fits_with(c));
        assert!(!SegmentCount::FULL.fits_with(SegmentCount::MIN));
    }

    #[test]
    fn free_segments_complements_size() {
        for s in 1..=16u8 {
            let size = SegmentCount::new(s);
            assert_eq!(size.get() + size.free_segments(), 16);
        }
    }

    #[test]
    fn latency_model_matches_paper() {
        let bdi = Bdi::new();
        // Zero and full lines: no decompression latency.
        assert_eq!(bdi.decompression_latency(SegmentCount::MIN, 2), 0);
        assert_eq!(bdi.decompression_latency(SegmentCount::FULL, 2), 0);
        // Everything in between pays the base latency.
        assert_eq!(bdi.decompression_latency(SegmentCount::new(5), 2), 2);
    }
}
