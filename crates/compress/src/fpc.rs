//! Frequent Pattern Compression (FPC).
//!
//! Implements the significance-based algorithm of Alameldeen and Wood,
//! "Adaptive Cache Compression for High-Performance Processors" (ISCA 2004).
//! Each 32-bit word is encoded with a 3-bit prefix selecting one of eight
//! patterns; zero words additionally fold into runs of up to eight.

use crate::bits::{BitReader, BitWriter};
use crate::line::CacheLine;
use crate::{Compressed, Compressor, SegmentCount};

/// FPC 3-bit prefixes (pattern codes).
const P_ZERO_RUN: u64 = 0b000;
const P_SIGN4: u64 = 0b001;
const P_SIGN8: u64 = 0b010;
const P_SIGN16: u64 = 0b011;
const P_ZERO_PADDED_HALF: u64 = 0b100; // lower halfword zero, upper significant
const P_TWO_SIGN_BYTES: u64 = 0b101; // two halfwords, each a sign-extended byte
const P_REP_BYTES: u64 = 0b110; // word with four identical bytes
const P_UNCOMPRESSED: u64 = 0b111;

/// The Frequent Pattern Compression algorithm.
///
/// # Examples
///
/// ```
/// use bv_compress::{CacheLine, Compressor, Fpc};
///
/// let fpc = Fpc::new();
/// let small_ints = CacheLine::from_u32_words(&core::array::from_fn(|i| i as u32));
/// let c = fpc.compress(&small_ints);
/// assert!(c.segments().get() < 16);
/// assert_eq!(fpc.decompress(&c), small_ints);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Fpc {
    _private: (),
}

impl Fpc {
    /// Creates an FPC compressor.
    #[must_use]
    pub fn new() -> Fpc {
        Fpc::default()
    }
}

fn fits_signed(value: u32, bits: u32) -> bool {
    let signed = value as i32;
    signed >= -(1i32 << (bits - 1)) && signed < (1i32 << (bits - 1))
}

/// Branchless data-bit width of a nonzero word's best pattern.
///
/// Mirrors [`classify`]'s priority order exactly (unit-tested against it),
/// but as straight-line selects over cheap integer tests so the fixed
/// 16-iteration loop in [`Fpc::size_bits`] autovectorizes. The signed-range
/// tests use `x + 2^(b-1) < 2^b` (unsigned, wrapping), which is
/// `x ∈ [-2^(b-1), 2^(b-1))` without sign extension.
#[inline]
fn classify_width(word: u32) -> u32 {
    let s4 = word.wrapping_add(1 << 3) < 1 << 4;
    let s8 = word.wrapping_add(1 << 7) < 1 << 8;
    let s16 = word.wrapping_add(1 << 15) < 1 << 16;
    let zp = word & 0xffff == 0;
    // Zero-extended halfwords fit a sign-extended byte iff they are < 128.
    let tsb = (word & 0xffff) < 128 && (word >> 16) < 128;
    let rep = word == (word & 0xff).wrapping_mul(0x0101_0101);
    // Select in reverse priority order so the highest-priority match wins.
    let mut w = 32;
    w = if rep { 8 } else { w };
    w = if tsb { 16 } else { w };
    w = if zp { 16 } else { w };
    w = if s16 { 16 } else { w };
    w = if s8 { 8 } else { w };
    if s4 {
        4
    } else {
        w
    }
}

fn classify(word: u32) -> (u64, u64, u32) {
    // Returns (prefix, data, data_bits). Zero runs handled by the caller.
    if fits_signed(word, 4) {
        (P_SIGN4, u64::from(word & 0xf), 4)
    } else if fits_signed(word, 8) {
        (P_SIGN8, u64::from(word & 0xff), 8)
    } else if fits_signed(word, 16) {
        (P_SIGN16, u64::from(word & 0xffff), 16)
    } else if word & 0xffff == 0 {
        (P_ZERO_PADDED_HALF, u64::from(word >> 16), 16)
    } else if fits_signed(word & 0xffff, 8) && fits_signed(word >> 16, 8) {
        let hi = (word >> 16) & 0xff;
        let lo = word & 0xff;
        (P_TWO_SIGN_BYTES, u64::from(hi << 8 | lo), 16)
    } else if word.to_le_bytes().windows(2).all(|w| w[0] == w[1]) {
        (P_REP_BYTES, u64::from(word & 0xff), 8)
    } else {
        (P_UNCOMPRESSED, u64::from(word), 32)
    }
}

impl Compressor for Fpc {
    fn name(&self) -> &'static str {
        "fpc"
    }

    fn compress(&self, line: &CacheLine) -> Compressed {
        let mut w = BitWriter::new();
        let words = line.u32_array();
        let mut i = 0;
        while i < words.len() {
            if words[i] == 0 {
                // Fold up to 8 consecutive zero words into one run code.
                let mut run = 1;
                while i + run < words.len() && words[i + run] == 0 && run < 8 {
                    run += 1;
                }
                w.push(P_ZERO_RUN, 3);
                w.push(run as u64 - 1, 3);
                i += run;
            } else {
                let (prefix, data, bits) = classify(words[i]);
                w.push(prefix, 3);
                w.push(data, bits);
                i += 1;
            }
        }
        let payload = w.into_bytes();
        let size = SegmentCount::from_bytes(payload.len());
        // Hardware stores incompressible lines verbatim; the payload still
        // lets us decompress, but the reported size saturates at 16.
        Compressed::new(self.name(), size, payload)
    }

    fn compressed_size(&self, line: &CacheLine) -> SegmentCount {
        SegmentCount::from_bytes(self.size_bits(line).div_ceil(8))
    }

    fn decompress(&self, compressed: &Compressed) -> CacheLine {
        assert_eq!(compressed.algorithm(), self.name());
        let mut r = BitReader::new(compressed.payload());
        let mut words = [0u32; 16];
        let mut i = 0;
        while i < 16 {
            let prefix = r.read(3);
            match prefix {
                P_ZERO_RUN => {
                    let run = r.read(3) as usize + 1;
                    i += run; // words are pre-zeroed
                }
                P_SIGN4 => {
                    words[i] = sign_extend32(r.read(4) as u32, 4);
                    i += 1;
                }
                P_SIGN8 => {
                    words[i] = sign_extend32(r.read(8) as u32, 8);
                    i += 1;
                }
                P_SIGN16 => {
                    words[i] = sign_extend32(r.read(16) as u32, 16);
                    i += 1;
                }
                P_ZERO_PADDED_HALF => {
                    words[i] = (r.read(16) as u32) << 16;
                    i += 1;
                }
                P_TWO_SIGN_BYTES => {
                    let data = r.read(16) as u32;
                    let hi = sign_extend32(data >> 8, 8) & 0xffff;
                    let lo = sign_extend32(data & 0xff, 8) & 0xffff;
                    words[i] = hi << 16 | lo;
                    i += 1;
                }
                P_REP_BYTES => {
                    let b = r.read(8) as u32;
                    words[i] = b | b << 8 | b << 16 | b << 24;
                    i += 1;
                }
                P_UNCOMPRESSED => {
                    words[i] = r.read(32) as u32;
                    i += 1;
                }
                _ => unreachable!("3-bit prefix"),
            }
        }
        CacheLine::from_u32_words(&words)
    }
}

impl Fpc {
    /// Size-only pass: sums the encoded bit widths without materializing
    /// the bitstream. Must agree with [`Compressor::compress`] exactly
    /// (property-tested).
    ///
    /// One branchless fixed-trip-count pass computes each word's pattern
    /// width and a zero-word bitmask; zero runs are then counted from the
    /// mask with bit tricks instead of a nested scan.
    fn size_bits(&self, line: &CacheLine) -> usize {
        let words = line.u32_array();
        let mut zero_mask = 0u32;
        let mut bits = 0usize;
        for (i, &word) in words.iter().enumerate() {
            let nonzero = word != 0;
            zero_mask |= u32::from(!nonzero) << i;
            bits += if nonzero {
                3 + classify_width(word) as usize
            } else {
                0
            };
        }
        // Each maximal run of zero words emits one 6-bit run code per 8
        // words (runs longer than 8 restart).
        let mut m = zero_mask;
        while m != 0 {
            m >>= m.trailing_zeros();
            m >>= m.trailing_ones().min(8);
            bits += 3 + 3;
        }
        bits
    }
}

fn sign_extend32(value: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((value << shift) as i32) >> shift) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(line: &CacheLine) -> SegmentCount {
        let fpc = Fpc::new();
        let c = fpc.compress(line);
        assert_eq!(&fpc.decompress(&c), line);
        c.segments()
    }

    #[test]
    fn zero_line_compresses_to_minimum() {
        // 16 zero words fold into two 8-word runs: 2 * 6 bits = 12 bits.
        let size = roundtrip(&CacheLine::zeroed());
        assert_eq!(size, SegmentCount::MIN);
    }

    #[test]
    fn small_positive_and_negative_ints() {
        let words: [u32; 16] = core::array::from_fn(|i| (i as i32 - 8) as u32);
        let size = roundtrip(&CacheLine::from_u32_words(&words));
        assert!(
            size.get() <= 5,
            "small ints should compress well, got {size}"
        );
    }

    #[test]
    fn sign_extended_halfwords() {
        let words = [0xffff_8000u32; 16]; // -32768 as i32
        let _ = roundtrip(&CacheLine::from_u32_words(&words));
    }

    #[test]
    fn zero_padded_halfword_pattern() {
        let words = [0xabcd_0000u32; 16];
        let size = roundtrip(&CacheLine::from_u32_words(&words));
        assert!(size.get() < 16);
    }

    #[test]
    fn repeated_bytes_pattern() {
        let words = [0x4747_4747u32; 16];
        let size = roundtrip(&CacheLine::from_u32_words(&words));
        assert!(size.get() < 16);
    }

    #[test]
    fn two_sign_extended_bytes_pattern() {
        let words = [0x00ff_0003u32; 16]; // halfwords 0x00ff (=255, no) ...
        let _ = roundtrip(&CacheLine::from_u32_words(&words));
        let words = [0x0011_0003u32; 16]; // halfwords 17 and 3, both fit i8
        let size = roundtrip(&CacheLine::from_u32_words(&words));
        assert!(size.get() < 16);
    }

    #[test]
    fn incompressible_line_roundtrips() {
        let words: [u32; 16] = core::array::from_fn(|i| 0x8000_0000u32 | (i as u32) << 20 | 0xabcd);
        let line = CacheLine::from_u32_words(&words);
        let fpc = Fpc::new();
        let c = fpc.compress(&line);
        assert_eq!(fpc.decompress(&c), line);
        // 3 prefix bits of overhead per word: size saturates at full line.
        assert!(c.segments().is_full_line());
    }

    #[test]
    fn branchless_width_matches_classify() {
        let boundary = [
            7u32,
            8,
            0xffff_fff8,
            0xffff_fff7,
            127,
            128,
            0xffff_ff80,
            0xffff_ff7f,
            0x7fff,
            0x8000,
            0xffff_8000,
            0xffff_7fff,
            0xabcd_0000,
            0x0001_0000,
            0x007f_007f,
            0x0080_007f,
            0x007f_0080,
            0x00ff_0003,
            0x4747_4747,
            0xff00_ff00,
            0x1234_5678,
            0xdead_beef,
            u32::MAX,
            1,
        ];
        let mut x = 0x1234_5678u32;
        let fuzz = core::iter::repeat_with(move || {
            x = x.wrapping_mul(0x0019_660d).wrapping_add(0x3c6e_f35f);
            x
        })
        .take(4096);
        for w in boundary.into_iter().chain(fuzz).filter(|&w| w != 0) {
            assert_eq!(classify_width(w), classify(w).2, "word {w:#010x}");
        }
    }

    #[test]
    fn size_bits_matches_materialized_bitstream() {
        let mut x = 0x9e37_79b9u32;
        let mut rand = move || {
            x = x.wrapping_mul(0x0019_660d).wrapping_add(0x3c6e_f35f);
            x
        };
        let fpc = Fpc::new();
        for _ in 0..256 {
            // Mix compressible patterns and zero runs to exercise every arm.
            let words: [u32; 16] = core::array::from_fn(|_| match rand() % 6 {
                0 => 0,
                1 => rand() % 16,
                2 => (rand() % 0x1_0000) << 16,
                3 => {
                    let b = rand() % 256;
                    b * 0x0101_0101
                }
                4 => rand() % 0x100,
                _ => rand(),
            });
            let line = CacheLine::from_u32_words(&words);
            let exact_bits = {
                let mut w = BitWriter::new();
                let mut i = 0;
                while i < 16 {
                    if words[i] == 0 {
                        let mut run = 1;
                        while i + run < 16 && words[i + run] == 0 && run < 8 {
                            run += 1;
                        }
                        w.push(P_ZERO_RUN, 3);
                        w.push(run as u64 - 1, 3);
                        i += run;
                    } else {
                        let (p, d, b) = classify(words[i]);
                        w.push(p, 3);
                        w.push(d, b);
                        i += 1;
                    }
                }
                w.into_bytes().len()
            };
            assert_eq!(
                fpc.size_bits(&line).div_ceil(8),
                exact_bits,
                "line {words:08x?}"
            );
        }
    }

    #[test]
    fn interleaved_zero_runs() {
        let mut words = [0u32; 16];
        words[5] = 0x1234_5678;
        words[11] = 42;
        let _ = roundtrip(&CacheLine::from_u32_words(&words));
    }
}
