//! Frozen scalar reference kernels for differential testing and
//! benchmarking.
//!
//! These are the original byte-at-a-time implementations of BDI, FPC,
//! and C-Pack that shipped before the word-wise kernel rewrite. They are
//! kept verbatim (including their own bit-vector packing helpers) so
//! that:
//!
//! * the `kernel_equivalence` differential tests can assert the
//!   optimized kernels produce bit-identical payloads and sizes, and
//! * `bvsim bench` can report the optimized kernels' speedup against a
//!   stable baseline.
//!
//! Do **not** optimize this module. Its value is that it never changes.
//! Each reference compressor reports the same [`Compressor::name`] as
//! its optimized counterpart, so compressed payloads are interchangeable
//! between the two implementations (cross-decompression is part of the
//! differential test surface).

use crate::line::{CacheLine, CACHE_LINE_BYTES};
use crate::{BdiEncoding, Compressed, Compressor, SegmentCount};

// ---------------------------------------------------------------------
// Bit-vector packing helpers (the original `bits.rs` implementation).
// ---------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct SlowBitWriter {
    bits: Vec<bool>,
}

impl SlowBitWriter {
    fn new() -> SlowBitWriter {
        SlowBitWriter::default()
    }

    fn push(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        for i in (0..width).rev() {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &bit) in self.bits.iter().enumerate() {
            if bit {
                out[i / 8] |= 1 << (7 - (i % 8));
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
struct SlowBitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SlowBitReader<'a> {
    fn new(bytes: &'a [u8]) -> SlowBitReader<'a> {
        SlowBitReader { bytes, pos: 0 }
    }

    fn read(&mut self, width: u32) -> u64 {
        debug_assert!(width <= 64);
        let mut value = 0u64;
        for _ in 0..width {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            value = (value << 1) | u64::from(bit);
            self.pos += 1;
        }
        value
    }
}

// ---------------------------------------------------------------------
// BDI (original element-Vec implementation).
// ---------------------------------------------------------------------

/// The original scalar Base-Delta-Immediate compressor.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefBdi {
    _private: (),
}

impl RefBdi {
    /// Creates a reference BDI compressor.
    #[must_use]
    pub fn new() -> RefBdi {
        RefBdi::default()
    }

    /// Determines the best encoding for a line without packing the payload.
    #[must_use]
    pub fn select_encoding(&self, line: &CacheLine) -> BdiEncoding {
        let mut best = BdiEncoding::Uncompressed;
        for &enc in &BdiEncoding::ALL {
            if enc.payload_bytes() < best.payload_bytes() && encodable(line, enc) {
                best = enc;
            }
        }
        best
    }
}

impl Compressor for RefBdi {
    fn name(&self) -> &'static str {
        "bdi"
    }

    fn compress(&self, line: &CacheLine) -> Compressed {
        let enc = self.select_encoding(line);
        let mut payload = vec![enc as u8];
        match enc {
            BdiEncoding::Zeros => {}
            BdiEncoding::Rep => payload.extend_from_slice(&line.u64_word(0).to_le_bytes()),
            BdiEncoding::Uncompressed => payload.extend_from_slice(line.as_bytes()),
            enc => pack_deltas(line, enc, &mut payload),
        }
        Compressed::new(self.name(), enc.segments(), payload)
    }

    fn decompress(&self, compressed: &Compressed) -> CacheLine {
        assert_eq!(
            compressed.algorithm(),
            self.name(),
            "compressed with a different algorithm"
        );
        let payload = compressed.payload();
        let enc = bdi_encoding_from_tag(payload[0]);
        let body = &payload[1..];
        match enc {
            BdiEncoding::Zeros => CacheLine::zeroed(),
            BdiEncoding::Rep => {
                let word = u64::from_le_bytes(body[..8].try_into().expect("8-byte rep value"));
                CacheLine::from_u64_words(&[word; 8])
            }
            BdiEncoding::Uncompressed => {
                CacheLine::from_bytes(body.try_into().expect("64-byte verbatim line"))
            }
            enc => unpack_deltas(body, enc),
        }
    }

    fn compressed_size(&self, line: &CacheLine) -> SegmentCount {
        self.select_encoding(line).segments()
    }
}

fn bdi_encoding_from_tag(tag: u8) -> BdiEncoding {
    match tag {
        0 => BdiEncoding::Zeros,
        1 => BdiEncoding::Rep,
        2 => BdiEncoding::B8D1,
        3 => BdiEncoding::B8D2,
        4 => BdiEncoding::B8D4,
        5 => BdiEncoding::B4D1,
        6 => BdiEncoding::B4D2,
        7 => BdiEncoding::B2D1,
        8 => BdiEncoding::Uncompressed,
        other => panic!("invalid BDI encoding tag {other}"),
    }
}

fn elements(line: &CacheLine, k: usize) -> Vec<u64> {
    match k {
        8 => line.u64_words().collect(),
        4 => line.u32_words().map(u64::from).collect(),
        2 => (0..32).map(|i| u64::from(line.u16_word(i))).collect(),
        _ => unreachable!("element width {k}"),
    }
}

fn delta_fits(value: u64, base: u64, k: usize, d: usize) -> bool {
    let kbits = k as u32 * 8;
    let diff = value.wrapping_sub(base) & mask_bits(kbits);
    let signed = sign_extend(diff, kbits);
    let dbits = d as u32 * 8 - 1;
    signed >= -(1i64 << dbits) && signed < (1i64 << dbits)
}

fn mask_bits(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn sign_extend(value: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((value << shift) as i64) >> shift
}

fn encodable(line: &CacheLine, enc: BdiEncoding) -> bool {
    match enc {
        BdiEncoding::Zeros => line.is_zero(),
        BdiEncoding::Rep => {
            let first = line.u64_word(0);
            line.u64_words().all(|w| w == first)
        }
        BdiEncoding::Uncompressed => true,
        enc => {
            let (k, d) = enc.geometry().expect("delta encoding");
            let mut base: Option<u64> = None;
            for value in elements(line, k) {
                if delta_fits(value, 0, k, d) {
                    continue;
                }
                match base {
                    None => base = Some(value),
                    Some(b) if delta_fits(value, b, k, d) => {}
                    Some(_) => return false,
                }
            }
            true
        }
    }
}

fn pack_deltas(line: &CacheLine, enc: BdiEncoding, payload: &mut Vec<u8>) {
    let (k, d) = enc.geometry().expect("delta encoding");
    let elems = elements(line, k);
    let base = elems
        .iter()
        .copied()
        .find(|&v| !delta_fits(v, 0, k, d))
        .unwrap_or(0);

    payload.extend_from_slice(&base.to_le_bytes()[..k]);
    let mut mask = SlowBitWriter::new();
    let mut deltas = Vec::with_capacity(elems.len() * d);
    let kbits = k as u32 * 8;
    for value in elems {
        let use_base = !delta_fits(value, 0, k, d);
        mask.push(u64::from(use_base), 1);
        let delta = value.wrapping_sub(if use_base { base } else { 0 }) & mask_bits(kbits);
        deltas.extend_from_slice(&delta.to_le_bytes()[..d]);
    }
    payload.extend_from_slice(&deltas);
    payload.extend_from_slice(&mask.into_bytes());
}

fn unpack_deltas(body: &[u8], enc: BdiEncoding) -> CacheLine {
    let (k, d) = enc.geometry().expect("delta encoding");
    let n = CACHE_LINE_BYTES / k;
    let mut base_bytes = [0u8; 8];
    base_bytes[..k].copy_from_slice(&body[..k]);
    let base = u64::from_le_bytes(base_bytes);

    let deltas = &body[k..k + n * d];
    let mask_bytes = &body[k + n * d..];
    let mut mask = SlowBitReader::new(mask_bytes);

    let kbits = k as u32 * 8;
    let dbits = d as u32 * 8;
    let mut bytes = [0u8; CACHE_LINE_BYTES];
    for i in 0..n {
        let mut raw = [0u8; 8];
        raw[..d].copy_from_slice(&deltas[i * d..i * d + d]);
        let delta = sign_extend(u64::from_le_bytes(raw), dbits) as u64;
        let from = if mask.read(1) == 1 { base } else { 0 };
        let value = from.wrapping_add(delta) & mask_bits(kbits);
        bytes[i * k..i * k + k].copy_from_slice(&value.to_le_bytes()[..k]);
    }
    CacheLine::from_bytes(bytes)
}

// ---------------------------------------------------------------------
// FPC (original Vec-collecting implementation).
// ---------------------------------------------------------------------

const P_ZERO_RUN: u64 = 0b000;
const P_SIGN4: u64 = 0b001;
const P_SIGN8: u64 = 0b010;
const P_SIGN16: u64 = 0b011;
const P_ZERO_PADDED_HALF: u64 = 0b100;
const P_TWO_SIGN_BYTES: u64 = 0b101;
const P_REP_BYTES: u64 = 0b110;
const P_UNCOMPRESSED: u64 = 0b111;

/// The original scalar Frequent Pattern Compression implementation.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefFpc {
    _private: (),
}

impl RefFpc {
    /// Creates a reference FPC compressor.
    #[must_use]
    pub fn new() -> RefFpc {
        RefFpc::default()
    }

    fn size_bits(&self, line: &CacheLine) -> usize {
        let words: Vec<u32> = line.u32_words().collect();
        let mut bits = 0usize;
        let mut i = 0;
        while i < words.len() {
            if words[i] == 0 {
                let mut run = 1;
                while i + run < words.len() && words[i + run] == 0 && run < 8 {
                    run += 1;
                }
                bits += 3 + 3;
                i += run;
            } else {
                let (_, _, data_bits) = classify(words[i]);
                bits += 3 + data_bits as usize;
                i += 1;
            }
        }
        bits
    }
}

fn fits_signed(value: u32, bits: u32) -> bool {
    let signed = value as i32;
    signed >= -(1i32 << (bits - 1)) && signed < (1i32 << (bits - 1))
}

fn classify(word: u32) -> (u64, u64, u32) {
    if fits_signed(word, 4) {
        (P_SIGN4, u64::from(word & 0xf), 4)
    } else if fits_signed(word, 8) {
        (P_SIGN8, u64::from(word & 0xff), 8)
    } else if fits_signed(word, 16) {
        (P_SIGN16, u64::from(word & 0xffff), 16)
    } else if word & 0xffff == 0 {
        (P_ZERO_PADDED_HALF, u64::from(word >> 16), 16)
    } else if fits_signed(word & 0xffff, 8) && fits_signed(word >> 16, 8) {
        let hi = (word >> 16) & 0xff;
        let lo = word & 0xff;
        (P_TWO_SIGN_BYTES, u64::from(hi << 8 | lo), 16)
    } else if word.to_le_bytes().windows(2).all(|w| w[0] == w[1]) {
        (P_REP_BYTES, u64::from(word & 0xff), 8)
    } else {
        (P_UNCOMPRESSED, u64::from(word), 32)
    }
}

impl Compressor for RefFpc {
    fn name(&self) -> &'static str {
        "fpc"
    }

    fn compress(&self, line: &CacheLine) -> Compressed {
        let mut w = SlowBitWriter::new();
        let words: Vec<u32> = line.u32_words().collect();
        let mut i = 0;
        while i < words.len() {
            if words[i] == 0 {
                let mut run = 1;
                while i + run < words.len() && words[i + run] == 0 && run < 8 {
                    run += 1;
                }
                w.push(P_ZERO_RUN, 3);
                w.push(run as u64 - 1, 3);
                i += run;
            } else {
                let (prefix, data, bits) = classify(words[i]);
                w.push(prefix, 3);
                w.push(data, bits);
                i += 1;
            }
        }
        let payload = w.into_bytes();
        let size = SegmentCount::from_bytes(payload.len());
        Compressed::new(self.name(), size, payload)
    }

    fn compressed_size(&self, line: &CacheLine) -> SegmentCount {
        SegmentCount::from_bytes(self.size_bits(line).div_ceil(8))
    }

    fn decompress(&self, compressed: &Compressed) -> CacheLine {
        assert_eq!(compressed.algorithm(), self.name());
        let mut r = SlowBitReader::new(compressed.payload());
        let mut words = [0u32; 16];
        let mut i = 0;
        while i < 16 {
            let prefix = r.read(3);
            match prefix {
                P_ZERO_RUN => {
                    let run = r.read(3) as usize + 1;
                    i += run;
                }
                P_SIGN4 => {
                    words[i] = sign_extend32(r.read(4) as u32, 4);
                    i += 1;
                }
                P_SIGN8 => {
                    words[i] = sign_extend32(r.read(8) as u32, 8);
                    i += 1;
                }
                P_SIGN16 => {
                    words[i] = sign_extend32(r.read(16) as u32, 16);
                    i += 1;
                }
                P_ZERO_PADDED_HALF => {
                    words[i] = (r.read(16) as u32) << 16;
                    i += 1;
                }
                P_TWO_SIGN_BYTES => {
                    let data = r.read(16) as u32;
                    let hi = sign_extend32(data >> 8, 8) & 0xffff;
                    let lo = sign_extend32(data & 0xff, 8) & 0xffff;
                    words[i] = hi << 16 | lo;
                    i += 1;
                }
                P_REP_BYTES => {
                    let b = r.read(8) as u32;
                    words[i] = b | b << 8 | b << 16 | b << 24;
                    i += 1;
                }
                P_UNCOMPRESSED => {
                    words[i] = r.read(32) as u32;
                    i += 1;
                }
                _ => unreachable!("3-bit prefix"),
            }
        }
        CacheLine::from_u32_words(&words)
    }
}

fn sign_extend32(value: u32, bits: u32) -> u32 {
    let shift = 32 - bits;
    (((value << shift) as i32) >> shift) as u32
}

// ---------------------------------------------------------------------
// C-Pack (original Vec-dictionary implementation).
// ---------------------------------------------------------------------

const DICT_ENTRIES: usize = 16;
const INDEX_BITS: u32 = 4;

const C_ZZZZ: u64 = 0b00;
const C_XXXX: u64 = 0b01;
const C_MMMM: u64 = 0b10;
const C_MMXX: u64 = 0b1100;
const C_ZZZX: u64 = 0b1101;
const C_MMMX: u64 = 0b1110;

#[derive(Debug, Clone)]
struct Dictionary {
    entries: Vec<u32>,
}

impl Dictionary {
    fn new() -> Dictionary {
        Dictionary {
            entries: Vec::with_capacity(DICT_ENTRIES),
        }
    }

    fn push(&mut self, word: u32) {
        if self.entries.len() == DICT_ENTRIES {
            self.entries.remove(0);
        }
        self.entries.push(word);
    }

    fn full_match(&self, word: u32) -> Option<usize> {
        self.entries.iter().position(|&e| e == word)
    }

    fn match_high_bytes(&self, word: u32, bytes: u32) -> Option<usize> {
        let shift = 8 * (4 - bytes);
        self.entries
            .iter()
            .position(|&e| e >> shift == word >> shift)
    }

    fn get(&self, index: usize) -> u32 {
        self.entries[index]
    }
}

/// The original scalar C-Pack implementation.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefCPack {
    _private: (),
}

impl RefCPack {
    /// Creates a reference C-Pack compressor.
    #[must_use]
    pub fn new() -> RefCPack {
        RefCPack::default()
    }

    fn size_bits(&self, line: &CacheLine) -> usize {
        let mut dict = Dictionary::new();
        let mut bits = 0usize;
        for word in line.u32_words() {
            if word == 0 {
                bits += 2;
            } else if word & 0xffff_ff00 == 0 {
                bits += 4 + 8;
            } else if dict.full_match(word).is_some() {
                bits += 2 + INDEX_BITS as usize;
            } else if dict.match_high_bytes(word, 3).is_some() {
                bits += 4 + INDEX_BITS as usize + 8;
                dict.push(word);
            } else if dict.match_high_bytes(word, 2).is_some() {
                bits += 4 + INDEX_BITS as usize + 16;
                dict.push(word);
            } else {
                bits += 2 + 32;
                dict.push(word);
            }
        }
        bits
    }
}

impl Compressor for RefCPack {
    fn name(&self) -> &'static str {
        "cpack"
    }

    fn compressed_size(&self, line: &CacheLine) -> SegmentCount {
        SegmentCount::from_bytes(self.size_bits(line).div_ceil(8))
    }

    fn compress(&self, line: &CacheLine) -> Compressed {
        let mut w = SlowBitWriter::new();
        let mut dict = Dictionary::new();
        for word in line.u32_words() {
            if word == 0 {
                w.push(C_ZZZZ, 2);
            } else if word & 0xffff_ff00 == 0 {
                w.push(C_ZZZX, 4);
                w.push(u64::from(word & 0xff), 8);
            } else if let Some(idx) = dict.full_match(word) {
                w.push(C_MMMM, 2);
                w.push(idx as u64, INDEX_BITS);
            } else if let Some(idx) = dict.match_high_bytes(word, 3) {
                w.push(C_MMMX, 4);
                w.push(idx as u64, INDEX_BITS);
                w.push(u64::from(word & 0xff), 8);
                dict.push(word);
            } else if let Some(idx) = dict.match_high_bytes(word, 2) {
                w.push(C_MMXX, 4);
                w.push(idx as u64, INDEX_BITS);
                w.push(u64::from(word & 0xffff), 16);
                dict.push(word);
            } else {
                w.push(C_XXXX, 2);
                w.push(u64::from(word), 32);
                dict.push(word);
            }
        }
        let payload = w.into_bytes();
        Compressed::new(
            self.name(),
            SegmentCount::from_bytes(payload.len()),
            payload,
        )
    }

    fn decompress(&self, compressed: &Compressed) -> CacheLine {
        assert_eq!(compressed.algorithm(), self.name());
        let mut r = SlowBitReader::new(compressed.payload());
        let mut dict = Dictionary::new();
        let mut words = [0u32; 16];
        for word in &mut words {
            let c2 = r.read(2);
            *word = match c2 {
                c if c == C_ZZZZ => 0,
                c if c == C_XXXX => {
                    let v = r.read(32) as u32;
                    dict.push(v);
                    v
                }
                c if c == C_MMMM => {
                    let idx = r.read(INDEX_BITS) as usize;
                    dict.get(idx)
                }
                _ => {
                    let c4 = 0b1100 | r.read(2);
                    match c4 {
                        c if c == C_MMXX => {
                            let idx = r.read(INDEX_BITS) as usize;
                            let low = r.read(16) as u32;
                            let v = (dict.get(idx) & 0xffff_0000) | low;
                            dict.push(v);
                            v
                        }
                        c if c == C_ZZZX => r.read(8) as u32,
                        c if c == C_MMMX => {
                            let idx = r.read(INDEX_BITS) as usize;
                            let low = r.read(8) as u32;
                            let v = (dict.get(idx) & 0xffff_ff00) | low;
                            dict.push(v);
                            v
                        }
                        other => panic!("invalid C-Pack code {other:04b}"),
                    }
                }
            };
        }
        CacheLine::from_u32_words(&words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_kernels_roundtrip() {
        let lines = [
            CacheLine::zeroed(),
            CacheLine::from_u64_words(&[0xdead_beef_0bad_f00d; 8]),
            CacheLine::from_u64_words(&core::array::from_fn(|i| 0x7f3a_bc00_1000 + i as u64 * 16)),
            CacheLine::from_u64_words(&core::array::from_fn(|i| {
                (i as u64 + 1).wrapping_mul(0x0123_4567_89ab_cdef)
            })),
        ];
        for line in &lines {
            for c in [
                Box::new(RefBdi::new()) as Box<dyn Compressor>,
                Box::new(RefFpc::new()),
                Box::new(RefCPack::new()),
            ] {
                let compressed = c.compress(line);
                assert_eq!(&c.decompress(&compressed), line, "{} lossless", c.name());
                assert_eq!(compressed.segments(), c.compressed_size(line));
            }
        }
    }
}
