//! Base-Delta-Immediate (BDI) compression.
//!
//! Implements the algorithm of Pekhimenko et al., "Base-Delta-Immediate
//! Compression: Practical Data Compression for On-Chip Caches" (PACT 2012),
//! which the Base-Victim paper uses as its LLC compression algorithm due to
//! its fast (2-cycle) decompression.
//!
//! A 64-byte line is viewed as an array of fixed-width elements (8, 4, or
//! 2 bytes). Each element must be representable as a small signed delta from
//! either an arbitrary per-line base (the first element that does not fit a
//! zero delta) or the implicit base **zero** (the "immediate" part). A
//! per-element mask records which base was used.
//!
//! The kernel is **word-wise**: the line is loaded once into stack arrays
//! of `u64`/`u32`/`u16` words via `from_le_bytes` chunks, and base
//! selection, delta checks, and payload packing operate on those words
//! directly — no per-byte loops and no heap-allocated temporaries. The
//! frozen byte-at-a-time original lives in [`crate::reference::RefBdi`];
//! differential tests assert the two produce bit-identical payloads.

use crate::line::{CacheLine, CACHE_LINE_BYTES};
use crate::{Compressed, Compressor, SegmentCount};

/// The encoding a BDI compression pass selected for a line.
///
/// Encodings are named `B<k>D<d>`: `k`-byte elements compressed to `d`-byte
/// deltas. `Zeros` (all-zero line) and `Rep` (one repeated 8-byte value) are
/// the two special cases; `Uncompressed` is the fallback.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum BdiEncoding {
    /// All 64 bytes are zero; only tag metadata is needed.
    Zeros = 0,
    /// All eight 64-bit words are identical; payload is that word.
    Rep = 1,
    /// 8-byte elements, 1-byte deltas.
    B8D1 = 2,
    /// 8-byte elements, 2-byte deltas.
    B8D2 = 3,
    /// 8-byte elements, 4-byte deltas.
    B8D4 = 4,
    /// 4-byte elements, 1-byte deltas.
    B4D1 = 5,
    /// 4-byte elements, 2-byte deltas.
    B4D2 = 6,
    /// 2-byte elements, 1-byte deltas.
    B2D1 = 7,
    /// Incompressible line stored verbatim.
    Uncompressed = 8,
}

impl BdiEncoding {
    /// All encodings in selection-priority order (smallest typical size
    /// first; ties broken toward cheaper decompression).
    pub const ALL: [BdiEncoding; 9] = [
        BdiEncoding::Zeros,
        BdiEncoding::Rep,
        BdiEncoding::B8D1,
        BdiEncoding::B4D1,
        BdiEncoding::B8D2,
        BdiEncoding::B2D1,
        BdiEncoding::B4D2,
        BdiEncoding::B8D4,
        BdiEncoding::Uncompressed,
    ];

    /// Short stable name, used for telemetry counter labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        NAMES[self as usize]
    }

    /// `(element_bytes, delta_bytes)` for the delta encodings, `None` for
    /// the special cases.
    #[must_use]
    pub fn geometry(self) -> Option<(usize, usize)> {
        match self {
            BdiEncoding::B8D1 => Some((8, 1)),
            BdiEncoding::B8D2 => Some((8, 2)),
            BdiEncoding::B8D4 => Some((8, 4)),
            BdiEncoding::B4D1 => Some((4, 1)),
            BdiEncoding::B4D2 => Some((4, 2)),
            BdiEncoding::B2D1 => Some((2, 1)),
            _ => None,
        }
    }

    /// Compressed payload size in bytes (excluding tag metadata).
    ///
    /// Delta encodings carry: base (`k` bytes) + one delta per element
    /// (`d` bytes each) + a one-bit-per-element base-selection mask.
    #[must_use]
    pub fn payload_bytes(self) -> usize {
        match self {
            BdiEncoding::Zeros => 0,
            BdiEncoding::Rep => 8,
            BdiEncoding::Uncompressed => CACHE_LINE_BYTES,
            enc => {
                let (k, d) = enc.geometry().expect("delta encoding");
                let n = CACHE_LINE_BYTES / k;
                k + n * d + n.div_ceil(8)
            }
        }
    }

    /// The data-array footprint of this encoding in 4-byte segments.
    #[must_use]
    pub fn segments(self) -> SegmentCount {
        SegmentCount::from_bytes(self.payload_bytes())
    }

    pub(crate) fn from_tag(tag: u8) -> BdiEncoding {
        match tag {
            0 => BdiEncoding::Zeros,
            1 => BdiEncoding::Rep,
            2 => BdiEncoding::B8D1,
            3 => BdiEncoding::B8D2,
            4 => BdiEncoding::B8D4,
            5 => BdiEncoding::B4D1,
            6 => BdiEncoding::B4D2,
            7 => BdiEncoding::B2D1,
            8 => BdiEncoding::Uncompressed,
            other => panic!("invalid BDI encoding tag {other}"),
        }
    }
}

/// Encoding names indexed by discriminant (the `repr(u8)` order, which is
/// also the index [`Compressor::classified_size`] reports).
const NAMES: [&str; 9] = [
    "zeros",
    "rep",
    "b8d1",
    "b8d2",
    "b8d4",
    "b4d1",
    "b4d2",
    "b2d1",
    "uncompressed",
];

/// The Base-Delta-Immediate compressor.
///
/// # Examples
///
/// ```
/// use bv_compress::{Bdi, CacheLine, Compressor, SegmentCount};
///
/// let bdi = Bdi::new();
/// assert_eq!(
///     bdi.compressed_size(&CacheLine::zeroed()),
///     SegmentCount::MIN,
///     "zero lines need only tag metadata",
/// );
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Bdi {
    _private: (),
}

impl Bdi {
    /// Creates a BDI compressor.
    #[must_use]
    pub fn new() -> Bdi {
        Bdi::default()
    }

    /// Determines the best encoding for a line without packing the payload.
    ///
    /// [`BdiEncoding::ALL`] is ordered by ascending payload size, so the
    /// first encoding the line satisfies is the best one; the checks run
    /// word-wise over stack arrays loaded once from the line.
    ///
    /// Encodability at a width is monotone in the delta size: if every
    /// element fits zero-or-base within `d` bits, it also fits within
    /// `d' ≥ 2d` bits (the `d'`-pass may pick a different base `C`, but any
    /// element `E` outside the zero range satisfies `|E−C| ≤ |E−B| + |B−C|
    /// < 2^d ≤ 2^(d'−1)` for the `d`-pass base `B`, with no modular wrap
    /// since `2^d ≤ 2^(k−1)`). So each width's *loosest* check doubles as a
    /// gate for its tighter siblings, and an incompressible line is
    /// rejected with one check per width instead of one per encoding.
    #[must_use]
    pub fn select_encoding(&self, line: &CacheLine) -> BdiEncoding {
        let w8 = line.u64_array();
        if w8 == [0u64; 8] {
            return BdiEncoding::Zeros;
        }
        if w8.iter().all(|&w| w == w8[0]) {
            return BdiEncoding::Rep;
        }
        let b8 = delta_encodable(&w8, 32);
        if b8 && delta_encodable(&w8, 8) {
            return BdiEncoding::B8D1;
        }
        let w4 = line.u32_array();
        let b4 = delta_encodable(&w4, 16);
        if b4 && delta_encodable(&w4, 8) {
            return BdiEncoding::B4D1;
        }
        if b8 && delta_encodable(&w8, 16) {
            return BdiEncoding::B8D2;
        }
        if delta_encodable(&line.u16_array(), 8) {
            return BdiEncoding::B2D1;
        }
        if b4 {
            return BdiEncoding::B4D2;
        }
        if b8 {
            return BdiEncoding::B8D4;
        }
        BdiEncoding::Uncompressed
    }
}

impl Compressor for Bdi {
    fn name(&self) -> &'static str {
        "bdi"
    }

    fn compress(&self, line: &CacheLine) -> Compressed {
        let enc = self.select_encoding(line);
        let mut payload = vec![enc as u8];
        match enc {
            BdiEncoding::Zeros => {}
            BdiEncoding::Rep => payload.extend_from_slice(&line.u64_word(0).to_le_bytes()),
            BdiEncoding::Uncompressed => payload.extend_from_slice(line.as_bytes()),
            enc => pack_deltas(line, enc, &mut payload),
        }
        Compressed::new(self.name(), enc.segments(), payload)
    }

    fn decompress(&self, compressed: &Compressed) -> CacheLine {
        assert_eq!(
            compressed.algorithm(),
            self.name(),
            "compressed with a different algorithm"
        );
        let payload = compressed.payload();
        let enc = BdiEncoding::from_tag(payload[0]);
        let body = &payload[1..];
        match enc {
            BdiEncoding::Zeros => CacheLine::zeroed(),
            BdiEncoding::Rep => {
                let word = u64::from_le_bytes(body[..8].try_into().expect("8-byte rep value"));
                CacheLine::from_u64_words(&[word; 8])
            }
            BdiEncoding::Uncompressed => {
                CacheLine::from_bytes(body.try_into().expect("64-byte verbatim line"))
            }
            enc => unpack_deltas(body, enc),
        }
    }

    fn compressed_size(&self, line: &CacheLine) -> SegmentCount {
        self.select_encoding(line).segments()
    }

    fn encodings(&self) -> &'static [&'static str] {
        &NAMES
    }

    fn classified_size(&self, line: &CacheLine) -> (SegmentCount, Option<usize>) {
        let enc = self.select_encoding(line);
        (enc.segments(), Some(enc as usize))
    }
}

/// Does `value - from` fit in a signed `dbits`-bit delta, computed modulo
/// the `kbits`-bit element width (hardware subtracts at element width)?
#[inline]
fn fits(value: u64, from: u64, kbits: u32, dbits: u32) -> bool {
    let diff = value.wrapping_sub(from) & mask_bits(kbits);
    let signed = sign_extend(diff, kbits);
    signed >= -(1i64 << (dbits - 1)) && signed < (1i64 << (dbits - 1))
}

fn mask_bits(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn sign_extend(value: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((value << shift) as i64) >> shift
}

/// The element widths BDI packs, sealed to the three the paper's geometry
/// uses. [`delta_encodable`] runs directly on the native-width arrays
/// ([`u64`; 8], [`u32`; 16], [`u16`; 32]) so the autovectorizer packs
/// 8/16/32 lanes per register with no widening pass, and the `mod 2^k` of
/// the range identity is the type's own wrapping arithmetic.
trait DeltaElem: Copy + Eq {
    /// Truncating conversion from a `u64` bit pattern.
    fn trunc(v: u64) -> Self;
    fn wadd(self, o: Self) -> Self;
    fn wsub(self, o: Self) -> Self;
    fn and(self, o: Self) -> Self;
    fn or(self, o: Self) -> Self;
    fn is_zero(self) -> bool;
}

macro_rules! delta_elem {
    ($($t:ty),*) => {$(
        impl DeltaElem for $t {
            #[inline(always)]
            fn trunc(v: u64) -> $t {
                v as $t
            }
            #[inline(always)]
            fn wadd(self, o: $t) -> $t {
                self.wrapping_add(o)
            }
            #[inline(always)]
            fn wsub(self, o: $t) -> $t {
                self.wrapping_sub(o)
            }
            #[inline(always)]
            fn and(self, o: $t) -> $t {
                self & o
            }
            #[inline(always)]
            fn or(self, o: $t) -> $t {
                self | o
            }
            #[inline(always)]
            fn is_zero(self) -> bool {
                self == 0
            }
        }
    )*};
}
delta_elem!(u16, u32, u64);

/// Checks whether every element fits a signed `dbits`-wide delta from zero
/// or from a single arbitrary base (the first element that fails the
/// zero-delta test).
///
/// The check is two fixed-trip-count branchless passes over the
/// native-width element array — a shape the autovectorizer lifts to SIMD.
/// The range test uses the identity `sign_extend(x, k) ∈ [-2^(d-1),
/// 2^(d-1))  ⟺  ((x + 2^(d-1)) mod 2^k) & !(2^d - 1) == 0` with `k` the
/// element width: after biasing, a fitting delta has no bits above the
/// delta width, so pass 1 is a pure add/and/or reduction and pass 2 two
/// such chains joined by compares — no sign extension or per-element
/// branching.
#[inline(always)]
fn delta_encodable<T: DeltaElem, const N: usize>(elems: &[T; N], dbits: u32) -> bool {
    let bias = T::trunc(1u64 << (dbits - 1));
    // Bits of a biased value that must all be clear for the delta to fit.
    let hi = T::trunc(!((1u64 << dbits) - 1));

    // Pass 1: any element outside the zero-base range leaves high bits in
    // the reduction.
    let mut misfit = T::trunc(0);
    for &v in elems {
        misfit = misfit.or(v.wadd(bias).and(hi));
    }
    if misfit.is_zero() {
        return true;
    }

    // The base is the first element that failed the zero test (early-exit
    // scalar scan: on incompressible data this stops within a few
    // elements, and pass 1 guarantees a match exists).
    let base = elems
        .iter()
        .copied()
        .find(|&v| !v.wadd(bias).and(hi).is_zero())
        .expect("pass 1 saw a zero-base misfit");

    // Pass 2: every element must fit one of the two bases.
    let mut bad = false;
    for &v in elems {
        let z = v.wadd(bias).and(hi);
        let b = v.wsub(base).wadd(bias).and(hi);
        bad |= !z.is_zero() & !b.is_zero();
    }
    !bad
}

fn pack_deltas(line: &CacheLine, enc: BdiEncoding, payload: &mut Vec<u8>) {
    let (k, d) = enc.geometry().expect("delta encoding");
    match k {
        8 => pack_words(&line.u64_array(), k, d, payload),
        4 => pack_words(&line.u32_array().map(u64::from), k, d, payload),
        2 => pack_words(&line.u16_array().map(u64::from), k, d, payload),
        _ => unreachable!("element width {k}"),
    }
}

/// Packs `[base (k bytes LE), deltas (n*d bytes LE), mask (ceil(n/8) bytes,
/// MSB-first)]` onto `payload`. The mask bit for element `i` lands in byte
/// `i / 8` at bit position `7 - i % 8`, matching the reference encoder's
/// bitstream exactly.
fn pack_words(elems: &[u64], k: usize, d: usize, payload: &mut Vec<u8>) {
    let kbits = k as u32 * 8;
    let dbits = d as u32 * 8;
    let n = elems.len();
    let base = elems
        .iter()
        .copied()
        .find(|&v| !fits(v, 0, kbits, dbits))
        .unwrap_or(0);

    payload.reserve(k + n * d + n.div_ceil(8));
    payload.extend_from_slice(&base.to_le_bytes()[..k]);
    let mut mask = [0u8; 4]; // n <= 32 elements -> at most 4 mask bytes
    for (i, &value) in elems.iter().enumerate() {
        let use_base = !fits(value, 0, kbits, dbits);
        if use_base {
            mask[i / 8] |= 1 << (7 - i % 8);
        }
        let from = if use_base { base } else { 0 };
        let delta = value.wrapping_sub(from) & mask_bits(kbits);
        payload.extend_from_slice(&delta.to_le_bytes()[..d]);
    }
    payload.extend_from_slice(&mask[..n.div_ceil(8)]);
}

fn unpack_deltas(body: &[u8], enc: BdiEncoding) -> CacheLine {
    let (k, d) = enc.geometry().expect("delta encoding");
    let n = CACHE_LINE_BYTES / k;
    let mut base_bytes = [0u8; 8];
    base_bytes[..k].copy_from_slice(&body[..k]);
    let base = u64::from_le_bytes(base_bytes);

    let deltas = &body[k..k + n * d];
    let mask = &body[k + n * d..];

    let kbits = k as u32 * 8;
    let dbits = d as u32 * 8;
    let mut bytes = [0u8; CACHE_LINE_BYTES];
    for i in 0..n {
        let mut raw = [0u8; 8];
        raw[..d].copy_from_slice(&deltas[i * d..i * d + d]);
        let delta = sign_extend(u64::from_le_bytes(raw), dbits) as u64;
        let use_base = mask[i / 8] >> (7 - i % 8) & 1 == 1;
        let from = if use_base { base } else { 0 };
        let value = from.wrapping_add(delta) & mask_bits(kbits);
        bytes[i * k..i * k + k].copy_from_slice(&value.to_le_bytes()[..k]);
    }
    CacheLine::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(line: &CacheLine) -> BdiEncoding {
        let bdi = Bdi::new();
        let c = bdi.compress(line);
        assert_eq!(&bdi.decompress(&c), line, "lossless roundtrip");
        assert_eq!(c.segments(), bdi.compressed_size(line));
        BdiEncoding::from_tag(c.payload()[0])
    }

    #[test]
    fn zero_line_uses_zeros_encoding() {
        assert_eq!(roundtrip(&CacheLine::zeroed()), BdiEncoding::Zeros);
        assert_eq!(Bdi::new().compressed_size(&CacheLine::zeroed()).get(), 1);
    }

    #[test]
    fn repeated_word_uses_rep() {
        let line = CacheLine::from_u64_words(&[0xdead_beef_0bad_f00d; 8]);
        assert_eq!(roundtrip(&line), BdiEncoding::Rep);
        assert_eq!(Bdi::new().compressed_size(&line).get(), 2);
    }

    #[test]
    fn pointer_like_line_selects_b8d1() {
        // Heap pointers into one allocation: huge base, tiny deltas.
        let words: [u64; 8] = core::array::from_fn(|i| 0x7f3a_bc00_1000 + i as u64 * 16);
        let line = CacheLine::from_u64_words(&words);
        assert_eq!(roundtrip(&line), BdiEncoding::B8D1);
        // 8 base + 8 deltas + 1 mask = 17 bytes = 5 segments.
        assert_eq!(Bdi::new().compressed_size(&line).get(), 5);
    }

    #[test]
    fn small_ints_select_b4d1() {
        // 32-bit counters with small values mixed with a large-ish base group.
        let words: [u32; 16] = core::array::from_fn(|i| 0x010_0000 + (i as u32 % 7));
        let line = CacheLine::from_u32_words(&words);
        let enc = roundtrip(&line);
        assert_eq!(enc, BdiEncoding::B4D1);
        // 4 base + 16 deltas + 2 mask = 22 bytes = 6 segments.
        assert_eq!(Bdi::new().compressed_size(&line).get(), 6);
    }

    #[test]
    fn immediate_zero_base_mixes_with_arbitrary_base() {
        // Half the elements are tiny (zero base), half cluster far away.
        let words: [u64; 8] = core::array::from_fn(|i| {
            if i % 2 == 0 {
                i as u64
            } else {
                0x5555_0000 + i as u64
            }
        });
        let line = CacheLine::from_u64_words(&words);
        let enc = roundtrip(&line);
        assert!(
            enc != BdiEncoding::Uncompressed,
            "two-base line must compress, got {enc:?}"
        );
    }

    #[test]
    fn random_line_falls_back_to_uncompressed() {
        // A line engineered to defeat every encoding: elements far apart.
        let words: [u64; 8] = core::array::from_fn(|i| (i as u64 + 1) * 0x0123_4567_89ab_cdef);
        let line = CacheLine::from_u64_words(&words);
        assert_eq!(roundtrip(&line), BdiEncoding::Uncompressed);
        assert!(Bdi::new().compressed_size(&line).is_full_line());
    }

    #[test]
    fn wrapping_deltas_roundtrip() {
        // Deltas that wrap modulo the element width must still reconstruct.
        let words: [u64; 8] = core::array::from_fn(|i| {
            (u64::MAX - 3).wrapping_add(i as u64) // wraps past 2^64
        });
        let line = CacheLine::from_u64_words(&words);
        let _ = roundtrip(&line);
    }

    #[test]
    fn payload_sizes_match_formula() {
        assert_eq!(BdiEncoding::B8D1.payload_bytes(), 8 + 8 + 1);
        assert_eq!(BdiEncoding::B8D2.payload_bytes(), 8 + 16 + 1);
        assert_eq!(BdiEncoding::B8D4.payload_bytes(), 8 + 32 + 1);
        assert_eq!(BdiEncoding::B4D1.payload_bytes(), 4 + 16 + 2);
        assert_eq!(BdiEncoding::B4D2.payload_bytes(), 4 + 32 + 2);
        assert_eq!(BdiEncoding::B2D1.payload_bytes(), 2 + 32 + 4);
        assert_eq!(BdiEncoding::Zeros.payload_bytes(), 0);
        assert_eq!(BdiEncoding::Rep.payload_bytes(), 8);
        assert_eq!(BdiEncoding::Uncompressed.payload_bytes(), 64);
    }

    #[test]
    fn selection_prefers_smaller_encoding() {
        // A line valid under both B8D1 and B8D2 must report the B8D1 size.
        let words: [u64; 8] = core::array::from_fn(|i| 1000 + i as u64);
        let line = CacheLine::from_u64_words(&words);
        let bdi = Bdi::new();
        assert!(bdi.compressed_size(&line) <= BdiEncoding::B8D1.segments());
    }

    /// The pre-refactor scalar walk, kept as an in-crate oracle for the
    /// branchless bitmask version of `delta_encodable`.
    fn delta_encodable_scalar(elems: &[u64], kbits: u32, dbits: u32) -> bool {
        let mut base: Option<u64> = None;
        for &value in elems {
            if fits(value, 0, kbits, dbits) {
                continue;
            }
            match base {
                None => base = Some(value),
                Some(b) if fits(value, b, kbits, dbits) => {}
                Some(_) => return false,
            }
        }
        true
    }

    #[test]
    fn branchless_delta_check_matches_scalar_walk() {
        let mut x = 0x0bad_f00d_dead_beefu64;
        let mut rand = move || {
            x = x
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add(0x1405_7b7e_f767_814f);
            x
        };
        for trial in 0..2048 {
            // Bias toward near-miss lines: clustered values with occasional
            // wild elements, across several magnitudes.
            let spread = 1u64 << (rand() % 40);
            let origin = rand();
            let w8: [u64; 8] = core::array::from_fn(|_| match rand() % 4 {
                0 => rand() % spread,
                1 => rand(),
                _ => origin.wrapping_add(rand() % spread),
            });
            for dbits in [8, 16, 32] {
                assert_eq!(
                    delta_encodable(&w8, dbits),
                    delta_encodable_scalar(&w8, 64, dbits),
                    "trial {trial}, k=64 d={dbits}, elems {w8:x?}"
                );
            }
            let w4: [u32; 16] = core::array::from_fn(|_| rand() as u32 % 512);
            assert_eq!(
                delta_encodable(&w4, 8),
                delta_encodable_scalar(&w4.map(u64::from), 32, 8)
            );
            let w2: [u16; 32] = core::array::from_fn(|_| rand() as u16);
            assert_eq!(
                delta_encodable(&w2, 8),
                delta_encodable_scalar(&w2.map(u64::from), 16, 8)
            );
        }
    }

    #[test]
    fn size_never_exceeds_full_line() {
        for seed in 0..64u64 {
            let words: [u64; 8] = core::array::from_fn(|i| {
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64 * 0x1234_5678_9abc_def1)
            });
            let line = CacheLine::from_u64_words(&words);
            assert!(Bdi::new().compressed_size(&line) <= SegmentCount::FULL);
        }
    }
}
