//! Trivial compressors used as experimental controls.

use crate::line::CacheLine;
use crate::{Compressed, Compressor, SegmentCount};

/// A compressor that only detects all-zero lines (a Zero-Content-Cache-style
/// control; see Dusser et al., ICS 2009, discussed in the paper's related
/// work). Everything else is stored verbatim.
///
/// # Examples
///
/// ```
/// use bv_compress::{CacheLine, Compressor, ZeroOnly};
///
/// let z = ZeroOnly::new();
/// assert_eq!(z.compressed_size(&CacheLine::zeroed()).get(), 1);
/// let line = CacheLine::from_u32_words(&[5; 16]);
/// assert!(z.compressed_size(&line).is_full_line());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ZeroOnly {
    _private: (),
}

impl ZeroOnly {
    /// Creates a zero-detection-only compressor.
    #[must_use]
    pub fn new() -> ZeroOnly {
        ZeroOnly::default()
    }
}

impl Compressor for ZeroOnly {
    fn name(&self) -> &'static str {
        "zero-only"
    }

    fn compress(&self, line: &CacheLine) -> Compressed {
        if line.is_zero() {
            Compressed::new(self.name(), SegmentCount::MIN, Vec::new())
        } else {
            Compressed::new(self.name(), SegmentCount::FULL, line.as_bytes().to_vec())
        }
    }

    fn decompress(&self, compressed: &Compressed) -> CacheLine {
        assert_eq!(compressed.algorithm(), self.name());
        if compressed.payload().is_empty() {
            CacheLine::zeroed()
        } else {
            CacheLine::from_bytes(
                compressed
                    .payload()
                    .try_into()
                    .expect("verbatim 64-byte payload"),
            )
        }
    }

    fn compressed_size(&self, line: &CacheLine) -> SegmentCount {
        if line.is_zero() {
            SegmentCount::MIN
        } else {
            SegmentCount::FULL
        }
    }

    fn encodings(&self) -> &'static [&'static str] {
        &["zero", "nonzero"]
    }

    fn classified_size(&self, line: &CacheLine) -> (SegmentCount, Option<usize>) {
        if line.is_zero() {
            (SegmentCount::MIN, Some(0))
        } else {
            (SegmentCount::FULL, Some(1))
        }
    }
}

/// A compressor that never compresses. Used to make a compressed-cache
/// organization degenerate to its uncompressed baseline in differential
/// tests.
///
/// # Examples
///
/// ```
/// use bv_compress::{CacheLine, Compressor, NullCompressor};
///
/// let n = NullCompressor::new();
/// assert!(n.compressed_size(&CacheLine::zeroed()).is_full_line());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NullCompressor {
    _private: (),
}

impl NullCompressor {
    /// Creates the identity (non-)compressor.
    #[must_use]
    pub fn new() -> NullCompressor {
        NullCompressor::default()
    }
}

impl Compressor for NullCompressor {
    fn name(&self) -> &'static str {
        "null"
    }

    fn compress(&self, line: &CacheLine) -> Compressed {
        Compressed::new(self.name(), SegmentCount::FULL, line.as_bytes().to_vec())
    }

    fn decompress(&self, compressed: &Compressed) -> CacheLine {
        assert_eq!(compressed.algorithm(), self.name());
        CacheLine::from_bytes(
            compressed
                .payload()
                .try_into()
                .expect("verbatim 64-byte payload"),
        )
    }

    fn compressed_size(&self, _line: &CacheLine) -> SegmentCount {
        SegmentCount::FULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_only_roundtrips_both_cases() {
        let z = ZeroOnly::new();
        for line in [CacheLine::zeroed(), CacheLine::from_u32_words(&[9; 16])] {
            let c = z.compress(&line);
            assert_eq!(z.decompress(&c), line);
        }
    }

    #[test]
    fn null_compressor_is_identity() {
        let n = NullCompressor::new();
        let line = CacheLine::from_u64_words(&core::array::from_fn(|i| i as u64 * 3));
        let c = n.compress(&line);
        assert!(c.segments().is_full_line());
        assert_eq!(n.decompress(&c), line);
    }
}
