//! Bit-granular packing helpers shared by FPC and C-Pack.
//!
//! Hardware compressors emit variable-width codes; these helpers model that
//! bitstream exactly so decompression can be verified lossless.

/// Appends variable-width codes to a growing bit vector (MSB-first within
/// each pushed field).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Pushes the low `width` bits of `value`, most-significant first.
    pub fn push(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value overflows width"
        );
        for i in (0..width).rev() {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Total number of bits written so far.
    #[allow(dead_code)] // used by tests and kept for codec diagnostics
    pub fn len_bits(&self) -> usize {
        self.bits.len()
    }

    /// Packs the bitstream into bytes (zero-padded in the final byte).
    pub fn into_bytes(self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &bit) in self.bits.iter().enumerate() {
            if bit {
                out[i / 8] |= 1 << (7 - (i % 8));
            }
        }
        out
    }
}

/// Reads variable-width codes from a packed byte stream produced by
/// [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits, most-significant first.
    ///
    /// # Panics
    ///
    /// Panics if the stream is exhausted (which indicates a codec bug).
    pub fn read(&mut self, width: u32) -> u64 {
        debug_assert!(width <= 64);
        let mut value = 0u64;
        for _ in 0..width {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            value = (value << 1) | u64::from(bit);
            self.pos += 1;
        }
        value
    }

    /// Number of bits consumed so far.
    #[allow(dead_code)] // used by tests and kept for codec diagnostics
    pub fn bits_read(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.push(0b101, 3);
        w.push(0xdead_beef, 32);
        w.push(1, 1);
        w.push(0x3f, 6);
        assert_eq!(w.len_bits(), 42);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(32), 0xdead_beef);
        assert_eq!(r.read(1), 1);
        assert_eq!(r.read(6), 0x3f);
        assert_eq!(r.bits_read(), 42);
    }

    #[test]
    fn zero_width_reads_nothing() {
        let mut w = BitWriter::new();
        w.push(0, 0);
        assert_eq!(w.len_bits(), 0);
        let bytes = w.into_bytes();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(0), 0);
    }

    #[test]
    fn full_width_u64() {
        let mut w = BitWriter::new();
        w.push(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(64), u64::MAX);
    }
}
