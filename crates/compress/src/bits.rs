//! Bit-granular packing helpers shared by FPC and C-Pack.
//!
//! Hardware compressors emit variable-width codes; these helpers model that
//! bitstream exactly so decompression can be verified lossless.

/// Appends variable-width codes to a growing packed byte buffer
/// (MSB-first within each pushed field).
///
/// Bits are packed straight into bytes as they arrive — up to eight bits
/// per loop iteration — so pushing a field costs O(width / 8) byte
/// operations rather than one heap write per bit.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bitlen: usize,
}

impl BitWriter {
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Pushes the low `width` bits of `value`, most-significant first.
    pub fn push(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value overflows width"
        );
        let mut rem = width;
        while rem > 0 {
            let bit_in_byte = (self.bitlen % 8) as u32;
            if bit_in_byte == 0 {
                self.bytes.push(0);
            }
            let free = 8 - bit_in_byte;
            let take = free.min(rem);
            let chunk = ((value >> (rem - take)) & ((1u64 << take) - 1)) as u8;
            *self.bytes.last_mut().expect("byte pushed above") |= chunk << (free - take);
            self.bitlen += take as usize;
            rem -= take;
        }
    }

    /// Total number of bits written so far.
    #[allow(dead_code)] // used by tests and kept for codec diagnostics
    pub fn len_bits(&self) -> usize {
        self.bitlen
    }

    /// Packs the bitstream into bytes (zero-padded in the final byte).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads variable-width codes from a packed byte stream produced by
/// [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits, most-significant first (consumed up to eight
    /// bits per loop iteration).
    ///
    /// # Panics
    ///
    /// Panics if the stream is exhausted (which indicates a codec bug).
    pub fn read(&mut self, width: u32) -> u64 {
        debug_assert!(width <= 64);
        let mut value = 0u64;
        let mut rem = width;
        while rem > 0 {
            let byte = self.bytes[self.pos / 8];
            let bit_in_byte = (self.pos % 8) as u32;
            let avail = 8 - bit_in_byte;
            let take = avail.min(rem);
            let chunk = (byte >> (avail - take)) & (((1u16 << take) - 1) as u8);
            value = (value << take) | u64::from(chunk);
            self.pos += take as usize;
            rem -= take;
        }
        value
    }

    /// Number of bits consumed so far.
    #[allow(dead_code)] // used by tests and kept for codec diagnostics
    pub fn bits_read(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.push(0b101, 3);
        w.push(0xdead_beef, 32);
        w.push(1, 1);
        w.push(0x3f, 6);
        assert_eq!(w.len_bits(), 42);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(32), 0xdead_beef);
        assert_eq!(r.read(1), 1);
        assert_eq!(r.read(6), 0x3f);
        assert_eq!(r.bits_read(), 42);
    }

    #[test]
    fn zero_width_reads_nothing() {
        let mut w = BitWriter::new();
        w.push(0, 0);
        assert_eq!(w.len_bits(), 0);
        let bytes = w.into_bytes();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(0), 0);
    }

    #[test]
    fn full_width_u64() {
        let mut w = BitWriter::new();
        w.push(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(64), u64::MAX);
    }
}
