//! The 64-byte cache line value type.

use core::fmt;

/// Bytes in one cache line (all caches in the modeled hierarchy use 64 B).
pub const CACHE_LINE_BYTES: usize = 64;

/// Bytes in one compression segment. The paper aligns compressed lines at
/// 4-byte boundaries (Section IV.C: "our evaluation is based on 4B
/// segments").
pub const SEGMENT_BYTES: usize = 4;

/// Number of segments in a full line (64 / 4 = 16).
pub const SEGMENTS_PER_LINE: usize = CACHE_LINE_BYTES / SEGMENT_BYTES;

/// A 64-byte cache line's data contents.
///
/// The simulator carries real data values through the hierarchy so that
/// compression operates on genuine bit patterns rather than modeled sizes.
///
/// # Examples
///
/// ```
/// use bv_compress::CacheLine;
///
/// let zero = CacheLine::zeroed();
/// assert!(zero.is_zero());
///
/// let line = CacheLine::from_u32_words(&[7; 16]);
/// assert_eq!(line.u32_word(3), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheLine {
    bytes: [u8; CACHE_LINE_BYTES],
}

impl CacheLine {
    /// Creates an all-zero line.
    #[must_use]
    pub fn zeroed() -> CacheLine {
        CacheLine {
            bytes: [0; CACHE_LINE_BYTES],
        }
    }

    /// Creates a line from raw bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; CACHE_LINE_BYTES]) -> CacheLine {
        CacheLine { bytes }
    }

    /// Creates a line from sixteen little-endian 32-bit words.
    #[must_use]
    pub fn from_u32_words(words: &[u32; 16]) -> CacheLine {
        let mut bytes = [0u8; CACHE_LINE_BYTES];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        CacheLine { bytes }
    }

    /// Creates a line from eight little-endian 64-bit words.
    #[must_use]
    pub fn from_u64_words(words: &[u64; 8]) -> CacheLine {
        let mut bytes = [0u8; CACHE_LINE_BYTES];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
        }
        CacheLine { bytes }
    }

    /// Raw byte view.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; CACHE_LINE_BYTES] {
        &self.bytes
    }

    /// The `i`-th little-endian 32-bit word (0..16).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    #[must_use]
    pub fn u32_word(&self, i: usize) -> u32 {
        let b: [u8; 4] = self.bytes[i * 4..i * 4 + 4]
            .try_into()
            .expect("4-byte slice");
        u32::from_le_bytes(b)
    }

    /// The `i`-th little-endian 64-bit word (0..8).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn u64_word(&self, i: usize) -> u64 {
        let b: [u8; 8] = self.bytes[i * 8..i * 8 + 8]
            .try_into()
            .expect("8-byte slice");
        u64::from_le_bytes(b)
    }

    /// The `i`-th little-endian 16-bit word (0..32).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[must_use]
    pub fn u16_word(&self, i: usize) -> u16 {
        let b: [u8; 2] = self.bytes[i * 2..i * 2 + 2]
            .try_into()
            .expect("2-byte slice");
        u16::from_le_bytes(b)
    }

    /// Iterates over the sixteen 32-bit words.
    pub fn u32_words(&self) -> impl Iterator<Item = u32> + '_ {
        (0..16).map(|i| self.u32_word(i))
    }

    /// Iterates over the eight 64-bit words.
    pub fn u64_words(&self) -> impl Iterator<Item = u64> + '_ {
        (0..8).map(|i| self.u64_word(i))
    }

    /// All eight little-endian 64-bit words as a stack array.
    ///
    /// This is the load the word-wise compression kernels start from: one
    /// pass of `from_le_bytes` chunks, no heap allocation.
    #[must_use]
    pub fn u64_array(&self) -> [u64; 8] {
        core::array::from_fn(|i| {
            u64::from_le_bytes(
                self.bytes[i * 8..i * 8 + 8]
                    .try_into()
                    .expect("8-byte chunk"),
            )
        })
    }

    /// All sixteen little-endian 32-bit words as a stack array.
    #[must_use]
    pub fn u32_array(&self) -> [u32; 16] {
        core::array::from_fn(|i| {
            u32::from_le_bytes(
                self.bytes[i * 4..i * 4 + 4]
                    .try_into()
                    .expect("4-byte chunk"),
            )
        })
    }

    /// All thirty-two little-endian 16-bit words as a stack array.
    #[must_use]
    pub fn u16_array(&self) -> [u16; 32] {
        core::array::from_fn(|i| {
            u16::from_le_bytes(
                self.bytes[i * 2..i * 2 + 2]
                    .try_into()
                    .expect("2-byte chunk"),
            )
        })
    }

    /// Returns `true` if every byte is zero (checked eight bytes at a
    /// time).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.u64_array() == [0u64; 8]
    }

    /// Writes a 64-bit value at a byte offset inside the line, simulating a
    /// store to the line. Offsets are clamped to keep the write in-bounds.
    #[must_use]
    pub fn with_u64_at(mut self, offset: usize, value: u64) -> CacheLine {
        let off = offset.min(CACHE_LINE_BYTES - 8) & !7;
        self.bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
        self
    }
}

impl Default for CacheLine {
    fn default() -> CacheLine {
        CacheLine::zeroed()
    }
}

impl From<[u8; CACHE_LINE_BYTES]> for CacheLine {
    fn from(bytes: [u8; CACHE_LINE_BYTES]) -> CacheLine {
        CacheLine::from_bytes(bytes)
    }
}

impl AsRef<[u8]> for CacheLine {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Debug for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CacheLine[")?;
        for (i, w) in self.u64_words().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_views_agree_with_bytes() {
        let mut bytes = [0u8; 64];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        let line = CacheLine::from_bytes(bytes);
        assert_eq!(line.u32_word(0), u32::from_le_bytes([0, 1, 2, 3]));
        assert_eq!(line.u16_word(1), u16::from_le_bytes([2, 3]));
        assert_eq!(
            line.u64_word(7),
            u64::from_le_bytes([56, 57, 58, 59, 60, 61, 62, 63])
        );
    }

    #[test]
    fn from_words_roundtrip() {
        let words: [u64; 8] = core::array::from_fn(|i| 0x0123_4567_89ab_cdef ^ (i as u64) << 40);
        let line = CacheLine::from_u64_words(&words);
        let back: Vec<u64> = line.u64_words().collect();
        assert_eq!(back, words);
    }

    #[test]
    fn word_arrays_agree_with_word_accessors() {
        let mut bytes = [0u8; 64];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(3);
        }
        let line = CacheLine::from_bytes(bytes);
        let w64 = line.u64_array();
        let w32 = line.u32_array();
        let w16 = line.u16_array();
        for (i, &w) in w64.iter().enumerate() {
            assert_eq!(w, line.u64_word(i));
        }
        for (i, &w) in w32.iter().enumerate() {
            assert_eq!(w, line.u32_word(i));
        }
        for (i, &w) in w16.iter().enumerate() {
            assert_eq!(w, line.u16_word(i));
        }
    }

    #[test]
    fn zero_detection() {
        assert!(CacheLine::zeroed().is_zero());
        let line = CacheLine::zeroed().with_u64_at(8, 1);
        assert!(!line.is_zero());
    }

    #[test]
    fn with_u64_at_clamps_offset() {
        let line = CacheLine::zeroed().with_u64_at(1000, 0xdead_beef);
        assert_eq!(line.u64_word(7), 0xdead_beef);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", CacheLine::zeroed());
        assert!(s.contains("CacheLine"));
    }
}
