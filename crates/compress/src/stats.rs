//! Aggregate compressibility statistics.

use crate::{SegmentCount, SEGMENTS_PER_LINE};
use core::fmt;

/// A histogram of compressed line sizes, used to classify workloads as
/// compression-friendly (mean compressed size ≤ 75% of uncompressed; the
/// paper's friendly set averages ≈ 50%).
///
/// # Examples
///
/// ```
/// use bv_compress::{CompressionStats, SegmentCount};
///
/// let mut stats = CompressionStats::new();
/// stats.record(SegmentCount::new(8));
/// stats.record(SegmentCount::new(16));
/// assert_eq!(stats.lines(), 2);
/// assert!((stats.mean_ratio() - 0.75).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompressionStats {
    histogram: [u64; SEGMENTS_PER_LINE],
}

impl CompressionStats {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> CompressionStats {
        CompressionStats::default()
    }

    /// Records one compressed line.
    pub fn record(&mut self, size: SegmentCount) {
        self.histogram[size.get() as usize - 1] += 1;
    }

    /// Total lines recorded.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.histogram.iter().sum()
    }

    /// Lines recorded with exactly `size` segments.
    #[must_use]
    pub fn count(&self, size: SegmentCount) -> u64 {
        self.histogram[size.get() as usize - 1]
    }

    /// Mean compressed size as a fraction of the uncompressed size
    /// (1.0 = incompressible). Returns 1.0 when empty.
    #[must_use]
    pub fn mean_ratio(&self) -> f64 {
        let lines = self.lines();
        if lines == 0 {
            return 1.0;
        }
        let total_segments: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        total_segments as f64 / (lines as f64 * SEGMENTS_PER_LINE as f64)
    }

    /// Fraction of lines that compressed to at most half a line.
    #[must_use]
    pub fn half_line_fraction(&self) -> f64 {
        let lines = self.lines();
        if lines == 0 {
            return 0.0;
        }
        let half: u64 = self.histogram[..SEGMENTS_PER_LINE / 2].iter().sum();
        half as f64 / lines as f64
    }

    /// The raw per-size counts (index `i` holds lines of `i + 1`
    /// segments), for serialization by checkpoint stores.
    #[must_use]
    pub fn histogram(&self) -> [u64; SEGMENTS_PER_LINE] {
        self.histogram
    }

    /// Rebuilds a histogram from serialized counts (the inverse of
    /// [`CompressionStats::histogram`]).
    #[must_use]
    pub fn from_histogram(histogram: [u64; SEGMENTS_PER_LINE]) -> CompressionStats {
        CompressionStats { histogram }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        for (a, b) in self.histogram.iter_mut().zip(other.histogram.iter()) {
            *a += b;
        }
    }

    /// Histogram-wise difference `self - snapshot`, for excluding warmup
    /// from measurements.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` has more lines in any bucket.
    #[must_use]
    pub fn since(&self, snapshot: &CompressionStats) -> CompressionStats {
        let mut out = CompressionStats::new();
        for (i, slot) in out.histogram.iter_mut().enumerate() {
            *slot = self.histogram[i] - snapshot.histogram[i];
        }
        out
    }
}

impl fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lines, mean size {:.1}% of uncompressed",
            self.lines(),
            self.mean_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_incompressible() {
        let stats = CompressionStats::new();
        assert_eq!(stats.lines(), 0);
        assert_eq!(stats.mean_ratio(), 1.0);
        assert_eq!(stats.half_line_fraction(), 0.0);
    }

    #[test]
    fn mean_ratio_weighted_by_counts() {
        let mut stats = CompressionStats::new();
        for _ in 0..3 {
            stats.record(SegmentCount::new(4)); // 25%
        }
        stats.record(SegmentCount::new(16)); // 100%
        let expected = (3.0 * 4.0 + 16.0) / (4.0 * 16.0);
        assert!((stats.mean_ratio() - expected).abs() < 1e-12);
    }

    #[test]
    fn half_line_fraction_counts_boundary() {
        let mut stats = CompressionStats::new();
        stats.record(SegmentCount::new(8)); // exactly half counts
        stats.record(SegmentCount::new(9)); // just over half does not
        assert!((stats.half_line_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_histograms() {
        let mut a = CompressionStats::new();
        a.record(SegmentCount::new(1));
        let mut b = CompressionStats::new();
        b.record(SegmentCount::new(1));
        b.record(SegmentCount::new(16));
        a.merge(&b);
        assert_eq!(a.lines(), 3);
        assert_eq!(a.count(SegmentCount::new(1)), 2);
    }
}
