//! Aggregate compressibility statistics.

use crate::{CacheLine, Compressor, SegmentCount, SEGMENTS_PER_LINE};
use core::fmt;

/// A histogram of compressed line sizes, used to classify workloads as
/// compression-friendly (mean compressed size ≤ 75% of uncompressed; the
/// paper's friendly set averages ≈ 50%).
///
/// # Examples
///
/// ```
/// use bv_compress::{CompressionStats, SegmentCount};
///
/// let mut stats = CompressionStats::new();
/// stats.record(SegmentCount::new(8));
/// stats.record(SegmentCount::new(16));
/// assert_eq!(stats.lines(), 2);
/// assert!((stats.mean_ratio() - 0.75).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompressionStats {
    histogram: [u64; SEGMENTS_PER_LINE],
}

impl CompressionStats {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> CompressionStats {
        CompressionStats::default()
    }

    /// Records one compressed line.
    pub fn record(&mut self, size: SegmentCount) {
        self.histogram[size.get() as usize - 1] += 1;
    }

    /// Total lines recorded.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.histogram.iter().sum()
    }

    /// Lines recorded with exactly `size` segments.
    #[must_use]
    pub fn count(&self, size: SegmentCount) -> u64 {
        self.histogram[size.get() as usize - 1]
    }

    /// Mean compressed size as a fraction of the uncompressed size
    /// (1.0 = incompressible). Returns 1.0 when empty.
    #[must_use]
    pub fn mean_ratio(&self) -> f64 {
        let lines = self.lines();
        if lines == 0 {
            return 1.0;
        }
        let total_segments: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 + 1) * n)
            .sum();
        total_segments as f64 / (lines as f64 * SEGMENTS_PER_LINE as f64)
    }

    /// Fraction of lines that compressed to at most half a line.
    #[must_use]
    pub fn half_line_fraction(&self) -> f64 {
        let lines = self.lines();
        if lines == 0 {
            return 0.0;
        }
        let half: u64 = self.histogram[..SEGMENTS_PER_LINE / 2].iter().sum();
        half as f64 / lines as f64
    }

    /// The raw per-size counts (index `i` holds lines of `i + 1`
    /// segments), for serialization by checkpoint stores.
    #[must_use]
    pub fn histogram(&self) -> [u64; SEGMENTS_PER_LINE] {
        self.histogram
    }

    /// Rebuilds a histogram from serialized counts (the inverse of
    /// [`CompressionStats::histogram`]).
    #[must_use]
    pub fn from_histogram(histogram: [u64; SEGMENTS_PER_LINE]) -> CompressionStats {
        CompressionStats { histogram }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        for (a, b) in self.histogram.iter_mut().zip(other.histogram.iter()) {
            *a += b;
        }
    }

    /// Histogram-wise difference `self - snapshot`, for excluding warmup
    /// from measurements.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` has more lines in any bucket.
    #[must_use]
    pub fn since(&self, snapshot: &CompressionStats) -> CompressionStats {
        let mut out = CompressionStats::new();
        for (i, slot) in out.histogram.iter_mut().enumerate() {
            *slot = self.histogram[i] - snapshot.histogram[i];
        }
        out
    }
}

/// Per-encoding-class selection counts for one compressor instance.
///
/// LLC organizations route their size computations through
/// [`EncoderStats::record`], which performs the same single compression
/// pass as [`Compressor::compressed_size`] but also tallies which
/// encoding the line selected — the per-encoder telemetry the sampler
/// harvests. Algorithms that expose no classes ([`Compressor::encodings`]
/// empty) tally nothing and pay nothing beyond the size pass.
///
/// # Examples
///
/// ```
/// use bv_compress::{Bdi, CacheLine, EncoderStats};
///
/// let mut stats = EncoderStats::new();
/// let bdi = Bdi::new();
/// stats.record(&bdi, &CacheLine::zeroed());
/// assert_eq!(stats.counts(&bdi)[0], ("zeros", 1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EncoderStats {
    counts: Vec<u64>,
}

impl EncoderStats {
    /// An empty tally. Sizes itself to the compressor's class count on
    /// first use.
    #[must_use]
    pub fn new() -> EncoderStats {
        EncoderStats::default()
    }

    /// Computes the compressed size of `line` via `comp`, recording the
    /// encoding class it selected (if the algorithm exposes classes).
    pub fn record<C: Compressor + ?Sized>(&mut self, comp: &C, line: &CacheLine) -> SegmentCount {
        let (size, class) = comp.classified_size(line);
        if let Some(class) = class {
            if self.counts.is_empty() {
                self.counts = vec![0; comp.encodings().len()];
            }
            self.counts[class] += 1;
        }
        size
    }

    /// `(encoding name, selection count)` pairs in class order. Empty for
    /// algorithms without classes.
    #[must_use]
    pub fn counts<C: Compressor + ?Sized>(&self, comp: &C) -> Vec<(&'static str, u64)> {
        comp.encodings()
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, self.counts.get(i).copied().unwrap_or(0)))
            .collect()
    }
}

impl fmt::Display for CompressionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lines, mean size {:.1}% of uncompressed",
            self.lines(),
            self.mean_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_report_incompressible() {
        let stats = CompressionStats::new();
        assert_eq!(stats.lines(), 0);
        assert_eq!(stats.mean_ratio(), 1.0);
        assert_eq!(stats.half_line_fraction(), 0.0);
    }

    #[test]
    fn mean_ratio_weighted_by_counts() {
        let mut stats = CompressionStats::new();
        for _ in 0..3 {
            stats.record(SegmentCount::new(4)); // 25%
        }
        stats.record(SegmentCount::new(16)); // 100%
        let expected = (3.0 * 4.0 + 16.0) / (4.0 * 16.0);
        assert!((stats.mean_ratio() - expected).abs() < 1e-12);
    }

    #[test]
    fn half_line_fraction_counts_boundary() {
        let mut stats = CompressionStats::new();
        stats.record(SegmentCount::new(8)); // exactly half counts
        stats.record(SegmentCount::new(9)); // just over half does not
        assert!((stats.half_line_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn encoder_stats_tally_matches_selection() {
        let bdi = crate::Bdi::new();
        let mut stats = EncoderStats::new();
        let rep = CacheLine::from_u64_words(&[0xabcd; 8]);
        for line in [CacheLine::zeroed(), CacheLine::zeroed(), rep] {
            let size = stats.record(&bdi, &line);
            assert_eq!(size, bdi.compressed_size(&line), "same size as plain path");
        }
        let counts = stats.counts(&bdi);
        assert_eq!(
            counts.iter().find(|(n, _)| *n == "zeros"),
            Some(&("zeros", 2))
        );
        assert_eq!(counts.iter().find(|(n, _)| *n == "rep"), Some(&("rep", 1)));
    }

    #[test]
    fn encoder_stats_empty_for_classless_algorithms() {
        let fpc = crate::Fpc::new();
        let mut stats = EncoderStats::new();
        stats.record(&fpc, &CacheLine::zeroed());
        assert!(stats.counts(&fpc).is_empty());
    }

    #[test]
    fn merge_adds_histograms() {
        let mut a = CompressionStats::new();
        a.record(SegmentCount::new(1));
        let mut b = CompressionStats::new();
        b.record(SegmentCount::new(1));
        b.record(SegmentCount::new(16));
        a.merge(&b);
        assert_eq!(a.lines(), 3);
        assert_eq!(a.count(SegmentCount::new(1)), 2);
    }
}
