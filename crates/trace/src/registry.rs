//! The 100-trace workload registry (Table I of the paper).
//!
//! The paper draws 100 traces from four categories — SPEC CPU2006 FP (30),
//! SPEC CPU2006 INT (29), Productivity (14), and Client (27) — of which 60
//! are sensitive to LLC performance. Among the sensitive traces, 50
//! compress to ≈50% of their uncompressed size under BDI and 10 compress
//! poorly (mean block size above 75%). This module reproduces those
//! aggregates with deterministic synthetic workloads named after the
//! benchmarks in Table I.

use crate::data_profile::DataProfile;
use crate::kernel::KernelKind;
use crate::synth::{KernelSpec, WorkloadSpec};
use bv_testkit::mix as splitmix;
use core::fmt;

/// Workload category from Table I.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum WorkloadCategory {
    /// SPEC CPU2006 floating point (30 traces).
    SpecFp,
    /// SPEC CPU2006 integer (29 traces).
    SpecInt,
    /// Productivity: Sysmark, WinRAR, compression runs (14 traces).
    Productivity,
    /// Client: Octane, speech recognition, Cinebench, 3DMark (27 traces).
    Client,
}

impl WorkloadCategory {
    /// All categories in Table I order.
    pub const ALL: [WorkloadCategory; 4] = [
        WorkloadCategory::SpecFp,
        WorkloadCategory::SpecInt,
        WorkloadCategory::Productivity,
        WorkloadCategory::Client,
    ];

    /// Short name used in reports ("SPECFP", "SPECINT", ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadCategory::SpecFp => "SPECFP",
            WorkloadCategory::SpecInt => "SPECINT",
            WorkloadCategory::Productivity => "Productivity",
            WorkloadCategory::Client => "Client",
        }
    }

    /// Number of traces in this category (Table I).
    #[must_use]
    pub fn trace_count(self) -> usize {
        match self {
            WorkloadCategory::SpecFp => 30,
            WorkloadCategory::SpecInt => 29,
            WorkloadCategory::Productivity => 14,
            WorkloadCategory::Client => 27,
        }
    }

    fn benchmark_names(self) -> &'static [&'static str] {
        match self {
            WorkloadCategory::SpecFp => &[
                "cactusadm",
                "milc",
                "lbm",
                "wrf",
                "sphinx3",
                "gemsfdtd",
                "soplex",
                "calculix",
                "bwaves",
            ],
            WorkloadCategory::SpecInt => &[
                "xalancbmk",
                "sjeng",
                "gobmk",
                "omnetpp",
                "astar",
                "gcc",
                "libquantum",
                "mcf",
            ],
            WorkloadCategory::Productivity => &["sysmark", "winrar", "wincomp"],
            WorkloadCategory::Client => &["octane", "speech", "cinebench", "3dmark"],
        }
    }

    /// Per-category classification plan: (sensitive-friendly,
    /// sensitive-incompressible, insensitive) counts summing to
    /// [`trace_count`](WorkloadCategory::trace_count). Totals across
    /// categories: 50 + 10 + 40, matching Section VI.A.
    fn plan(self) -> (usize, usize, usize) {
        match self {
            WorkloadCategory::SpecFp => (13, 5, 12),
            WorkloadCategory::SpecInt => (16, 2, 11),
            WorkloadCategory::Productivity => (8, 1, 5),
            WorkloadCategory::Client => (13, 2, 12),
        }
    }
}

impl fmt::Display for WorkloadCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One registered trace: a named workload plus its classification.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Unique name, e.g. `"specfp.milc.04"`.
    pub name: String,
    /// Table I category.
    pub category: WorkloadCategory,
    /// Whether the trace responds to LLC capacity (60 of 100 do).
    pub cache_sensitive: bool,
    /// Whether the trace's data compresses well under BDI (50 of the 60
    /// sensitive traces).
    pub compression_friendly: bool,
    /// The generative workload description.
    pub workload: WorkloadSpec,
}

const MB: u64 = 1 << 20;
const KB: u64 = 1 << 10;

/// Category-flavored profile palettes: (reuse-data profiles, streaming-data
/// profiles) for compression-friendly traces.
fn friendly_profiles(cat: WorkloadCategory, h: u64) -> (DataProfile, DataProfile, DataProfile) {
    // (pointer-chase region, hot/cold region, streaming region)
    let pick = |opts: &[DataProfile], k: u64| opts[(k as usize) % opts.len()];
    match cat {
        WorkloadCategory::SpecFp => (
            pick(&[DataProfile::Clustered, DataProfile::FloatLike], h),
            pick(
                &[
                    DataProfile::FloatLike,
                    DataProfile::WideInt,
                    DataProfile::SmallInt,
                ],
                h >> 8,
            ),
            pick(&[DataProfile::FloatLike, DataProfile::Random], h >> 16),
        ),
        WorkloadCategory::SpecInt => (
            pick(&[DataProfile::PointerLike, DataProfile::Clustered], h),
            pick(
                &[
                    DataProfile::WideInt,
                    DataProfile::Clustered,
                    DataProfile::SmallInt,
                ],
                h >> 8,
            ),
            pick(&[DataProfile::Random, DataProfile::FloatLike], h >> 16),
        ),
        WorkloadCategory::Productivity => (
            pick(&[DataProfile::SmallInt, DataProfile::WideInt], h),
            pick(
                &[
                    DataProfile::Zero,
                    DataProfile::WideInt,
                    DataProfile::Clustered,
                ],
                h >> 8,
            ),
            pick(&[DataProfile::Random], h >> 16),
        ),
        WorkloadCategory::Client => (
            pick(&[DataProfile::Clustered, DataProfile::WideInt], h),
            pick(
                &[
                    DataProfile::SmallInt,
                    DataProfile::WideInt,
                    DataProfile::FloatLike,
                ],
                h >> 8,
            ),
            pick(&[DataProfile::FloatLike, DataProfile::Random], h >> 16),
        ),
    }
}

/// Builds a cache-sensitive workload. `friendly` selects the data palette.
///
/// Realistic locality pyramid: ~85% of data accesses hit an L1-resident
/// hot loop, ~9% an L2-resident structure, and ~6% reach the LLC-pressure
/// kernels whose combined working set (≈3-6 MB) exceeds the 2 MB LLC —
/// yielding LLC misses in the low tens per kilo-instruction, as in the
/// paper's cache-sensitive SPEC traces.
fn sensitive_workload(cat: WorkloadCategory, friendly: bool, seed: u64) -> WorkloadSpec {
    let h = splitmix(seed);
    // LLC-pressure working sets: beyond the 2 MB LLC but close enough
    // that extra effective capacity converts misses to hits.
    // Incompressible traces skew slightly larger, so they remain fully
    // sensitive to a 3 MB cache even though compression cannot help them.
    let chase_bytes = if friendly {
        3 * MB / 2 + (h % 6) * MB / 4 // 1.5 .. 2.75 MB
    } else {
        2 * MB + (h % 5) * MB / 4 // 2 .. 3 MB
    };
    let hot_bytes = 2 * MB + ((h >> 16) % 7) * MB / 4; // 2 .. 3.5 MB
    let (p_chase, p_hot, p_stream) = if friendly {
        friendly_profiles(cat, h)
    } else {
        // Incompressible palette: high-entropy reuse data; the stream gets
        // float-like data so the mean lands just above the paper's 75%
        // threshold rather than at 100%.
        (
            DataProfile::Random,
            DataProfile::Random,
            DataProfile::FloatLike,
        )
    };
    WorkloadSpec {
        kernels: vec![
            // L1-resident hot loop: the bulk of the access stream.
            KernelSpec {
                kind: KernelKind::HotCold {
                    hot_fraction: 128,
                    hot_probability: 240,
                },
                region_bytes: 16 * KB,
                weight: 110,
                store_fraction: 72,
                profile: if friendly {
                    DataProfile::SmallInt
                } else {
                    DataProfile::Random
                },
            },
            // L2-resident structure.
            KernelSpec {
                kind: KernelKind::Loop,
                region_bytes: 96 * KB + ((h >> 8) % 3) * 32 * KB,
                weight: 6,
                store_fraction: 32,
                profile: if friendly {
                    DataProfile::PointerLike
                } else {
                    DataProfile::Random
                },
            },
            // LLC-pressure kernels in the capacity-capture zone: extra
            // effective capacity converts these misses into hits.
            KernelSpec {
                kind: KernelKind::PointerChase,
                region_bytes: chase_bytes,
                weight: 2,
                store_fraction: 24 + (h % 32) as u8,
                profile: p_chase,
            },
            KernelSpec {
                kind: KernelKind::HotCold {
                    hot_fraction: 24 + ((h >> 24) % 24) as u8,
                    hot_probability: 160 + ((h >> 32) % 48) as u8,
                },
                region_bytes: hot_bytes,
                weight: 2,
                store_fraction: 48 + ((h >> 40) % 40) as u8,
                profile: p_hot,
            },
            // The reuse-distance tail: a working set no realistic LLC can
            // hold, providing the irreducible miss floor real programs
            // have.
            KernelSpec {
                kind: KernelKind::HotCold {
                    hot_fraction: 32,
                    hot_probability: 64,
                },
                region_bytes: 12 * MB + ((h >> 48) % 3) * 2 * MB,
                weight: 2 + ((h >> 52) % 2) as u32,
                store_fraction: 32,
                profile: p_hot,
            },
            KernelSpec {
                kind: KernelKind::Streaming,
                region_bytes: 8 * MB,
                weight: 2,
                store_fraction: 8,
                profile: p_stream,
            },
        ],
        mem_fraction: 72 + (h % 40) as u8, // 28% .. 44% of instructions
        ifetch_fraction: 10,
        code_bytes: 64 * KB,
        seed,
    }
}

/// Builds a cache-insensitive workload: either the working set fits the
/// core caches, or the trace is a pure prefetchable stream.
fn insensitive_workload(cat: WorkloadCategory, idx: usize, seed: u64) -> WorkloadSpec {
    let h = splitmix(seed);
    let (p_chase, p_hot, p_stream) = friendly_profiles(cat, h);
    if idx.is_multiple_of(2) {
        // Core-cache resident: everything fits in ~192 KB.
        WorkloadSpec {
            kernels: vec![
                KernelSpec {
                    kind: KernelKind::Loop,
                    region_bytes: 64 * KB + (h % 4) * 16 * KB,
                    weight: 4,
                    store_fraction: 64,
                    profile: p_hot,
                },
                KernelSpec {
                    kind: KernelKind::HotCold {
                        hot_fraction: 64,
                        hot_probability: 230,
                    },
                    region_bytes: 96 * KB,
                    weight: 4,
                    store_fraction: 48,
                    profile: p_chase,
                },
            ],
            mem_fraction: 80 + (h % 32) as u8,
            ifetch_fraction: 10,
            code_bytes: 32 * KB,
            seed,
        }
    } else {
        // Streaming: giant sequential sweeps the prefetcher covers; no
        // reuse for any LLC size to exploit.
        WorkloadSpec {
            kernels: vec![
                KernelSpec {
                    kind: KernelKind::Streaming,
                    region_bytes: 64 * MB,
                    weight: 6,
                    store_fraction: 24,
                    profile: p_stream,
                },
                KernelSpec {
                    kind: KernelKind::Strided { stride: 256 },
                    region_bytes: 32 * MB,
                    weight: 2,
                    store_fraction: 8,
                    profile: p_hot,
                },
            ],
            mem_fraction: 64 + (h % 32) as u8,
            ifetch_fraction: 8,
            code_bytes: 32 * KB,
            seed,
        }
    }
}

/// The full 100-trace registry.
///
/// # Examples
///
/// ```
/// use bv_trace::{TraceRegistry, WorkloadCategory};
///
/// let reg = TraceRegistry::paper_default();
/// let fp: Vec<_> = reg.by_category(WorkloadCategory::SpecFp).collect();
/// assert_eq!(fp.len(), 30);
/// ```
#[derive(Clone, Debug)]
pub struct TraceRegistry {
    traces: Vec<TraceSpec>,
}

impl TraceRegistry {
    /// Builds the registry with the paper's Table I counts and Section
    /// VI.A classification aggregates.
    #[must_use]
    pub fn paper_default() -> TraceRegistry {
        let mut traces = Vec::with_capacity(100);
        for cat in WorkloadCategory::ALL {
            let (friendly, unfriendly, insensitive) = cat.plan();
            let names = cat.benchmark_names();
            for i in 0..cat.trace_count() {
                let bench = names[i % names.len()];
                let name = format!("{}.{}.{:02}", cat.name().to_ascii_lowercase(), bench, i);
                let seed = splitmix(name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |a, b| {
                    (a ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
                }));
                let (cache_sensitive, compression_friendly, workload) = if i < friendly {
                    (true, true, sensitive_workload(cat, true, seed))
                } else if i < friendly + unfriendly {
                    (true, false, sensitive_workload(cat, false, seed))
                } else {
                    debug_assert!(i < friendly + unfriendly + insensitive);
                    (false, true, insensitive_workload(cat, i, seed))
                };
                traces.push(TraceSpec {
                    name,
                    category: cat,
                    cache_sensitive,
                    compression_friendly,
                    workload,
                });
            }
        }
        TraceRegistry { traces }
    }

    /// All 100 traces in registry order.
    pub fn all(&self) -> impl Iterator<Item = &TraceSpec> {
        self.traces.iter()
    }

    /// The 60 cache-sensitive traces (the main evaluation set).
    pub fn cache_sensitive(&self) -> impl Iterator<Item = &TraceSpec> {
        self.traces.iter().filter(|t| t.cache_sensitive)
    }

    /// The 40 cache-insensitive traces (Section VI.B.5).
    pub fn cache_insensitive(&self) -> impl Iterator<Item = &TraceSpec> {
        self.traces.iter().filter(|t| !t.cache_sensitive)
    }

    /// Traces in one Table I category.
    pub fn by_category(&self, cat: WorkloadCategory) -> impl Iterator<Item = &TraceSpec> + '_ {
        self.traces.iter().filter(move |t| t.category == cat)
    }

    /// Looks up a trace by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&TraceSpec> {
        self.traces.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts() {
        let reg = TraceRegistry::paper_default();
        assert_eq!(reg.all().count(), 100);
        for cat in WorkloadCategory::ALL {
            assert_eq!(reg.by_category(cat).count(), cat.trace_count());
        }
    }

    #[test]
    fn section_6a_classification_aggregates() {
        let reg = TraceRegistry::paper_default();
        assert_eq!(reg.cache_sensitive().count(), 60);
        assert_eq!(reg.cache_insensitive().count(), 40);
        let friendly = reg
            .cache_sensitive()
            .filter(|t| t.compression_friendly)
            .count();
        assert_eq!(friendly, 50);
        assert_eq!(reg.cache_sensitive().count() - friendly, 10);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let reg = TraceRegistry::paper_default();
        let mut names: Vec<&str> = reg.all().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate trace names");
        for t in reg.all() {
            assert!(reg.get(&t.name).is_some());
        }
    }

    #[test]
    fn sensitive_traces_exceed_the_llc() {
        let reg = TraceRegistry::paper_default();
        for t in reg.cache_sensitive() {
            let ws = t.workload.working_set_bytes();
            assert!(
                ws > 2 * MB,
                "{}: sensitive but working set is only {} KB",
                t.name,
                ws / KB
            );
        }
    }

    #[test]
    fn friendly_traces_have_compressible_budgets() {
        let reg = TraceRegistry::paper_default();
        for t in reg.cache_sensitive() {
            let r = t.workload.nominal_compression_ratio();
            // The paper's classification threshold: friendly traces sit
            // below a 75% mean block size, low-compressibility traces
            // above it.
            if t.compression_friendly {
                assert!(r < 0.75, "{}: friendly but nominal ratio {r:.2}", t.name);
            } else {
                assert!(r > 0.75, "{}: unfriendly but nominal ratio {r:.2}", t.name);
            }
        }
    }

    #[test]
    fn registry_is_deterministic() {
        let a = TraceRegistry::paper_default();
        let b = TraceRegistry::paper_default();
        for (x, y) in a.all().zip(b.all()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.workload.seed, y.workload.seed);
        }
    }
}
