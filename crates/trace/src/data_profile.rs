//! Data-value profiles: what the bytes in a line look like.
//!
//! BDI compressibility is a property of data values, not addresses. Each
//! workload region is assigned a profile, and the simulator synthesizes
//! line contents deterministically from `(profile, line address, epoch)`,
//! so the same line re-read later has the same data unless the workload
//! overwrote it.

use bv_compress::CacheLine;
use bv_testkit::mix as splitmix;

/// A value-distribution profile for synthesized line data.
///
/// Expected BDI outcomes (64-byte lines, 4-byte segments):
///
/// | profile        | typical encoding | segments | ratio |
/// |----------------|------------------|----------|-------|
/// | `Zero`         | zero line        | 1        | 6%    |
/// | `Repeated`     | repeated value   | 2        | 13%   |
/// | `PointerLike`  | base8-delta1     | 5        | 31%   |
/// | `SmallInt`     | base4-delta1     | 6        | 38%   |
/// | `Clustered`    | base8-delta2     | 7        | 44%   |
/// | `WideInt`      | base4-delta2     | 10       | 63%   |
/// | `FloatLike`    | base8-delta4     | 11       | 69%   |
/// | `Random`       | uncompressed     | 16       | 100%  |
///
/// Pairing behavior in a two-tag way (16 segments): 5/6/7-segment lines
/// pair with each other, 10/11-segment lines only pair with ≤6-segment
/// partners — so the mid-size profiles control how often the Victim cache
/// can actually retain a line.
///
/// # Examples
///
/// ```
/// use bv_compress::{Bdi, Compressor};
/// use bv_trace::DataProfile;
///
/// let line = DataProfile::PointerLike.synthesize(0x1234, 0);
/// assert_eq!(Bdi::new().compressed_size(&line).get(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DataProfile {
    /// Zero-initialized memory (fresh allocations, BSS).
    Zero,
    /// One 64-bit value replicated (memset patterns, flags).
    Repeated,
    /// Pointers into a single heap region (linked structures).
    PointerLike,
    /// Small 32-bit integers around a common magnitude (counters,
    /// indices).
    SmallInt,
    /// 64-bit values clustered within a 2-byte delta of a base (object
    /// fields, table offsets) — base8-delta2.
    Clustered,
    /// 32-bit values spread across a 2-byte delta range (hash codes,
    /// mid-size counters) — base4-delta2.
    WideInt,
    /// Double-precision floats sharing exponents but with noisy mantissas
    /// (scientific arrays) — compressible only with wide deltas.
    FloatLike,
    /// High-entropy bytes (compressed media, encrypted data).
    Random,
}

impl DataProfile {
    /// All profiles, for sweeps and tests.
    pub const ALL: [DataProfile; 8] = [
        DataProfile::Zero,
        DataProfile::Repeated,
        DataProfile::PointerLike,
        DataProfile::SmallInt,
        DataProfile::Clustered,
        DataProfile::WideInt,
        DataProfile::FloatLike,
        DataProfile::Random,
    ];

    /// Synthesizes the line contents for `line_addr` in write-epoch
    /// `epoch`. Deterministic: the same inputs always produce the same
    /// bytes.
    #[must_use]
    pub fn synthesize(self, line_addr: u64, epoch: u64) -> CacheLine {
        let h = splitmix(line_addr.wrapping_mul(31).wrapping_add(epoch));
        match self {
            DataProfile::Zero => CacheLine::zeroed(),
            DataProfile::Repeated => CacheLine::from_u64_words(&[h; 8]),
            DataProfile::PointerLike => {
                // Pointers into a 16 MB heap region: 0x7f.. base plus small
                // strides, always within a 1-byte delta of the first.
                let base = 0x7f00_0000_0000 | (h & 0x00ff_ff00);
                CacheLine::from_u64_words(&core::array::from_fn(|i| {
                    base + ((h >> (8 + i)) & 0x7) * 8 + i as u64 * 8
                }))
            }
            DataProfile::SmallInt => {
                // 32-bit values near a shared magnitude; deltas fit 1 byte.
                let base = 0x0001_0000u32 | ((h as u32) & 0xff00_0000) >> 12;
                CacheLine::from_u32_words(&core::array::from_fn(|i| {
                    base.wrapping_add(((h >> (2 * i)) & 0x3f) as u32)
                }))
            }
            DataProfile::Clustered => {
                // 64-bit object fields within a signed 16-bit delta of a
                // shared base (not representable in 8-bit deltas).
                let base = 0x6f00_0000_0000 | (h & 0x00ff_ff00);
                CacheLine::from_u64_words(&core::array::from_fn(|i| {
                    base + 0x100 + ((splitmix(h ^ i as u64) >> 16) & 0x3fff)
                }))
            }
            DataProfile::WideInt => {
                // 32-bit values spread over a 16-bit (but not 8-bit) delta
                // range around a common base.
                let base = 0x0080_0000u32 | (((h as u32) & 0x7f00_0000) >> 12);
                CacheLine::from_u32_words(&core::array::from_fn(|i| {
                    base.wrapping_add(0x100 + ((splitmix(h ^ (i as u64) << 8) as u32) & 0x3fff))
                }))
            }
            DataProfile::FloatLike => {
                // Doubles with a shared sign/exponent and noisy low
                // mantissa bits: compressible as base8-delta4 only.
                let exp = 0x4030_0000_0000_0000u64 | (h & 0x000f_0000_0000_0000);
                CacheLine::from_u64_words(&core::array::from_fn(|i| {
                    exp | (splitmix(h ^ i as u64) & 0x0000_0000_7fff_ffff)
                }))
            }
            DataProfile::Random => {
                CacheLine::from_u64_words(&core::array::from_fn(|i| splitmix(h ^ (i as u64) << 32)))
            }
        }
    }

    /// The profile's long-run mean compressed ratio under BDI, measured
    /// over many lines (used to budget workload-level compressibility).
    #[must_use]
    pub fn nominal_ratio(self) -> f64 {
        match self {
            DataProfile::Zero => 1.0 / 16.0,
            DataProfile::Repeated => 2.0 / 16.0,
            DataProfile::PointerLike => 5.0 / 16.0,
            DataProfile::SmallInt => 6.0 / 16.0,
            DataProfile::Clustered => 7.0 / 16.0,
            DataProfile::WideInt => 10.0 / 16.0,
            DataProfile::FloatLike => 11.0 / 16.0,
            DataProfile::Random => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bv_compress::{Bdi, Compressor, SegmentCount};

    #[test]
    fn profiles_hit_their_nominal_sizes() {
        let bdi = Bdi::new();
        for profile in DataProfile::ALL {
            let expected = (profile.nominal_ratio() * 16.0).round() as u8;
            for addr in [0u64, 17, 9999, 123_456_789] {
                let line = profile.synthesize(addr, 0);
                let got = bdi.compressed_size(&line).get();
                assert_eq!(
                    got, expected,
                    "{profile:?} at addr {addr:#x}: got {got} segments"
                );
            }
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        for profile in DataProfile::ALL {
            assert_eq!(profile.synthesize(42, 7), profile.synthesize(42, 7));
        }
    }

    #[test]
    fn epochs_change_data_but_not_size_class() {
        let bdi = Bdi::new();
        let a = DataProfile::PointerLike.synthesize(42, 0);
        let b = DataProfile::PointerLike.synthesize(42, 1);
        assert_ne!(a, b, "a write must change the bytes");
        assert_eq!(bdi.compressed_size(&a), bdi.compressed_size(&b));
    }

    #[test]
    fn random_lines_do_not_compress() {
        let bdi = Bdi::new();
        for addr in 0..32u64 {
            assert_eq!(
                bdi.compressed_size(&DataProfile::Random.synthesize(addr, 0)),
                SegmentCount::FULL
            );
        }
    }
}
