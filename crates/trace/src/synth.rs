//! Workload synthesis: kernels + data profiles -> an instruction trace.

use crate::data_profile::DataProfile;
use crate::kernel::{Kernel, KernelKind};
use crate::record::{AccessKind, TraceEvent};
use bv_compress::CacheLine;
use std::collections::HashMap;

/// One kernel's slice of a workload.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    /// Behavior class.
    pub kind: KernelKind,
    /// Private region size in bytes (rounded up to one line).
    pub region_bytes: u64,
    /// Relative share of memory accesses, in arbitrary units.
    pub weight: u32,
    /// Fraction of this kernel's accesses that are stores, in 1/256 units.
    pub store_fraction: u8,
    /// Value distribution of the region's data.
    pub profile: DataProfile,
}

/// A complete synthetic workload description.
///
/// # Examples
///
/// ```
/// use bv_trace::synth::{KernelSpec, WorkloadSpec};
/// use bv_trace::{DataProfile, KernelKind};
///
/// let spec = WorkloadSpec {
///     kernels: vec![KernelSpec {
///         kind: KernelKind::Loop,
///         region_bytes: 3 << 20,
///         weight: 1,
///         store_fraction: 64,
///         profile: DataProfile::PointerLike,
///     }],
///     mem_fraction: 85,
///     ifetch_fraction: 10,
///     code_bytes: 64 << 10,
///     seed: 42,
/// };
/// let mut generator = spec.generator();
/// let event = generator.next_event();
/// assert!(event.instructions() >= 1);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// The kernels that make up the workload.
    pub kernels: Vec<KernelSpec>,
    /// Memory instructions per 256 instructions (loads + stores).
    pub mem_fraction: u8,
    /// Instruction-fetch events per 256 memory events.
    pub ifetch_fraction: u8,
    /// Code footprint for instruction fetches.
    pub code_bytes: u64,
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Total data working-set size in bytes.
    #[must_use]
    pub fn working_set_bytes(&self) -> u64 {
        self.kernels.iter().map(|k| k.region_bytes).sum()
    }

    /// Weighted mean of the kernels' nominal BDI ratios, for budgeting a
    /// workload's compressibility before simulating it.
    ///
    /// Only kernels whose regions exceed the L2 capacity (256 KB)
    /// contribute: LLC fills — the traffic whose compressibility the
    /// Base-Victim architecture exploits — come from working sets the
    /// core caches cannot hold. Falls back to all kernels when none
    /// qualify.
    #[must_use]
    pub fn nominal_compression_ratio(&self) -> f64 {
        const L2_BYTES: u64 = 256 << 10;
        let llc_visible = |k: &&KernelSpec| k.region_bytes > L2_BYTES;
        let (num, den) = {
            let mut num = 0.0;
            let mut den = 0u64;
            for k in self.kernels.iter().filter(llc_visible) {
                num += k.profile.nominal_ratio() * f64::from(k.weight);
                den += u64::from(k.weight);
            }
            if den == 0 {
                for k in &self.kernels {
                    num += k.profile.nominal_ratio() * f64::from(k.weight);
                    den += u64::from(k.weight);
                }
            }
            (num, den)
        };
        if den == 0 {
            1.0
        } else {
            num / den as f64
        }
    }

    /// Instantiates the deterministic trace generator.
    #[must_use]
    pub fn generator(&self) -> TraceGenerator {
        TraceGenerator::new(self, 0)
    }

    /// Instantiates a generator whose whole address space is shifted by
    /// `offset` bytes — used by the multi-program simulator to give each
    /// thread a private physical range.
    #[must_use]
    pub fn generator_at(&self, offset: u64) -> TraceGenerator {
        TraceGenerator::new(self, offset)
    }
}

/// Region placement: kernels get disjoint, gap-separated address ranges
/// above a fixed heap base; code sits below them.
const CODE_BASE: u64 = 0x0040_0000;
const HEAP_BASE: u64 = 0x1_0000_0000;
const REGION_GAP: u64 = 1 << 30;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// A deterministic, infinite trace generator with an address-to-profile
/// map for data synthesis.
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    kernels: Vec<(Kernel, KernelSpec, u64)>, // (instance, spec, region base)
    cumulative_weights: Vec<u64>,
    total_weight: u64,
    mem_fraction: u8,
    ifetch_fraction: u8,
    code_lines: u64,
    code_cursor: u64,
    rng: u64,
    /// Per-line write epochs: bumped on every store so rewritten lines
    /// get fresh (same-profile) values.
    epochs: HashMap<u64, u32>,
    /// Address-space shift for multi-program isolation.
    offset: u64,
}

impl TraceGenerator {
    fn new(spec: &WorkloadSpec, offset: u64) -> TraceGenerator {
        assert!(
            !spec.kernels.is_empty(),
            "workload needs at least one kernel"
        );
        let mut kernels = Vec::with_capacity(spec.kernels.len());
        let mut cumulative_weights = Vec::with_capacity(spec.kernels.len());
        let mut total = 0u64;
        let mut base = HEAP_BASE + offset;
        let mut seed = spec.seed | 1;
        for ks in &spec.kernels {
            let region = ks.region_bytes.max(64);
            let kseed = xorshift(&mut seed);
            kernels.push((Kernel::new(ks.kind, base, region, kseed), ks.clone(), base));
            total += u64::from(ks.weight.max(1));
            cumulative_weights.push(total);
            base += region.next_multiple_of(REGION_GAP) + REGION_GAP;
        }
        TraceGenerator {
            kernels,
            cumulative_weights,
            total_weight: total,
            mem_fraction: spec.mem_fraction.max(1),
            ifetch_fraction: spec.ifetch_fraction,
            code_lines: (spec.code_bytes / 64).max(1),
            code_cursor: 0,
            rng: spec.seed.wrapping_mul(0x5851_f42d_4c95_7f2d) | 1,
            epochs: HashMap::new(),
            offset,
        }
    }

    /// Produces the next trace event.
    ///
    /// Equivalent to [`decode_event`](TraceGenerator::decode_event)
    /// followed immediately by [`commit`](TraceGenerator::commit) — the
    /// batched hot loop in `bv-sim` uses the split form to decode ahead of
    /// consumption without perturbing [`line_data`](TraceGenerator::line_data).
    pub fn next_event(&mut self) -> TraceEvent {
        let ev = self.decode_event();
        self.commit(&ev);
        ev
    }

    /// Decodes the next trace event **without** committing its memory
    /// side effect (the per-line write-epoch bump for stores).
    ///
    /// The RNG, kernel walks, and code cursor do advance — none of those
    /// are observable through `line_data`, so decoding N events ahead and
    /// committing each one as it is consumed yields a bit-identical
    /// simulation to the unbatched `next_event` loop.
    pub fn decode_event(&mut self) -> TraceEvent {
        let r = xorshift(&mut self.rng);

        // Geometric-ish gap: mem_fraction/256 of instructions touch
        // memory, so the mean gap is 256/mem_fraction - 1.
        let mean_gap = (256 / u32::from(self.mem_fraction)).saturating_sub(1);
        let gap = if mean_gap == 0 {
            0
        } else {
            (r >> 32) as u32 % (2 * mean_gap + 1)
        };

        if (r & 0xff) < u64::from(self.ifetch_fraction) {
            // Instruction fetch: sequential walk of the code region.
            self.code_cursor = (self.code_cursor + 1) % self.code_lines;
            let addr = CODE_BASE + self.offset + self.code_cursor * 64;
            return TraceEvent {
                gap,
                pc: addr,
                addr,
                kind: AccessKind::Ifetch,
                dependent: false,
            };
        }

        let draw = (r >> 8) % self.total_weight;
        let ki = self
            .cumulative_weights
            .iter()
            .position(|&c| draw < c)
            .expect("draw < total weight");
        let (kernel, spec, base) = &mut self.kernels[ki];
        let addr = kernel.next_addr();
        let kind = if ((r >> 16) & 0xff) < u64::from(spec.store_fraction) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        // Synthetic PC: one per kernel plus a little spread, so the
        // prefetcher sees stable streams.
        let pc = CODE_BASE + self.offset + (ki as u64) * 0x100 + ((r >> 24) & 0x3) * 8;
        let _ = base;
        TraceEvent {
            gap,
            pc,
            addr,
            kind,
            // Pointer-chase loads consume the previous load's value, so
            // their misses serialize in the out-of-order window.
            dependent: matches!(spec.kind, KernelKind::PointerChase) && kind == AccessKind::Load,
        }
    }

    /// Commits a decoded event's memory side effect: stores bump the
    /// line's write epoch so subsequent [`line_data`](TraceGenerator::line_data)
    /// calls see fresh values. Must be called exactly once per decoded
    /// event, in decode order, before the event is simulated.
    pub fn commit(&mut self, ev: &TraceEvent) {
        if ev.kind == AccessKind::Store {
            *self.epochs.entry(ev.addr / 64).or_insert(0) += 1;
        }
    }

    /// Synthesizes the current memory contents of the line holding
    /// `byte_addr`: the region's profile at the line's current write
    /// epoch. Addresses outside any region (e.g. code) use a repeated-
    /// value profile.
    #[must_use]
    pub fn line_data(&self, byte_addr: u64) -> CacheLine {
        let line = byte_addr / 64;
        let epoch = u64::from(*self.epochs.get(&line).unwrap_or(&0));
        self.profile_of(byte_addr).synthesize(line, epoch)
    }

    /// The data profile governing `byte_addr`.
    #[must_use]
    pub fn profile_of(&self, byte_addr: u64) -> DataProfile {
        for (_, spec, base) in &self.kernels {
            if byte_addr >= *base && byte_addr < *base + spec.region_bytes.max(64) {
                return spec.profile;
            }
        }
        DataProfile::Repeated // code and stray addresses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            kernels: vec![
                KernelSpec {
                    kind: KernelKind::Loop,
                    region_bytes: 1 << 20,
                    weight: 3,
                    store_fraction: 77, // ~30%
                    profile: DataProfile::SmallInt,
                },
                KernelSpec {
                    kind: KernelKind::Streaming,
                    region_bytes: 8 << 20,
                    weight: 1,
                    store_fraction: 0,
                    profile: DataProfile::Random,
                },
            ],
            mem_fraction: 85, // ~1/3 of instructions
            ifetch_fraction: 12,
            code_bytes: 32 << 10,
            seed: 1234,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = spec().generator();
        let mut b = spec().generator();
        for _ in 0..1000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = spec();
        s2.seed = 99;
        let mut a = spec().generator();
        let mut b = s2.generator();
        let ea: Vec<TraceEvent> = (0..100).map(|_| a.next_event()).collect();
        let eb: Vec<TraceEvent> = (0..100).map(|_| b.next_event()).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn store_fraction_is_respected() {
        let mut g = spec().generator();
        let mut stores = 0;
        let mut loads = 0;
        for _ in 0..20_000 {
            match g.next_event().kind {
                AccessKind::Store => stores += 1,
                AccessKind::Load => loads += 1,
                AccessKind::Ifetch => {}
            }
        }
        // Kernel 0 (weight 3) stores ~30%, kernel 1 never: overall ~22%.
        let frac = stores as f64 / (stores + loads) as f64;
        assert!(
            (0.15..0.30).contains(&frac),
            "store fraction {frac:.2} out of range"
        );
    }

    #[test]
    fn addresses_map_to_their_profiles() {
        let mut g = spec().generator();
        for _ in 0..1000 {
            let e = g.next_event();
            if e.kind == AccessKind::Ifetch {
                continue;
            }
            let p = g.profile_of(e.addr);
            assert!(
                p == DataProfile::SmallInt || p == DataProfile::Random,
                "unexpected profile {p:?}"
            );
        }
    }

    #[test]
    fn stores_advance_the_epoch() {
        let mut g = spec().generator();
        // Find a store and check the line data changes across it.
        loop {
            let before_snapshot = g.clone();
            let e = g.next_event();
            if e.kind == AccessKind::Store {
                let before = before_snapshot.line_data(e.addr);
                let after = g.line_data(e.addr);
                assert_ne!(before, after, "store must produce fresh values");
                break;
            }
        }
    }

    #[test]
    fn decode_ahead_then_commit_matches_unbatched() {
        let mut batched = spec().generator();
        let mut unbatched = spec().generator();
        let mut pending: Vec<TraceEvent> = Vec::new();
        for round in 0..64 {
            // Decode a varying-size batch ahead, then consume it one event
            // at a time, checking the data view after every commit.
            for _ in 0..=(round % 7) {
                pending.push(batched.decode_event());
            }
            for ev in pending.drain(..) {
                batched.commit(&ev);
                let reference = unbatched.next_event();
                assert_eq!(ev, reference);
                assert_eq!(
                    batched.line_data(ev.addr),
                    unbatched.line_data(reference.addr),
                    "data view diverged after commit of {ev:?}"
                );
            }
        }
    }

    #[test]
    fn mem_fraction_controls_gaps() {
        let mut g = spec().generator();
        let mut insts = 0u64;
        let n = 20_000;
        for _ in 0..n {
            insts += g.next_event().instructions();
        }
        // mem_fraction 85/256 => about 3 instructions per event.
        let per_event = insts as f64 / n as f64;
        assert!(
            (2.0..4.5).contains(&per_event),
            "instructions per event {per_event:.2}"
        );
    }

    #[test]
    fn nominal_ratio_is_weighted() {
        let s = spec();
        let expected = (3.0 * (6.0 / 16.0) + 1.0) / 4.0;
        assert!((s.nominal_compression_ratio() - expected).abs() < 1e-12);
    }
}
