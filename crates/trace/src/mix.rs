//! Multi-program workload mixes (Section V / Figure 13).
//!
//! The paper evaluates 20 four-way multi-programmed mixes built from
//! representative cache-sensitive single-threaded traces, sharing one LLC.
//! Each thread runs a fixed instruction budget; threads that finish early
//! keep executing to preserve contention, and performance is reported as
//! the weighted speedup over the same mix on an uncompressed LLC.

use crate::registry::{TraceRegistry, TraceSpec};

/// A named 4-way mix of registered traces.
#[derive(Clone, Debug)]
pub struct MixSpec {
    /// Mix name, e.g. `"mix.07"`.
    pub name: String,
    /// Names of the four member traces.
    pub members: [String; 4],
}

impl MixSpec {
    /// Resolves the member traces against a registry.
    ///
    /// # Panics
    ///
    /// Panics if any member name is missing from the registry (mixes are
    /// always built from the same registry, so this indicates a bug).
    #[must_use]
    pub fn resolve<'r>(&self, registry: &'r TraceRegistry) -> [&'r TraceSpec; 4] {
        core::array::from_fn(|i| {
            registry
                .get(&self.members[i])
                .unwrap_or_else(|| panic!("mix member {} not in registry", self.members[i]))
        })
    }
}

/// Builds the paper's 20 four-way mixes from the 60 cache-sensitive
/// traces.
///
/// Mixes are formed deterministically by striding through the sensitive
/// list with co-prime offsets, so each mix blends categories and
/// compressibility classes the way the paper's "representative" mixes do.
///
/// # Examples
///
/// ```
/// use bv_trace::{mix::paper_mixes, TraceRegistry};
///
/// let reg = TraceRegistry::paper_default();
/// let mixes = paper_mixes(&reg);
/// assert_eq!(mixes.len(), 20);
/// let members = mixes[0].resolve(&reg);
/// assert!(members.iter().all(|t| t.cache_sensitive));
/// ```
#[must_use]
pub fn paper_mixes(registry: &TraceRegistry) -> Vec<MixSpec> {
    let sensitive: Vec<&TraceSpec> = registry.cache_sensitive().collect();
    let n = sensitive.len();
    assert!(n >= 4, "need at least four sensitive traces");
    (0..20)
        .map(|m| {
            // Stride 7, 11, 13, 17 are co-prime with 60: good coverage.
            let members = core::array::from_fn(|j| {
                let idx = (m * 3 + j * [7, 11, 13, 17][j]) % n;
                sensitive[idx].name.clone()
            });
            MixSpec {
                name: format!("mix.{m:02}"),
                members,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_mixes_of_four_sensitive_traces() {
        let reg = TraceRegistry::paper_default();
        let mixes = paper_mixes(&reg);
        assert_eq!(mixes.len(), 20);
        for mix in &mixes {
            let members = mix.resolve(&reg);
            assert!(members.iter().all(|t| t.cache_sensitive));
            // No duplicate trace within one mix.
            for i in 0..4 {
                for j in i + 1..4 {
                    assert_ne!(
                        members[i].name, members[j].name,
                        "{}: duplicate member",
                        mix.name
                    );
                }
            }
        }
    }

    #[test]
    fn mixes_are_deterministic() {
        let reg = TraceRegistry::paper_default();
        let a = paper_mixes(&reg);
        let b = paper_mixes(&reg);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.members, y.members);
        }
    }

    #[test]
    fn mixes_span_multiple_compressibility_classes() {
        let reg = TraceRegistry::paper_default();
        let mixes = paper_mixes(&reg);
        let with_unfriendly = mixes
            .iter()
            .filter(|m| m.resolve(&reg).iter().any(|t| !t.compression_friendly))
            .count();
        assert!(
            with_unfriendly > 0,
            "no mix contains an incompressible trace"
        );
    }
}
