//! Trace event types.

use core::fmt;

/// The kind of memory operation an instruction performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AccessKind {
    /// A demand load.
    Load,
    /// A demand store (write-allocate; dirties the line in the L1).
    Store,
    /// An instruction fetch (modeled at line granularity).
    Ifetch,
}

impl AccessKind {
    /// Whether this access writes.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::Ifetch => "ifetch",
        };
        f.write_str(s)
    }
}

/// One memory-accessing instruction in a trace, plus the number of
/// non-memory instructions retired since the previous event.
///
/// This is the same information an execution-driven simulator extracts
/// from a full instruction stream, compacted: the timing model charges
/// `gap` instructions of pure compute work, then performs the access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Non-memory instructions preceding this access.
    pub gap: u32,
    /// Program counter of the accessing instruction (used by PC-indexed
    /// prefetcher stream tables).
    pub pc: u64,
    /// Byte address accessed.
    pub addr: u64,
    /// Operation kind.
    pub kind: AccessKind,
    /// Whether the address depends on the previous load's value (pointer
    /// chasing). Dependent misses cannot overlap in the out-of-order
    /// window; independent ones can.
    pub dependent: bool,
}

impl TraceEvent {
    /// Instructions this event accounts for (the gap plus itself).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_stores_write() {
        assert!(AccessKind::Store.is_write());
        assert!(!AccessKind::Load.is_write());
        assert!(!AccessKind::Ifetch.is_write());
    }

    #[test]
    fn event_accounts_for_gap_plus_self() {
        let e = TraceEvent {
            gap: 3,
            pc: 0x400000,
            addr: 0x1000,
            kind: AccessKind::Load,
            dependent: false,
        };
        assert_eq!(e.instructions(), 4);
    }

    #[test]
    fn kinds_display() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
        assert_eq!(AccessKind::Ifetch.to_string(), "ifetch");
    }
}
