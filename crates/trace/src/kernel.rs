//! Address-stream kernels.
//!
//! Real workloads are mixtures of a few canonical access behaviors; each
//! kernel reproduces one, parameterized by a private memory region. Cache
//! sensitivity emerges from the kernel mix: loops slightly larger than the
//! LLC respond sharply to extra capacity, hot/cold mixtures respond
//! smoothly, and pure streams not at all.

use core::fmt;

/// The behavior class of one kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum KernelKind {
    /// Sequential walk, line by line (prefetch-friendly, no reuse).
    Streaming,
    /// Fixed-stride walk (prefetch-friendly once the stride is learned).
    Strided {
        /// Stride in bytes between consecutive accesses.
        stride: u32,
    },
    /// Cyclic walk over the whole region: reuse distance equals the
    /// region size, the sharpest capacity cliff.
    Loop,
    /// Zipf-flavored mixture: most accesses go to a hot subset, the rest
    /// uniformly over the region.
    HotCold {
        /// Fraction of the region that is hot, in 1/256 units.
        hot_fraction: u8,
        /// Probability of accessing the hot subset, in 1/256 units.
        hot_probability: u8,
    },
    /// Pseudo-random permutation walk (pointer chasing): defeats stride
    /// prefetchers, reuse distance equals region size.
    PointerChase,
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelKind::Streaming => write!(f, "streaming"),
            KernelKind::Strided { stride } => write!(f, "strided({stride})"),
            KernelKind::Loop => write!(f, "loop"),
            KernelKind::HotCold {
                hot_fraction,
                hot_probability,
            } => write!(f, "hot-cold({hot_fraction}/256 @ {hot_probability}/256)"),
            KernelKind::PointerChase => write!(f, "pointer-chase"),
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// A running kernel instance bound to a memory region.
#[derive(Clone, Debug)]
pub struct Kernel {
    kind: KernelKind,
    base: u64,
    lines: u64,
    cursor: u64,
    rng: u64,
}

impl Kernel {
    /// Creates a kernel over `[base, base + region_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one cache line.
    #[must_use]
    pub fn new(kind: KernelKind, base: u64, region_bytes: u64, seed: u64) -> Kernel {
        let lines = region_bytes / 64;
        assert!(lines > 0, "kernel region must hold at least one line");
        Kernel {
            kind,
            base,
            lines,
            cursor: seed % lines,
            rng: seed | 1,
        }
    }

    /// The kernel's behavior class.
    #[must_use]
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Produces the next byte address.
    pub fn next_addr(&mut self) -> u64 {
        let line = match self.kind {
            KernelKind::Streaming => {
                self.cursor = (self.cursor + 1) % self.lines;
                self.cursor
            }
            KernelKind::Strided { stride } => {
                let step = u64::from(stride.max(64)) / 64;
                self.cursor = (self.cursor + step) % self.lines;
                self.cursor
            }
            KernelKind::Loop => {
                self.cursor = (self.cursor + 1) % self.lines;
                self.cursor
            }
            KernelKind::HotCold {
                hot_fraction,
                hot_probability,
            } => {
                let r = xorshift(&mut self.rng);
                let hot_lines = (self.lines * u64::from(hot_fraction.max(1)) / 256).max(1);
                if (r & 0xff) < u64::from(hot_probability) {
                    (r >> 8) % hot_lines
                } else {
                    (r >> 8) % self.lines
                }
            }
            KernelKind::PointerChase => {
                // Full-period LCG over the line index space: visits every
                // line before repeating, in an order no stride prefetcher
                // can learn. (Period is maximal when modulus is a power of
                // two, a % 8 == 5, c odd; we round the region up to a
                // power of two and reject out-of-range values.)
                let m = self.lines.next_power_of_two();
                loop {
                    self.cursor = (self
                        .cursor
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407))
                        % m;
                    if self.cursor < self.lines {
                        break;
                    }
                }
                self.cursor
            }
        };
        self.base + line * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streaming_is_sequential() {
        let mut k = Kernel::new(KernelKind::Streaming, 0x10000, 4096, 0);
        let a = k.next_addr();
        let b = k.next_addr();
        assert_eq!(b, a + 64);
    }

    #[test]
    fn addresses_stay_in_region() {
        for kind in [
            KernelKind::Streaming,
            KernelKind::Strided { stride: 256 },
            KernelKind::Loop,
            KernelKind::HotCold {
                hot_fraction: 32,
                hot_probability: 200,
            },
            KernelKind::PointerChase,
        ] {
            let base = 0x40_0000;
            let size = 8192u64;
            let mut k = Kernel::new(kind, base, size, 7);
            for _ in 0..1000 {
                let a = k.next_addr();
                assert!(a >= base && a < base + size, "{kind}: {a:#x} out of region");
                assert_eq!(a % 64, 0, "line aligned");
            }
        }
    }

    #[test]
    fn loop_kernel_has_full_reuse_distance() {
        let lines = 64;
        let mut k = Kernel::new(KernelKind::Loop, 0, lines * 64, 0);
        let mut seen = HashSet::new();
        for _ in 0..lines {
            assert!(seen.insert(k.next_addr()), "revisit before full cycle");
        }
        // The next access revisits the first line of the cycle.
        let first = *seen.iter().min().unwrap();
        let mut k2 = k.clone();
        let revisit = k2.next_addr();
        assert!(seen.contains(&revisit));
        let _ = first;
    }

    #[test]
    fn pointer_chase_covers_the_region() {
        let lines = 100u64; // deliberately not a power of two
        let mut k = Kernel::new(KernelKind::PointerChase, 0, lines * 64, 3);
        let mut seen = HashSet::new();
        for _ in 0..lines {
            seen.insert(k.next_addr());
        }
        assert_eq!(seen.len() as u64, lines, "full-period permutation");
    }

    #[test]
    fn hot_cold_concentrates_on_hot_set() {
        let lines = 25600u64;
        let mut k = Kernel::new(
            KernelKind::HotCold {
                hot_fraction: 26,     // ~10% of the region
                hot_probability: 230, // ~90% of accesses
            },
            0,
            lines * 64,
            11,
        );
        let hot_limit = lines * 26 / 256 * 64;
        let mut hot = 0;
        let n = 10_000;
        for _ in 0..n {
            if k.next_addr() < hot_limit {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!(frac > 0.85, "hot fraction {frac:.2} too low");
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn rejects_empty_region() {
        let _ = Kernel::new(KernelKind::Loop, 0, 32, 0);
    }
}
