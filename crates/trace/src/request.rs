//! Server-style key-value request traffic.
//!
//! The instruction traces in [`crate::registry`] model one CPU's memory
//! stream; this module models the *other* end of the hierarchy: millions
//! of clients hammering a software cache tier with `GET`/`PUT` requests
//! (the ZipCache scenario). A [`RequestStream`] is a deterministic
//! iterator of [`KvRequest`]s shaped by a [`RequestProfile`]:
//!
//! * **Zipfian key popularity** — [`ZipfSampler`] draws ranks with
//!   configurable skew via O(1) rejection-inversion, so key counts in
//!   the millions cost no setup.
//! * **Value sizes and compressibility** — every key deterministically
//!   owns a size (bucketed, skewed small) and a [`DataProfile`], so the
//!   same key always serves the same bytes and the tier's compression
//!   kernels see realistic value mixtures.
//! * **Diurnal load phases** — the popularity ranking rotates through
//!   the key space every `phase_requests`, modeling the hot set drifting
//!   over a day; a cold cache must re-learn it.
//! * **Multi-client interleaving** — `clients` independent SplitMix64
//!   streams are interleaved by a scheduler stream, so per-client
//!   locality survives while the aggregate order is shuffled.
//!
//! Everything is a pure function of `(profile, seed)`: two streams built
//! from equal inputs yield byte-identical request sequences.

use crate::data_profile::DataProfile;

/// SplitMix64, the workspace's standard seedable stream: the canonical
/// implementation lives in [`bv_testkit`], re-exported under this
/// module's historical name so fuzz seeds, trace streams, and test
/// seeds all derive from one stream family.
pub use bv_testkit::Rng as SplitMix64;

/// One-shot stateless mix of a `u64` (the same finalizer the stream
/// uses), for deriving per-key constants.
pub use bv_testkit::mix;

/// Zipfian rank sampler over `1..=n` with exponent `s`, using
/// Hörmann's rejection-inversion method: O(1) setup and O(1) expected
/// time per sample regardless of `n`, with no table to build — exactly
/// what a million-key popularity model needs.
///
/// Rank 1 is the most popular; the probability of rank `k` is
/// proportional to `k^-s`.
///
/// # Examples
///
/// ```
/// use bv_trace::request::{SplitMix64, ZipfSampler};
///
/// let zipf = ZipfSampler::new(1_000_000, 0.99);
/// let mut rng = SplitMix64::new(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&rank));
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: f64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    cut: f64,
}

impl ZipfSampler {
    /// Creates a sampler over ranks `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `s` is negative or non-finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite");
        let nf = n as f64;
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(nf + 0.5, s);
        let cut = 2.0 - h_integral_inv(h_integral(2.5, s) - 2.0f64.powf(-s), s);
        ZipfSampler {
            n: nf,
            s,
            h_x1,
            h_n,
            cut,
        }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = h_integral_inv(u, self.s);
            let k = x.round().clamp(1.0, self.n);
            if (k - x).abs() <= self.cut || u >= h_integral(k + 0.5, self.s) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }
}

/// `H(x) = ∫ t^-s dt` from 1 to `x` (the `s = 1` limit is `ln x`).
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    if (1.0 - s).abs() < 1e-9 {
        log_x
    } else {
        (((1.0 - s) * log_x).exp() - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inv(x: f64, s: f64) -> f64 {
    if (1.0 - s).abs() < 1e-9 {
        x.exp()
    } else {
        let t = (x * (1.0 - s) + 1.0).max(f64::MIN_POSITIVE);
        (t.ln() / (1.0 - s)).exp()
    }
}

/// What a request asks the tier to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read the value; a miss fetches from the backing store and admits.
    Get,
    /// Overwrite the value (write-allocate: admits on miss).
    Put,
}

/// One key-value request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvRequest {
    /// Which simulated client issued it.
    pub client: u32,
    /// The operation.
    pub op: KvOp,
    /// The key.
    pub key: u64,
}

/// The shape of a key's value: logical size and data-value profile.
///
/// Both are pure functions of the key (under a given [`RequestProfile`]),
/// so every tier in a comparison sees the same value for the same key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueSpec {
    /// Uncompressed size in bytes (a multiple of 64).
    pub bytes: u32,
    /// What the bytes look like, which decides BDI compressibility.
    pub profile: DataProfile,
}

/// A named request-traffic shape: key-space size, skew, value mixture,
/// operation mix, phase behavior, and client count.
///
/// The three presets model the canonical server-cache workloads:
///
/// | name | skew | values | flavor |
/// |------|------|--------|--------|
/// | [`web`](RequestProfile::web) | 0.99 | small, mixed | CDN / page-fragment cache |
/// | [`analytics`](RequestProfile::analytics) | 0.60 | large, float-heavy | scan-ish reporting tier |
/// | [`social`](RequestProfile::social) | 1.20 | tiny, pointer-heavy | feed cache with a drifting hot set |
#[derive(Clone, Debug, PartialEq)]
pub struct RequestProfile {
    /// Stable name (the CLI `--dist` value).
    pub name: &'static str,
    /// Number of distinct keys.
    pub keys: u64,
    /// Zipf exponent over key popularity.
    pub skew: f64,
    /// Probability a request is a [`KvOp::Get`] (the rest are puts).
    pub get_ratio: f64,
    /// Independent request clients interleaved into one stream.
    pub clients: u32,
    /// Popularity rotation period in requests (0 = no diurnal drift).
    pub phase_requests: u64,
    /// Value-size buckets in bytes, each a multiple of 64; a key's
    /// bucket is chosen by weight. Owned so fuzzers and sweeps can
    /// compose arbitrary mixtures, not just the presets.
    pub size_buckets: Vec<(u32, u32)>,
    /// Data-profile mixture as `(profile, weight)`; decides
    /// compressibility.
    pub value_mix: Vec<(DataProfile, u32)>,
}

impl RequestProfile {
    /// Every preset name, for CLI errors and sweeps.
    pub const NAMES: [&'static str; 3] = ["web", "analytics", "social"];

    /// CDN-style web object cache: strong skew, small mixed values.
    #[must_use]
    pub fn web() -> RequestProfile {
        RequestProfile {
            name: "web",
            keys: 60_000,
            skew: 0.99,
            get_ratio: 0.95,
            clients: 4,
            phase_requests: 0,
            size_buckets: vec![(128, 4), (256, 3), (512, 2), (1024, 1), (4096, 1)],
            value_mix: vec![
                (DataProfile::Zero, 1),
                (DataProfile::Repeated, 2),
                (DataProfile::SmallInt, 3),
                (DataProfile::PointerLike, 2),
                (DataProfile::WideInt, 2),
                (DataProfile::Random, 2),
            ],
        }
    }

    /// Reporting/analytics tier: weak skew, large float-heavy values.
    #[must_use]
    pub fn analytics() -> RequestProfile {
        RequestProfile {
            name: "analytics",
            keys: 12_000,
            skew: 0.60,
            get_ratio: 0.80,
            clients: 2,
            phase_requests: 0,
            size_buckets: vec![(2048, 2), (4096, 3), (8192, 2), (16384, 1)],
            value_mix: vec![
                (DataProfile::FloatLike, 4),
                (DataProfile::WideInt, 2),
                (DataProfile::Clustered, 2),
                (DataProfile::Random, 2),
            ],
        }
    }

    /// Social-feed cache: extreme skew, tiny pointer-rich values, and a
    /// hot set that drifts through the key space (diurnal phases).
    #[must_use]
    pub fn social() -> RequestProfile {
        RequestProfile {
            name: "social",
            keys: 100_000,
            skew: 1.20,
            get_ratio: 0.90,
            clients: 8,
            phase_requests: 20_000,
            size_buckets: vec![(64, 3), (128, 3), (256, 2), (512, 1)],
            value_mix: vec![
                (DataProfile::PointerLike, 4),
                (DataProfile::SmallInt, 3),
                (DataProfile::Repeated, 1),
                (DataProfile::Clustered, 1),
                (DataProfile::Random, 1),
            ],
        }
    }

    /// Looks a preset up by [`RequestProfile::NAMES`] entry.
    #[must_use]
    pub fn by_name(name: &str) -> Option<RequestProfile> {
        Some(match name {
            "web" => RequestProfile::web(),
            "analytics" => RequestProfile::analytics(),
            "social" => RequestProfile::social(),
            _ => return None,
        })
    }

    /// The value a key serves: size bucket and data profile, chosen by
    /// weighted hash of the key. Pure: the same key always maps to the
    /// same spec.
    #[must_use]
    pub fn value_spec(&self, key: u64) -> ValueSpec {
        let h = mix(key.wrapping_mul(0x9e37_79b9).wrapping_add(0x5bd1));
        let bytes = pick_weighted(&self.size_buckets, h & 0xffff_ffff);
        let profile = pick_weighted(&self.value_mix, h >> 32);
        ValueSpec { bytes, profile }
    }
}

/// Weighted pick from a `(value, weight)` table by a hash draw.
fn pick_weighted<T: Copy>(table: &[(T, u32)], draw: u64) -> T {
    let total: u64 = table.iter().map(|&(_, w)| u64::from(w)).sum();
    let mut point = draw % total.max(1);
    for &(value, weight) in table {
        let weight = u64::from(weight);
        if point < weight {
            return value;
        }
        point -= weight;
    }
    table.last().expect("non-empty weight table").0
}

/// A deterministic iterator of [`KvRequest`]s.
///
/// Each client owns an independent SplitMix64 stream (so its popularity
/// draws and op mix are stable however the interleave lands); a
/// scheduler stream picks which client issues each request. Popularity
/// rank maps to a key through a per-phase rotation, so when
/// `phase_requests` elapses the hot set moves.
///
/// # Examples
///
/// ```
/// use bv_trace::request::{RequestProfile, RequestStream};
///
/// let mut stream = RequestStream::new(RequestProfile::web(), 42);
/// let first: Vec<_> = (&mut stream).take(100).collect();
/// let again: Vec<_> = RequestStream::new(RequestProfile::web(), 42)
///     .take(100)
///     .collect();
/// assert_eq!(first, again, "same profile + seed = same stream");
/// ```
#[derive(Clone, Debug)]
pub struct RequestStream {
    profile: RequestProfile,
    zipf: ZipfSampler,
    scheduler: SplitMix64,
    clients: Vec<SplitMix64>,
    issued: u64,
}

impl RequestStream {
    /// Creates the stream for a profile and a seed.
    #[must_use]
    pub fn new(profile: RequestProfile, seed: u64) -> RequestStream {
        let zipf = ZipfSampler::new(profile.keys, profile.skew);
        let clients = (0..profile.clients.max(1))
            .map(|c| SplitMix64::new(mix(seed ^ (u64::from(c) << 32 | 0x00c1_1e47))))
            .collect();
        RequestStream {
            profile,
            zipf,
            scheduler: SplitMix64::new(mix(seed ^ 0x5c4e_d01e)),
            clients,
            issued: 0,
        }
    }

    /// The profile this stream was built from.
    #[must_use]
    pub fn profile(&self) -> &RequestProfile {
        &self.profile
    }

    /// How many requests have been issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The diurnal phase index at the current position (0 when the
    /// profile has no drift).
    #[must_use]
    pub fn phase(&self) -> u64 {
        match self.profile.phase_requests {
            0 => 0,
            p => self.issued / p,
        }
    }

    /// Maps a popularity rank (1-based) to a key under the current
    /// phase rotation.
    fn rank_to_key(&self, rank: u64) -> u64 {
        let keys = self.profile.keys;
        // Each phase shifts the ranking by a fixed large stride, so the
        // hottest keys relocate to a previously-cold region.
        let shift = self.phase().wrapping_mul(keys / 7 + 1);
        (rank - 1 + shift) % keys
    }
}

impl Iterator for RequestStream {
    type Item = KvRequest;

    fn next(&mut self) -> Option<KvRequest> {
        let client = self.scheduler.below(self.clients.len() as u64) as u32;
        let mut rng = self.clients[client as usize].clone();
        let rank = self.zipf.sample(&mut rng);
        let key = self.rank_to_key(rank);
        let op = if rng.next_f64() < self.profile.get_ratio {
            KvOp::Get
        } else {
            KvOp::Put
        };
        self.clients[client as usize] = rng;
        self.issued += 1;
        Some(KvRequest { client, op, key })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_ranks_stay_in_range() {
        let zipf = ZipfSampler::new(1000, 0.99);
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let rank = zipf.sample(&mut rng);
            assert!((1..=1000).contains(&rank));
        }
    }

    /// The headline skew pin: for s = 0.99 over 10k keys, the top 1% of
    /// ranks must capture their analytic probability mass (~53%) within
    /// a 2-point tolerance.
    #[test]
    fn zipf_top_one_percent_share_matches_analytic_mass() {
        let n = 10_000u64;
        let s = 0.99;
        let samples = 200_000u64;
        let zipf = ZipfSampler::new(n, s);
        let mut rng = SplitMix64::new(1);
        let mut top = 0u64;
        for _ in 0..samples {
            if zipf.sample(&mut rng) <= n / 100 {
                top += 1;
            }
        }
        let harmonic: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let expect: f64 = (1..=n / 100).map(|k| (k as f64).powf(-s)).sum::<f64>() / harmonic;
        let got = top as f64 / samples as f64;
        assert!(
            (got - expect).abs() < 0.02,
            "top-1% share {got:.4} vs analytic {expect:.4}"
        );
    }

    /// Rank 1 must dominate rank 2 by roughly 2^s.
    #[test]
    fn zipf_rank_ratio_tracks_exponent() {
        let zipf = ZipfSampler::new(100, 1.0);
        let mut rng = SplitMix64::new(9);
        let (mut r1, mut r2) = (0u64, 0u64);
        for _ in 0..200_000 {
            match zipf.sample(&mut rng) {
                1 => r1 += 1,
                2 => r2 += 1,
                _ => {}
            }
        }
        let ratio = r1 as f64 / r2 as f64;
        assert!((1.8..=2.2).contains(&ratio), "p(1)/p(2) = {ratio:.3}");
    }

    #[test]
    fn streams_are_deterministic_per_seed_and_differ_across_seeds() {
        for profile in [
            RequestProfile::web(),
            RequestProfile::analytics(),
            RequestProfile::social(),
        ] {
            let a: Vec<_> = RequestStream::new(profile.clone(), 11).take(500).collect();
            let b: Vec<_> = RequestStream::new(profile.clone(), 11).take(500).collect();
            let c: Vec<_> = RequestStream::new(profile.clone(), 12).take(500).collect();
            assert_eq!(a, b, "{}: same seed must replay", profile.name);
            assert_ne!(a, c, "{}: seeds must matter", profile.name);
        }
    }

    #[test]
    fn value_specs_are_stable_and_sized_in_line_multiples() {
        let profile = RequestProfile::web();
        for key in 0..2_000u64 {
            let spec = profile.value_spec(key);
            assert_eq!(spec, profile.value_spec(key), "spec must be pure");
            assert!(
                spec.bytes >= 64 && spec.bytes.is_multiple_of(64),
                "{}",
                spec.bytes
            );
        }
    }

    #[test]
    fn diurnal_rotation_moves_the_hot_set() {
        let profile = RequestProfile::social();
        let mut stream = RequestStream::new(profile.clone(), 5);
        let phase_len = profile.phase_requests;
        let first: Vec<u64> = (&mut stream)
            .take(phase_len as usize)
            .map(|r| r.key)
            .collect();
        let second: Vec<u64> = (&mut stream)
            .take(phase_len as usize)
            .map(|r| r.key)
            .collect();
        let hottest = |keys: &[u64]| {
            let mut counts = std::collections::HashMap::new();
            for &k in keys {
                *counts.entry(k).or_insert(0u64) += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).expect("keys").0
        };
        assert_ne!(
            hottest(&first),
            hottest(&second),
            "phase rotation must relocate the hottest key"
        );
    }

    #[test]
    fn client_interleave_uses_every_client() {
        let profile = RequestProfile::web();
        let seen: std::collections::HashSet<u32> = RequestStream::new(profile.clone(), 1)
            .take(2_000)
            .map(|r| r.client)
            .collect();
        assert_eq!(seen.len() as u32, profile.clients);
    }

    /// A profile with one client must still produce a valid stream (the
    /// scheduler draws from a one-entry table) and attribute every
    /// request to client 0.
    #[test]
    fn single_client_stream_attributes_everything_to_client_zero() {
        let mut profile = RequestProfile::web();
        profile.clients = 1;
        let requests: Vec<_> = RequestStream::new(profile, 77).take(1_000).collect();
        assert_eq!(requests.len(), 1_000);
        assert!(requests.iter().all(|r| r.client == 0));
    }

    /// Taking zero requests is legal: nothing is issued, the phase stays
    /// at 0, and the stream is still usable afterwards.
    #[test]
    fn zero_request_stream_is_inert_but_alive() {
        let mut stream = RequestStream::new(RequestProfile::social(), 3);
        let none: Vec<_> = (&mut stream).take(0).collect();
        assert!(none.is_empty());
        assert_eq!(stream.issued(), 0);
        assert_eq!(stream.phase(), 0);
        assert!(stream.next().is_some(), "stream must survive an empty take");
        assert_eq!(stream.issued(), 1);
    }

    /// The diurnal phase must roll over exactly at the period boundary:
    /// request `phase_requests - 1` is still phase 0, request
    /// `phase_requests` is phase 1, and the key a fixed rank maps to
    /// moves at that instant and not before.
    #[test]
    fn phase_rolls_over_exactly_at_the_period_boundary() {
        let mut profile = RequestProfile::social();
        profile.phase_requests = 10;
        let mut stream = RequestStream::new(profile, 9);
        for i in 0..30u64 {
            assert_eq!(stream.phase(), i / 10, "before request {i}");
            stream.next();
        }
        assert_eq!(stream.issued(), 30);
        assert_eq!(stream.phase(), 3);
    }

    /// `s = 0` is the uniform degeneracy: every rank equally likely. The
    /// observed per-rank frequency over a small rank space must sit
    /// within a loose band of the uniform expectation.
    #[test]
    fn zipf_zero_exponent_degenerates_to_uniform() {
        let n = 16u64;
        let samples = 160_000u64;
        let zipf = ZipfSampler::new(n, 0.0);
        let mut rng = SplitMix64::new(4);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            let rank = zipf.sample(&mut rng);
            assert!((1..=n).contains(&rank));
            counts[(rank - 1) as usize] += 1;
        }
        let expect = samples as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.05, "rank {}: {c} vs uniform {expect:.0}", i + 1);
        }
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in RequestProfile::NAMES {
            assert_eq!(RequestProfile::by_name(name).expect("preset").name, name);
        }
        assert!(RequestProfile::by_name("bogus").is_none());
    }
}
