//! Deterministic synthetic workload and trace generation.
//!
//! The paper evaluates on 100 proprietary instruction traces (SPEC CPU2006
//! FP/INT, Sysmark productivity runs, Octane/Cinebench/3DMark client
//! workloads — Table I). Those traces are not available, so this crate
//! synthesizes deterministic replacements that preserve the two properties
//! the evaluation actually depends on:
//!
//! 1. **Cache sensitivity** — how the LLC miss rate responds to effective
//!    capacity, controlled by each workload's working-set size and access
//!    kernels (streaming, strided, hot/cold, pointer chasing).
//! 2. **BDI compressibility** — the distribution of compressed line sizes,
//!    controlled by per-region data-value profiles (zeros, small integers,
//!    pointers into a heap, floating-point-like noise, repeated values,
//!    random bytes).
//!
//! The [`registry`] module instantiates 100 named traces in the paper's
//! four categories with the paper's published aggregates: 60 of 100 traces
//! cache-sensitive, of which 50 compress to ≈50% of their uncompressed
//! size and 10 compress poorly (>75%).
//!
//! # Examples
//!
//! ```
//! use bv_trace::TraceRegistry;
//!
//! let registry = TraceRegistry::paper_default();
//! assert_eq!(registry.all().count(), 100);
//! assert_eq!(registry.cache_sensitive().count(), 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data_profile;
pub mod kernel;
pub mod mix;
pub mod record;
pub mod registry;
pub mod request;
pub mod synth;

pub use data_profile::DataProfile;
pub use kernel::KernelKind;
pub use mix::MixSpec;
pub use record::{AccessKind, TraceEvent};
pub use registry::{TraceRegistry, TraceSpec, WorkloadCategory};
pub use request::{KvOp, KvRequest, RequestProfile, RequestStream, ValueSpec, ZipfSampler};
pub use synth::TraceGenerator;
