//! # bv-metrics — live runtime metrics for the serving stack
//!
//! `bv-telemetry` answers "what did the *simulated machine* do, epoch by
//! epoch" — deterministic, instruction-sampled, written once per run.
//! This crate answers the other operational question: "what is the
//! *service* doing right now?" A long-running `bvsim serve` daemon needs
//! queue depths, crash counters, and latency histograms that can be read
//! while sweeps are in flight, which means wall-clock sampling, atomic
//! cells shared across worker threads, and a scrape path that never
//! blocks the workers.
//!
//! * [`Registry`] — named + labeled metric families. Registration locks
//!   a map; recording through the returned handles is lock-free.
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — cloneable atomic handles.
//!   Histograms reuse [`bv_telemetry::Log2Histogram`] bucketing, so the
//!   same 65-bucket shape (and the same percentile math) serves both the
//!   deterministic telemetry files and the live plane.
//! * [`Snapshot`] — a point-in-time copy with family lookups and
//!   counter-delta iteration for rate displays (`bvsim top`).
//! * [`render_exposition`] — Prometheus text exposition (0.0.4) of a
//!   snapshot, served by the daemon's `GET /metrics` endpoint.
//!
//! A [`Registry::disabled`] registry hands out inert handles so the
//! metrics-off daemon path keeps identical call sites at (measured, see
//! `BENCH.json` row `serve+metrics`) negligible cost — the crate-local
//! equivalent of `bv-telemetry`'s `NoInstrument` and `bv-events`'
//! `NoEventSink`.
//!
//! Like the rest of the workspace this crate is dependency-free beyond
//! its sibling crates: atomics from `std`, no background threads, no
//! global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expo;
mod registry;

pub use expo::render_exposition;
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricKey, Registry, Snapshot};
