//! Prometheus text exposition (version 0.0.4) for [`Snapshot`]s.
//!
//! One `# TYPE` line per family, one sample line per series, histograms
//! rendered as cumulative `_bucket{le="..."}` lines with exact
//! power-of-two upper bounds (`le` is inclusive, so bucket `b`'s bound
//! is `2^b - 1`), a `+Inf` bucket, `_sum`, and `_count`. Only buckets up
//! to the highest non-empty one are emitted — a 65-bucket log2 histogram
//! with three samples should not scrape as 65 lines of zeros.

use crate::registry::{MetricKey, Snapshot};
use bv_telemetry::Log2Histogram;
use std::fmt::Write as _;

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",...}` (empty string for an unlabeled series), with
/// `extra` appended after the key's own labels.
fn render_labels(key: &MetricKey, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn type_line(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        last.clear();
        last.push_str(name);
    }
}

/// Renders a snapshot as Prometheus text exposition.
#[must_use]
pub fn render_exposition(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last = String::new();
    for (key, value) in &snap.counters {
        type_line(&mut out, &mut last, &key.name, "counter");
        let _ = writeln!(out, "{}{} {value}", key.name, render_labels(key, None));
    }
    for (key, value) in &snap.gauges {
        type_line(&mut out, &mut last, &key.name, "gauge");
        let _ = writeln!(out, "{}{} {value}", key.name, render_labels(key, None));
    }
    for (key, h) in &snap.histograms {
        type_line(&mut out, &mut last, &key.name, "histogram");
        let mut cumulative = 0u64;
        let top = h.hist.max_bucket().map_or(0, |b| b + 1);
        for bucket in 0..top {
            cumulative += h.hist.buckets()[bucket];
            let (_, hi) = Log2Histogram::bucket_range(bucket);
            let le = hi - 1;
            let _ = writeln!(
                out,
                "{}_bucket{} {cumulative}",
                key.name,
                render_labels(key, Some(("le", &le.to_string())))
            );
        }
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            key.name,
            render_labels(key, Some(("le", "+Inf"))),
            h.hist.count()
        );
        let _ = writeln!(
            out,
            "{}_sum{} {}",
            key.name,
            render_labels(key, None),
            h.sum
        );
        let _ = writeln!(
            out,
            "{}_count{} {}",
            key.name,
            render_labels(key, None),
            h.hist.count()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    /// The golden exposition text: counter family with two labeled
    /// series (one label value needing every escape), a gauge, and a
    /// histogram — byte-exact, so any formatting drift fails loudly.
    #[test]
    fn exposition_golden_text() {
        let reg = Registry::new();
        reg.counter("jobs_completed_total", &[("source", "simulated")])
            .add(12);
        reg.counter("jobs_completed_total", &[("source", "journal")])
            .add(3);
        reg.counter("client_requests_total", &[("tenant", "a\\b\"c\nd")])
            .inc();
        reg.gauge("queue_depth", &[]).set(5);
        let h = reg.histogram("job_sim_ms", &[]);
        h.observe(0); // bucket 0: le="0"
        h.observe(3); // bucket 2: le="3"
        h.observe(3);
        h.observe(100); // bucket 7: le="127"
        let got = render_exposition(&reg.snapshot());
        let want = "\
# TYPE client_requests_total counter
client_requests_total{tenant=\"a\\\\b\\\"c\\nd\"} 1
# TYPE jobs_completed_total counter
jobs_completed_total{source=\"journal\"} 3
jobs_completed_total{source=\"simulated\"} 12
# TYPE queue_depth gauge
queue_depth 5
# TYPE job_sim_ms histogram
job_sim_ms_bucket{le=\"0\"} 1
job_sim_ms_bucket{le=\"1\"} 1
job_sim_ms_bucket{le=\"3\"} 3
job_sim_ms_bucket{le=\"7\"} 3
job_sim_ms_bucket{le=\"15\"} 3
job_sim_ms_bucket{le=\"31\"} 3
job_sim_ms_bucket{le=\"63\"} 3
job_sim_ms_bucket{le=\"127\"} 4
job_sim_ms_bucket{le=\"+Inf\"} 4
job_sim_ms_sum 106
job_sim_ms_count 4
";
        assert_eq!(got, want);
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_exposition(&Registry::new().snapshot()), "");
    }

    #[test]
    fn type_line_appears_once_per_family() {
        let reg = Registry::new();
        reg.counter("reqs_total", &[("kind", "submit")]).inc();
        reg.counter("reqs_total", &[("kind", "cancel")]).inc();
        let text = render_exposition(&reg.snapshot());
        assert_eq!(text.matches("# TYPE reqs_total counter").count(), 1);
        assert_eq!(text.matches("reqs_total{").count(), 2);
    }
}
