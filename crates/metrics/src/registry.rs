//! The metric registry and its atomic handles.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a mutex and
//! returns a cheap cloneable handle; every *recording* operation on a
//! handle is a single relaxed atomic RMW with no lock, no allocation,
//! and no branching beyond one `Option` check — safe to call from any
//! worker thread at any rate the serving stack produces.
//!
//! A registry built with [`Registry::disabled`] hands out unconnected
//! handles: the same call sites compile, the `Option` is `None`, and the
//! record path folds to a predictable not-taken branch. That is the same
//! contract the simulator's `NoInstrument` / `NoEventSink` paths make —
//! instrumentation that is not wanted must not cost anything and must
//! not change behavior.

use bv_telemetry::{Log2Histogram, LOG2_BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A metric's identity: its name plus its sorted label pairs.
///
/// Two handles registered with the same name and the same label *set*
/// (order-insensitive) share one underlying cell.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// The metric family name, e.g. `jobs_completed_total`.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels so registration order never
    /// creates duplicate series.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Default)]
struct CounterCell(AtomicU64);

#[derive(Debug, Default)]
struct GaugeCell(AtomicU64);

#[derive(Debug)]
struct HistCell {
    buckets: [AtomicU64; LOG2_BUCKETS],
    sum: AtomicU64,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// A handle connected to nothing; recording is a no-op.
    #[must_use]
    pub fn disabled() -> Counter {
        Counter(None)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 for a disabled handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.0.load(Ordering::Relaxed))
    }
}

/// A settable gauge handle (queue depths, liveness flags).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// A handle connected to nothing; recording is a no-op.
    #[must_use]
    pub fn disabled() -> Gauge {
        Gauge(None)
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        if let Some(cell) = &self.0 {
            let _ = cell
                .0
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    Some(v.saturating_sub(n))
                });
        }
    }

    /// The current value (0 for a disabled handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.0.load(Ordering::Relaxed))
    }
}

/// A log2-bucketed histogram handle ([`Log2Histogram`] bucketing:
/// bucket 0 for zero, bucket `b` for `[2^(b-1), 2^b)`).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// A handle connected to nothing; recording is a no-op.
    #[must_use]
    pub fn disabled() -> Histogram {
        Histogram(None)
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(cell) = &self.0 {
            let bucket = Log2Histogram::bucket_of(value);
            cell.buckets[bucket].fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Records a [`std::time::Duration`] in whole milliseconds — the
    /// convention every `*_ms` histogram in the serving stack uses.
    #[inline]
    pub fn observe_ms(&self, d: std::time::Duration) {
        self.observe(d.as_millis() as u64);
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistCell>),
}

/// The registry: a named, labeled set of metrics with a locked
/// registration path and a lock-free record path.
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An enabled, empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry {
            enabled: true,
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry whose handles are all no-ops and whose snapshot is
    /// always empty — the metrics-off configuration.
    #[must_use]
    pub fn disabled() -> Registry {
        Registry {
            enabled: false,
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or re-fetches) a counter.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another kind.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        if !self.enabled {
            return Counter(None);
        }
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().expect("metrics registry");
        let metric = metrics
            .entry(key)
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCell::default())));
        match metric {
            Metric::Counter(cell) => Counter(Some(Arc::clone(cell))),
            _ => panic!("metric '{name}' already registered as a different kind"),
        }
    }

    /// Registers (or re-fetches) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another kind.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        if !self.enabled {
            return Gauge(None);
        }
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().expect("metrics registry");
        let metric = metrics
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCell::default())));
        match metric {
            Metric::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
            _ => panic!("metric '{name}' already registered as a different kind"),
        }
    }

    /// Registers (or re-fetches) a histogram.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another kind.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        if !self.enabled {
            return Histogram(None);
        }
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().expect("metrics registry");
        let metric = metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(HistCell::new())));
        match metric {
            Metric::Histogram(cell) => Histogram(Some(Arc::clone(cell))),
            _ => panic!("metric '{name}' already registered as a different kind"),
        }
    }

    /// A point-in-time copy of every metric, sorted by name then labels.
    ///
    /// Counters recorded concurrently with the snapshot land in either
    /// this snapshot or the next — never lost, never double-counted —
    /// which is all a monitoring read needs.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("metrics registry");
        let mut snap = Snapshot::default();
        for (key, metric) in metrics.iter() {
            match metric {
                Metric::Counter(cell) => snap
                    .counters
                    .push((key.clone(), cell.0.load(Ordering::Relaxed))),
                Metric::Gauge(cell) => snap
                    .gauges
                    .push((key.clone(), cell.0.load(Ordering::Relaxed))),
                Metric::Histogram(cell) => {
                    let buckets: Vec<u64> = cell
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    let hist = Log2Histogram::from_buckets(&buckets).expect("bucket count");
                    snap.histograms.push((
                        key.clone(),
                        HistogramSnapshot {
                            hist,
                            sum: cell.sum.load(Ordering::Relaxed),
                        },
                    ));
                }
            }
        }
        snap
    }
}

/// A frozen histogram: the bucket counts plus the sum of all samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub hist: Log2Histogram,
    /// Sum of every recorded sample value.
    pub sum: u64,
}

/// A point-in-time copy of a [`Registry`], ordered by metric key.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter series and their values.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge series and their values.
    pub gauges: Vec<(MetricKey, u64)>,
    /// Histogram series and their frozen contents.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl Snapshot {
    /// The sum of every counter series in family `name` (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// The sum of every gauge series in family `name` (0 if absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Every histogram series in family `name`, merged (`None` if the
    /// family is absent).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for (_, h) in self.histograms.iter().filter(|(k, _)| k.name == name) {
            match &mut merged {
                Some(m) => {
                    m.hist.merge(&h.hist);
                    m.sum += h.sum;
                }
                None => merged = Some(h.clone()),
            }
        }
        merged
    }

    /// How much counter family `name` grew since `earlier` — the delta
    /// iteration a refreshing dashboard rates on. Saturates at zero, so
    /// comparing against a snapshot from a restarted daemon never
    /// underflows.
    #[must_use]
    pub fn counter_delta(&self, name: &str, earlier: &Snapshot) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones_and_threads() {
        let reg = Registry::new();
        let c = reg.counter("jobs_total", &[]);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(reg.snapshot().counter("jobs_total"), 4000);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = Registry::new();
        let a = reg.counter("reqs_total", &[("kind", "submit"), ("tenant", "a")]);
        let b = reg.counter("reqs_total", &[("tenant", "a"), ("kind", "submit")]);
        a.inc();
        b.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counter("reqs_total"), 2);
    }

    #[test]
    fn gauge_saturates_instead_of_underflowing() {
        let reg = Registry::new();
        let g = reg.gauge("queue_depth", &[]);
        g.set(2);
        g.sub(5);
        assert_eq!(g.get(), 0);
        g.add(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_snapshot_carries_buckets_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram("job_sim_ms", &[]);
        h.observe(0);
        h.observe(5);
        h.observe(100);
        let snap = reg.snapshot().histogram("job_sim_ms").expect("family");
        assert_eq!(snap.hist.count(), 3);
        assert_eq!(snap.sum, 105);
        assert_eq!(snap.hist.buckets()[Log2Histogram::bucket_of(5)], 1);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        let c = reg.counter("jobs_total", &[]);
        let g = reg.gauge("queue_depth", &[]);
        let h = reg.histogram("job_sim_ms", &[]);
        c.add(7);
        g.set(9);
        h.observe(11);
        assert!(!reg.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(reg.snapshot(), Snapshot::default());
    }

    #[test]
    fn snapshot_delta_rates_counters() {
        let reg = Registry::new();
        let c = reg.counter("rows_streamed_total", &[]);
        c.add(10);
        let first = reg.snapshot();
        c.add(5);
        let second = reg.snapshot();
        assert_eq!(second.counter_delta("rows_streamed_total", &first), 5);
        // A "newer" snapshot from a restarted daemon saturates to zero.
        assert_eq!(first.counter_delta("rows_streamed_total", &second), 0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_programmer_errors() {
        let reg = Registry::new();
        let _ = reg.counter("depth", &[]);
        let _ = reg.gauge("depth", &[]);
    }
}
