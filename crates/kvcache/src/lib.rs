//! # bv-kvcache — a software-managed compressed key-value cache tier
//!
//! The paper's Base-Victim architecture is a hardware answer to a
//! question that exists at every level of the memory hierarchy: *how do
//! you spend compression's space savings without letting compression
//! change your replacement decisions for the worse?* This crate carries
//! the answer up the stack to a server-style software cache tier (the
//! memcached / ZipCache setting): variable-sized values, a byte budget
//! instead of sets and ways, and `GET`/`PUT` request traffic instead of
//! a memory trace.
//!
//! Three organizations share one slab-backed [`LruMap`]:
//!
//! * [`UncompressedKv`] — the baseline: plain LRU charged at logical
//!   bytes.
//! * [`CompressedKv`] — naive always-compress: LRU charged at
//!   BDI-compressed bytes. Holds more, but its decisions diverge from
//!   the baseline, so adversarial mixtures can make it *lose* — the
//!   software analogue of the two-tag pollution problem.
//! * [`BaseVictimKv`] — decisions charged at logical bytes (an exact
//!   mirror of the uncompressed tier), values stored compressed, and
//!   the slack runs an opportunistic victim area. Structurally
//!   guaranteed to never hit less than the uncompressed tier.
//!
//! The guarantee is not just argued — [`lockstep`] replays a
//! [`BaseVictimKv`] and an [`UncompressedKv`] side by side and compares
//! the full recency-ordered baseline key list after **every** request,
//! pinpointing the first divergence if one ever appears.
//!
//! Values are never materialized: [`compress_value`] synthesizes each
//! 64-byte chunk from the key under the profile's
//! [`DataProfile`](bv_trace::DataProfile) mixture and runs the real BDI
//! kernel over it, so compression ratios are honest kernel output.
//! Request traffic comes from
//! [`bv_trace::request`] (Zipfian popularity,
//! diurnal phases, multi-client interleave); [`run_kv`] replays it, and
//! the sampled/traced variants feed the standard `bvsim-telemetry-v1`
//! and `bvsim-events-v1` sinks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lockstep;
mod lru;
mod org;
mod sim;
mod value;

pub use lockstep::{run_lockstep, KvDivergence, LockstepConfig, LockstepReport};
pub use lru::LruMap;
pub use org::{
    BaseVictimKv, CompressedKv, KvCache, KvCacheWith, KvOccupancy, KvOrgKind, KvOutcome, KvStats,
    UncompressedKv, KV_EVENT_BUCKETS,
};
pub use sim::{
    run_kv, run_kv_sampled, run_kv_traced, KvConfig, KvRunResult, KvTelemetry,
    DEFAULT_EPOCH_REQUESTS,
};
pub use value::{compress_value, ValueMeta};
