//! A slab-backed intrusive LRU map for variable-sized entries.
//!
//! Every tier organization in this crate makes its decisions through one
//! of these: a `HashMap` gives O(1) key lookup, and a doubly-linked list
//! threaded through a slab of nodes gives O(1) touch / insert / evict
//! with no allocation churn on the hot path. Decisions only ever read
//! the *list* order (never `HashMap` iteration order), so behavior is
//! deterministic and two maps fed the same operations stay identical —
//! the property the lockstep auditor checks.
//!
//! The map maintains both byte sums an organization might budget
//! against: logical (uncompressed) bytes and physical (compressed)
//! bytes.

use crate::value::ValueMeta;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node {
    key: u64,
    meta: ValueMeta,
    prev: usize,
    next: usize,
}

/// An LRU-ordered map from key to [`ValueMeta`].
///
/// # Examples
///
/// ```
/// use bv_kvcache::{LruMap, ValueMeta};
///
/// let mut lru = LruMap::new();
/// lru.insert_front(1, ValueMeta::new(128, 64));
/// lru.insert_front(2, ValueMeta::new(256, 64));
/// lru.touch(1); // 1 is now most recent
/// assert_eq!(lru.pop_lru().map(|(k, _)| k), Some(2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LruMap {
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    sum_bytes: u64,
    sum_compressed: u64,
}

impl LruMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> LruMap {
        LruMap {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            sum_bytes: 0,
            sum_compressed: 0,
        }
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sum of logical (uncompressed) bytes over resident entries.
    #[must_use]
    pub fn sum_bytes(&self) -> u64 {
        self.sum_bytes
    }

    /// Sum of physical (compressed) bytes over resident entries.
    #[must_use]
    pub fn sum_compressed(&self) -> u64 {
        self.sum_compressed
    }

    /// The resident entry for `key`, if any, without touching recency.
    #[must_use]
    pub fn peek(&self, key: u64) -> Option<ValueMeta> {
        self.map.get(&key).map(|&i| self.nodes[i].meta)
    }

    /// Moves `key` to the most-recent position. Returns its metadata,
    /// or `None` when the key is not resident.
    pub fn touch(&mut self, key: u64) -> Option<ValueMeta> {
        let &i = self.map.get(&key)?;
        self.unlink(i);
        self.link_front(i);
        Some(self.nodes[i].meta)
    }

    /// Inserts a new entry at the most-recent position.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already resident — organizations must decide
    /// update-vs-insert explicitly.
    pub fn insert_front(&mut self, key: u64, meta: ValueMeta) {
        assert!(
            !self.map.contains_key(&key),
            "key {key} already resident; remove it first"
        );
        let node = Node {
            key,
            meta,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.link_front(i);
        self.map.insert(key, i);
        self.sum_bytes += u64::from(meta.bytes);
        self.sum_compressed += u64::from(meta.compressed);
    }

    /// Removes `key`, returning its metadata if it was resident.
    pub fn remove(&mut self, key: u64) -> Option<ValueMeta> {
        let i = self.map.remove(&key)?;
        self.unlink(i);
        self.free.push(i);
        let meta = self.nodes[i].meta;
        self.sum_bytes -= u64::from(meta.bytes);
        self.sum_compressed -= u64::from(meta.compressed);
        Some(meta)
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(u64, ValueMeta)> {
        if self.tail == NIL {
            return None;
        }
        let key = self.nodes[self.tail].key;
        let meta = self.remove(key).expect("tail key resident");
        Some((key, meta))
    }

    /// Keys from most- to least-recently used (the full decision state;
    /// what the lockstep auditor compares).
    #[must_use]
    pub fn keys_mru(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.len());
        let mut i = self.head;
        while i != NIL {
            keys.push(self.nodes[i].key);
            i = self.nodes[i].next;
        }
        keys
    }

    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[i].prev = NIL;
        self.nodes[i].next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(bytes: u32) -> ValueMeta {
        ValueMeta::new(bytes, bytes / 2)
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut lru = LruMap::new();
        for k in 0..4 {
            lru.insert_front(k, meta(64));
        }
        lru.touch(0);
        assert_eq!(lru.pop_lru().map(|(k, _)| k), Some(1));
        assert_eq!(lru.pop_lru().map(|(k, _)| k), Some(2));
        assert_eq!(lru.pop_lru().map(|(k, _)| k), Some(3));
        assert_eq!(lru.pop_lru().map(|(k, _)| k), Some(0));
        assert!(lru.pop_lru().is_none());
    }

    #[test]
    fn sums_track_inserts_and_removes() {
        let mut lru = LruMap::new();
        lru.insert_front(1, ValueMeta::new(128, 32));
        lru.insert_front(2, ValueMeta::new(64, 64));
        assert_eq!((lru.sum_bytes(), lru.sum_compressed()), (192, 96));
        lru.remove(1);
        assert_eq!((lru.sum_bytes(), lru.sum_compressed()), (64, 64));
        lru.pop_lru();
        assert_eq!((lru.sum_bytes(), lru.sum_compressed()), (0, 0));
        assert!(lru.is_empty());
    }

    #[test]
    fn keys_mru_reports_recency_order() {
        let mut lru = LruMap::new();
        for k in [10, 20, 30] {
            lru.insert_front(k, meta(64));
        }
        lru.touch(20);
        assert_eq!(lru.keys_mru(), vec![20, 30, 10]);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut lru = LruMap::new();
        for k in 0..100 {
            lru.insert_front(k, meta(64));
            if k % 2 == 0 {
                lru.pop_lru();
            }
        }
        assert!(lru.nodes.len() <= 52, "slab grew to {}", lru.nodes.len());
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut lru = LruMap::new();
        lru.insert_front(1, meta(64));
        lru.insert_front(1, meta(64));
    }
}
