//! The request-replay driver: profile + seed + budget in,
//! counters / telemetry / events out.
//!
//! [`run_kv`] replays a [`RequestStream`] against one organization and
//! returns the measured-phase [`KvStats`] plus end-of-run occupancy.
//! [`run_kv_sampled`] additionally drives a [`KvTelemetry`] sampler
//! whose epoch clock is *committed requests* (the kv analogue of the
//! LLC's committed-instruction clock — deterministic, never wall time),
//! and [`run_kv_traced`] captures per-decision [`CacheEvent`]s through
//! any [`EventSink`].
//!
//! Compression happens lazily: the BDI kernel only runs when a miss
//! actually fetches a value, so hot keys served from the tier cost no
//! kernel work — the same asymmetry a real software cache tier has.

use std::collections::BTreeMap;

use bv_events::{CacheEvent, EventSink, NoEventSink};
use bv_telemetry::{ColumnId, Log2Histogram, TelemetryReport, TimeSeries};
use bv_trace::request::{KvOp, RequestProfile, RequestStream};

use crate::org::{KvCacheWith, KvOccupancy, KvOrgKind, KvStats};
use crate::value::compress_value;

/// Default sampling period: one epoch per 10k requests.
pub const DEFAULT_EPOCH_REQUESTS: u64 = 10_000;

/// One kv replay, fully specified.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// Which organization to build.
    pub org: KvOrgKind,
    /// The request-traffic shape.
    pub profile: RequestProfile,
    /// Tier byte budget.
    pub budget: u64,
    /// Measured requests.
    pub requests: u64,
    /// Warmup requests (replayed, then counters reset).
    pub warmup: u64,
    /// Stream seed.
    pub seed: u64,
}

impl KvConfig {
    /// A sensible default around a profile: 1 MiB budget, 50k warmup,
    /// 150k measured requests, seed 42.
    #[must_use]
    pub fn new(org: KvOrgKind, profile: RequestProfile) -> KvConfig {
        KvConfig {
            org,
            profile,
            budget: 1 << 20,
            requests: 150_000,
            warmup: 50_000,
            seed: 42,
        }
    }
}

/// What one replay produced.
#[derive(Clone, Debug)]
pub struct KvRunResult {
    /// Organization replayed.
    pub org: KvOrgKind,
    /// Profile name.
    pub profile: String,
    /// Tier byte budget.
    pub budget: u64,
    /// Measured requests.
    pub requests: u64,
    /// Warmup requests.
    pub warmup: u64,
    /// Stream seed.
    pub seed: u64,
    /// Measured-phase counters.
    pub stats: KvStats,
    /// End-of-run occupancy.
    pub occupancy: KvOccupancy,
}

impl KvRunResult {
    /// Measured-phase get hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }

    /// Logical bytes served per physical budget byte at end of run
    /// (the "bytes-effective" expansion; 1.0 for a full uncompressed
    /// tier).
    #[must_use]
    pub fn bytes_effective(&self) -> f64 {
        if self.budget == 0 {
            0.0
        } else {
            self.occupancy.logical_bytes as f64 / self.budget as f64
        }
    }
}

/// Replays the stream untraced and unsampled.
#[must_use]
pub fn run_kv(cfg: &KvConfig) -> KvRunResult {
    let (result, _) = drive(cfg, NoEventSink, None);
    result
}

/// Replays the stream with an epoch sampler attached.
#[must_use]
pub fn run_kv_sampled(cfg: &KvConfig, telemetry: &mut KvTelemetry) -> KvRunResult {
    let (result, _) = drive(cfg, NoEventSink, Some(telemetry));
    result
}

/// Replays the stream through an event sink; returns the retained
/// events (oldest first) and how many the sink overwrote.
#[must_use]
pub fn run_kv_traced<S: EventSink>(cfg: &KvConfig, sink: S) -> (KvRunResult, Vec<CacheEvent>, u64) {
    let (result, mut tier) = drive(cfg, sink, None);
    let dropped = tier.events_dropped();
    (result, tier.drain_events(), dropped)
}

fn drive<S: EventSink>(
    cfg: &KvConfig,
    sink: S,
    mut telemetry: Option<&mut KvTelemetry>,
) -> (KvRunResult, KvCacheWith<S>) {
    let mut tier = cfg.org.build_traced(cfg.budget, sink);
    let profile = cfg.profile.clone();
    let mut stream = RequestStream::new(profile.clone(), cfg.seed);

    for req in (&mut stream).take(cfg.warmup as usize) {
        apply(&mut tier, &profile, req.key, req.op);
    }
    tier.reset_stats();

    if let Some(tel) = telemetry.as_deref_mut() {
        tel.begin(&tier);
    }
    let mut issued = 0u64;
    for req in (&mut stream).take(cfg.requests as usize) {
        apply(&mut tier, &profile, req.key, req.op);
        issued += 1;
        if let Some(tel) = telemetry.as_deref_mut() {
            if issued.is_multiple_of(tel.epoch_requests) {
                tel.sample(issued, &tier);
            }
        }
    }
    if let Some(tel) = telemetry {
        tel.finish(issued, &tier);
    }

    let result = KvRunResult {
        org: cfg.org,
        profile: profile.name.to_string(),
        budget: cfg.budget,
        requests: cfg.requests,
        warmup: cfg.warmup,
        seed: cfg.seed,
        stats: *tier.stats(),
        occupancy: tier.occupancy(),
    };
    (result, tier)
}

fn apply<S: EventSink>(tier: &mut KvCacheWith<S>, profile: &RequestProfile, key: u64, op: KvOp) {
    let fetch = || compress_value(key, profile.value_spec(key));
    match op {
        KvOp::Get => {
            tier.get(key, fetch);
        }
        KvOp::Put => tier.put(key, fetch),
    }
}

/// The kv epoch sampler: one row per `epoch_requests` measured
/// requests, plus whole-run counters and two epoch histograms, all
/// feeding the standard `bvsim-telemetry-v1` sink.
///
/// The report's `epoch_insts` field carries the request period and the
/// meta map records `epoch_unit = requests`, so readers can tell the
/// clock apart from the LLC samplers'.
///
/// # Examples
///
/// ```
/// use bv_kvcache::{run_kv_sampled, KvConfig, KvOrgKind, KvTelemetry};
/// use bv_trace::request::RequestProfile;
///
/// let mut cfg = KvConfig::new(KvOrgKind::BaseVictim, RequestProfile::web());
/// cfg.requests = 30_000;
/// cfg.warmup = 10_000;
/// let mut tel = KvTelemetry::new(10_000).with_meta("dist", "web");
/// let result = run_kv_sampled(&cfg, &mut tel);
/// let report = tel.into_report();
/// assert_eq!(report.series.rows(), 3);
/// assert!(result.hit_rate() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct KvTelemetry {
    epoch_requests: u64,
    meta: BTreeMap<String, String>,
    series: TimeSeries,
    cols: KvColumns,
    prev: KvStats,
    last_sampled: u64,
    epoch_misses: Log2Histogram,
    epoch_victim_hits: Log2Histogram,
    counters: Vec<(String, u64)>,
}

#[derive(Clone, Debug)]
struct KvColumns {
    requests: ColumnId,
    hit_rate: ColumnId,
    gets: ColumnId,
    hits: ColumnId,
    victim_hits: ColumnId,
    misses: ColumnId,
    puts: ColumnId,
    evictions: ColumnId,
    victim_inserts: ColumnId,
    resident_bytes: ColumnId,
    logical_bytes: ColumnId,
    victim_bytes: ColumnId,
    entries: ColumnId,
    bytes_effective: ColumnId,
    comp_ratio: ColumnId,
}

impl KvTelemetry {
    /// Creates a sampler that fires every `epoch_requests` measured
    /// requests ([`DEFAULT_EPOCH_REQUESTS`] is the CLI default).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_requests` is zero.
    #[must_use]
    pub fn new(epoch_requests: u64) -> KvTelemetry {
        assert!(epoch_requests > 0, "epoch must be at least one request");
        let mut series = TimeSeries::new();
        let cols = KvColumns {
            requests: series.u64_column("requests"),
            hit_rate: series.f64_column("hit_rate"),
            gets: series.u64_column("gets"),
            hits: series.u64_column("hits"),
            victim_hits: series.u64_column("victim_hits"),
            misses: series.u64_column("misses"),
            puts: series.u64_column("puts"),
            evictions: series.u64_column("evictions"),
            victim_inserts: series.u64_column("victim_inserts"),
            resident_bytes: series.u64_column("resident_bytes"),
            logical_bytes: series.u64_column("logical_bytes"),
            victim_bytes: series.u64_column("victim_bytes"),
            entries: series.u64_column("entries"),
            bytes_effective: series.f64_column("bytes_effective"),
            comp_ratio: series.f64_column("comp_ratio"),
        };
        let mut meta = BTreeMap::new();
        meta.insert("epoch_unit".to_string(), "requests".to_string());
        KvTelemetry {
            epoch_requests,
            meta,
            series,
            cols,
            prev: KvStats::default(),
            last_sampled: 0,
            epoch_misses: Log2Histogram::new(),
            epoch_victim_hits: Log2Histogram::new(),
            counters: Vec::new(),
        }
    }

    /// Attaches a run-identity key (`org`, `dist`, ...) to the report
    /// header.
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: &str) -> KvTelemetry {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    /// The configured sampling period.
    #[must_use]
    pub fn epoch_requests(&self) -> u64 {
        self.epoch_requests
    }

    fn begin<S: EventSink>(&mut self, tier: &KvCacheWith<S>) {
        self.prev = *tier.stats();
        self.last_sampled = 0;
    }

    fn sample<S: EventSink>(&mut self, issued: u64, tier: &KvCacheWith<S>) {
        let cur = *tier.stats();
        let occ = tier.occupancy();
        let d_gets = cur.gets - self.prev.gets;
        let d_hits = cur.hits() - self.prev.hits();
        let d_misses = cur.misses - self.prev.misses;
        let d_victim_hits = cur.victim_hits - self.prev.victim_hits;
        let budget = tier.budget();

        self.series.push_u64(self.cols.requests, issued);
        self.series.push_f64(
            self.cols.hit_rate,
            if d_gets == 0 {
                0.0
            } else {
                d_hits as f64 / d_gets as f64
            },
        );
        self.series.push_u64(self.cols.gets, d_gets);
        self.series.push_u64(self.cols.hits, d_hits);
        self.series.push_u64(self.cols.victim_hits, d_victim_hits);
        self.series.push_u64(self.cols.misses, d_misses);
        self.series
            .push_u64(self.cols.puts, cur.puts - self.prev.puts);
        self.series
            .push_u64(self.cols.evictions, cur.evictions - self.prev.evictions);
        self.series.push_u64(
            self.cols.victim_inserts,
            cur.victim_inserts - self.prev.victim_inserts,
        );
        self.series
            .push_u64(self.cols.resident_bytes, occ.resident_bytes);
        self.series
            .push_u64(self.cols.logical_bytes, occ.logical_bytes);
        self.series
            .push_u64(self.cols.victim_bytes, occ.victim_bytes);
        self.series
            .push_u64(self.cols.entries, occ.entries + occ.victim_entries);
        self.series.push_f64(
            self.cols.bytes_effective,
            if budget == 0 {
                0.0
            } else {
                occ.logical_bytes as f64 / budget as f64
            },
        );
        self.series
            .push_f64(self.cols.comp_ratio, cur.compression_ratio());
        self.series.end_row();

        self.epoch_misses.record(d_misses);
        self.epoch_victim_hits.record(d_victim_hits);
        self.prev = cur;
        self.last_sampled = issued;
    }

    fn finish<S: EventSink>(&mut self, issued: u64, tier: &KvCacheWith<S>) {
        if issued > self.last_sampled {
            // Tail shorter than one epoch.
            self.sample(issued, tier);
        }
        let s = tier.stats();
        self.counters = vec![
            ("kv.gets".to_string(), s.gets),
            ("kv.base_hits".to_string(), s.base_hits),
            ("kv.victim_hits".to_string(), s.victim_hits),
            ("kv.misses".to_string(), s.misses),
            ("kv.puts".to_string(), s.puts),
            ("kv.admitted".to_string(), s.admitted),
            ("kv.bypassed".to_string(), s.bypassed),
            ("kv.evictions".to_string(), s.evictions),
            ("kv.victim_inserts".to_string(), s.victim_inserts),
            (
                "kv.victim_insert_failures".to_string(),
                s.victim_insert_failures,
            ),
            ("kv.victim_evictions".to_string(), s.victim_evictions),
            (
                "kv.victim_overflow_drops".to_string(),
                s.victim_overflow_drops,
            ),
            ("kv.admitted_bytes".to_string(), s.admitted_bytes),
            (
                "kv.admitted_compressed_bytes".to_string(),
                s.admitted_compressed_bytes,
            ),
        ];
    }

    /// Consumes the sampler into the serializable report. Call after
    /// the run completes.
    #[must_use]
    pub fn into_report(self) -> TelemetryReport {
        TelemetryReport {
            epoch_insts: self.epoch_requests,
            meta: self.meta,
            series: self.series,
            histograms: vec![
                ("epoch_misses".to_string(), self.epoch_misses),
                ("epoch_victim_hits".to_string(), self.epoch_victim_hits),
            ],
            counters: self.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bv_events::RingSink;

    fn small(org: KvOrgKind) -> KvConfig {
        let mut cfg = KvConfig::new(org, RequestProfile::web());
        cfg.budget = 256 * 1024;
        cfg.requests = 40_000;
        cfg.warmup = 10_000;
        cfg
    }

    #[test]
    fn replay_is_deterministic() {
        for org in KvOrgKind::ALL {
            let a = run_kv(&small(org));
            let b = run_kv(&small(org));
            assert_eq!(a.stats, b.stats, "{}", org.name());
            assert_eq!(a.occupancy, b.occupancy, "{}", org.name());
        }
    }

    #[test]
    fn base_victim_never_loses_to_uncompressed() {
        let unc = run_kv(&small(KvOrgKind::Uncompressed));
        let bv = run_kv(&small(KvOrgKind::BaseVictim));
        assert!(bv.stats.hits() >= unc.stats.hits());
        assert_eq!(bv.stats.base_hits, unc.stats.base_hits, "mirror identity");
    }

    #[test]
    fn sampled_run_matches_unsampled_run_exactly() {
        let cfg = small(KvOrgKind::BaseVictim);
        let plain = run_kv(&cfg);
        let mut tel = KvTelemetry::new(10_000);
        let sampled = run_kv_sampled(&cfg, &mut tel);
        assert_eq!(plain.stats, sampled.stats, "observer perturbed the replay");
        let report = tel.into_report();
        assert_eq!(report.series.rows(), 4);
        let requests = report.series.u64s("requests").expect("requests column");
        assert_eq!(*requests.last().unwrap(), cfg.requests);
        // Epoch miss deltas sum to the whole-run counter.
        let misses: u64 = report.series.u64s("misses").unwrap().iter().sum();
        let counter = report
            .counters
            .iter()
            .find(|(n, _)| n == "kv.misses")
            .expect("kv.misses");
        assert_eq!(misses, counter.1);
        assert_eq!(counter.1, sampled.stats.misses);
    }

    #[test]
    fn telemetry_report_round_trips_through_jsonl() {
        let cfg = small(KvOrgKind::BaseVictim);
        let mut tel = KvTelemetry::new(10_000).with_meta("org", "base-victim");
        let _ = run_kv_sampled(&cfg, &mut tel);
        let report = tel.into_report();
        let jsonl = report.to_jsonl();
        let back = TelemetryReport::from_jsonl(&jsonl).expect("round trip");
        assert_eq!(report, back);
        assert_eq!(
            back.meta.get("epoch_unit").map(String::as_str),
            Some("requests")
        );
    }

    #[test]
    fn traced_run_captures_decisions() {
        let cfg = small(KvOrgKind::BaseVictim);
        let (result, events, _dropped) = run_kv_traced(&cfg, RingSink::new(4096));
        assert_eq!(events.len(), 4096, "ring fills on this traffic");
        assert!(result.stats.victim_inserts > 0);
        // seq stamps are monotone and sets stay inside the bucket space.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events
            .iter()
            .all(|e| u64::from(e.set) < crate::org::KV_EVENT_BUCKETS));
    }

    #[test]
    fn tail_epoch_is_sampled() {
        let mut cfg = small(KvOrgKind::Uncompressed);
        cfg.requests = 25_000; // 2 full epochs + 5k tail
        let mut tel = KvTelemetry::new(10_000);
        let _ = run_kv_sampled(&cfg, &mut tel);
        let report = tel.into_report();
        assert_eq!(report.series.rows(), 3);
        let requests = report.series.u64s("requests").unwrap();
        assert_eq!(requests, &[10_000, 20_000, 25_000]);
    }
}
