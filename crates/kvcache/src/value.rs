//! Value synthesis and compression: what a key's bytes look like and
//! what they cost to store compressed.
//!
//! A value is `spec.bytes` of deterministic data shaped by a
//! [`DataProfile`] (the same profiles the LLC traces use). The tier
//! never materializes the value; it chunks it into 64-byte cache lines,
//! synthesizes each chunk from `(key, chunk index)`, and runs the real
//! [`Bdi`] kernel over every chunk — so a tier's compression ratio is
//! the honest output of the hardware kernel over plausible bytes, not a
//! modeled constant.

use bv_compress::{Bdi, CacheLine, Compressor, CACHE_LINE_BYTES};
use bv_trace::request::ValueSpec;

/// The two sizes an organization budgets against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueMeta {
    /// Logical (uncompressed) size in bytes.
    pub bytes: u32,
    /// Physical (BDI-compressed) size in bytes, 4-byte aligned per
    /// chunk; never larger than `bytes`.
    pub compressed: u32,
}

impl ValueMeta {
    /// Builds metadata from explicit sizes (tests, synthetic loads).
    ///
    /// # Panics
    ///
    /// Panics if `compressed` exceeds `bytes`: a compressed
    /// representation larger than the original would be stored raw.
    #[must_use]
    pub fn new(bytes: u32, compressed: u32) -> ValueMeta {
        assert!(
            compressed <= bytes,
            "compressed size {compressed} exceeds logical size {bytes}"
        );
        ValueMeta { bytes, compressed }
    }

    /// The compression ratio (1.0 = incompressible).
    #[must_use]
    pub fn ratio(self) -> f64 {
        f64::from(self.compressed) / f64::from(self.bytes.max(1))
    }
}

/// Compresses the value a key serves by running [`Bdi`] over each
/// synthesized 64-byte chunk and summing the per-chunk compressed
/// sizes (segment-aligned, clamped at the chunk size — hardware stores
/// an incompressible chunk raw).
///
/// Pure in `(key, spec)`: every tier in a comparison derives the same
/// [`ValueMeta`] for the same key, which the lockstep auditor relies on.
///
/// # Examples
///
/// ```
/// use bv_kvcache::compress_value;
/// use bv_trace::request::ValueSpec;
/// use bv_trace::DataProfile;
///
/// let zero = compress_value(7, ValueSpec { bytes: 256, profile: DataProfile::Zero });
/// assert_eq!(zero.bytes, 256);
/// assert_eq!(zero.compressed, 16, "4 zero chunks at 1 segment each");
///
/// let raw = compress_value(7, ValueSpec { bytes: 256, profile: DataProfile::Random });
/// assert_eq!(raw.compressed, 256, "random bytes stay full size");
/// ```
#[must_use]
pub fn compress_value(key: u64, spec: ValueSpec) -> ValueMeta {
    let bdi = Bdi::new();
    let chunks = (spec.bytes as usize).div_ceil(CACHE_LINE_BYTES).max(1);
    let mut compressed = 0u32;
    for chunk in 0..chunks {
        // Chunk addresses are spread so neighboring chunks synthesize
        // independent data; the epoch is 0 because a key's bytes are
        // stable for its lifetime (puts rewrite the same distribution).
        let line: CacheLine = spec
            .profile
            .synthesize(key.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ chunk as u64, 0);
        compressed += bdi.compressed_size(&line).bytes() as u32;
    }
    ValueMeta::new(spec.bytes.max(64), compressed.min(spec.bytes.max(64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bv_trace::DataProfile;

    #[test]
    fn compression_is_pure() {
        let spec = ValueSpec {
            bytes: 1024,
            profile: DataProfile::PointerLike,
        };
        assert_eq!(compress_value(99, spec), compress_value(99, spec));
    }

    #[test]
    fn profiles_order_by_compressibility() {
        let sized = |profile| {
            compress_value(
                3,
                ValueSpec {
                    bytes: 4096,
                    profile,
                },
            )
            .compressed
        };
        let zero = sized(DataProfile::Zero);
        let ptr = sized(DataProfile::PointerLike);
        let float = sized(DataProfile::FloatLike);
        let random = sized(DataProfile::Random);
        assert!(zero < ptr && ptr < float && float < random);
        assert_eq!(random, 4096);
    }

    #[test]
    fn compressed_never_exceeds_logical() {
        for profile in DataProfile::ALL {
            for bytes in [64u32, 128, 1024, 16384] {
                let meta = compress_value(17, ValueSpec { bytes, profile });
                assert!(meta.compressed <= meta.bytes, "{profile:?} {bytes}");
            }
        }
    }
}
