//! The baseline-mirror auditor: the scientific deliverable.
//!
//! The Base-Victim tier's whole claim is that its *decision-making*
//! state is bit-identical to the uncompressed tier's at every point in
//! time — compression can only add hits, never change a decision. This
//! module proves it empirically: it steps a [`BaseVictimKv`] and an
//! [`UncompressedKv`] through the same request stream in lockstep and,
//! after **every** operation, compares the full recency-ordered key
//! list of the base-victim baseline area against the uncompressed
//! tier's. The first mismatch is pinpointed with the op index, the
//! request that caused it, and the two orderings around the first
//! differing position.
//!
//! Alongside the mirror identity the auditor checks the consequences
//! that make it worth having:
//!
//! * `base_hits == uncompressed hits` and
//!   `misses + victim_hits == uncompressed misses` — every victim hit
//!   is a rescued miss, never a reshuffled one.
//! * The byte-budget invariant (physical bytes `<=` budget) after every
//!   op, via [`BaseVictimKv::check_invariants`].
//!
//! Like the LLC auditor's `--inject`, [`LockstepConfig::inject_at`]
//! deliberately perturbs the baseline mid-run so tests can show the
//! auditor actually detects divergence rather than vacuously passing.

use crate::org::{BaseVictimKv, UncompressedKv};
use crate::value::compress_value;
use bv_events::NoEventSink;
use bv_trace::request::{KvOp, KvRequest, RequestProfile, RequestStream};

/// What to audit.
#[derive(Clone, Debug)]
pub struct LockstepConfig {
    /// The request-traffic shape.
    pub profile: RequestProfile,
    /// Stream seed.
    pub seed: u64,
    /// How many requests to replay.
    pub requests: u64,
    /// Shared byte budget for both tiers.
    pub budget: u64,
    /// Perturb the base-victim baseline after this many requests to
    /// prove divergence detection is live (`None` = honest run).
    pub inject_at: Option<u64>,
}

/// The first detected divergence between the two baselines.
#[derive(Clone, Debug)]
pub struct KvDivergence {
    /// 0-based index of the request after which state differed.
    pub op_index: u64,
    /// The request that was just applied.
    pub request: KvRequest,
    /// Human-readable description: which check failed and how.
    pub detail: String,
}

/// Outcome of a lockstep run.
#[derive(Clone, Debug)]
pub struct LockstepReport {
    /// Requests replayed (stops early at the first divergence).
    pub ops: u64,
    /// The first divergence, or `None` when the mirror held throughout.
    pub divergence: Option<KvDivergence>,
    /// Base-victim hits (base + victim areas).
    pub bv_hits: u64,
    /// Base-victim victim-area hits (the opportunistic gain).
    pub victim_hits: u64,
    /// Uncompressed-tier hits.
    pub unc_hits: u64,
}

impl LockstepReport {
    /// True when the mirror held and the hit-rate guarantee with it.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Describes the first position where two recency orderings differ.
fn describe_mismatch(expected: &[u64], got: &[u64]) -> String {
    if expected.len() != got.len() {
        return format!(
            "baseline holds {} keys, uncompressed tier holds {}",
            got.len(),
            expected.len()
        );
    }
    let at = expected
        .iter()
        .zip(got.iter())
        .position(|(e, g)| e != g)
        .unwrap_or(0);
    format!(
        "recency order differs at position {at}: uncompressed has key {}, baseline has key {}",
        expected[at], got[at]
    )
}

/// Replays `cfg.requests` against both tiers, checking the mirror after
/// every operation. Returns at the first divergence.
#[must_use]
pub fn run_lockstep(cfg: &LockstepConfig) -> LockstepReport {
    let mut bv: BaseVictimKv = BaseVictimKv::new(cfg.budget, NoEventSink);
    let mut unc: UncompressedKv = UncompressedKv::new(cfg.budget, NoEventSink);
    let profile = cfg.profile.clone();
    let stream = RequestStream::new(profile.clone(), cfg.seed);

    let mut ops = 0u64;
    let mut divergence = None;
    for req in stream.take(cfg.requests as usize) {
        let spec = profile.value_spec(req.key);
        match req.op {
            KvOp::Get => {
                bv.get(req.key, || compress_value(req.key, spec));
                unc.get(req.key, || compress_value(req.key, spec));
            }
            KvOp::Put => {
                bv.put(req.key, || compress_value(req.key, spec));
                unc.put(req.key, || compress_value(req.key, spec));
            }
        }
        if Some(ops) == cfg.inject_at {
            bv.inject_baseline_perturbation();
        }
        ops += 1;

        if let Some(detail) = check_step(&bv, &unc) {
            divergence = Some(KvDivergence {
                op_index: ops - 1,
                request: req,
                detail,
            });
            break;
        }
    }

    LockstepReport {
        ops,
        divergence,
        bv_hits: bv.stats().hits(),
        victim_hits: bv.stats().victim_hits,
        unc_hits: unc.stats().hits(),
    }
}

/// Every per-op check; returns the first failure's description.
fn check_step(bv: &BaseVictimKv, unc: &UncompressedKv) -> Option<String> {
    let expected = unc.keys_mru();
    let got = bv.baseline_keys_mru();
    if expected != got {
        return Some(describe_mismatch(&expected, &got));
    }
    if bv.stats().base_hits != unc.stats().base_hits {
        return Some(format!(
            "base hits diverged: base-victim {} vs uncompressed {}",
            bv.stats().base_hits,
            unc.stats().base_hits
        ));
    }
    if bv.stats().misses + bv.stats().victim_hits != unc.stats().misses {
        return Some(format!(
            "miss accounting diverged: base-victim misses {} + victim hits {} != uncompressed misses {}",
            bv.stats().misses,
            bv.stats().victim_hits,
            unc.stats().misses
        ));
    }
    if let Err(violation) = bv.check_invariants() {
        return Some(violation);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(profile: RequestProfile, seed: u64) -> LockstepConfig {
        LockstepConfig {
            profile,
            seed,
            requests: 6_000,
            budget: 256 * 1024,
            inject_at: None,
        }
    }

    #[test]
    fn mirror_holds_on_every_preset() {
        for name in RequestProfile::NAMES {
            let profile = RequestProfile::by_name(name).expect("preset");
            let report = run_lockstep(&cfg(profile, 77));
            assert!(report.holds(), "{name}: {:?}", report.divergence);
            assert!(
                report.bv_hits >= report.unc_hits,
                "{name}: bv {} < unc {}",
                report.bv_hits,
                report.unc_hits
            );
        }
    }

    #[test]
    fn victim_hits_account_for_the_entire_gain() {
        let report = run_lockstep(&cfg(RequestProfile::web(), 3));
        assert!(report.holds());
        assert_eq!(report.bv_hits - report.unc_hits, report.victim_hits);
        assert!(
            report.victim_hits > 0,
            "web traffic should exercise the victim area"
        );
    }

    #[test]
    fn injected_perturbation_is_detected() {
        let mut c = cfg(RequestProfile::web(), 5);
        c.inject_at = Some(2_000);
        let report = run_lockstep(&c);
        let div = report.divergence.expect("perturbation must be caught");
        // Detection is immediate: the check runs right after the inject.
        assert_eq!(div.op_index, 2_000);
        assert!(div.detail.contains("recency order"), "{}", div.detail);
    }

    #[test]
    fn divergence_reports_are_descriptive() {
        assert!(describe_mismatch(&[1, 2], &[1]).contains("holds"));
        let msg = describe_mismatch(&[1, 2, 3], &[1, 3, 2]);
        assert!(msg.contains("position 1"), "{msg}");
    }
}
