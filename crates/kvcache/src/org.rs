//! The three byte-budgeted cache-tier organizations.
//!
//! Each tier stores variable-sized values under a fixed byte budget and
//! differs only in what it charges against that budget:
//!
//! * [`UncompressedKv`] — charges logical bytes; the baseline every
//!   comparison is anchored to.
//! * [`CompressedKv`] — naive always-compress: charges BDI-compressed
//!   bytes, so it holds more entries but its replacement decisions
//!   diverge from the uncompressed tier (the software analogue of the
//!   two-tag LLC designs the paper argues against).
//! * [`BaseVictimKv`] — the paper's opportunistic idea one level up:
//!   admission/eviction decisions are made exactly as the uncompressed
//!   tier would (charging logical bytes), so the *baseline area* always
//!   holds exactly the uncompressed tier's contents; values are stored
//!   compressed, and the slack this creates hosts a *victim area* of
//!   recently evicted entries that can serve extra hits but can never
//!   influence a baseline decision. Hit rate is therefore guaranteed
//!   `>=` the uncompressed tier at equal budget — the kv-level mirror
//!   of the paper's Section III invariant, checked op-by-op in
//!   [`crate::lockstep`].
//!
//! Event tracing mirrors the LLC organizations: every tier is generic
//! over an [`EventSink`] monomorphized to nothing by default. Since a
//! kv tier has no sets or ways, events use a 1024-bucket hash of the
//! key as the `set` and express sizes in 64-byte lines (clamped to
//! 255) rather than 4-byte segments.

use crate::lru::LruMap;
use crate::value::ValueMeta;
use bv_events::{CacheEvent, DropCause, EventKind, EventSink, EvictCause, NoEventSink};

/// Event `set` buckets for kv keys (power of two, heatmap-friendly).
pub const KV_EVENT_BUCKETS: u64 = 1024;

/// Which tier organization to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KvOrgKind {
    /// Values stored raw; budget charged at logical size.
    Uncompressed,
    /// Values stored compressed; budget charged at compressed size.
    Compressed,
    /// Uncompressed-mirror decisions plus an opportunistic compressed
    /// victim area in the slack.
    BaseVictim,
}

impl KvOrgKind {
    /// Every organization, for sweeps and goldens.
    pub const ALL: [KvOrgKind; 3] = [
        KvOrgKind::Uncompressed,
        KvOrgKind::Compressed,
        KvOrgKind::BaseVictim,
    ];

    /// Stable lower-case name (the CLI `--org` value).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KvOrgKind::Uncompressed => "uncompressed",
            KvOrgKind::Compressed => "compressed",
            KvOrgKind::BaseVictim => "base-victim",
        }
    }

    /// Parses [`KvOrgKind::name`] back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<KvOrgKind> {
        Some(match s {
            "uncompressed" => KvOrgKind::Uncompressed,
            "compressed" => KvOrgKind::Compressed,
            "base-victim" => KvOrgKind::BaseVictim,
            _ => return None,
        })
    }

    /// Builds the untraced tier.
    #[must_use]
    pub fn build(self, budget: u64) -> KvCache {
        self.build_traced(budget, NoEventSink)
    }

    /// Builds the tier around an event sink.
    #[must_use]
    pub fn build_traced<S: EventSink>(self, budget: u64, sink: S) -> KvCacheWith<S> {
        match self {
            KvOrgKind::Uncompressed => KvCacheWith::Uncompressed(UncompressedKv::new(budget, sink)),
            KvOrgKind::Compressed => KvCacheWith::Compressed(CompressedKv::new(budget, sink)),
            KvOrgKind::BaseVictim => KvCacheWith::BaseVictim(BaseVictimKv::new(budget, sink)),
        }
    }
}

/// What a `get` did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvOutcome {
    /// Served from the baseline (decision-making) area.
    BaseHit,
    /// Served from the opportunistic victim area (base-victim only).
    VictimHit,
    /// Fetched from the backing store and admitted.
    Miss,
    /// Fetched from the backing store but too large to admit.
    Bypass,
}

impl KvOutcome {
    /// True for both hit flavors.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, KvOutcome::BaseHit | KvOutcome::VictimHit)
    }
}

/// Every counter a kv tier maintains. All integers, so golden snapshots
/// pin them bit-for-bit; rates are derived.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvStats {
    /// `get` requests served.
    pub gets: u64,
    /// Gets served from the baseline area.
    pub base_hits: u64,
    /// Gets rescued by the victim area.
    pub victim_hits: u64,
    /// Gets that went to the backing store.
    pub misses: u64,
    /// `put` requests served.
    pub puts: u64,
    /// Values admitted (fills), from either op.
    pub admitted: u64,
    /// Requests whose value exceeded the whole budget (never admitted).
    pub bypassed: u64,
    /// Baseline-area evictions (replacement decisions).
    pub evictions: u64,
    /// Evicted entries successfully parked in the victim area.
    pub victim_inserts: u64,
    /// Evicted entries that found no victim-area room.
    pub victim_insert_failures: u64,
    /// Victim entries displaced by newer parked entries.
    pub victim_evictions: u64,
    /// Victim entries dropped because baseline growth shrank the slack.
    pub victim_overflow_drops: u64,
    /// Cumulative logical bytes over admissions.
    pub admitted_bytes: u64,
    /// Cumulative compressed bytes over admissions.
    pub admitted_compressed_bytes: u64,
}

impl KvStats {
    /// Hits of either flavor.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.base_hits + self.victim_hits
    }

    /// Get hit rate in `[0, 1]` (0 when no gets ran).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.hits() as f64 / self.gets as f64
        }
    }

    /// Mean compression ratio over admitted values (1.0 when nothing
    /// was admitted).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.admitted_bytes == 0 {
            1.0
        } else {
            self.admitted_compressed_bytes as f64 / self.admitted_bytes as f64
        }
    }
}

/// Point-in-time occupancy, shared across organizations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KvOccupancy {
    /// Physical bytes charged against the budget.
    pub resident_bytes: u64,
    /// Logical bytes resident (the "bytes-effective" numerator: how
    /// much data the tier actually serves from its budget).
    pub logical_bytes: u64,
    /// Baseline-area entries.
    pub entries: u64,
    /// Victim-area physical bytes (base-victim only).
    pub victim_bytes: u64,
    /// Victim-area entries (base-victim only).
    pub victim_entries: u64,
}

fn bucket(key: u64) -> usize {
    (key % KV_EVENT_BUCKETS) as usize
}

/// Size in 64-byte lines, clamped to the event schema's `u8`.
fn lines(meta: ValueMeta) -> u8 {
    u64::from(meta.compressed).div_ceil(64).clamp(1, 255) as u8
}

/// The uncompressed baseline tier: plain byte-budgeted LRU.
#[derive(Debug)]
pub struct UncompressedKv<S: EventSink = NoEventSink> {
    lru: LruMap,
    budget: u64,
    stats: KvStats,
    sink: S,
}

impl<S: EventSink> UncompressedKv<S> {
    /// An empty tier with `budget` bytes of capacity.
    #[must_use]
    pub fn new(budget: u64, sink: S) -> UncompressedKv<S> {
        UncompressedKv {
            lru: LruMap::new(),
            budget,
            stats: KvStats::default(),
            sink,
        }
    }

    /// Looks `key` up; on a miss the value is fetched (its metadata
    /// produced by `fetch`) and admitted when it can ever fit.
    pub fn get(&mut self, key: u64, fetch: impl FnOnce() -> ValueMeta) -> KvOutcome {
        self.stats.gets += 1;
        if self.lru.touch(key).is_some() {
            self.stats.base_hits += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(key),
                    EventKind::DemandHit { tag: key },
                ));
            }
            return KvOutcome::BaseHit;
        }
        self.stats.misses += 1;
        if S::ENABLED {
            self.sink
                .emit(CacheEvent::set_wide(bucket(key), EventKind::DemandMiss));
        }
        self.admit(key, fetch())
    }

    /// Writes `key` (write-allocate, write-through backing store).
    pub fn put(&mut self, key: u64, fetch: impl FnOnce() -> ValueMeta) {
        self.stats.puts += 1;
        if self.lru.touch(key).is_some() {
            return;
        }
        self.admit(key, fetch());
    }

    fn admit(&mut self, key: u64, meta: ValueMeta) -> KvOutcome {
        if u64::from(meta.bytes) > self.budget {
            self.stats.bypassed += 1;
            return KvOutcome::Bypass;
        }
        self.stats.admitted += 1;
        self.stats.admitted_bytes += u64::from(meta.bytes);
        self.stats.admitted_compressed_bytes += u64::from(meta.compressed);
        self.lru.insert_front(key, meta);
        if S::ENABLED {
            self.sink.emit(CacheEvent::set_wide(
                bucket(key),
                EventKind::Fill {
                    tag: key,
                    size: lines(meta),
                },
            ));
        }
        while self.lru.sum_bytes() > self.budget {
            let (victim, _) = self.lru.pop_lru().expect("over budget implies entries");
            self.stats.evictions += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(victim),
                    EventKind::Eviction {
                        tag: victim,
                        cause: EvictCause::Replacement,
                    },
                ));
            }
        }
        KvOutcome::Miss
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// Resets flow counters (end of warmup), keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = KvStats::default();
    }

    /// Point-in-time occupancy.
    #[must_use]
    pub fn occupancy(&self) -> KvOccupancy {
        KvOccupancy {
            resident_bytes: self.lru.sum_bytes(),
            logical_bytes: self.lru.sum_bytes(),
            entries: self.lru.len() as u64,
            victim_bytes: 0,
            victim_entries: 0,
        }
    }

    /// Keys in recency order — the full decision state, for lockstep
    /// comparison.
    #[must_use]
    pub fn keys_mru(&self) -> Vec<u64> {
        self.lru.keys_mru()
    }

    /// The byte budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Drains captured events (empty for non-retaining sinks).
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.sink.drain()
    }

    /// Events the sink overwrote.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.sink.dropped()
    }
}

/// The naive always-compress tier: LRU charged at compressed size.
#[derive(Debug)]
pub struct CompressedKv<S: EventSink = NoEventSink> {
    lru: LruMap,
    budget: u64,
    stats: KvStats,
    sink: S,
}

impl<S: EventSink> CompressedKv<S> {
    /// An empty tier with `budget` bytes of capacity.
    #[must_use]
    pub fn new(budget: u64, sink: S) -> CompressedKv<S> {
        CompressedKv {
            lru: LruMap::new(),
            budget,
            stats: KvStats::default(),
            sink,
        }
    }

    /// Looks `key` up; admits on miss if the compressed value fits.
    pub fn get(&mut self, key: u64, fetch: impl FnOnce() -> ValueMeta) -> KvOutcome {
        self.stats.gets += 1;
        if self.lru.touch(key).is_some() {
            self.stats.base_hits += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(key),
                    EventKind::DemandHit { tag: key },
                ));
            }
            return KvOutcome::BaseHit;
        }
        self.stats.misses += 1;
        if S::ENABLED {
            self.sink
                .emit(CacheEvent::set_wide(bucket(key), EventKind::DemandMiss));
        }
        self.admit(key, fetch())
    }

    /// Writes `key` (write-allocate).
    pub fn put(&mut self, key: u64, fetch: impl FnOnce() -> ValueMeta) {
        self.stats.puts += 1;
        if self.lru.touch(key).is_some() {
            return;
        }
        self.admit(key, fetch());
    }

    fn admit(&mut self, key: u64, meta: ValueMeta) -> KvOutcome {
        if u64::from(meta.compressed) > self.budget {
            self.stats.bypassed += 1;
            return KvOutcome::Bypass;
        }
        self.stats.admitted += 1;
        self.stats.admitted_bytes += u64::from(meta.bytes);
        self.stats.admitted_compressed_bytes += u64::from(meta.compressed);
        self.lru.insert_front(key, meta);
        if S::ENABLED {
            self.sink.emit(CacheEvent::set_wide(
                bucket(key),
                EventKind::Fill {
                    tag: key,
                    size: lines(meta),
                },
            ));
        }
        while self.lru.sum_compressed() > self.budget {
            let (victim, _) = self.lru.pop_lru().expect("over budget implies entries");
            self.stats.evictions += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(victim),
                    EventKind::Eviction {
                        tag: victim,
                        cause: EvictCause::Replacement,
                    },
                ));
            }
        }
        KvOutcome::Miss
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// Resets flow counters (end of warmup), keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = KvStats::default();
    }

    /// Point-in-time occupancy.
    #[must_use]
    pub fn occupancy(&self) -> KvOccupancy {
        KvOccupancy {
            resident_bytes: self.lru.sum_compressed(),
            logical_bytes: self.lru.sum_bytes(),
            entries: self.lru.len() as u64,
            victim_bytes: 0,
            victim_entries: 0,
        }
    }

    /// The byte budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Drains captured events (empty for non-retaining sinks).
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.sink.drain()
    }

    /// Events the sink overwrote.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.sink.dropped()
    }
}

/// The Base-Victim tier: an uncompressed-mirror baseline area plus an
/// opportunistic compressed victim area living in the slack that
/// compression opens up.
///
/// Two invariants hold after every operation (checked by
/// [`BaseVictimKv::check_invariants`] in tests and the fuzz suite):
///
/// 1. **Decision mirror** — the baseline area's keys and recency order
///    are exactly the uncompressed tier's at the same request stream.
/// 2. **Byte budget** — baseline compressed bytes + victim compressed
///    bytes `<=` budget (the physical store never overflows).
#[derive(Debug)]
pub struct BaseVictimKv<S: EventSink = NoEventSink> {
    baseline: LruMap,
    victim: LruMap,
    budget: u64,
    stats: KvStats,
    sink: S,
}

impl<S: EventSink> BaseVictimKv<S> {
    /// An empty tier with `budget` bytes of capacity.
    #[must_use]
    pub fn new(budget: u64, sink: S) -> BaseVictimKv<S> {
        BaseVictimKv {
            baseline: LruMap::new(),
            victim: LruMap::new(),
            budget,
            stats: KvStats::default(),
            sink,
        }
    }

    /// Looks `key` up in the baseline, then the victim area; a victim
    /// hit promotes the entry back into the baseline exactly as the
    /// uncompressed tier would fill it after its (inevitable) miss, so
    /// the mirror property is preserved.
    pub fn get(&mut self, key: u64, fetch: impl FnOnce() -> ValueMeta) -> KvOutcome {
        self.stats.gets += 1;
        if self.baseline.touch(key).is_some() {
            self.stats.base_hits += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(key),
                    EventKind::DemandHit { tag: key },
                ));
            }
            return KvOutcome::BaseHit;
        }
        if let Some(meta) = self.victim.remove(key) {
            self.stats.victim_hits += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(key),
                    EventKind::VictimHit {
                        tag: key,
                        size: lines(meta),
                    },
                ));
            }
            // The uncompressed mirror misses here and fills; replay the
            // identical admission so the baselines stay in lockstep.
            self.admit(key, meta);
            return KvOutcome::VictimHit;
        }
        self.stats.misses += 1;
        if S::ENABLED {
            self.sink
                .emit(CacheEvent::set_wide(bucket(key), EventKind::DemandMiss));
        }
        self.admit(key, fetch())
    }

    /// Writes `key` (write-allocate). A stale victim copy is discarded
    /// so the rewritten value cannot be served from the victim area.
    pub fn put(&mut self, key: u64, fetch: impl FnOnce() -> ValueMeta) {
        self.stats.puts += 1;
        if self.baseline.touch(key).is_some() {
            return;
        }
        if self.victim.remove(key).is_some() && S::ENABLED {
            self.sink.emit(CacheEvent::set_wide(
                bucket(key),
                EventKind::SilentDrop {
                    tag: key,
                    cause: DropCause::Displaced,
                },
            ));
        }
        self.admit(key, fetch());
    }

    /// The shared fill path: baseline admission mirroring the
    /// uncompressed tier, then opportunistic parking of what it
    /// displaced.
    fn admit(&mut self, key: u64, meta: ValueMeta) -> KvOutcome {
        if u64::from(meta.bytes) > self.budget {
            self.stats.bypassed += 1;
            return KvOutcome::Bypass;
        }
        self.stats.admitted += 1;
        self.stats.admitted_bytes += u64::from(meta.bytes);
        self.stats.admitted_compressed_bytes += u64::from(meta.compressed);
        self.baseline.insert_front(key, meta);
        if S::ENABLED {
            self.sink.emit(CacheEvent::set_wide(
                bucket(key),
                EventKind::Fill {
                    tag: key,
                    size: lines(meta),
                },
            ));
        }
        // Baseline decisions charge logical bytes — the uncompressed
        // tier's exact rule.
        let mut displaced = Vec::new();
        while self.baseline.sum_bytes() > self.budget {
            let (victim, vmeta) = self
                .baseline
                .pop_lru()
                .expect("over budget implies entries");
            self.stats.evictions += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(victim),
                    EventKind::Eviction {
                        tag: victim,
                        cause: EvictCause::Replacement,
                    },
                ));
            }
            displaced.push((victim, vmeta));
        }
        // The new resident may compress worse than what left: shrink
        // the victim area to the new slack before parking anything.
        self.enforce_slack();
        for (victim, vmeta) in displaced {
            self.park(victim, vmeta);
        }
        KvOutcome::Miss
    }

    /// Opportunistically parks a displaced baseline entry in the slack.
    fn park(&mut self, key: u64, meta: ValueMeta) {
        let slack = self.budget - self.baseline.sum_compressed();
        if u64::from(meta.compressed) > slack {
            self.stats.victim_insert_failures += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(key),
                    EventKind::VictimInsertFail {
                        tag: key,
                        size: lines(meta),
                    },
                ));
            }
            return;
        }
        while self.victim.sum_compressed() + u64::from(meta.compressed) > slack {
            let (dropped, _) = self
                .victim
                .pop_lru()
                .expect("area non-empty while over slack");
            self.stats.victim_evictions += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(dropped),
                    EventKind::SilentDrop {
                        tag: dropped,
                        cause: DropCause::Displaced,
                    },
                ));
            }
        }
        self.victim.insert_front(key, meta);
        self.stats.victim_inserts += 1;
        if S::ENABLED {
            self.sink.emit(CacheEvent::set_wide(
                bucket(key),
                EventKind::VictimInsert {
                    tag: key,
                    size: lines(meta),
                },
            ));
        }
    }

    /// Drops victim-LRU entries until the area fits the current slack
    /// (called when baseline growth shrinks it).
    fn enforce_slack(&mut self) {
        let slack = self.budget - self.baseline.sum_compressed();
        while self.victim.sum_compressed() > slack {
            let (dropped, _) = self
                .victim
                .pop_lru()
                .expect("area non-empty while over slack");
            self.stats.victim_overflow_drops += 1;
            if S::ENABLED {
                self.sink.emit(CacheEvent::set_wide(
                    bucket(dropped),
                    EventKind::SilentDrop {
                        tag: dropped,
                        cause: DropCause::PairOverflow,
                    },
                ));
            }
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// Resets flow counters (end of warmup), keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = KvStats::default();
    }

    /// Point-in-time occupancy.
    #[must_use]
    pub fn occupancy(&self) -> KvOccupancy {
        KvOccupancy {
            resident_bytes: self.baseline.sum_compressed() + self.victim.sum_compressed(),
            logical_bytes: self.baseline.sum_bytes() + self.victim.sum_bytes(),
            entries: self.baseline.len() as u64,
            victim_bytes: self.victim.sum_compressed(),
            victim_entries: self.victim.len() as u64,
        }
    }

    /// Baseline keys in recency order — compared against the
    /// uncompressed tier by the lockstep auditor.
    #[must_use]
    pub fn baseline_keys_mru(&self) -> Vec<u64> {
        self.baseline.keys_mru()
    }

    /// The byte budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Asserts the byte-budget and area-disjointness invariants;
    /// returns a description of the first violation instead of
    /// panicking so fuzz drivers can report context.
    ///
    /// # Errors
    ///
    /// Returns a human-readable violation description.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.baseline.sum_bytes() > self.budget {
            return Err(format!(
                "baseline logical bytes {} exceed budget {}",
                self.baseline.sum_bytes(),
                self.budget
            ));
        }
        let physical = self.baseline.sum_compressed() + self.victim.sum_compressed();
        if physical > self.budget {
            return Err(format!(
                "physical bytes {physical} (baseline {} + victim {}) exceed budget {}",
                self.baseline.sum_compressed(),
                self.victim.sum_compressed(),
                self.budget
            ));
        }
        for key in self.victim.keys_mru() {
            if self.baseline.peek(key).is_some() {
                return Err(format!("key {key} resident in both areas"));
            }
        }
        Ok(())
    }

    /// Drains captured events (empty for non-retaining sinks).
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.sink.drain()
    }

    /// Events the sink overwrote.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// Test-only perturbation: demotes the baseline MRU entry to LRU,
    /// breaking the mirror property on purpose so divergence detection
    /// can prove it is not vacuous (the kv analogue of the LLC
    /// auditor's `--inject`).
    pub fn inject_baseline_perturbation(&mut self) {
        let keys = self.baseline.keys_mru();
        // Touching every key but the MRU one, least-recent first,
        // rotates the MRU entry to the LRU position without changing
        // membership.
        for &key in keys[1.min(keys.len())..].iter().rev() {
            self.baseline.touch(key);
        }
    }
}

/// Enum dispatch over the three organizations (the untraced alias is
/// [`KvCache`]).
#[derive(Debug)]
pub enum KvCacheWith<S: EventSink = NoEventSink> {
    /// [`UncompressedKv`].
    Uncompressed(UncompressedKv<S>),
    /// [`CompressedKv`].
    Compressed(CompressedKv<S>),
    /// [`BaseVictimKv`].
    BaseVictim(BaseVictimKv<S>),
}

/// The untraced tier (events compiled out).
pub type KvCache = KvCacheWith<NoEventSink>;

impl<S: EventSink> KvCacheWith<S> {
    /// Which organization this is.
    #[must_use]
    pub fn kind(&self) -> KvOrgKind {
        match self {
            KvCacheWith::Uncompressed(_) => KvOrgKind::Uncompressed,
            KvCacheWith::Compressed(_) => KvOrgKind::Compressed,
            KvCacheWith::BaseVictim(_) => KvOrgKind::BaseVictim,
        }
    }

    /// Looks `key` up; fetches and admits on miss.
    pub fn get(&mut self, key: u64, fetch: impl FnOnce() -> ValueMeta) -> KvOutcome {
        match self {
            KvCacheWith::Uncompressed(t) => t.get(key, fetch),
            KvCacheWith::Compressed(t) => t.get(key, fetch),
            KvCacheWith::BaseVictim(t) => t.get(key, fetch),
        }
    }

    /// Writes `key` (write-allocate).
    pub fn put(&mut self, key: u64, fetch: impl FnOnce() -> ValueMeta) {
        match self {
            KvCacheWith::Uncompressed(t) => t.put(key, fetch),
            KvCacheWith::Compressed(t) => t.put(key, fetch),
            KvCacheWith::BaseVictim(t) => t.put(key, fetch),
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> &KvStats {
        match self {
            KvCacheWith::Uncompressed(t) => t.stats(),
            KvCacheWith::Compressed(t) => t.stats(),
            KvCacheWith::BaseVictim(t) => t.stats(),
        }
    }

    /// Resets flow counters (end of warmup), keeping contents.
    pub fn reset_stats(&mut self) {
        match self {
            KvCacheWith::Uncompressed(t) => t.reset_stats(),
            KvCacheWith::Compressed(t) => t.reset_stats(),
            KvCacheWith::BaseVictim(t) => t.reset_stats(),
        }
    }

    /// Point-in-time occupancy.
    #[must_use]
    pub fn occupancy(&self) -> KvOccupancy {
        match self {
            KvCacheWith::Uncompressed(t) => t.occupancy(),
            KvCacheWith::Compressed(t) => t.occupancy(),
            KvCacheWith::BaseVictim(t) => t.occupancy(),
        }
    }

    /// The byte budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        match self {
            KvCacheWith::Uncompressed(t) => t.budget(),
            KvCacheWith::Compressed(t) => t.budget(),
            KvCacheWith::BaseVictim(t) => t.budget(),
        }
    }

    /// Drains captured events (empty for non-retaining sinks).
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        match self {
            KvCacheWith::Uncompressed(t) => t.drain_events(),
            KvCacheWith::Compressed(t) => t.drain_events(),
            KvCacheWith::BaseVictim(t) => t.drain_events(),
        }
    }

    /// Events the sink overwrote.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        match self {
            KvCacheWith::Uncompressed(t) => t.events_dropped(),
            KvCacheWith::Compressed(t) => t.events_dropped(),
            KvCacheWith::BaseVictim(t) => t.events_dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(bytes: u32, compressed: u32) -> ValueMeta {
        ValueMeta::new(bytes, compressed)
    }

    #[test]
    fn uncompressed_evicts_lru_beyond_budget() {
        let mut t: UncompressedKv = UncompressedKv::new(256, NoEventSink);
        for key in 0..4 {
            t.get(key, || meta(128, 64));
        }
        // Budget holds 2 entries; keys 2 and 3 remain.
        assert_eq!(t.occupancy().entries, 2);
        assert_eq!(t.get(3, || meta(128, 64)), KvOutcome::BaseHit);
        assert_eq!(t.get(0, || meta(128, 64)), KvOutcome::Miss);
        assert_eq!(t.stats().evictions, 3);
    }

    #[test]
    fn compressed_holds_more_entries_at_equal_budget() {
        let mut unc: UncompressedKv = UncompressedKv::new(512, NoEventSink);
        let mut cmp: CompressedKv = CompressedKv::new(512, NoEventSink);
        for key in 0..8 {
            unc.get(key, || meta(128, 32));
            cmp.get(key, || meta(128, 32));
        }
        assert_eq!(unc.occupancy().entries, 4);
        assert_eq!(cmp.occupancy().entries, 8);
    }

    #[test]
    fn base_victim_rescues_evicted_entries_from_slack() {
        // Budget 256, values 128 logical / 32 compressed: baseline holds
        // 2 (logical charge), and slack hosts the rest compressed.
        let mut t: BaseVictimKv = BaseVictimKv::new(256, NoEventSink);
        for key in 0..4 {
            t.get(key, || meta(128, 32));
        }
        t.check_invariants().expect("invariants");
        assert_eq!(t.stats().victim_inserts, 2, "evictions parked");
        // Key 0 was evicted from baseline but parked: a get is a
        // victim hit, not a miss.
        assert_eq!(t.get(0, || meta(128, 32)), KvOutcome::VictimHit);
        assert_eq!(t.stats().victim_hits, 1);
        t.check_invariants().expect("invariants after promote");
    }

    #[test]
    fn base_victim_incompressible_values_park_nothing() {
        let mut t: BaseVictimKv = BaseVictimKv::new(256, NoEventSink);
        for key in 0..4 {
            t.get(key, || meta(128, 128));
        }
        t.check_invariants().expect("invariants");
        assert_eq!(t.stats().victim_inserts, 0);
        assert_eq!(t.stats().victim_insert_failures, 2);
        assert_eq!(t.get(0, || meta(128, 128)), KvOutcome::Miss);
    }

    #[test]
    fn base_victim_slack_shrinks_when_baseline_compresses_worse() {
        let mut t: BaseVictimKv = BaseVictimKv::new(256, NoEventSink);
        // Fill with highly compressible entries, park victims.
        for key in 0..4 {
            t.get(key, || meta(128, 32));
        }
        assert!(t.occupancy().victim_entries > 0);
        // Now fill with incompressible entries: slack collapses and the
        // victim area must be flushed, never the baseline decisions.
        for key in 10..12 {
            t.get(key, || meta(128, 128));
        }
        t.check_invariants().expect("invariants");
        assert_eq!(t.occupancy().victim_entries, 0);
        assert!(t.stats().victim_overflow_drops + t.stats().victim_evictions > 0);
    }

    #[test]
    fn oversized_values_bypass_every_org() {
        for kind in KvOrgKind::ALL {
            let mut t = kind.build(128);
            t.get(1, || meta(1024, 8));
            match kind {
                // The compressed org charges compressed size, and 8 <= 128.
                KvOrgKind::Compressed => assert_eq!(t.stats().admitted, 1),
                _ => assert_eq!(t.stats().bypassed, 1, "{}", kind.name()),
            }
        }
    }

    #[test]
    fn put_is_write_allocate_and_invalidates_victim_copies() {
        let mut t: BaseVictimKv = BaseVictimKv::new(256, NoEventSink);
        for key in 0..4 {
            t.get(key, || meta(128, 32));
        }
        // Key 0 sits in the victim area; a put must not leave a stale
        // copy there.
        t.put(0, || meta(128, 32));
        t.check_invariants().expect("invariants");
        assert_eq!(t.get(0, || meta(128, 32)), KvOutcome::BaseHit);
    }

    #[test]
    fn org_names_round_trip() {
        for kind in KvOrgKind::ALL {
            assert_eq!(KvOrgKind::from_name(kind.name()), Some(kind));
        }
        assert!(KvOrgKind::from_name("bogus").is_none());
    }
}
