//! Blocking client helpers for the `bvsim-serve-v1` protocol — the
//! machinery behind `bvsim submit`, `bvsim watch`, and `bvsim ctl`.
//!
//! Each helper opens one TCP connection, writes one request line, and
//! reads the response (a single line, or a result stream terminated by
//! a `done` line). Result rows are delivered through a callback so the
//! CLI can print/append them as they arrive instead of buffering a
//! whole sweep.

use crate::proto::{DoneSummary, Request, Response, ResultRow, SweepGrid};
use bv_metrics::Snapshot;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;

/// What a submit call returned: the planning ack, plus the final
/// summary when the call streamed to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The ticket the daemon issued.
    pub ticket: u64,
    /// Unique jobs planned from the grid.
    pub jobs: u64,
    /// Jobs newly enqueued by this submission.
    pub fresh: u64,
    /// Jobs satisfied immediately from the journal.
    pub journaled: u64,
    /// Jobs shared with other active submissions.
    pub merged: u64,
    /// The stream's terminal summary (`None` when `wait` was false).
    pub done: Option<DoneSummary>,
}

fn connect(addr: &str) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone connection: {e}"))?,
    );
    Ok((stream, reader))
}

fn send(stream: &mut TcpStream, req: &Request) -> Result<(), String> {
    let line = req.to_line();
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("cannot send request: {e}"))
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Response, String> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if n == 0 {
        return Err("daemon closed the connection".to_string());
    }
    Response::parse_line(&line)
}

/// Reads `result` lines into `on_row` until the `done` line arrives.
fn drain_stream(
    reader: &mut BufReader<TcpStream>,
    on_row: &mut dyn FnMut(&ResultRow),
) -> Result<DoneSummary, String> {
    loop {
        match read_response(reader)? {
            Response::Result(row) => on_row(&row),
            Response::Done(done) => return Ok(done),
            Response::Error { error } => return Err(error),
            other => return Err(format!("unexpected message in stream: {other:?}")),
        }
    }
}

/// Submits a sweep grid. With `wait`, streams the ticket's results into
/// `on_row` until completion; without, returns as soon as the daemon
/// acknowledges the ticket.
///
/// # Errors
///
/// Returns a human-readable description of any connection, protocol, or
/// daemon-side failure.
pub fn submit(
    addr: &str,
    grid: &SweepGrid,
    wait: bool,
    mut on_row: impl FnMut(&ResultRow),
) -> Result<SubmitOutcome, String> {
    let (mut stream, mut reader) = connect(addr)?;
    send(
        &mut stream,
        &Request::Submit {
            grid: grid.clone(),
            wait,
        },
    )?;
    let (ticket, jobs, fresh, journaled, merged) = match read_response(&mut reader)? {
        Response::Submitted {
            ticket,
            jobs,
            fresh,
            journaled,
            merged,
        } => (ticket, jobs, fresh, journaled, merged),
        Response::Error { error } => return Err(error),
        other => return Err(format!("unexpected submit reply: {other:?}")),
    };
    let done = if wait {
        Some(drain_stream(&mut reader, &mut on_row)?)
    } else {
        None
    };
    Ok(SubmitOutcome {
        ticket,
        jobs,
        fresh,
        journaled,
        merged,
        done,
    })
}

/// Attaches to an existing ticket and streams its results (past and
/// future) into `on_row` until completion.
///
/// # Errors
///
/// Returns a human-readable description of any connection, protocol, or
/// daemon-side failure (including an unknown ticket).
pub fn watch(
    addr: &str,
    ticket: u64,
    mut on_row: impl FnMut(&ResultRow),
) -> Result<DoneSummary, String> {
    let (mut stream, mut reader) = connect(addr)?;
    send(&mut stream, &Request::Stream { ticket })?;
    drain_stream(&mut reader, &mut on_row)
}

/// Sends a single-response control request (status, cancel, kill-worker,
/// shutdown) and returns the daemon's reply.
///
/// # Errors
///
/// Returns a human-readable description of any connection or protocol
/// failure. A daemon-side `error` response is returned as `Ok` so the
/// caller can distinguish transport failures from request rejections.
pub fn control(addr: &str, req: &Request) -> Result<Response, String> {
    let (mut stream, mut reader) = connect(addr)?;
    send(&mut stream, req)?;
    read_response(&mut reader)
}

/// Fetches a point-in-time snapshot of the daemon's metric registry —
/// one poll of the `bvsim top` refresh loop.
///
/// # Errors
///
/// Returns a human-readable description of any connection, protocol, or
/// daemon-side failure.
pub fn metrics(addr: &str) -> Result<Snapshot, String> {
    match control(addr, &Request::Metrics)? {
        Response::Metrics(snap) => Ok(snap),
        Response::Error { error } => Err(error),
        other => Err(format!("unexpected metrics reply: {other:?}")),
    }
}
