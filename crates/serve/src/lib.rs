//! # bv-serve — a multi-tenant sweep-serving daemon
//!
//! Every sweep in this repo used to be one process per invocation; this
//! crate turns the bv-runner machinery — job planning, the checkpoint
//! journal, the `runs.jsonl` observability stream — into a long-running
//! *service*. A daemon (`bvsim serve`) listens on a TCP socket, accepts
//! sweep submissions from any number of concurrent clients, and shards
//! the resulting jobs across a pool of worker threads:
//!
//! * **Protocol** ([`proto`]) — `bvsim-serve-v1`, line-delimited JSON
//!   over TCP (one request per connection), built on the same hand-rolled
//!   JSON as the telemetry sink. Requests: submit-sweep, status,
//!   stream-results, cancel, kill-worker (a test hook), metrics,
//!   shutdown.
//! * **Cross-client dedup** ([`daemon`]) — jobs are keyed by
//!   [`bv_runner::JobSpec::stable_hash`]; two clients submitting
//!   overlapping grids simulate each configuration once, and both
//!   tickets stream its result.
//! * **Crash recovery** — per-job atomic checkpoints through
//!   [`bv_runner::Journal`]; a worker thread dying mid-job is detected
//!   by a monitor thread, its claimed job is re-queued with bounded
//!   backoff retry, and a replacement worker is spawned. Restarting the
//!   whole daemon against the same journal re-simulates nothing already
//!   checkpointed.
//! * **Streaming** — results flow back to clients incrementally as
//!   `runs.jsonl`-shaped lines, in completion order, as soon as each job
//!   finishes.
//! * **Client mode** ([`client`]) — blocking helpers behind
//!   `bvsim submit` / `bvsim watch` / `bvsim ctl` / `bvsim top`.
//! * **Observability** — a [`bv_metrics::Registry`] threaded through the
//!   daemon records queue depth, per-worker utilization, job latency
//!   split into queue-wait/sim/journal phases, crash/retry/timeout
//!   counters, and per-tenant request rates. Scrape it as a protocol
//!   `metrics` snapshot (what `bvsim top` renders) or as Prometheus
//!   text exposition over plain HTTP (`bvsim serve --metrics-port`).
//!   Every job carries a trace id minted at submit that flows through
//!   its result rows, `runs.jsonl` line, and worker span.
//!
//! The daemon holds no global run lock while simulating: workers only
//! take the state mutex to claim a job and to publish its completion, so
//! the service stays responsive to status and submit requests while a
//! sweep is in flight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod proto;
pub mod top;

pub use client::{control, metrics, submit, watch, SubmitOutcome};
pub use daemon::{Daemon, ServeConfig};
pub use proto::{DoneSummary, Request, Response, ResultRow, StatusInfo, SweepGrid, VERSION};
pub use top::TopView;
