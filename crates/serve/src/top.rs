//! Frame rendering for `bvsim top`, the live daemon dashboard.
//!
//! The refresh loop in the binary polls the daemon's `metrics` request
//! and feeds each [`bv_metrics::Snapshot`] into a [`TopView`]; the view
//! keeps the previous snapshot (for counter deltas — throughput is a
//! rate, not a total) and a short throughput history (for the
//! sparkline), and renders one plain-text frame per poll. Rendering is
//! a pure function of the snapshots and the elapsed interval, so the
//! layout is unit-testable without a daemon or a terminal.

use bv_metrics::Snapshot;
use bv_telemetry::sparkline;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How many throughput samples the sparkline remembers.
const HISTORY: usize = 60;

/// The dashboard state carried between refreshes.
#[derive(Debug, Default)]
pub struct TopView {
    prev: Option<Snapshot>,
    throughput: Vec<f64>,
}

impl TopView {
    /// An empty view; the first frame has no rates yet.
    #[must_use]
    pub fn new() -> TopView {
        TopView::default()
    }

    /// Folds one polled snapshot in and renders the frame: header,
    /// throughput (jobs/s vs the previous poll, with history
    /// sparkline), queue/worker gauges, job-latency percentiles, the
    /// per-worker utilization bars, and per-tenant request totals.
    pub fn frame(&mut self, snap: &Snapshot, elapsed_secs: f64, addr: &str) -> String {
        let done = snap.counter("jobs_completed_total");
        let rate = match &self.prev {
            Some(prev) if elapsed_secs > 0.0 => {
                snap.counter_delta("jobs_completed_total", prev) as f64 / elapsed_secs
            }
            _ => 0.0,
        };
        if self.prev.is_some() {
            self.throughput.push(rate);
            if self.throughput.len() > HISTORY {
                self.throughput.remove(0);
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "bvsim top — {addr}");
        let _ = writeln!(
            out,
            "jobs     : {done} done ({rate:.1}/s) | {} queued, {} running, {} failed  {}",
            snap.gauge("queue_depth"),
            snap.gauge("jobs_running"),
            snap.counter("jobs_failed_total"),
            sparkline(&self.throughput, 24),
        );
        let _ = writeln!(
            out,
            "latency  : p50 {} ms | p95 {} ms | p99 {} ms (job total: queue wait + sim)",
            pct(snap, 0.50),
            pct(snap, 0.95),
            pct(snap, 0.99),
        );
        let _ = writeln!(
            out,
            "recovery : {} crash(es), {} retry(ies), {} timeout(s)",
            snap.counter("worker_crashes_total"),
            snap.counter("job_retries_total"),
            snap.counter("job_timeouts_total"),
        );
        out.push_str(&worker_lines(snap));
        out.push_str(&tenant_lines(snap));
        self.prev = Some(snap.clone());
        out
    }
}

fn pct(snap: &Snapshot, q: f64) -> u64 {
    snap.histogram("job_total_ms")
        .and_then(|h| h.hist.percentile(q))
        .unwrap_or(0)
}

/// One line per worker slot: a busy marker plus a completion bar scaled
/// to the busiest worker — the at-a-glance load-balance check.
fn worker_lines(snap: &Snapshot) -> String {
    let mut workers: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for (key, v) in &snap.counters {
        if key.name == "worker_jobs_total" {
            if let Some(w) = label_u64(key, "worker") {
                workers.entry(w).or_default().0 = *v;
            }
        }
    }
    for (key, v) in &snap.gauges {
        if key.name == "worker_busy" {
            if let Some(w) = label_u64(key, "worker") {
                workers.entry(w).or_default().1 = *v;
            }
        }
    }
    let alive = snap.gauge("workers_alive");
    let mut out = format!("workers  : {alive} alive\n");
    let max = workers.values().map(|(jobs, _)| *jobs).max().unwrap_or(0);
    for (w, (jobs, busy)) in &workers {
        let bar_len = (jobs * 20).checked_div(max).unwrap_or(0) as usize;
        let _ = writeln!(
            out,
            "  [{w}] {} {:<20} {jobs} job(s)",
            if *busy > 0 { "■" } else { "·" },
            "#".repeat(bar_len),
        );
    }
    out
}

/// Per-tenant request totals, summed over request kinds.
fn tenant_lines(snap: &Snapshot) -> String {
    let mut tenants: BTreeMap<&str, u64> = BTreeMap::new();
    for (key, v) in &snap.counters {
        if key.name == "client_requests_total" {
            if let Some((_, tenant)) = key.labels.iter().find(|(k, _)| k == "tenant") {
                *tenants.entry(tenant).or_default() += v;
            }
        }
    }
    if tenants.is_empty() {
        return String::new();
    }
    let mut out = String::from("tenants  :");
    for (tenant, reqs) in &tenants {
        let _ = write!(out, " {tenant} {reqs} req(s)");
    }
    out.push('\n');
    out
}

fn label_u64(key: &bv_metrics::MetricKey, label: &str) -> Option<u64> {
    key.labels
        .iter()
        .find(|(k, _)| k == label)
        .and_then(|(_, v)| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bv_metrics::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("jobs_completed_total", &[("source", "simulated")])
            .add(6);
        reg.counter(
            "client_requests_total",
            &[("tenant", "10.0.0.9"), ("kind", "submit-sweep")],
        )
        .add(2);
        reg.gauge("queue_depth", &[]).set(3);
        reg.gauge("jobs_running", &[]).set(2);
        reg.gauge("workers_alive", &[]).set(2);
        reg.gauge("worker_busy", &[("worker", "0")]).set(1);
        reg.gauge("worker_busy", &[("worker", "1")]).set(0);
        reg.counter("worker_jobs_total", &[("worker", "0")]).add(4);
        reg.counter("worker_jobs_total", &[("worker", "1")]).add(2);
        let h = reg.histogram("job_total_ms", &[]);
        h.observe(3);
        h.observe(40);
        reg
    }

    #[test]
    fn frame_shows_gauges_percentiles_and_worker_bars() {
        let reg = sample_registry();
        let mut view = TopView::new();
        let frame = view.frame(&reg.snapshot(), 1.0, "127.0.0.1:7070");
        assert!(frame.contains("bvsim top — 127.0.0.1:7070"), "{frame}");
        assert!(
            frame.contains("6 done (0.0/s)"),
            "first frame has no rate: {frame}"
        );
        assert!(frame.contains("3 queued, 2 running"), "{frame}");
        // p50 of {3, 40} is bucket [2,4) -> 3; p99 is bucket [32,64) -> 63.
        assert!(frame.contains("p50 3 ms"), "{frame}");
        assert!(frame.contains("p99 63 ms"), "{frame}");
        // Worker 0 is busy with the full-length bar; worker 1 idle, half.
        assert!(frame.contains("[0] ■ ####################"), "{frame}");
        assert!(frame.contains("[1] · ##########"), "{frame}");
        assert!(frame.contains("tenants  : 10.0.0.9 2 req(s)"), "{frame}");
    }

    #[test]
    fn rate_comes_from_the_delta_between_polls() {
        let reg = sample_registry();
        let mut view = TopView::new();
        let _ = view.frame(&reg.snapshot(), 1.0, "a");
        reg.counter("jobs_completed_total", &[("source", "simulated")])
            .add(10);
        let frame = view.frame(&reg.snapshot(), 2.0, "a");
        assert!(frame.contains("16 done (5.0/s)"), "{frame}");
    }

    #[test]
    fn empty_snapshot_renders_without_panicking() {
        let mut view = TopView::new();
        let frame = view.frame(&Snapshot::default(), 1.0, "a");
        assert!(frame.contains("0 done"), "{frame}");
        assert!(frame.contains("p50 0 ms"), "{frame}");
        assert!(!frame.contains("tenants"), "{frame}");
    }
}
