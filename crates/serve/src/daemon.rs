//! The sweep-serving daemon: a TCP listener, a shard of worker threads,
//! and a monitor thread, all sharing one job table.
//!
//! ## Scheduling
//!
//! Jobs are keyed by [`JobSpec::stable_hash`]. A submission plans its
//! grid, then for each job either (a) adopts an existing entry — another
//! client already submitted the same configuration, so the tickets
//! *merge* and the job simulates once — (b) satisfies it instantly from
//! the checkpoint journal, or (c) enqueues it fresh. Workers claim jobs
//! from a FIFO queue under the state mutex, simulate with the lock
//! released, and publish under the lock again.
//!
//! ## Failure model
//!
//! Every claim carries a token `(worker, attempt)`. A publisher whose
//! token no longer matches the job's phase — because the monitor timed
//! the job out and re-queued it — drops its result, so a configuration
//! can never journal twice. The monitor detects dead worker threads
//! (panic mid-job, e.g. via the `kill-worker` test hook), re-queues
//! their claimed jobs with exponential backoff, counts the crash, and
//! spawns a replacement worker; a job that exhausts its retry budget
//! moves to a terminal failed state instead of looping forever.
//! Completed jobs checkpoint through [`Journal`], so restarting the
//! daemon against the same journal directory re-simulates nothing.

use crate::proto::{DoneSummary, Request, Response, ResultRow, StatusInfo, SweepGrid};
use bv_metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
use bv_runner::{JobSpec, JobTiming, Journal, SpanLog};
use bv_sim::{RunResult, System};
use bv_trace::TraceRegistry;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead as _, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a daemon is started (`bvsim serve`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads in the simulation shard.
    pub workers: usize,
    /// Checkpoint journal directory (shared with `bvsim sweep`).
    pub journal: PathBuf,
    /// A job running longer than this is presumed hung: it is re-queued
    /// and the eventual straggler result is dropped.
    pub timeout: Duration,
    /// Re-queues allowed per job after its first attempt.
    pub retries: u32,
    /// Write the actual bound address here (atomically) once listening —
    /// how scripts find an ephemeral port.
    pub port_file: Option<PathBuf>,
    /// Export per-job worker spans as Chrome trace-event JSON here on
    /// shutdown.
    pub spans: Option<PathBuf>,
    /// Record live metrics (counters, gauges, latency histograms).
    /// When false the registry is inert: every record call is a no-op
    /// and snapshots are empty.
    pub metrics: bool,
    /// Serve Prometheus text exposition over plain HTTP (`GET
    /// /metrics`) on this port (0 for an ephemeral one) at the same
    /// host address as the protocol listener.
    pub metrics_port: Option<u16>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            journal: PathBuf::from("results/journal"),
            timeout: Duration::from_secs(300),
            retries: 3,
            port_file: None,
            spans: None,
            metrics: true,
            metrics_port: None,
        }
    }
}

/// The daemon's pre-registered metric handles. Everything recorded on
/// the job path goes through a handle resolved once here (or once per
/// worker), so the per-job cost is a few relaxed atomic RMWs; only the
/// per-tenant request counters register lazily, and those are bounded
/// by connection rate, not job rate.
struct Metrics {
    registry: Registry,
    queue_depth: Gauge,
    jobs_running: Gauge,
    workers_alive: Gauge,
    jobs_completed_simulated: Counter,
    jobs_completed_journal: Counter,
    jobs_failed: Counter,
    worker_crashes: Counter,
    job_retries: Counter,
    job_timeouts: Counter,
    rows_streamed: Counter,
    tickets_opened: Counter,
    jobs_submitted_fresh: Counter,
    jobs_submitted_journal: Counter,
    jobs_submitted_merged: Counter,
    queue_wait_ms: Histogram,
    sim_ms: Histogram,
    journal_ms: Histogram,
    job_total_ms: Histogram,
}

impl Metrics {
    fn new(enabled: bool) -> Metrics {
        let registry = if enabled {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let counter = |name: &str| registry.counter(name, &[]);
        let completed =
            |source: &str| registry.counter("jobs_completed_total", &[("source", source)]);
        let submitted = |disposition: &str| {
            registry.counter("jobs_submitted_total", &[("disposition", disposition)])
        };
        let hist = |name: &str| registry.histogram(name, &[]);
        Metrics {
            queue_depth: registry.gauge("queue_depth", &[]),
            jobs_running: registry.gauge("jobs_running", &[]),
            workers_alive: registry.gauge("workers_alive", &[]),
            jobs_completed_simulated: completed("simulated"),
            jobs_completed_journal: completed("journal"),
            jobs_failed: counter("jobs_failed_total"),
            worker_crashes: counter("worker_crashes_total"),
            job_retries: counter("job_retries_total"),
            job_timeouts: counter("job_timeouts_total"),
            rows_streamed: counter("rows_streamed_total"),
            tickets_opened: counter("tickets_opened_total"),
            jobs_submitted_fresh: submitted("fresh"),
            jobs_submitted_journal: submitted("journal"),
            jobs_submitted_merged: submitted("merged"),
            queue_wait_ms: hist("job_queue_wait_ms"),
            sim_ms: hist("job_sim_ms"),
            journal_ms: hist("job_journal_ms"),
            job_total_ms: hist("job_total_ms"),
            registry,
        }
    }

    /// Counts one request from `tenant` (the client's IP), split by
    /// request kind — the per-tenant submit/stream/cancel rates.
    fn client_request(&self, tenant: &str, kind: &str) {
        self.registry
            .counter(
                "client_requests_total",
                &[("tenant", tenant), ("kind", kind)],
            )
            .inc();
    }

    /// The per-worker utilization pair: a busy flag and a completion
    /// counter, labeled by worker slot.
    fn worker_handles(&self, worker: usize) -> (Gauge, Counter) {
        let label = worker.to_string();
        (
            self.registry.gauge("worker_busy", &[("worker", &label)]),
            self.registry
                .counter("worker_jobs_total", &[("worker", &label)]),
        )
    }
}

/// Scheduling state of one job entry.
enum Phase {
    /// Waiting in the queue; `not_before` is the retry backoff gate and
    /// `enqueued` is when the wait began (reset on re-queue), so the
    /// claim can attribute queue-wait latency.
    Pending {
        not_before: Option<Instant>,
        enqueued: Instant,
    },
    /// Claimed by `worker` as its `attempt`-th try.
    Running {
        worker: usize,
        attempt: u32,
        since: Instant,
    },
    /// Terminal: result available in `JobEntry::row`.
    Done,
    /// Terminal: retry budget exhausted.
    Failed,
}

struct JobEntry {
    spec: JobSpec,
    phase: Phase,
    /// Attempts started so far (claims, including crashed ones).
    attempts: u32,
    /// Tickets subscribed to this job's completion.
    tickets: Vec<u64>,
    /// The completed row (ticket/seq zeroed), once terminal.
    row: Option<ResultRow>,
    /// Correlation id stamped at submit; follows the job into its
    /// result row, journal line, and span.
    trace_id: String,
}

struct Ticket {
    jobs: u64,
    merged: u64,
    failed: u64,
    canceled: bool,
    rows: Vec<ResultRow>,
}

struct WorkerSlot {
    alive: bool,
    clean_exit: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    jobs_done: u64,
}

#[derive(Default)]
struct State {
    jobs: HashMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    tickets: HashMap<u64, Ticket>,
    next_ticket: u64,
    shutting_down: bool,
    /// Worker ids armed to panic on their next claim (test hook).
    kill_armed: Vec<usize>,
    crashes: u64,
    retries: u64,
    workers: Vec<WorkerSlot>,
    /// Monotonic source for per-job trace ids.
    next_trace_id: u64,
}

/// Mints the next per-job trace id: a daemon-wide sequence number plus
/// the low half of the job's stable hash, so an id is both unique within
/// the daemon's lifetime and visually joinable to the job identity.
fn mint_trace_id(st: &mut State, hash: u64) -> String {
    st.next_trace_id += 1;
    format!("{:06x}-{:08x}", st.next_trace_id, hash & 0xffff_ffff)
}

struct Shared {
    cfg: ServeConfig,
    registry: TraceRegistry,
    journal: Journal,
    spans: SpanLog,
    metrics: Metrics,
    metrics_addr: Option<SocketAddr>,
    state: Mutex<State>,
    /// Signaled when the queue gains work, backoff expires, or shutdown
    /// begins — what idle workers wait on.
    wake_workers: Condvar,
    /// Signaled on every job completion / ticket change — what result
    /// streamers and the shutdown drain wait on.
    progress: Condvar,
    /// Stops the accept loop.
    stop: AtomicBool,
    local_addr: SocketAddr,
}

/// A running daemon: the handle the `bvsim serve` command (and the
/// integration tests) hold while the service is live.
pub struct Daemon {
    shared: Arc<Shared>,
    listener: JoinHandle<()>,
    monitor: JoinHandle<()>,
    metrics_http: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener, opens the journal, spawns the worker shard
    /// and the monitor, and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound or the
    /// journal directory cannot be opened.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let journal = Journal::open(&cfg.journal)?;
        if let Some(summary) = journal.recovery().summary() {
            eprintln!("serve: {summary}");
        }
        // Bind the exposition endpoint on the same host as the protocol
        // listener, before writing port files, so a script that sees the
        // files can scrape immediately.
        let metrics_listener = match cfg.metrics_port {
            Some(port) => Some(TcpListener::bind(SocketAddr::new(local_addr.ip(), port))?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        if let Some(path) = &cfg.port_file {
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, local_addr.to_string())?;
            std::fs::rename(&tmp, path)?;
            if let Some(addr) = metrics_addr {
                // A sibling `<port-file>.metrics` file, same atomic
                // pattern, for scrape scripts.
                let sibling = PathBuf::from(format!("{}.metrics", path.display()));
                let tmp = sibling.with_extension("tmp");
                std::fs::write(&tmp, addr.to_string())?;
                std::fs::rename(&tmp, &sibling)?;
            }
        }
        let workers = cfg.workers.max(1);
        let metrics = Metrics::new(cfg.metrics);
        let shared = Arc::new(Shared {
            cfg,
            registry: TraceRegistry::paper_default(),
            journal,
            spans: SpanLog::new(),
            metrics,
            metrics_addr,
            state: Mutex::new(State {
                next_ticket: 1,
                ..State::default()
            }),
            wake_workers: Condvar::new(),
            progress: Condvar::new(),
            stop: AtomicBool::new(false),
            local_addr,
        });
        for _ in 0..workers {
            spawn_worker(&shared);
        }
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || monitor_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let metrics_http = metrics_listener.map(|listener| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || metrics_http_loop(&listener, &shared))
        });
        Ok(Daemon {
            shared,
            listener: accept,
            monitor,
            metrics_http,
        })
    }

    /// The bound address of the HTTP `/metrics` endpoint, when one was
    /// configured (resolves port 0 to the real port).
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.shared.metrics_addr
    }

    /// The address actually bound (resolves `:0` to the real port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Blocks until a `shutdown` request drains the daemon, then writes
    /// the span export (if configured) and returns its worker
    /// utilization summary.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the span export cannot be written.
    pub fn wait(self) -> std::io::Result<Option<String>> {
        let _ = self.listener.join();
        let _ = self.monitor.join();
        if let Some(h) = self.metrics_http {
            let _ = h.join();
        }
        // Join worker threads so every span is recorded before export.
        let handles: Vec<JoinHandle<()>> = {
            let mut st = self.shared.state.lock().expect("serve state");
            st.workers
                .iter_mut()
                .filter_map(|w| w.handle.take())
                .collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let Some(path) = &self.shared.cfg.spans else {
            return Ok(None);
        };
        let spans = self.shared.spans.take();
        std::fs::write(path, bv_runner::chrome_trace_json(&spans))?;
        Ok(Some(bv_runner::utilization_summary(&spans)))
    }
}

/// Exponential claim-retry backoff: 50 ms doubling per prior attempt,
/// capped at 2 s.
fn backoff(attempts: u32) -> Duration {
    let ms = 50u64.saturating_mul(1 << attempts.min(6));
    Duration::from_millis(ms.min(2_000))
}

fn spawn_worker(shared: &Arc<Shared>) {
    let clean_exit = Arc::new(AtomicBool::new(false));
    let me = {
        let mut st = shared.state.lock().expect("serve state");
        st.workers.push(WorkerSlot {
            alive: true,
            clean_exit: Arc::clone(&clean_exit),
            handle: None,
            jobs_done: 0,
        });
        st.workers.len() - 1
    };
    let handle = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("bv-serve-worker-{me}"))
            .spawn(move || worker_loop(&shared, me, &clean_exit))
            .expect("spawn worker")
    };
    let mut st = shared.state.lock().expect("serve state");
    st.workers[me].handle = Some(handle);
}

enum Claim {
    Job(u64),
    Wait(Duration),
    Idle,
}

/// Pops the first runnable job, cycling backoff-gated entries to the
/// back and dropping stale queue slots (canceled or already-claimed
/// hashes) on the way.
fn claim_next(st: &mut State, now: Instant) -> Claim {
    let mut soonest: Option<Duration> = None;
    for _ in 0..st.queue.len() {
        let Some(hash) = st.queue.pop_front() else {
            break;
        };
        let Some(entry) = st.jobs.get(&hash) else {
            continue; // canceled underneath the queue
        };
        let Phase::Pending { not_before, .. } = &entry.phase else {
            continue; // stale: claimed or finished via another queue slot
        };
        if let Some(gate) = not_before {
            if *gate > now {
                let wait = *gate - now;
                soonest = Some(soonest.map_or(wait, |s| s.min(wait)));
                st.queue.push_back(hash);
                continue;
            }
        }
        return Claim::Job(hash);
    }
    soonest.map_or(Claim::Idle, Claim::Wait)
}

fn worker_loop(shared: &Arc<Shared>, me: usize, clean_exit: &AtomicBool) {
    let (busy, jobs_total) = shared.metrics.worker_handles(me);
    loop {
        // Claim under the lock (or exit on drained shutdown).
        let claimed = {
            let mut st = shared.state.lock().expect("serve state");
            loop {
                let now = Instant::now();
                match claim_next(&mut st, now) {
                    Claim::Job(hash) => {
                        let armed = st.kill_armed.iter().position(|&w| w == me);
                        if let Some(pos) = armed {
                            st.kill_armed.remove(pos);
                        }
                        let entry = st.jobs.get_mut(&hash).expect("claimed job");
                        let queued = match &entry.phase {
                            Phase::Pending { enqueued, .. } => {
                                now.saturating_duration_since(*enqueued)
                            }
                            _ => Duration::ZERO,
                        };
                        entry.attempts += 1;
                        let attempt = entry.attempts;
                        entry.phase = Phase::Running {
                            worker: me,
                            attempt,
                            since: now,
                        };
                        let spec = entry.spec.clone();
                        let trace_id = entry.trace_id.clone();
                        if armed.is_some() {
                            // The deterministic mid-sweep crash: die *after*
                            // claiming, so the monitor must detect the dead
                            // thread and re-queue a running job.
                            drop(st);
                            panic!("bv-serve: worker {me} killed by kill-worker hook");
                        }
                        break Some((hash, spec, attempt, queued, trace_id));
                    }
                    Claim::Wait(d) => {
                        let (guard, _) = shared
                            .wake_workers
                            .wait_timeout(st, d)
                            .expect("serve state");
                        st = guard;
                    }
                    Claim::Idle => {
                        if st.shutting_down {
                            break None;
                        }
                        let (guard, _) = shared
                            .wake_workers
                            .wait_timeout(st, Duration::from_millis(200))
                            .expect("serve state");
                        st = guard;
                    }
                }
            }
        };
        let Some((hash, spec, attempt, queued, trace_id)) = claimed else {
            clean_exit.store(true, Ordering::SeqCst);
            let mut st = shared.state.lock().expect("serve state");
            if let Some(slot) = st.workers.get_mut(me) {
                slot.alive = false;
            }
            shared.progress.notify_all();
            return;
        };

        // Queue wait is a property of the claim, not the outcome: a job
        // that goes on to crash still waited.
        shared.metrics.queue_wait_ms.observe_ms(queued);
        busy.set(1);

        // Simulate with the lock released: the daemon keeps serving
        // status/submit/stream requests while jobs run.
        let t0 = Instant::now();
        let outcome = run_spec(shared, &spec);
        let wall = t0.elapsed().as_secs_f64();
        busy.set(0);

        // Publish under the lock, but only if our claim token is still
        // current — a timed-out-and-requeued job's straggler result is
        // dropped here, which is what makes re-queue + retry free of
        // duplicate journal lines.
        let mut st = shared.state.lock().expect("serve state");
        let current = matches!(
            st.jobs.get(&hash).map(|e| &e.phase),
            Some(Phase::Running { worker, attempt: a, .. }) if *worker == me && *a == attempt
        );
        if !current {
            continue;
        }
        match outcome {
            Ok(result) => {
                // Record completion metrics before the row becomes
                // visible to streamers, so a client that just received
                // its last row never reads a snapshot missing it.
                let timing = JobTiming {
                    queue_secs: queued.as_secs_f64(),
                    sim_secs: wall,
                };
                shared.metrics.sim_ms.observe(timing.sim_ms());
                shared
                    .metrics
                    .job_total_ms
                    .observe(timing.queue_ms() + timing.sim_ms());
                shared.metrics.jobs_completed_simulated.inc();
                jobs_total.inc();
                let row = row_core(&spec, &result, wall, me, attempt, "simulated", &trace_id);
                finish_job(&mut st, hash, row);
                st.workers[me].jobs_done += 1;
                shared.progress.notify_all();
                drop(st);
                // Checkpoint outside the lock; a crash here costs one
                // re-simulation after restart, never a duplicate row.
                let tj = Instant::now();
                shared
                    .journal
                    .record(&spec, &result, timing, me, Some(&trace_id), None);
                shared.metrics.journal_ms.observe_ms(tj.elapsed());
                shared.spans.record(
                    &format!("{} {} [{trace_id}]", spec.trace, result.llc_name),
                    me,
                    t0,
                );
            }
            Err(error) => {
                eprintln!("serve: job {hash:016x} failed: {error}");
                requeue_or_fail(shared, &mut st, hash);
                shared.progress.notify_all();
            }
        }
    }
}

fn run_spec(shared: &Shared, spec: &JobSpec) -> Result<RunResult, String> {
    let workload = shared
        .registry
        .get(&spec.trace)
        .ok_or_else(|| format!("trace '{}' not in the registry", spec.trace))?
        .workload
        .clone();
    Ok(System::new(spec.cfg).run_with_warmup(&workload, spec.warmup, spec.insts))
}

/// Builds the ticket-agnostic result row for a terminal job (`ticket`
/// and `seq` are stamped per subscriber).
fn row_core(
    spec: &JobSpec,
    result: &RunResult,
    wall: f64,
    worker: usize,
    attempt: u32,
    source: &str,
    trace_id: &str,
) -> ResultRow {
    ResultRow {
        trace_id: trace_id.to_string(),
        ticket: 0,
        seq: 0,
        trace: spec.trace.clone(),
        llc: result.llc_name.to_string(),
        policy: spec.cfg.llc_policy.name().to_string(),
        hash: format!("{:016x}", spec.stable_hash()),
        ipc: result.ipc(),
        llc_hit_rate: result.llc.hit_rate(),
        comp_ratio: result.compression.mean_ratio(),
        instructions: result.instructions,
        wall_secs: wall,
        worker: worker as u64,
        attempt: u64::from(attempt),
        source: source.to_string(),
    }
}

/// Marks a job done and fans its row out to every subscribed ticket.
fn finish_job(st: &mut State, hash: u64, row: ResultRow) {
    let entry = st.jobs.get_mut(&hash).expect("finished job");
    entry.phase = Phase::Done;
    entry.row = Some(row.clone());
    let subscribers = entry.tickets.clone();
    for t in subscribers {
        push_row(st, t, &row);
    }
}

fn push_row(st: &mut State, ticket: u64, row: &ResultRow) {
    if let Some(t) = st.tickets.get_mut(&ticket) {
        let mut row = row.clone();
        row.ticket = ticket;
        row.seq = t.rows.len() as u64;
        t.rows.push(row);
    }
}

/// Re-queues a crashed/timed-out/failed job with backoff, or fails it
/// terminally once the retry budget is spent.
fn requeue_or_fail(shared: &Shared, st: &mut State, hash: u64) {
    let retries = shared.cfg.retries;
    let Some(entry) = st.jobs.get_mut(&hash) else {
        return;
    };
    if entry.attempts > retries {
        entry.phase = Phase::Failed;
        shared.metrics.jobs_failed.inc();
        let subscribers = entry.tickets.clone();
        for t in subscribers {
            if let Some(ticket) = st.tickets.get_mut(&t) {
                ticket.failed += 1;
            }
        }
    } else {
        st.retries += 1;
        shared.metrics.job_retries.inc();
        entry.phase = Phase::Pending {
            not_before: Some(Instant::now() + backoff(entry.attempts)),
            enqueued: Instant::now(),
        };
        st.queue.push_back(hash);
        shared.wake_workers.notify_all();
    }
}

/// The monitor: detects dead worker threads (re-queueing their claimed
/// jobs and spawning replacements), enforces the per-job timeout, and
/// exits once a drained shutdown completes.
fn monitor_loop(shared: &Arc<Shared>) {
    loop {
        std::thread::sleep(Duration::from_millis(25));
        let mut respawn = 0usize;
        let finished = {
            let mut st = shared.state.lock().expect("serve state");

            // Dead workers: a finished thread that never reached its
            // clean-exit marker panicked mid-job.
            let crashed: Vec<usize> = st
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.alive && w.handle.as_ref().is_some_and(JoinHandle::is_finished))
                .map(|(i, _)| i)
                .collect();
            for w in crashed {
                let clean = st.workers[w].clean_exit.load(Ordering::SeqCst);
                st.workers[w].alive = false;
                if clean {
                    continue;
                }
                st.crashes += 1;
                shared.metrics.worker_crashes.inc();
                let orphans: Vec<u64> = st
                    .jobs
                    .iter()
                    .filter(
                        |(_, e)| matches!(e.phase, Phase::Running { worker, .. } if worker == w),
                    )
                    .map(|(&h, _)| h)
                    .collect();
                for hash in orphans {
                    requeue_or_fail(shared, &mut st, hash);
                }
                shared.progress.notify_all();
                if !st.shutting_down {
                    respawn += 1;
                }
            }

            // Hung jobs: past the timeout, re-queue; the straggler's
            // eventual publish fails its token check and is dropped.
            let now = Instant::now();
            let hung: Vec<u64> = st
                .jobs
                .iter()
                .filter(|(_, e)| {
                    matches!(e.phase, Phase::Running { since, .. } if now.duration_since(since) > shared.cfg.timeout)
                })
                .map(|(&h, _)| h)
                .collect();
            for hash in hung {
                shared.metrics.job_timeouts.inc();
                requeue_or_fail(shared, &mut st, hash);
                shared.progress.notify_all();
            }

            st.shutting_down
                && st
                    .jobs
                    .values()
                    .all(|e| matches!(e.phase, Phase::Done | Phase::Failed))
        };
        for _ in 0..respawn {
            spawn_worker(shared);
        }
        if finished {
            shared.wake_workers.notify_all();
            return;
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            if let Err(e) = handle_conn(&shared, stream) {
                // A client hanging up mid-stream is routine, not fatal.
                if e.kind() != std::io::ErrorKind::BrokenPipe {
                    eprintln!("serve: connection error: {e}");
                }
            }
        });
    }
}

/// The Prometheus exposition endpoint: a deliberately tiny HTTP/1.0
/// server — read the request line, answer `GET /metrics` with the
/// text-format registry snapshot, 404 anything else, close. One
/// request per connection, exactly like the protocol listener.
fn metrics_http_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let _ = serve_scrape(&shared, stream);
        });
    }
}

fn serve_scrape(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut out = BufWriter::new(stream);
    let target = line.split_whitespace().nth(1).unwrap_or("");
    if line.starts_with("GET ") && target == "/metrics" {
        let body = bv_metrics::render_exposition(&metrics_snapshot(shared));
        write!(
            out,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
    } else {
        write!(out, "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n")?;
    }
    out.flush()
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    let tenant = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |a| a.ip().to_string());
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut out = BufWriter::new(stream);
    let reply = |out: &mut BufWriter<TcpStream>, resp: &Response| -> std::io::Result<()> {
        writeln!(out, "{}", resp.to_line())?;
        out.flush()
    };
    let request = match Request::parse_line(&line) {
        Ok(r) => r,
        Err(error) => return reply(&mut out, &Response::Error { error }),
    };
    shared.metrics.client_request(&tenant, request.kind());
    match request {
        Request::Submit { grid, wait } => match submit(shared, &grid) {
            Ok((ticket, resp)) => {
                reply(&mut out, &resp)?;
                if wait {
                    stream_ticket(shared, &mut out, ticket)?;
                }
                Ok(())
            }
            Err(error) => reply(&mut out, &Response::Error { error }),
        },
        Request::Status => reply(&mut out, &Response::Status(status(shared))),
        Request::Metrics => reply(&mut out, &Response::Metrics(metrics_snapshot(shared))),
        Request::Stream { ticket } => {
            let known = shared
                .state
                .lock()
                .expect("serve state")
                .tickets
                .contains_key(&ticket);
            if known {
                stream_ticket(shared, &mut out, ticket)
            } else {
                reply(
                    &mut out,
                    &Response::Error {
                        error: format!("unknown ticket {ticket}"),
                    },
                )
            }
        }
        Request::Cancel { ticket } => match cancel(shared, ticket) {
            Ok(info) => reply(&mut out, &Response::Ok { info }),
            Err(error) => reply(&mut out, &Response::Error { error }),
        },
        Request::KillWorker { worker } => {
            let worker = worker as usize;
            let mut st = shared.state.lock().expect("serve state");
            if st.workers.get(worker).is_none_or(|w| !w.alive) {
                let error = format!("no live worker {worker}");
                drop(st);
                reply(&mut out, &Response::Error { error })
            } else {
                st.kill_armed.push(worker);
                drop(st);
                reply(
                    &mut out,
                    &Response::Ok {
                        info: format!("worker {worker} armed to die on its next claim"),
                    },
                )
            }
        }
        Request::Shutdown => {
            drain(shared);
            reply(
                &mut out,
                &Response::Ok {
                    info: "drained; daemon exiting".to_string(),
                },
            )?;
            // Unblock the accept loops so the listener threads exit.
            shared.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(shared.local_addr);
            if let Some(addr) = shared.metrics_addr {
                let _ = TcpStream::connect(addr);
            }
            Ok(())
        }
    }
}

/// Plans a grid and folds it into the job table: adopt, journal-load, or
/// enqueue each configuration. Returns the new ticket and its ack.
fn submit(shared: &Shared, grid: &SweepGrid) -> Result<(u64, Response), String> {
    let specs = grid.plan()?;
    for spec in &specs {
        if shared.registry.get(&spec.trace).is_none() {
            return Err(format!("trace '{}' not in the registry", spec.trace));
        }
    }
    let mut st = shared.state.lock().expect("serve state");
    if st.shutting_down {
        return Err("daemon is shutting down".to_string());
    }
    let ticket = st.next_ticket;
    st.next_ticket += 1;
    shared.metrics.tickets_opened.inc();
    st.tickets.insert(
        ticket,
        Ticket {
            jobs: specs.len() as u64,
            merged: 0,
            failed: 0,
            canceled: false,
            rows: Vec::new(),
        },
    );
    let (mut fresh, mut journaled, mut merged) = (0u64, 0u64, 0u64);
    for spec in specs {
        let hash = spec.stable_hash();
        let adopted = st.jobs.get_mut(&hash).map(|entry| {
            entry.tickets.push(ticket);
            match entry.phase {
                Phase::Done => (entry.row.clone(), false),
                Phase::Failed => (None, true),
                Phase::Pending { .. } | Phase::Running { .. } => (None, false),
            }
        });
        if let Some((done_row, failed_now)) = adopted {
            merged += 1;
            if let Some(row) = done_row {
                push_row(&mut st, ticket, &row);
            }
            if failed_now {
                st.tickets.get_mut(&ticket).expect("new ticket").failed += 1;
            }
        } else if let Some(result) = shared.journal.load(&spec) {
            let tid = mint_trace_id(&mut st, hash);
            let row = row_core(&spec, &result, 0.0, 0, 0, "journal", &tid);
            st.jobs.insert(
                hash,
                JobEntry {
                    spec,
                    phase: Phase::Done,
                    attempts: 0,
                    tickets: vec![ticket],
                    row: Some(row.clone()),
                    trace_id: tid,
                },
            );
            push_row(&mut st, ticket, &row);
            shared.metrics.jobs_completed_journal.inc();
            journaled += 1;
        } else {
            let tid = mint_trace_id(&mut st, hash);
            st.jobs.insert(
                hash,
                JobEntry {
                    spec,
                    phase: Phase::Pending {
                        not_before: None,
                        enqueued: Instant::now(),
                    },
                    attempts: 0,
                    tickets: vec![ticket],
                    row: None,
                    trace_id: tid,
                },
            );
            st.queue.push_back(hash);
            fresh += 1;
        }
    }
    st.tickets.get_mut(&ticket).expect("new ticket").merged = merged;
    shared.metrics.jobs_submitted_fresh.add(fresh);
    shared.metrics.jobs_submitted_journal.add(journaled);
    shared.metrics.jobs_submitted_merged.add(merged);
    let jobs = fresh + journaled + merged;
    drop(st);
    shared.wake_workers.notify_all();
    shared.progress.notify_all();
    Ok((
        ticket,
        Response::Submitted {
            ticket,
            jobs,
            fresh,
            journaled,
            merged,
        },
    ))
}

fn ticket_done(ticket: u64, t: &Ticket) -> Option<DoneSummary> {
    let terminal = t.rows.len() as u64 + t.failed >= t.jobs;
    if !(terminal || t.canceled) {
        return None;
    }
    let simulated = t.rows.iter().filter(|r| r.source == "simulated").count() as u64;
    let journaled = t.rows.iter().filter(|r| r.source == "journal").count() as u64;
    Some(DoneSummary {
        ticket,
        jobs: t.jobs,
        simulated,
        journaled,
        merged: t.merged,
        failed: t.failed,
        canceled: t.canceled,
    })
}

/// Streams a ticket's rows (past and future) followed by its `done`
/// line, blocking on the progress condvar between completions.
fn stream_ticket(
    shared: &Shared,
    out: &mut BufWriter<TcpStream>,
    ticket: u64,
) -> std::io::Result<()> {
    let mut cursor = 0usize;
    loop {
        let (batch, done) = {
            let mut st = shared.state.lock().expect("serve state");
            loop {
                let Some(t) = st.tickets.get(&ticket) else {
                    drop(st);
                    writeln!(
                        out,
                        "{}",
                        Response::Error {
                            error: format!("ticket {ticket} disappeared"),
                        }
                        .to_line()
                    )?;
                    return out.flush();
                };
                if cursor < t.rows.len() {
                    break (t.rows[cursor..].to_vec(), None);
                }
                if let Some(done) = ticket_done(ticket, t) {
                    break (Vec::new(), Some(done));
                }
                let (guard, _) = shared
                    .progress
                    .wait_timeout(st, Duration::from_millis(200))
                    .expect("serve state");
                st = guard;
            }
        };
        for row in batch {
            writeln!(out, "{}", Response::Result(row).to_line())?;
            shared.metrics.rows_streamed.inc();
            cursor += 1;
        }
        out.flush()?;
        if let Some(done) = done {
            writeln!(out, "{}", Response::Done(done).to_line())?;
            return out.flush();
        }
    }
}

/// Cancels a ticket: pending jobs wanted by no other live ticket are
/// dropped from the table (their queue slots go stale); running jobs
/// finish and are journaled as usual.
fn cancel(shared: &Shared, ticket: u64) -> Result<String, String> {
    let mut st = shared.state.lock().expect("serve state");
    {
        let t = st
            .tickets
            .get_mut(&ticket)
            .ok_or_else(|| format!("unknown ticket {ticket}"))?;
        t.canceled = true;
    }
    let canceled_tickets: Vec<u64> = st
        .tickets
        .iter()
        .filter(|(_, t)| t.canceled)
        .map(|(&id, _)| id)
        .collect();
    let droppable: Vec<u64> = st
        .jobs
        .iter()
        .filter(|(_, e)| {
            matches!(e.phase, Phase::Pending { .. })
                && e.tickets.iter().all(|t| canceled_tickets.contains(t))
        })
        .map(|(&h, _)| h)
        .collect();
    let dropped = droppable.len();
    for hash in &droppable {
        st.jobs.remove(hash);
    }
    drop(st);
    shared.progress.notify_all();
    Ok(format!(
        "ticket {ticket} canceled, {dropped} pending job(s) dropped"
    ))
}

fn status(shared: &Shared) -> StatusInfo {
    let st = shared.state.lock().expect("serve state");
    let mut pending = 0u64;
    let mut running = 0u64;
    let mut done = 0u64;
    let mut failed = 0u64;
    for e in st.jobs.values() {
        match e.phase {
            Phase::Pending { .. } => pending += 1,
            Phase::Running { .. } => running += 1,
            Phase::Done => done += 1,
            Phase::Failed => failed += 1,
        }
    }
    drop(st);
    // Percentiles come from the live job_total_ms histogram; with
    // metrics disabled (or before any completion) they read 0.
    let snap = shared.metrics.registry.snapshot();
    let pct = |q: f64| {
        snap.histogram("job_total_ms")
            .and_then(|h| h.hist.percentile(q))
            .unwrap_or(0)
    };
    let st = shared.state.lock().expect("serve state");
    StatusInfo {
        workers: st.workers.len() as u64,
        alive: st.workers.iter().filter(|w| w.alive).count() as u64,
        pending,
        running,
        done,
        failed,
        tickets: st.next_ticket - 1,
        crashes: st.crashes,
        retries: st.retries,
        per_worker_done: st.workers.iter().map(|w| w.jobs_done).collect(),
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
    }
}

/// Takes a registry snapshot with the scheduler gauges (queue depth,
/// running jobs, live workers) refreshed from the job table first —
/// they describe current state, so they are computed at observation
/// time rather than maintained transitionally on every queue edge.
fn metrics_snapshot(shared: &Shared) -> Snapshot {
    {
        let st = shared.state.lock().expect("serve state");
        let pending = st
            .jobs
            .values()
            .filter(|e| matches!(e.phase, Phase::Pending { .. }))
            .count() as u64;
        let running = st
            .jobs
            .values()
            .filter(|e| matches!(e.phase, Phase::Running { .. }))
            .count() as u64;
        let alive = st.workers.iter().filter(|w| w.alive).count() as u64;
        shared.metrics.queue_depth.set(pending);
        shared.metrics.jobs_running.set(running);
        shared.metrics.workers_alive.set(alive);
    }
    shared.metrics.registry.snapshot()
}

/// The graceful drain: refuse new submissions, let workers finish every
/// queued job, and return once the job table is fully terminal.
fn drain(shared: &Shared) {
    let mut st: MutexGuard<'_, State> = shared.state.lock().expect("serve state");
    st.shutting_down = true;
    shared.wake_workers.notify_all();
    while !st
        .jobs
        .values()
        .all(|e| matches!(e.phase, Phase::Done | Phase::Failed))
    {
        let (guard, _) = shared
            .progress
            .wait_timeout(st, Duration::from_millis(200))
            .expect("serve state");
        st = guard;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff(0), Duration::from_millis(50));
        assert_eq!(backoff(1), Duration::from_millis(100));
        assert_eq!(backoff(3), Duration::from_millis(400));
        assert_eq!(backoff(10), Duration::from_millis(2_000));
        assert_eq!(backoff(u32::MAX), Duration::from_millis(2_000));
    }

    #[test]
    fn claim_skips_stale_and_gated_entries() {
        let mut st = State::default();
        let spec = JobSpec::new(
            "t",
            bv_sim::SimConfig::single_thread(bv_sim::LlcKind::Uncompressed),
            0,
            100,
        );
        let now = Instant::now();
        // 1: gated into the future; 2: stale (no entry); 3: runnable.
        st.jobs.insert(
            1,
            JobEntry {
                spec: spec.clone(),
                phase: Phase::Pending {
                    not_before: Some(now + Duration::from_secs(60)),
                    enqueued: now,
                },
                attempts: 1,
                tickets: vec![],
                row: None,
                trace_id: "000001-00000001".to_string(),
            },
        );
        st.jobs.insert(
            3,
            JobEntry {
                spec,
                phase: Phase::Pending {
                    not_before: None,
                    enqueued: now,
                },
                attempts: 0,
                tickets: vec![],
                row: None,
                trace_id: "000002-00000003".to_string(),
            },
        );
        st.queue.extend([1, 2, 3]);
        match claim_next(&mut st, now) {
            Claim::Job(h) => assert_eq!(h, 3),
            _ => panic!("expected the runnable job"),
        }
        // Only the gated job remains queued; claiming again reports how
        // long to wait for it.
        match claim_next(&mut st, now) {
            Claim::Wait(d) => assert!(d <= Duration::from_secs(60)),
            _ => panic!("expected a backoff wait"),
        }
        assert_eq!(st.queue.len(), 1);
    }
}
