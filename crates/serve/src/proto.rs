//! The `bvsim-serve-v1` wire protocol: line-delimited JSON over TCP.
//!
//! Every message is one JSON object on one line, stamped with
//! `"v": "bvsim-serve-v1"` and a `"kind"` discriminator. A connection
//! carries exactly one request; the response is either a single line
//! (status, ok, error) or a stream of `result` lines terminated by one
//! `done` line (submit-sweep with `wait`, stream-results).
//!
//! The encoding reuses `bv_telemetry::json` (re-exported as
//! [`bv_runner::json`]) — the same writer/parser the run journal and
//! telemetry sink use — so result lines are byte-compatible with
//! `runs.jsonl` consumers: a client can append the `result` lines it
//! receives to a local file and feed it to the same analysis scripts.

use bv_cache::PolicyKind;
use bv_metrics::{HistogramSnapshot, MetricKey, Snapshot};
use bv_runner::json::{self, ArrWriter, ObjWriter, Value};
use bv_runner::JobSpec;
use bv_sim::{LlcKind, SimConfig};
use bv_telemetry::Log2Histogram;

/// The protocol version stamped into (and required on) every message.
pub const VERSION: &str = "bvsim-serve-v1";

/// A sweep submission: the Cartesian product of traces x LLC
/// organizations x replacement policies at one geometry and budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepGrid {
    /// Registry trace names.
    pub traces: Vec<String>,
    /// LLC organization names ([`LlcKind::from_name`]).
    pub llcs: Vec<String>,
    /// Replacement policy names ([`PolicyKind::from_name`]).
    pub policies: Vec<String>,
    /// LLC capacity in megabytes.
    pub llc_mb: u64,
    /// LLC associativity.
    pub ways: u64,
    /// Warmup instructions per job.
    pub warmup: u64,
    /// Measured instructions per job.
    pub insts: u64,
}

impl Default for SweepGrid {
    fn default() -> SweepGrid {
        SweepGrid {
            traces: Vec::new(),
            llcs: vec!["base-victim".to_string()],
            policies: vec!["nru".to_string()],
            llc_mb: 2,
            ways: 16,
            warmup: 1_000_000,
            insts: 1_500_000,
        }
    }
}

impl SweepGrid {
    /// Expands the grid into concrete jobs, in deterministic
    /// trace-major order, deduplicating repeated names.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown LLC or policy name, or
    /// of an empty dimension.
    pub fn plan(&self) -> Result<Vec<JobSpec>, String> {
        if self.traces.is_empty() {
            return Err("sweep grid has no traces".to_string());
        }
        let mut llcs = Vec::new();
        for name in &self.llcs {
            let kind = LlcKind::from_name(name).ok_or_else(|| {
                format!("unknown LLC kind '{name}' (expected {})", LlcKind::NAMES)
            })?;
            llcs.push(kind);
        }
        let mut policies = Vec::new();
        for name in &self.policies {
            let kind = PolicyKind::from_name(name).ok_or_else(|| {
                format!("unknown policy '{name}' (expected {})", PolicyKind::NAMES)
            })?;
            policies.push(kind);
        }
        if llcs.is_empty() || policies.is_empty() {
            return Err("sweep grid has an empty llc or policy dimension".to_string());
        }
        let mut jobs = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for trace in &self.traces {
            for &llc in &llcs {
                for &policy in &policies {
                    let cfg = SimConfig::single_thread(llc)
                        .with_llc_size(self.llc_mb as usize * 1024 * 1024, self.ways as usize)
                        .with_policy(policy);
                    let job = JobSpec::new(trace.clone(), cfg, self.warmup, self.insts);
                    if seen.insert(job.stable_hash()) {
                        jobs.push(job);
                    }
                }
            }
        }
        Ok(jobs)
    }

    fn render(&self) -> String {
        let mut traces = ArrWriter::new();
        for t in &self.traces {
            traces.str(t);
        }
        let mut llcs = ArrWriter::new();
        for l in &self.llcs {
            llcs.str(l);
        }
        let mut policies = ArrWriter::new();
        for p in &self.policies {
            policies.str(p);
        }
        let mut w = ObjWriter::new();
        w.raw("traces", &traces.finish())
            .raw("llcs", &llcs.finish())
            .raw("policies", &policies.finish())
            .u64("llc_mb", self.llc_mb)
            .u64("ways", self.ways)
            .u64("warmup", self.warmup)
            .u64("insts", self.insts);
        w.finish()
    }

    fn decode(v: &Value) -> Result<SweepGrid, String> {
        let strings = |key: &str| -> Result<Vec<String>, String> {
            let arr = v
                .get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("grid missing array '{key}'"))?;
            arr.iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("grid '{key}' has a non-string element"))
                })
                .collect()
        };
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("grid missing number '{key}'"))
        };
        Ok(SweepGrid {
            traces: strings("traces")?,
            llcs: strings("llcs")?,
            policies: strings("policies")?,
            llc_mb: num("llc_mb")?,
            ways: num("ways")?,
            warmup: num("warmup")?,
            insts: num("insts")?,
        })
    }
}

/// A client-to-daemon request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a sweep; with `wait` the same connection then streams the
    /// ticket's results to completion.
    Submit {
        /// The grid to plan and enqueue.
        grid: SweepGrid,
        /// Stream results on this connection after the `submitted` line.
        wait: bool,
    },
    /// Report daemon-wide queue/worker counters.
    Status,
    /// Stream an existing ticket's results (past and future) to
    /// completion.
    Stream {
        /// The ticket to follow.
        ticket: u64,
    },
    /// Cancel a ticket: its pending jobs are dropped unless another
    /// ticket also wants them; running jobs finish.
    Cancel {
        /// The ticket to cancel.
        ticket: u64,
    },
    /// Arm worker `worker` to die when it claims its next job — the
    /// deterministic mid-sweep crash used by the recovery tests and CI.
    KillWorker {
        /// Worker index to arm.
        worker: u64,
    },
    /// Fetch a point-in-time snapshot of the daemon's metric registry —
    /// what `bvsim top` refreshes on.
    Metrics,
    /// Drain every queued job, then stop accepting and exit.
    Shutdown,
}

impl Request {
    /// The wire `kind` discriminator — also the label value used by the
    /// daemon's per-tenant request counters.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Submit { .. } => "submit-sweep",
            Request::Status => "status",
            Request::Stream { .. } => "stream-results",
            Request::Cancel { .. } => "cancel",
            Request::KillWorker { .. } => "kill-worker",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }

    /// Renders the request as one protocol line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut w = ObjWriter::new();
        w.str("v", VERSION);
        match self {
            Request::Submit { grid, wait } => {
                w.str("kind", "submit-sweep")
                    .raw("grid", &grid.render())
                    .raw("wait", if *wait { "true" } else { "false" });
            }
            Request::Status => {
                w.str("kind", "status");
            }
            Request::Stream { ticket } => {
                w.str("kind", "stream-results").u64("ticket", *ticket);
            }
            Request::Cancel { ticket } => {
                w.str("kind", "cancel").u64("ticket", *ticket);
            }
            Request::KillWorker { worker } => {
                w.str("kind", "kill-worker").u64("worker", *worker);
            }
            Request::Metrics => {
                w.str("kind", "metrics");
            }
            Request::Shutdown => {
                w.str("kind", "shutdown");
            }
        }
        w.finish()
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax, version, or schema
    /// problem.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let v = parse_versioned(line)?;
        let kind = field_str(&v, "kind")?;
        match kind.as_str() {
            "submit-sweep" => Ok(Request::Submit {
                grid: SweepGrid::decode(v.get("grid").ok_or("submit-sweep missing 'grid'")?)?,
                wait: matches!(v.get("wait"), Some(Value::Bool(true))),
            }),
            "status" => Ok(Request::Status),
            "stream-results" => Ok(Request::Stream {
                ticket: field_u64(&v, "ticket")?,
            }),
            "cancel" => Ok(Request::Cancel {
                ticket: field_u64(&v, "ticket")?,
            }),
            "kill-worker" => Ok(Request::KillWorker {
                worker: field_u64(&v, "worker")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request kind '{other}'")),
        }
    }
}

/// One completed job, shaped like a `runs.jsonl` record plus the serve
/// metadata (ticket, sequence, provenance).
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// The ticket this line belongs to.
    pub ticket: u64,
    /// Position within the ticket's stream (0-based, completion order).
    pub seq: u64,
    /// Registry trace name.
    pub trace: String,
    /// LLC organization name (as reported by the simulation).
    pub llc: String,
    /// Replacement policy name.
    pub policy: String,
    /// The job's 16-hex-digit stable hash (checkpoint identity).
    pub hash: String,
    /// Instructions per cycle.
    pub ipc: f64,
    /// LLC hit rate.
    pub llc_hit_rate: f64,
    /// Mean compression ratio.
    pub comp_ratio: f64,
    /// Measured instructions.
    pub instructions: u64,
    /// Simulation wall-clock seconds (0 for journal hits).
    pub wall_secs: f64,
    /// Worker that ran the job (0 for journal hits).
    pub worker: u64,
    /// 1-based attempt that succeeded (0 for journal hits).
    pub attempt: u64,
    /// `"simulated"` or `"journal"`.
    pub source: String,
    /// The daemon's per-job correlation id. Stamped at submit, it
    /// follows the job through claim, simulation, the `runs.jsonl`
    /// journal line, and the span export, so one id joins all four.
    pub trace_id: String,
}

impl ResultRow {
    fn render_fields(&self, w: &mut ObjWriter) {
        w.u64("ticket", self.ticket)
            .u64("seq", self.seq)
            .str("trace", &self.trace)
            .str("llc", &self.llc)
            .str("policy", &self.policy)
            .str("hash", &self.hash)
            .f64("ipc", self.ipc)
            .f64("llc_hit_rate", self.llc_hit_rate)
            .f64("comp_ratio", self.comp_ratio)
            .u64("instructions", self.instructions)
            .f64("wall_secs", self.wall_secs)
            .u64("worker", self.worker)
            .u64("attempt", self.attempt)
            .str("source", &self.source)
            .str("trace_id", &self.trace_id);
    }

    /// Renders the row as a bare JSON object line — no protocol
    /// envelope — shaped like the journal's `runs.jsonl` rows, so
    /// client-side `--out` files feed the same downstream consumers.
    #[must_use]
    pub fn to_jsonl_line(&self) -> String {
        let mut w = ObjWriter::new();
        self.render_fields(&mut w);
        w.finish()
    }

    fn decode(v: &Value) -> Result<ResultRow, String> {
        Ok(ResultRow {
            ticket: field_u64(v, "ticket")?,
            seq: field_u64(v, "seq")?,
            trace: field_str(v, "trace")?,
            llc: field_str(v, "llc")?,
            policy: field_str(v, "policy")?,
            hash: field_str(v, "hash")?,
            ipc: field_f64(v, "ipc")?,
            llc_hit_rate: field_f64(v, "llc_hit_rate")?,
            comp_ratio: field_f64(v, "comp_ratio")?,
            instructions: field_u64(v, "instructions")?,
            wall_secs: field_f64(v, "wall_secs")?,
            worker: field_u64(v, "worker")?,
            attempt: field_u64(v, "attempt")?,
            source: field_str(v, "source")?,
            trace_id: field_str(v, "trace_id")?,
        })
    }
}

/// The terminal line of a ticket's result stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DoneSummary {
    /// The ticket that finished.
    pub ticket: u64,
    /// Unique jobs the ticket planned.
    pub jobs: u64,
    /// Jobs this daemon simulated fresh for the ticket.
    pub simulated: u64,
    /// Jobs satisfied from on-disk checkpoints at submit time.
    pub journaled: u64,
    /// Jobs merged with another ticket's identical pending/running work.
    pub merged: u64,
    /// Jobs that exhausted their retries.
    pub failed: u64,
    /// The ticket was canceled before completing.
    pub canceled: bool,
}

/// Daemon-wide counters for `status`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusInfo {
    /// Worker slots ever started (replacements included).
    pub workers: u64,
    /// Worker slots currently alive.
    pub alive: u64,
    /// Jobs waiting in the queue (including backoff).
    pub pending: u64,
    /// Jobs claimed by a worker right now.
    pub running: u64,
    /// Jobs in the terminal done state.
    pub done: u64,
    /// Jobs in the terminal failed state.
    pub failed: u64,
    /// Tickets ever issued.
    pub tickets: u64,
    /// Worker threads that died and were replaced.
    pub crashes: u64,
    /// Job re-queues (after a crash or timeout).
    pub retries: u64,
    /// Jobs completed per worker slot, for utilization reporting.
    pub per_worker_done: Vec<u64>,
    /// p50 end-to-end job latency (queue wait + simulation) in ms,
    /// from the live `job_total_ms` histogram; 0 when no job has
    /// completed yet or metrics are disabled.
    pub p50_ms: u64,
    /// p95 end-to-end job latency in ms (see `p50_ms`).
    pub p95_ms: u64,
    /// p99 end-to-end job latency in ms (see `p50_ms`).
    pub p99_ms: u64,
}

/// A daemon-to-client response line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Acknowledges a submit: the ticket and its planning breakdown.
    Submitted {
        /// The ticket to stream or cancel with.
        ticket: u64,
        /// Unique jobs planned from the grid.
        jobs: u64,
        /// Newly enqueued by this submission.
        fresh: u64,
        /// Satisfied immediately from the journal.
        journaled: u64,
        /// Shared with earlier, still-active submissions.
        merged: u64,
    },
    /// One completed job.
    Result(ResultRow),
    /// End of a ticket's stream.
    Done(DoneSummary),
    /// Daemon-wide counters.
    Status(StatusInfo),
    /// A point-in-time copy of the daemon's metric registry.
    Metrics(Snapshot),
    /// Generic success.
    Ok {
        /// A short human-readable note.
        info: String,
    },
    /// The request failed.
    Error {
        /// What went wrong.
        error: String,
    },
}

impl Response {
    /// Renders the response as one protocol line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut w = ObjWriter::new();
        w.str("v", VERSION);
        match self {
            Response::Submitted {
                ticket,
                jobs,
                fresh,
                journaled,
                merged,
            } => {
                w.str("kind", "submitted")
                    .u64("ticket", *ticket)
                    .u64("jobs", *jobs)
                    .u64("fresh", *fresh)
                    .u64("journaled", *journaled)
                    .u64("merged", *merged);
            }
            Response::Result(row) => {
                w.str("kind", "result");
                row.render_fields(&mut w);
            }
            Response::Done(d) => {
                w.str("kind", "done")
                    .u64("ticket", d.ticket)
                    .u64("jobs", d.jobs)
                    .u64("simulated", d.simulated)
                    .u64("journaled", d.journaled)
                    .u64("merged", d.merged)
                    .u64("failed", d.failed)
                    .raw("canceled", if d.canceled { "true" } else { "false" });
            }
            Response::Status(s) => {
                w.str("kind", "status")
                    .u64("workers", s.workers)
                    .u64("alive", s.alive)
                    .u64("pending", s.pending)
                    .u64("running", s.running)
                    .u64("done", s.done)
                    .u64("failed", s.failed)
                    .u64("tickets", s.tickets)
                    .u64("crashes", s.crashes)
                    .u64("retries", s.retries)
                    .u64_array("per_worker_done", &s.per_worker_done)
                    .u64("p50_ms", s.p50_ms)
                    .u64("p95_ms", s.p95_ms)
                    .u64("p99_ms", s.p99_ms);
            }
            Response::Metrics(snap) => {
                w.str("kind", "metrics");
                render_snapshot(&mut w, snap);
            }
            Response::Ok { info } => {
                w.str("kind", "ok").str("info", info);
            }
            Response::Error { error } => {
                w.str("kind", "error").str("error", error);
            }
        }
        w.finish()
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax, version, or schema
    /// problem.
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let v = parse_versioned(line)?;
        let kind = field_str(&v, "kind")?;
        match kind.as_str() {
            "submitted" => Ok(Response::Submitted {
                ticket: field_u64(&v, "ticket")?,
                jobs: field_u64(&v, "jobs")?,
                fresh: field_u64(&v, "fresh")?,
                journaled: field_u64(&v, "journaled")?,
                merged: field_u64(&v, "merged")?,
            }),
            "result" => Ok(Response::Result(ResultRow::decode(&v)?)),
            "done" => Ok(Response::Done(DoneSummary {
                ticket: field_u64(&v, "ticket")?,
                jobs: field_u64(&v, "jobs")?,
                simulated: field_u64(&v, "simulated")?,
                journaled: field_u64(&v, "journaled")?,
                merged: field_u64(&v, "merged")?,
                failed: field_u64(&v, "failed")?,
                canceled: matches!(v.get("canceled"), Some(Value::Bool(true))),
            })),
            "status" => Ok(Response::Status(StatusInfo {
                workers: field_u64(&v, "workers")?,
                alive: field_u64(&v, "alive")?,
                pending: field_u64(&v, "pending")?,
                running: field_u64(&v, "running")?,
                done: field_u64(&v, "done")?,
                failed: field_u64(&v, "failed")?,
                tickets: field_u64(&v, "tickets")?,
                crashes: field_u64(&v, "crashes")?,
                retries: field_u64(&v, "retries")?,
                per_worker_done: v
                    .get("per_worker_done")
                    .and_then(Value::as_arr)
                    .ok_or("status missing 'per_worker_done'")?
                    .iter()
                    .map(|x| x.as_u64().ok_or_else(|| "bad worker count".to_string()))
                    .collect::<Result<_, _>>()?,
                p50_ms: field_u64(&v, "p50_ms")?,
                p95_ms: field_u64(&v, "p95_ms")?,
                p99_ms: field_u64(&v, "p99_ms")?,
            })),
            "metrics" => Ok(Response::Metrics(decode_snapshot(&v)?)),
            "ok" => Ok(Response::Ok {
                info: field_str(&v, "info")?,
            }),
            "error" => Ok(Response::Error {
                error: field_str(&v, "error")?,
            }),
            other => Err(format!("unknown response kind '{other}'")),
        }
    }
}

/// Renders a metric series' identity: its name plus labels as a flat
/// `[k, v, k, v]` array (objects would need escape-order guarantees the
/// hand-rolled writer does not promise for arbitrary label keys).
fn render_key(w: &mut ObjWriter, key: &MetricKey) {
    let mut labels = ArrWriter::new();
    for (k, v) in &key.labels {
        labels.str(k);
        labels.str(v);
    }
    w.str("name", &key.name).raw("labels", &labels.finish());
}

fn render_snapshot(w: &mut ObjWriter, snap: &Snapshot) {
    let mut counters = ArrWriter::new();
    for (key, value) in &snap.counters {
        let mut o = ObjWriter::new();
        render_key(&mut o, key);
        o.u64("value", *value);
        counters.raw(&o.finish());
    }
    let mut gauges = ArrWriter::new();
    for (key, value) in &snap.gauges {
        let mut o = ObjWriter::new();
        render_key(&mut o, key);
        o.u64("value", *value);
        gauges.raw(&o.finish());
    }
    let mut hists = ArrWriter::new();
    for (key, h) in &snap.histograms {
        let mut o = ObjWriter::new();
        render_key(&mut o, key);
        o.u64_array("buckets", &h.hist.buckets()[..])
            .u64("sum", h.sum);
        hists.raw(&o.finish());
    }
    w.raw("counters", &counters.finish())
        .raw("gauges", &gauges.finish())
        .raw("histograms", &hists.finish());
}

fn decode_key(v: &Value) -> Result<MetricKey, String> {
    let name = field_str(v, "name")?;
    let arr = v
        .get("labels")
        .and_then(Value::as_arr)
        .ok_or("metric series missing 'labels'")?;
    if arr.len() % 2 != 0 {
        return Err(format!("metric '{name}' has an odd label array"));
    }
    let mut labels = Vec::with_capacity(arr.len() / 2);
    for pair in arr.chunks(2) {
        let k = pair[0].as_str().ok_or("non-string label key")?;
        let val = pair[1].as_str().ok_or("non-string label value")?;
        labels.push((k.to_string(), val.to_string()));
    }
    Ok(MetricKey { name, labels })
}

fn decode_series(v: &Value, key: &str) -> Result<Vec<(MetricKey, u64)>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("metrics snapshot missing '{key}'"))?
        .iter()
        .map(|s| Ok((decode_key(s)?, field_u64(s, "value")?)))
        .collect()
}

fn decode_snapshot(v: &Value) -> Result<Snapshot, String> {
    let mut histograms = Vec::new();
    for s in v
        .get("histograms")
        .and_then(Value::as_arr)
        .ok_or("metrics snapshot missing 'histograms'")?
    {
        let buckets: Vec<u64> = s
            .get("buckets")
            .and_then(Value::as_arr)
            .ok_or("histogram missing 'buckets'")?
            .iter()
            .map(|x| x.as_u64().ok_or_else(|| "bad bucket count".to_string()))
            .collect::<Result<_, _>>()?;
        let hist = Log2Histogram::from_buckets(&buckets)
            .ok_or_else(|| format!("histogram has {} buckets", buckets.len()))?;
        histograms.push((
            decode_key(s)?,
            HistogramSnapshot {
                hist,
                sum: field_u64(s, "sum")?,
            },
        ));
    }
    Ok(Snapshot {
        counters: decode_series(v, "counters")?,
        gauges: decode_series(v, "gauges")?,
        histograms,
    })
}

fn parse_versioned(line: &str) -> Result<Value, String> {
    let v = json::parse(line.trim())?;
    match v.get("v").and_then(Value::as_str) {
        Some(VERSION) => Ok(v),
        Some(other) => Err(format!("unsupported protocol version '{other}'")),
        None => Err("message missing protocol version 'v'".to_string()),
    }
}

fn field_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("message missing string '{key}'"))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("message missing number '{key}'"))
}

fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("message missing number '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SweepGrid {
        SweepGrid {
            traces: vec!["specint.mcf.07".into(), "client.octane.00".into()],
            llcs: vec!["base-victim".into(), "uncompressed".into()],
            policies: vec!["nru".into()],
            llc_mb: 2,
            ways: 16,
            warmup: 1000,
            insts: 2000,
        }
    }

    #[test]
    fn every_request_kind_round_trips() {
        let requests = vec![
            Request::Submit {
                grid: grid(),
                wait: true,
            },
            Request::Submit {
                grid: grid(),
                wait: false,
            },
            Request::Status,
            Request::Stream { ticket: 7 },
            Request::Cancel { ticket: 9 },
            Request::KillWorker { worker: 3 },
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one line per message: {line}");
            let back = Request::parse_line(&line).expect("parse");
            assert_eq!(back, req, "round trip failed for {line}");
        }
    }

    #[test]
    fn every_response_kind_round_trips() {
        let responses = vec![
            Response::Submitted {
                ticket: 1,
                jobs: 4,
                fresh: 2,
                journaled: 1,
                merged: 1,
            },
            Response::Result(ResultRow {
                ticket: 1,
                seq: 0,
                trace: "specint.mcf.07".into(),
                llc: "base-victim".into(),
                policy: "nru".into(),
                hash: "00ff00ff00ff00ff".into(),
                ipc: 1.25,
                llc_hit_rate: 0.5,
                comp_ratio: 1.75,
                instructions: 2000,
                wall_secs: 0.125,
                worker: 2,
                attempt: 1,
                source: "simulated".into(),
                trace_id: "00000001-00ff00ff".into(),
            }),
            Response::Done(DoneSummary {
                ticket: 1,
                jobs: 4,
                simulated: 2,
                journaled: 1,
                merged: 1,
                failed: 0,
                canceled: false,
            }),
            Response::Done(DoneSummary {
                ticket: 2,
                jobs: 4,
                simulated: 0,
                journaled: 0,
                merged: 0,
                failed: 1,
                canceled: true,
            }),
            Response::Status(StatusInfo {
                workers: 4,
                alive: 3,
                pending: 10,
                running: 3,
                done: 20,
                failed: 1,
                tickets: 5,
                crashes: 1,
                retries: 2,
                per_worker_done: vec![5, 7, 8, 0],
                p50_ms: 120,
                p95_ms: 500,
                p99_ms: 900,
            }),
            {
                // A metrics snapshot built through a real registry, so
                // the wire shape tracks whatever the registry produces.
                let reg = bv_metrics::Registry::new();
                reg.counter("jobs_completed_total", &[("source", "simulated")])
                    .add(4);
                reg.counter(
                    "client_requests_total",
                    &[("tenant", "127.0.0.1"), ("kind", "submit")],
                )
                .inc();
                reg.gauge("queue_depth", &[]).set(3);
                let h = reg.histogram("job_total_ms", &[]);
                h.observe(12);
                h.observe(900);
                Response::Metrics(reg.snapshot())
            },
            Response::Ok {
                info: "worker 3 armed".into(),
            },
            Response::Error {
                error: "unknown ticket 42".into(),
            },
        ];
        for resp in responses {
            let line = resp.to_line();
            assert!(!line.contains('\n'), "one line per message: {line}");
            let back = Response::parse_line(&line).expect("parse");
            assert_eq!(back, resp, "round trip failed for {line}");
        }
    }

    #[test]
    fn version_is_enforced() {
        assert!(Request::parse_line("{\"kind\":\"status\"}")
            .unwrap_err()
            .contains("version"));
        let wrong = "{\"v\":\"bvsim-serve-v0\",\"kind\":\"status\"}";
        assert!(Request::parse_line(wrong).unwrap_err().contains("v0"));
        assert!(Response::parse_line(wrong).is_err());
    }

    #[test]
    fn unknown_kinds_are_rejected() {
        let line = format!("{{\"v\":{:?},\"kind\":\"frobnicate\"}}", VERSION);
        assert!(Request::parse_line(&line)
            .unwrap_err()
            .contains("frobnicate"));
        assert!(Response::parse_line(&line)
            .unwrap_err()
            .contains("frobnicate"));
    }

    #[test]
    fn grid_plans_the_cartesian_product_once() {
        let jobs = grid().plan().expect("plan");
        assert_eq!(jobs.len(), 4, "2 traces x 2 llcs x 1 policy");
        let mut doubled = grid();
        doubled.traces.push("specint.mcf.07".into());
        assert_eq!(
            doubled.plan().expect("plan").len(),
            4,
            "duplicates collapse"
        );
        for job in &jobs {
            assert_eq!(job.warmup, 1000);
            assert_eq!(job.insts, 2000);
            assert_eq!(job.cfg.llc.size_bytes(), 2 * 1024 * 1024);
        }
    }

    #[test]
    fn grid_rejects_unknown_names() {
        let mut bad = grid();
        bad.llcs = vec!["warp-drive".into()];
        assert!(bad.plan().unwrap_err().contains("warp-drive"));
        let mut bad = grid();
        bad.policies = vec!["mru".into()];
        assert!(bad.plan().unwrap_err().contains("mru"));
        let mut bad = grid();
        bad.traces.clear();
        assert!(bad.plan().is_err());
    }
}
