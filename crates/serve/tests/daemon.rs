//! End-to-end daemon tests over real TCP connections: cross-client
//! dedup, worker-crash recovery, journal-backed restart, and cancel.

use bv_serve::{client, Daemon, Request, Response, ResultRow, ServeConfig, SweepGrid};
use bv_trace::TraceRegistry;
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bv-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn start(journal: PathBuf, workers: usize) -> Daemon {
    Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        journal,
        timeout: Duration::from_secs(120),
        retries: 2,
        port_file: None,
        spans: None,
        metrics: true,
        metrics_port: None,
    })
    .expect("start daemon")
}

fn trace_names(n: usize) -> Vec<String> {
    TraceRegistry::paper_default()
        .all()
        .take(n)
        .map(|t| t.name.clone())
        .collect()
}

fn tiny_grid(traces: Vec<String>) -> SweepGrid {
    SweepGrid {
        traces,
        llcs: vec!["uncompressed".into(), "base-victim".into()],
        policies: vec!["nru".into()],
        llc_mb: 2,
        ways: 16,
        warmup: 1_000,
        insts: 2_000,
    }
}

fn shutdown(addr: &str) {
    match client::control(addr, &Request::Shutdown).expect("shutdown request") {
        Response::Ok { .. } => {}
        other => panic!("shutdown rejected: {other:?}"),
    }
}

fn runs_lines(journal: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(journal.join("runs.jsonl")).unwrap_or_default();
    text.lines().map(str::to_string).collect()
}

#[test]
fn concurrent_overlapping_sweeps_simulate_each_config_once() {
    let dir = tmp_dir("overlap");
    let journal = dir.join("journal");
    let daemon = start(journal.clone(), 3);
    let addr = daemon.addr().to_string();

    // Grids A (traces 0,1) and B (traces 1,2) overlap on trace 1: the
    // daemon must simulate the 2 shared configs once while both clients
    // receive them.
    let names = trace_names(3);
    let grid_a = tiny_grid(vec![names[0].clone(), names[1].clone()]);
    let grid_b = tiny_grid(vec![names[1].clone(), names[2].clone()]);

    let addr_b = addr.clone();
    let b = std::thread::spawn(move || {
        let mut rows: Vec<ResultRow> = Vec::new();
        let outcome =
            client::submit(&addr_b, &grid_b, true, |r| rows.push(r.clone())).expect("submit B");
        (outcome, rows)
    });
    let mut rows_a: Vec<ResultRow> = Vec::new();
    let outcome_a =
        client::submit(&addr, &grid_a, true, |r| rows_a.push(r.clone())).expect("submit A");
    let (outcome_b, rows_b) = b.join().expect("client B");

    // Each client sees its complete sweep.
    assert_eq!(outcome_a.jobs, 4);
    assert_eq!(outcome_b.jobs, 4);
    assert_eq!(rows_a.len(), 4, "client A misses rows: {rows_a:?}");
    assert_eq!(rows_b.len(), 4, "client B misses rows: {rows_b:?}");
    let done_a = outcome_a.done.expect("A streamed to completion");
    let done_b = outcome_b.done.expect("B streamed to completion");
    assert_eq!(done_a.failed + done_b.failed, 0);

    // The union is 6 unique configs; runs.jsonl must hold exactly one
    // simulation per config — no duplicates from the overlap.
    let unique: HashSet<&str> = rows_a
        .iter()
        .chain(&rows_b)
        .map(|r| r.hash.as_str())
        .collect();
    assert_eq!(unique.len(), 6);
    match client::control(&addr, &Request::Status).expect("status") {
        Response::Status(s) => {
            assert_eq!(s.done, 6, "status: {s:?}");
            assert_eq!(s.pending + s.running, 0);
            assert_eq!(s.crashes, 0);
            assert_eq!(s.tickets, 2);
        }
        other => panic!("unexpected status reply: {other:?}"),
    }
    shutdown(&addr);
    daemon.wait().expect("daemon exit");
    assert_eq!(runs_lines(&journal).len(), 6, "one journal line per config");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_jobs_requeue_and_sweep_completes() {
    let dir = tmp_dir("kill");
    let journal = dir.join("journal");
    let daemon = start(journal.clone(), 2);
    let addr = daemon.addr().to_string();

    // Arm worker 0 to panic after claiming its next job, BEFORE the
    // submit: the crash lands mid-sweep deterministically.
    match client::control(&addr, &Request::KillWorker { worker: 0 }).expect("arm kill") {
        Response::Ok { .. } => {}
        other => panic!("kill-worker rejected: {other:?}"),
    }

    let grid = tiny_grid(trace_names(2));
    let mut rows: Vec<ResultRow> = Vec::new();
    let outcome = client::submit(&addr, &grid, true, |r| rows.push(r.clone())).expect("submit");
    let done = outcome.done.expect("streamed to completion");

    // Zero lost: all 4 configs complete despite the crash.
    assert_eq!(rows.len(), 4, "lost jobs after worker crash: {rows:?}");
    assert_eq!(done.failed, 0);
    // The re-queued job records attempt 2 (first claim died).
    assert!(
        rows.iter().any(|r| r.attempt >= 2),
        "expected a retried job: {rows:?}"
    );
    match client::control(&addr, &Request::Status).expect("status") {
        Response::Status(s) => {
            assert_eq!(s.crashes, 1, "status: {s:?}");
            assert!(s.retries >= 1);
            assert_eq!(s.done, 4);
            assert!(s.workers >= 3, "a replacement worker was spawned: {s:?}");
            assert!(s.alive >= 2);
        }
        other => panic!("unexpected status reply: {other:?}"),
    }
    shutdown(&addr);
    daemon.wait().expect("daemon exit");
    // Zero duplicates: exactly one runs.jsonl line per unique config.
    let lines = runs_lines(&journal);
    assert_eq!(lines.len(), 4, "duplicate or lost journal lines: {lines:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_restart_resimulates_nothing_journaled() {
    let dir = tmp_dir("restart");
    let journal = dir.join("journal");
    let grid = tiny_grid(trace_names(2));

    let daemon = start(journal.clone(), 2);
    let addr = daemon.addr().to_string();
    let outcome = client::submit(&addr, &grid, true, |_| {}).expect("first submit");
    assert_eq!(outcome.fresh, 4);
    assert_eq!(outcome.journaled, 0);
    shutdown(&addr);
    daemon.wait().expect("first daemon exit");

    // Same journal, fresh process: every config is served from disk.
    let daemon = start(journal.clone(), 2);
    let addr = daemon.addr().to_string();
    let mut rows: Vec<ResultRow> = Vec::new();
    let outcome =
        client::submit(&addr, &grid, true, |r| rows.push(r.clone())).expect("second submit");
    assert_eq!(outcome.fresh, 0, "restart re-queued journaled work");
    assert_eq!(outcome.journaled, 4);
    let done = outcome.done.expect("streamed");
    assert_eq!(done.simulated, 0, "restart re-simulated journaled work");
    assert_eq!(done.journaled, 4);
    assert!(rows.iter().all(|r| r.source == "journal"), "{rows:?}");
    shutdown(&addr);
    daemon.wait().expect("second daemon exit");
    // The journal still holds exactly the original 4 simulations.
    assert_eq!(runs_lines(&journal).len(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One HTTP/1.0 scrape of `GET /metrics` against the daemon's
/// exposition endpoint; returns the response body.
fn scrape(addr: std::net::SocketAddr) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect /metrics");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("send scrape");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read scrape");
    let (head, body) = text.split_once("\r\n\r\n").expect("http response split");
    assert!(head.starts_with("HTTP/1.0 200"), "scrape failed: {head}");
    body.to_string()
}

#[test]
fn metrics_and_trace_ids_flow_through_protocol_and_http() {
    let dir = tmp_dir("metrics");
    let daemon = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        journal: dir.join("journal"),
        timeout: Duration::from_secs(120),
        retries: 2,
        port_file: None,
        spans: None,
        metrics: true,
        metrics_port: Some(0),
    })
    .expect("start daemon");
    let addr = daemon.addr().to_string();
    let http = daemon.metrics_addr().expect("metrics endpoint bound");

    let names = trace_names(3);
    let mut rows: Vec<ResultRow> = Vec::new();
    let outcome = client::submit(
        &addr,
        &tiny_grid(vec![names[0].clone(), names[1].clone()]),
        true,
        |r| {
            rows.push(r.clone());
        },
    )
    .expect("submit");
    assert_eq!(rows.len(), 4);

    // Every row carries a trace id minted at submit, unique per job and
    // joinable to the job identity (its tail is the low hash bits).
    let ids: HashSet<&str> = rows.iter().map(|r| r.trace_id.as_str()).collect();
    assert_eq!(ids.len(), 4, "trace ids must be unique: {rows:?}");
    for r in &rows {
        let (seq, tail) = r.trace_id.split_once('-').expect("trace id shape");
        assert_eq!(seq.len(), 6, "bad trace id {:?}", r.trace_id);
        assert_eq!(
            tail,
            &r.hash[8..],
            "trace id tail must be the low hash bits"
        );
    }

    // The protocol snapshot and the HTTP exposition must agree.
    let snap = client::metrics(&addr).expect("metrics snapshot");
    assert_eq!(snap.counter("jobs_completed_total"), 4);
    assert_eq!(snap.counter("rows_streamed_total"), 4);
    assert_eq!(snap.counter("tickets_opened_total"), 1);
    assert_eq!(snap.gauge("workers_alive"), 2);
    assert_eq!(snap.gauge("queue_depth"), 0);
    let h = snap
        .histogram("job_total_ms")
        .expect("job latency histogram");
    assert_eq!(h.hist.count(), 4);
    let body = scrape(http);
    assert!(
        body.contains("jobs_completed_total{source=\"simulated\"} 4"),
        "exposition missing completions:\n{body}"
    );
    assert!(body.contains("# TYPE job_total_ms histogram"), "{body}");
    assert!(
        body.contains("client_requests_total{kind=\"submit-sweep\",tenant=\"127.0.0.1\"} 1"),
        "exposition missing tenant counters:\n{body}"
    );

    // Status percentiles come from the same histogram and are monotone.
    match client::control(&addr, &Request::Status).expect("status") {
        Response::Status(s) => {
            assert!(
                s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms,
                "status: {s:?}"
            );
        }
        other => panic!("unexpected status reply: {other:?}"),
    }

    // Scrape-twice delta: more work moves the counters, and the second
    // snapshot's delta against the first counts exactly the new jobs.
    client::submit(&addr, &tiny_grid(vec![names[2].clone()]), true, |_| {}).expect("submit 2");
    let snap2 = client::metrics(&addr).expect("second snapshot");
    assert_eq!(snap2.counter_delta("jobs_completed_total", &snap), 2);
    assert_eq!(snap2.counter("tickets_opened_total"), 2);
    let body2 = scrape(http);
    assert!(
        body2.contains("jobs_completed_total{source=\"simulated\"} 6"),
        "second scrape stale:\n{body2}"
    );

    let _ = outcome;
    shutdown(&addr);
    daemon.wait().expect("daemon exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_metrics_leave_snapshots_empty_but_serve_results() {
    let dir = tmp_dir("nometrics");
    let daemon = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        journal: dir.join("journal"),
        timeout: Duration::from_secs(120),
        retries: 2,
        port_file: None,
        spans: None,
        metrics: false,
        metrics_port: None,
    })
    .expect("start daemon");
    let addr = daemon.addr().to_string();
    let outcome = client::submit(&addr, &tiny_grid(trace_names(1)), true, |_| {}).expect("submit");
    assert_eq!(outcome.done.expect("streamed").simulated, 2);
    let snap = client::metrics(&addr).expect("metrics snapshot");
    assert_eq!(snap.counter("jobs_completed_total"), 0);
    assert!(snap.histogram("job_total_ms").is_none());
    match client::control(&addr, &Request::Status).expect("status") {
        Response::Status(s) => {
            assert_eq!((s.p50_ms, s.p95_ms, s.p99_ms), (0, 0, 0), "status: {s:?}");
            assert_eq!(s.done, 2);
        }
        other => panic!("unexpected status reply: {other:?}"),
    }
    shutdown(&addr);
    daemon.wait().expect("daemon exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_drops_pending_jobs_and_done_reports_it() {
    let dir = tmp_dir("cancel");
    let daemon = start(dir.join("journal"), 1);
    let addr = daemon.addr().to_string();

    // A wide grid on one worker guarantees pending jobs exist when the
    // cancel lands.
    let mut grid = tiny_grid(trace_names(8));
    grid.insts = 50_000;
    let outcome = client::submit(&addr, &grid, false, |_| {}).expect("submit");
    assert_eq!(outcome.done, None, "no-wait submit returns immediately");
    match client::control(
        &addr,
        &Request::Cancel {
            ticket: outcome.ticket,
        },
    )
    .expect("cancel")
    {
        Response::Ok { info } => assert!(info.contains("canceled"), "{info}"),
        other => panic!("cancel rejected: {other:?}"),
    }
    let done = client::watch(&addr, outcome.ticket, |_| {}).expect("watch canceled ticket");
    assert!(done.canceled);
    assert!(
        done.simulated < outcome.jobs,
        "cancel should skip pending jobs: {done:?}"
    );
    // Unknown tickets are rejected cleanly.
    assert!(client::watch(&addr, 999, |_| {}).is_err());
    shutdown(&addr);
    daemon.wait().expect("daemon exit");
    let _ = std::fs::remove_dir_all(&dir);
}
