//! End-to-end daemon tests over real TCP connections: cross-client
//! dedup, worker-crash recovery, journal-backed restart, and cancel.

use bv_serve::{client, Daemon, Request, Response, ResultRow, ServeConfig, SweepGrid};
use bv_trace::TraceRegistry;
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bv-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn start(journal: PathBuf, workers: usize) -> Daemon {
    Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        journal,
        timeout: Duration::from_secs(120),
        retries: 2,
        port_file: None,
        spans: None,
    })
    .expect("start daemon")
}

fn trace_names(n: usize) -> Vec<String> {
    TraceRegistry::paper_default()
        .all()
        .take(n)
        .map(|t| t.name.clone())
        .collect()
}

fn tiny_grid(traces: Vec<String>) -> SweepGrid {
    SweepGrid {
        traces,
        llcs: vec!["uncompressed".into(), "base-victim".into()],
        policies: vec!["nru".into()],
        llc_mb: 2,
        ways: 16,
        warmup: 1_000,
        insts: 2_000,
    }
}

fn shutdown(addr: &str) {
    match client::control(addr, &Request::Shutdown).expect("shutdown request") {
        Response::Ok { .. } => {}
        other => panic!("shutdown rejected: {other:?}"),
    }
}

fn runs_lines(journal: &std::path::Path) -> Vec<String> {
    let text = std::fs::read_to_string(journal.join("runs.jsonl")).unwrap_or_default();
    text.lines().map(str::to_string).collect()
}

#[test]
fn concurrent_overlapping_sweeps_simulate_each_config_once() {
    let dir = tmp_dir("overlap");
    let journal = dir.join("journal");
    let daemon = start(journal.clone(), 3);
    let addr = daemon.addr().to_string();

    // Grids A (traces 0,1) and B (traces 1,2) overlap on trace 1: the
    // daemon must simulate the 2 shared configs once while both clients
    // receive them.
    let names = trace_names(3);
    let grid_a = tiny_grid(vec![names[0].clone(), names[1].clone()]);
    let grid_b = tiny_grid(vec![names[1].clone(), names[2].clone()]);

    let addr_b = addr.clone();
    let b = std::thread::spawn(move || {
        let mut rows: Vec<ResultRow> = Vec::new();
        let outcome =
            client::submit(&addr_b, &grid_b, true, |r| rows.push(r.clone())).expect("submit B");
        (outcome, rows)
    });
    let mut rows_a: Vec<ResultRow> = Vec::new();
    let outcome_a =
        client::submit(&addr, &grid_a, true, |r| rows_a.push(r.clone())).expect("submit A");
    let (outcome_b, rows_b) = b.join().expect("client B");

    // Each client sees its complete sweep.
    assert_eq!(outcome_a.jobs, 4);
    assert_eq!(outcome_b.jobs, 4);
    assert_eq!(rows_a.len(), 4, "client A misses rows: {rows_a:?}");
    assert_eq!(rows_b.len(), 4, "client B misses rows: {rows_b:?}");
    let done_a = outcome_a.done.expect("A streamed to completion");
    let done_b = outcome_b.done.expect("B streamed to completion");
    assert_eq!(done_a.failed + done_b.failed, 0);

    // The union is 6 unique configs; runs.jsonl must hold exactly one
    // simulation per config — no duplicates from the overlap.
    let unique: HashSet<&str> = rows_a
        .iter()
        .chain(&rows_b)
        .map(|r| r.hash.as_str())
        .collect();
    assert_eq!(unique.len(), 6);
    match client::control(&addr, &Request::Status).expect("status") {
        Response::Status(s) => {
            assert_eq!(s.done, 6, "status: {s:?}");
            assert_eq!(s.pending + s.running, 0);
            assert_eq!(s.crashes, 0);
            assert_eq!(s.tickets, 2);
        }
        other => panic!("unexpected status reply: {other:?}"),
    }
    shutdown(&addr);
    daemon.wait().expect("daemon exit");
    assert_eq!(runs_lines(&journal).len(), 6, "one journal line per config");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_jobs_requeue_and_sweep_completes() {
    let dir = tmp_dir("kill");
    let journal = dir.join("journal");
    let daemon = start(journal.clone(), 2);
    let addr = daemon.addr().to_string();

    // Arm worker 0 to panic after claiming its next job, BEFORE the
    // submit: the crash lands mid-sweep deterministically.
    match client::control(&addr, &Request::KillWorker { worker: 0 }).expect("arm kill") {
        Response::Ok { .. } => {}
        other => panic!("kill-worker rejected: {other:?}"),
    }

    let grid = tiny_grid(trace_names(2));
    let mut rows: Vec<ResultRow> = Vec::new();
    let outcome = client::submit(&addr, &grid, true, |r| rows.push(r.clone())).expect("submit");
    let done = outcome.done.expect("streamed to completion");

    // Zero lost: all 4 configs complete despite the crash.
    assert_eq!(rows.len(), 4, "lost jobs after worker crash: {rows:?}");
    assert_eq!(done.failed, 0);
    // The re-queued job records attempt 2 (first claim died).
    assert!(
        rows.iter().any(|r| r.attempt >= 2),
        "expected a retried job: {rows:?}"
    );
    match client::control(&addr, &Request::Status).expect("status") {
        Response::Status(s) => {
            assert_eq!(s.crashes, 1, "status: {s:?}");
            assert!(s.retries >= 1);
            assert_eq!(s.done, 4);
            assert!(s.workers >= 3, "a replacement worker was spawned: {s:?}");
            assert!(s.alive >= 2);
        }
        other => panic!("unexpected status reply: {other:?}"),
    }
    shutdown(&addr);
    daemon.wait().expect("daemon exit");
    // Zero duplicates: exactly one runs.jsonl line per unique config.
    let lines = runs_lines(&journal);
    assert_eq!(lines.len(), 4, "duplicate or lost journal lines: {lines:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_restart_resimulates_nothing_journaled() {
    let dir = tmp_dir("restart");
    let journal = dir.join("journal");
    let grid = tiny_grid(trace_names(2));

    let daemon = start(journal.clone(), 2);
    let addr = daemon.addr().to_string();
    let outcome = client::submit(&addr, &grid, true, |_| {}).expect("first submit");
    assert_eq!(outcome.fresh, 4);
    assert_eq!(outcome.journaled, 0);
    shutdown(&addr);
    daemon.wait().expect("first daemon exit");

    // Same journal, fresh process: every config is served from disk.
    let daemon = start(journal.clone(), 2);
    let addr = daemon.addr().to_string();
    let mut rows: Vec<ResultRow> = Vec::new();
    let outcome =
        client::submit(&addr, &grid, true, |r| rows.push(r.clone())).expect("second submit");
    assert_eq!(outcome.fresh, 0, "restart re-queued journaled work");
    assert_eq!(outcome.journaled, 4);
    let done = outcome.done.expect("streamed");
    assert_eq!(done.simulated, 0, "restart re-simulated journaled work");
    assert_eq!(done.journaled, 4);
    assert!(rows.iter().all(|r| r.source == "journal"), "{rows:?}");
    shutdown(&addr);
    daemon.wait().expect("second daemon exit");
    // The journal still holds exactly the original 4 simulations.
    assert_eq!(runs_lines(&journal).len(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_drops_pending_jobs_and_done_reports_it() {
    let dir = tmp_dir("cancel");
    let daemon = start(dir.join("journal"), 1);
    let addr = daemon.addr().to_string();

    // A wide grid on one worker guarantees pending jobs exist when the
    // cancel lands.
    let mut grid = tiny_grid(trace_names(8));
    grid.insts = 50_000;
    let outcome = client::submit(&addr, &grid, false, |_| {}).expect("submit");
    assert_eq!(outcome.done, None, "no-wait submit returns immediately");
    match client::control(
        &addr,
        &Request::Cancel {
            ticket: outcome.ticket,
        },
    )
    .expect("cancel")
    {
        Response::Ok { info } => assert!(info.contains("canceled"), "{info}"),
        other => panic!("cancel rejected: {other:?}"),
    }
    let done = client::watch(&addr, outcome.ticket, |_| {}).expect("watch canceled ticket");
    assert!(done.canceled);
    assert!(
        done.simulated < outcome.jobs,
        "cancel should skip pending jobs: {done:?}"
    );
    // Unknown tickets are rejected cleanly.
    assert!(client::watch(&addr, 999, |_| {}).is_err());
    shutdown(&addr);
    daemon.wait().expect("daemon exit");
    let _ = std::fs::remove_dir_all(&dir);
}
