//! The experiment orchestrator: plans a job set (deduplicating and
//! consulting the checkpoint journal), executes the remainder on the
//! work-stealing pool, and retains every result in a thread-safe store
//! for the reporting code to read back.

use crate::job::JobSpec;
use crate::journal::{JobTiming, Journal};
use crate::pool;
use crate::spans::{Span, SpanLog};
use bv_sim::{RunResult, SimTelemetry, System};
use bv_trace::synth::WorkloadSpec;
use bv_trace::TraceRegistry;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What one `execute` call did, for progress reporting and for the
/// resume tests ("a resumed sweep re-simulates zero journaled configs").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Jobs submitted, including duplicates.
    pub requested: usize,
    /// Distinct configurations after deduplication.
    pub unique: usize,
    /// Served from the in-memory store (earlier figures this process).
    pub from_memory: usize,
    /// Served from on-disk checkpoints (a previous, interrupted sweep).
    pub from_journal: usize,
    /// Actually simulated by this call.
    pub simulated: usize,
    /// Scheduled but never started because the cancel flag
    /// ([`Runner::with_cancel`]) was raised mid-sweep. These jobs are
    /// absent from the store and journal; a `--resume` rerun picks them
    /// up.
    pub canceled: usize,
}

/// The orchestrator. One `Runner` is shared by a whole experiment suite;
/// it owns the in-memory result store, the optional on-disk journal, and
/// the worker-count policy.
pub struct Runner {
    workers: usize,
    journal: Option<Journal>,
    resume: bool,
    progress: bool,
    telemetry: Option<(PathBuf, u64)>,
    spans: Option<SpanLog>,
    cancel: Option<Arc<AtomicBool>>,
    store: Mutex<HashMap<u64, RunResult>>,
}

impl Runner {
    /// A runner with `workers` threads, no journal, no progress output.
    #[must_use]
    pub fn new(workers: usize) -> Runner {
        Runner {
            workers: workers.max(1),
            journal: None,
            resume: false,
            progress: false,
            telemetry: None,
            spans: None,
            cancel: None,
            store: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches a checkpoint journal. When `resume` is true, existing
    /// checkpoints satisfy jobs without re-simulation; when false, the
    /// journal is write-only (checkpoints are refreshed).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the journal directory cannot be opened.
    pub fn with_journal(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        resume: bool,
    ) -> std::io::Result<Runner> {
        self.journal = Some(Journal::open(dir)?);
        self.resume = resume;
        Ok(self)
    }

    /// Enables the live `completed/total` progress line on stderr.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Runner {
        self.progress = progress;
        self
    }

    /// Enables epoch-sampled telemetry: every *simulated* job writes a
    /// `bvsim-telemetry-v1` JSONL file named `<hash>.telemetry.jsonl`
    /// under `dir`, sampling every `epoch_insts` committed instructions.
    /// Jobs satisfied from the store or (under resume) the journal are
    /// not re-simulated and therefore write no telemetry.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if `dir` cannot be created.
    pub fn with_telemetry(
        mut self,
        dir: impl Into<PathBuf>,
        epoch_insts: u64,
    ) -> std::io::Result<Runner> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        self.telemetry = Some((dir, epoch_insts));
        Ok(self)
    }

    /// Enables per-job wall-clock span recording. Each simulated job
    /// (not store or journal hits — those cost no wall time worth a
    /// track) contributes one [`Span`]; collect them afterwards with
    /// [`Runner::take_spans`] and export via
    /// [`chrome_trace_json`](crate::chrome_trace_json)
    /// (`bvsim sweep --spans`).
    #[must_use]
    pub fn with_spans(mut self) -> Runner {
        self.spans = Some(SpanLog::new());
        self
    }

    /// Removes and returns the spans recorded so far, ordered by start
    /// time. Empty when span recording is not enabled.
    #[must_use]
    pub fn take_spans(&self) -> Vec<Span> {
        self.spans.as_ref().map(SpanLog::take).unwrap_or_default()
    }

    /// Attaches a cooperative cancel flag (the Ctrl-C path): once some
    /// other thread — typically a signal handler — sets it, workers stop
    /// dequeuing new jobs. In-flight jobs run to completion and are
    /// checkpointed normally, so the journal stays resumable; jobs never
    /// started are counted in [`ExecutionReport::canceled`].
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Runner {
        self.cancel = Some(flag);
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The journal, if one is attached.
    #[must_use]
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// A result already in the in-memory store.
    #[must_use]
    pub fn get(&self, job: &JobSpec) -> Option<RunResult> {
        self.store
            .lock()
            .expect("result store")
            .get(&job.stable_hash())
            .cloned()
    }

    /// Runs one job synchronously on the calling thread, consulting the
    /// store and journal first — the serial path for ad-hoc lookups
    /// outside a planned sweep. Results land in the store and journal
    /// exactly as parallel ones do.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not in `registry`.
    pub fn run_one(&self, registry: &TraceRegistry, job: &JobSpec) -> RunResult {
        if let Some(hit) = self.get(job) {
            return hit;
        }
        if self.resume {
            if let Some(hit) = self.journal.as_ref().and_then(|j| j.load(job)) {
                self.insert(job, hit.clone());
                return hit;
            }
        }
        let workload = registry
            .get(&job.trace)
            .unwrap_or_else(|| panic!("trace '{}' not in the registry", job.trace))
            .workload
            .clone();
        let t = Instant::now();
        let (result, telemetry) = self.simulate(job, &workload);
        if let Some(log) = &self.spans {
            log.record(&span_label(job, &result), 0, t);
        }
        if let Some(j) = &self.journal {
            j.record(
                job,
                &result,
                JobTiming::sim_only(t.elapsed().as_secs_f64()),
                0,
                None,
                telemetry.as_deref(),
            );
        }
        self.insert(job, result.clone());
        result
    }

    /// Runs the simulation for one job, writing its telemetry file when
    /// sampling is enabled. Returns the result and the telemetry path
    /// that was actually written.
    fn simulate(&self, job: &JobSpec, workload: &WorkloadSpec) -> (RunResult, Option<PathBuf>) {
        let system = System::new(job.cfg);
        let Some((dir, epoch_insts)) = &self.telemetry else {
            let result = system.run_with_warmup(workload, job.warmup, job.insts);
            return (result, None);
        };
        let mut tel = SimTelemetry::new(*epoch_insts)
            .with_meta("trace", &job.trace)
            .with_meta("key", &job.key());
        let result = system.run_sampled(workload, job.warmup, job.insts, &mut tel);
        let tel = tel.with_meta("llc", result.llc_name);
        let path = dir.join(format!("{:016x}.telemetry.jsonl", job.stable_hash()));
        if let Err(e) = std::fs::write(&path, tel.into_report().to_jsonl()) {
            // Like a lost checkpoint, a lost telemetry file does not
            // fail the sweep.
            eprintln!("telemetry: failed to write {}: {e}", path.display());
            return (result, None);
        }
        (result, Some(path))
    }

    /// Plans and executes a batch: deduplicates, satisfies what it can
    /// from the store and (under resume) the journal, then simulates the
    /// rest across the worker pool. Afterwards every submitted job's
    /// result is available via [`Runner::get`].
    ///
    /// # Panics
    ///
    /// Panics if any job names a trace missing from `registry`.
    pub fn execute(&self, registry: &TraceRegistry, jobs: &[JobSpec]) -> ExecutionReport {
        let mut report = ExecutionReport {
            requested: jobs.len(),
            ..ExecutionReport::default()
        };

        // Deduplicate while preserving first-seen order, so equal-budget
        // sweeps schedule identically whether or not callers repeat jobs.
        let mut seen = HashMap::new();
        let mut to_run: Vec<JobSpec> = Vec::new();
        for job in jobs {
            let hash = job.stable_hash();
            if seen.insert(hash, ()).is_some() {
                continue;
            }
            report.unique += 1;
            if self.get(job).is_some() {
                report.from_memory += 1;
            } else if self.resume
                && self
                    .journal
                    .as_ref()
                    .and_then(|j| j.load(job))
                    .map(|hit| self.insert(job, hit))
                    .is_some()
            {
                report.from_journal += 1;
            } else {
                to_run.push(job.clone());
            }
        }
        if to_run.is_empty() {
            return report;
        }

        // Resolve workloads up front so missing traces fail before any
        // simulation time is spent.
        let resolved: Vec<(JobSpec, bv_trace::synth::WorkloadSpec)> = to_run
            .into_iter()
            .map(|job| {
                let spec = registry
                    .get(&job.trace)
                    .unwrap_or_else(|| panic!("trace '{}' not in the registry", job.trace));
                let workload = spec.workload.clone();
                (job, workload)
            })
            .collect();

        let total = resolved.len();
        let done = AtomicUsize::new(0);
        let t0 = Instant::now();
        let never = AtomicBool::new(false);
        let cancel: &AtomicBool = self.cancel.as_deref().unwrap_or(&never);
        let results = pool::parallel_map_cancelable(
            resolved,
            self.workers,
            cancel,
            |worker, _, (job, workload)| {
                let t = Instant::now();
                let (result, telemetry) = self.simulate(&job, &workload);
                let wall = t.elapsed().as_secs_f64();
                if let Some(log) = &self.spans {
                    log.record(&span_label(&job, &result), worker, t);
                }
                if let Some(j) = &self.journal {
                    j.record(
                        &job,
                        &result,
                        JobTiming::sim_only(wall),
                        worker,
                        None,
                        telemetry.as_deref(),
                    );
                }
                // Store immediately (not after the batch) so a panic or kill
                // elsewhere loses as little completed work as possible.
                self.insert(&job, result.clone());
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if self.progress {
                    progress_line(finished, total, t0.elapsed(), &job.trace);
                }
                (job, result)
            },
        );
        if self.progress {
            eprintln!();
        }
        debug_assert_eq!(results.len(), total);
        report.simulated = results.iter().filter(|slot| slot.is_some()).count();
        report.canceled = total - report.simulated;
        report
    }

    fn insert(&self, job: &JobSpec, result: RunResult) {
        self.store
            .lock()
            .expect("result store")
            .insert(job.stable_hash(), result);
    }
}

/// A span label short enough for a Perfetto track slice: the trace name
/// plus the organization that ran.
fn span_label(job: &JobSpec, result: &RunResult) -> String {
    format!("{} {}", job.trace, result.llc_name)
}

fn progress_line(done: usize, total: usize, elapsed: Duration, last_trace: &str) {
    let secs = elapsed.as_secs_f64();
    let rate = done as f64 / secs.max(1e-9);
    let eta = (total - done) as f64 / rate.max(1e-9);
    let mut err = std::io::stderr().lock();
    let _ = write!(
        err,
        "\r[sweep] {done}/{total} jobs  {rate:5.2} jobs/s  eta {eta:4.0}s  last {last_trace:<28}"
    );
    let _ = err.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use bv_sim::{LlcKind, SimConfig};

    fn tiny_job(trace: &str, kind: LlcKind) -> JobSpec {
        JobSpec::new(trace, SimConfig::single_thread(kind), 2_000, 4_000)
    }

    #[test]
    fn execute_deduplicates_and_caches() {
        let registry = TraceRegistry::paper_default();
        let trace = registry.all().next().expect("trace").name.clone();
        let runner = Runner::new(2);
        let job = tiny_job(&trace, LlcKind::Uncompressed);
        let jobs = vec![job.clone(), job.clone(), job.clone()];
        let r1 = runner.execute(&registry, &jobs);
        assert_eq!(r1.requested, 3);
        assert_eq!(r1.unique, 1);
        assert_eq!(r1.simulated, 1);
        let r2 = runner.execute(&registry, &jobs);
        assert_eq!(r2.from_memory, 1);
        assert_eq!(r2.simulated, 0);
        assert!(runner.get(&job).is_some());
    }

    #[test]
    fn run_one_matches_execute() {
        let registry = TraceRegistry::paper_default();
        let trace = registry.all().next().expect("trace").name.clone();
        let job = tiny_job(&trace, LlcKind::BaseVictim);
        let serial = Runner::new(1);
        let parallel = Runner::new(3);
        let a = serial.run_one(&registry, &job);
        parallel.execute(&registry, std::slice::from_ref(&job));
        let b = parallel.get(&job).expect("executed");
        assert_eq!(a, b);
    }
}
