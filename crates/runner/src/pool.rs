//! A work-stealing thread pool over `std::thread::scope`.
//!
//! The pool is shaped by the workload it serves: experiment jobs are
//! coarse (one full trace simulation each, milliseconds to minutes), the
//! job set is known up front, and no job spawns further jobs. That lets
//! the implementation stay small and obviously correct:
//!
//! * each worker owns a deque seeded round-robin with its share of jobs;
//! * a worker pops from the *front* of its own deque and, once empty,
//!   steals from the *back* of the fullest other deque;
//! * when every deque is empty the workers simply exit — no condition
//!   variables, because nothing produces new work.
//!
//! Per-pop mutex cost is nanoseconds against millisecond jobs, so plain
//! `Mutex<VecDeque>` deques lose nothing over lock-free Chase-Lev ones
//! while remaining `forbid(unsafe_code)`-friendly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on `workers` threads, returning results in
/// input order. `f` receives `(worker_index, item_index, item)`; the
/// worker index lets callers attribute output (e.g. a run journal's
/// `worker` field).
///
/// With `workers <= 1` the items run serially on the calling thread in
/// input order — byte-identical behavior to a plain loop, which the
/// determinism tests rely on.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (remaining jobs on other
/// workers still drain their current item).
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, usize, T) -> R + Sync,
{
    let never = AtomicBool::new(false);
    parallel_map_cancelable(items, workers, &never, f)
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect()
}

/// [`parallel_map`] with cooperative cancellation: workers re-check
/// `cancel` before dequeuing each item and stop *taking new work* once
/// it is set. In-flight items always run to completion (so their side
/// effects — checkpoints, journal lines — are never half-done); items
/// that were never started come back as `None`, preserving input order.
///
/// This is the Ctrl-C path for `bvsim sweep`: the signal handler sets
/// the flag, the pool drains its in-flight jobs, and the journal is left
/// resumable.
///
/// # Panics
///
/// Propagates the first panic raised by `f`, as [`parallel_map`] does.
pub fn parallel_map_cancelable<T, R, F>(
    items: Vec<T>,
    workers: usize,
    cancel: &AtomicBool,
    f: F,
) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, usize, T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        for (i, item) in items.into_iter().enumerate() {
            if cancel.load(Ordering::SeqCst) {
                out.push(None);
            } else {
                out.push(Some(f(0, i, item)));
            }
        }
        return out;
    }
    let workers = workers.min(n);

    // Seed the deques round-robin so every worker starts with local work.
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers]
            .lock()
            .expect("deque")
            .push_back((i, item));
    }

    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                if cancel.load(Ordering::SeqCst) {
                    break;
                }
                let job = pop_own(&deques[w]).or_else(|| steal(deques, w));
                match job {
                    Some((i, item)) => {
                        let r = f(w, i, item);
                        *slots[i].lock().expect("slot") = Some(r);
                    }
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot"))
        .collect()
}

fn pop_own<T>(deque: &Mutex<VecDeque<T>>) -> Option<T> {
    deque.lock().expect("deque").pop_front()
}

/// Steals from the back of the fullest foreign deque.
fn steal<T>(deques: &[Mutex<VecDeque<T>>], thief: usize) -> Option<T> {
    let victim = deques
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != thief)
        .max_by_key(|(_, d)| d.lock().expect("deque").len())?;
    victim.1.lock().expect("deque").pop_back()
}

/// The worker count to use when the caller expresses no preference: the
/// `BV_JOBS` environment variable if set and positive, else the machine's
/// available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    if let Some(n) = std::env::var("BV_JOBS").ok().and_then(|v| v.parse().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect(), 4, |_, _, x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_is_serial() {
        let order = Mutex::new(Vec::new());
        parallel_map((0..10).collect(), 1, |w, i, x: usize| {
            assert_eq!(w, 0);
            assert_eq!(i, x);
            order.lock().unwrap().push(x);
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 8, |_, _, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = parallel_map(vec![1, 2], 16, |_, _, x: i32| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn all_items_run_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = parallel_map((0..257).collect(), 7, |_, _, x: usize| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn cancel_stops_new_work_but_finishes_in_flight() {
        let cancel = AtomicBool::new(false);
        let started = AtomicUsize::new(0);
        let out = parallel_map_cancelable((0..64).collect(), 2, &cancel, |_, i, x: usize| {
            started.fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                // First item pulls the plug; everything already dequeued
                // still completes, nothing new starts afterwards.
                cancel.store(true, Ordering::SeqCst);
            }
            // Nonzero cost so the other worker cannot race through its
            // whole deque before the flag lands.
            std::thread::sleep(std::time::Duration::from_millis(1));
            x * 2
        });
        assert_eq!(out.len(), 64);
        let done = out.iter().filter(|s| s.is_some()).count();
        assert_eq!(done, started.load(Ordering::SeqCst));
        assert!(done < 64, "cancellation must skip some items");
        for (i, slot) in out.iter().enumerate() {
            if let Some(v) = slot {
                assert_eq!(*v, i * 2, "completed items keep input order");
            }
        }
    }

    #[test]
    fn cancel_before_start_runs_nothing() {
        let cancel = AtomicBool::new(true);
        let out = parallel_map_cancelable((0..8).collect(), 4, &cancel, |_, _, x: i32| x);
        assert!(out.iter().all(Option::is_none));
        // The serial path honors the flag identically.
        let out = parallel_map_cancelable((0..8).collect(), 1, &cancel, |_, _, x: i32| x);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn uneven_job_costs_complete() {
        // Front-loads expensive jobs on one deque; stealing must drain it.
        let out = parallel_map((0..32).collect(), 4, |_, _, x: u64| {
            if x.is_multiple_of(4) {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }
}
