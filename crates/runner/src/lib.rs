//! # bv-runner — parallel experiment orchestration
//!
//! The paper's evaluation (Section VI) is a wide Cartesian sweep:
//! ~100 traces crossed with LLC organizations, replacement policies, and
//! size/associativity variants. This crate owns the machinery that makes
//! such sweeps fast and restartable:
//!
//! * [`pool`] — a work-stealing thread pool over [`std::thread::scope`]
//!   that spreads `(trace, config)` jobs across every core;
//! * [`JobSpec`] — the unit of work, with a stable content-derived hash
//!   ([`JobSpec::stable_hash`]) that names its checkpoint;
//! * [`Journal`] — the on-disk checkpoint store (one JSON record per
//!   completed run, written atomically from worker threads) plus a JSONL
//!   observability stream and live progress line;
//! * [`Runner`] — the orchestrator tying those together: deduplicating
//!   job planning, journal-backed resume, and a thread-safe result store
//!   the reporting layer reads back;
//! * [`SpanLog`] + [`chrome_trace_json`] — opt-in per-job wall-clock
//!   spans ([`Runner::with_spans`]) exported in the Chrome trace-event
//!   format for Perfetto (`bvsim sweep --spans`).
//!
//! ## Determinism
//!
//! The simulator is a pure function of `(workload, config, budget)`;
//! jobs share no mutable state, so a parallel sweep produces results
//! bit-identical to the serial path regardless of worker count or
//! completion order. The integration tests assert this, and it is what
//! makes checkpoint/resume sound: a result loaded from the journal is
//! indistinguishable from one computed fresh.
//!
//! ## Example
//!
//! ```
//! use bv_runner::{JobSpec, Runner};
//! use bv_sim::{LlcKind, SimConfig};
//! use bv_trace::TraceRegistry;
//!
//! let registry = TraceRegistry::paper_default();
//! let trace = registry.all().next().unwrap().name.clone();
//! let jobs = vec![
//!     JobSpec::new(&trace, SimConfig::single_thread(LlcKind::Uncompressed), 1_000, 2_000),
//!     JobSpec::new(&trace, SimConfig::single_thread(LlcKind::BaseVictim), 1_000, 2_000),
//! ];
//! let runner = Runner::new(2);
//! let report = runner.execute(&registry, &jobs);
//! assert_eq!(report.simulated, 2);
//! let bv = runner.get(&jobs[1]).unwrap();
//! assert!(bv.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod journal;
pub mod pool;
mod runner;
mod spans;

pub use bv_telemetry::json;

pub use job::{fnv1a, JobSpec};
pub use journal::{JobTiming, Journal, RunsRecovery};
pub use runner::{ExecutionReport, Runner};
pub use spans::{chrome_trace_json, utilization_summary, Span, SpanLog};
