//! Per-job wall-clock spans and their Chrome trace-event export.
//!
//! A sweep's wall-clock behavior — worker imbalance, one straggler trace
//! serializing the tail, checkpoint hits collapsing a re-run — is
//! invisible in `runs.jsonl` aggregates. When enabled
//! ([`crate::Runner::with_spans`]), each worker records one [`Span`] per
//! simulated job; [`chrome_trace_json`] renders them in the Chrome
//! trace-event format (the `{"traceEvents":[...]}` object form), which
//! loads directly in Perfetto / `chrome://tracing` with one track per
//! worker.
//!
//! Spans measure the *orchestration*, not the simulation: timestamps are
//! host wall clock and differ run to run. They are deliberately kept out
//! of the deterministic journal records.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::ObjWriter;

/// One completed unit of wall-clock work on a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// What ran (trace + organization for simulation jobs).
    pub label: String,
    /// The worker thread that ran it (0 for the serial path).
    pub worker: usize,
    /// Start, in microseconds since the log's origin.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

impl Span {
    /// End, in microseconds since the log's origin.
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

/// A thread-safe span accumulator with a fixed time origin.
#[derive(Debug)]
pub struct SpanLog {
    t0: Instant,
    spans: Mutex<Vec<Span>>,
}

impl Default for SpanLog {
    fn default() -> SpanLog {
        SpanLog::new()
    }
}

impl SpanLog {
    /// An empty log whose time origin is now.
    #[must_use]
    pub fn new() -> SpanLog {
        SpanLog {
            t0: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Records a span that started at `start` and just ended.
    pub fn record(&self, label: &str, worker: usize, start: Instant) {
        let end = Instant::now();
        let span = Span {
            label: label.to_string(),
            worker,
            start_us: start.duration_since(self.t0).as_micros() as u64,
            dur_us: end.duration_since(start).as_micros() as u64,
        };
        self.spans.lock().expect("span log").push(span);
    }

    /// Removes and returns every recorded span, ordered by start time.
    #[must_use]
    pub fn take(&self) -> Vec<Span> {
        let mut spans = std::mem::take(&mut *self.spans.lock().expect("span log"));
        spans.sort_by_key(|s| s.start_us);
        spans
    }

    /// Recorded span count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span log").len()
    }

    /// Whether nothing is recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Renders spans as a Chrome trace-event JSON document (the
/// `{"traceEvents":[...]}` object form Perfetto accepts). Each span is a
/// complete (`"ph":"X"`) event; workers map to `tid` so each gets its
/// own track.
#[must_use]
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut events = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            events.push(',');
        }
        let mut ev = ObjWriter::new();
        ev.str("name", &s.label)
            .str("cat", "job")
            .str("ph", "X")
            .u64("ts", s.start_us)
            .u64("dur", s.dur_us)
            .u64("pid", 1)
            .u64("tid", s.worker as u64);
        events.push_str(&ev.finish());
    }
    events.push(']');
    let mut out = ObjWriter::new();
    out.raw("traceEvents", &events).str("displayTimeUnit", "ms");
    let mut text = out.finish();
    text.push('\n');
    text
}

/// One line summarizing worker utilization: total busy time against the
/// sweep's wall-clock span, per the workers that actually ran jobs.
#[must_use]
pub fn utilization_summary(spans: &[Span]) -> String {
    if spans.is_empty() {
        return "no spans recorded".to_string();
    }
    let wall = spans.iter().map(Span::end_us).max().unwrap_or(0).max(1);
    let mut per_worker: BTreeMap<usize, u64> = BTreeMap::new();
    for s in spans {
        *per_worker.entry(s.worker).or_default() += s.dur_us;
    }
    let busy: u64 = per_worker.values().sum();
    let workers = per_worker.len().max(1);
    format!(
        "{} span(s) on {} worker(s): wall {:.2}s, busy {:.2}s, utilization {:.0}%",
        spans.len(),
        workers,
        wall as f64 / 1e6,
        busy as f64 / 1e6,
        100.0 * busy as f64 / (wall as f64 * workers as f64)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    fn sample() -> Vec<Span> {
        vec![
            Span {
                label: "trace-a base-victim".to_string(),
                worker: 0,
                start_us: 0,
                dur_us: 1000,
            },
            Span {
                label: "trace-b uncompressed".to_string(),
                worker: 1,
                start_us: 100,
                dur_us: 700,
            },
        ]
    }

    #[test]
    fn chrome_trace_is_schema_valid() {
        let text = chrome_trace_json(&sample());
        let v = json::parse(text.trim()).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for ev in events {
            // The fields Perfetto requires of a complete event.
            assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
            assert!(ev.get("name").and_then(Value::as_str).is_some());
            assert!(ev.get("ts").and_then(Value::as_u64).is_some());
            assert!(ev.get("dur").and_then(Value::as_u64).is_some());
            assert!(ev.get("pid").and_then(Value::as_u64).is_some());
            assert!(ev.get("tid").and_then(Value::as_u64).is_some());
        }
        assert_eq!(events[1].get("tid").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn span_log_records_and_sorts() {
        let log = SpanLog::new();
        let t = Instant::now();
        log.record("b", 1, t);
        log.record("a", 0, t);
        assert_eq!(log.len(), 2);
        let spans = log.take();
        assert_eq!(spans.len(), 2);
        assert!(log.is_empty());
        assert!(spans.windows(2).all(|w| w[0].start_us <= w[1].start_us));
    }

    #[test]
    fn utilization_summary_counts_workers() {
        let s = utilization_summary(&sample());
        assert!(s.contains("2 span(s) on 2 worker(s)"), "{s}");
        assert_eq!(utilization_summary(&[]), "no spans recorded");
    }
}
