//! The persistent run journal: a checkpoint store (one JSON record per
//! completed run) plus an append-only JSONL observability stream.
//!
//! Layout under the journal directory (default `results/journal/`):
//!
//! * `<hash>.json` — one checkpoint per completed `(trace, config,
//!   budget)` job, written atomically (temp file + rename) from the
//!   worker thread that finished it, so a killed sweep loses at most the
//!   jobs that were in flight.
//! * `runs.jsonl` — one line per completed job with the headline metrics
//!   (IPC, hit rate, compression ratio, wall-clock, worker id), for
//!   tailing a live sweep and for post-hoc analysis.
//!
//! Checkpoints embed the full canonical job key and are validated
//! against it at load time, so a hash collision or a record from an
//! older incompatible schema is ignored (and re-simulated) rather than
//! trusted.
//!
//! ## Crash hardening
//!
//! `runs.jsonl` must survive its writer dying at any instant (Ctrl-C, a
//! killed worker process, a full disk):
//!
//! * appends are **line-atomic** — each record is rendered complete with
//!   its trailing newline and handed to the kernel in one `write_all`
//!   call on an `O_APPEND` handle, so concurrent writers and crashes can
//!   only ever leave a *trailing* partial line, never interleaved bytes;
//! * [`Journal::open`] runs a recovery scan before the first append: an
//!   unterminated trailing line is completed in place when it still
//!   parses (the writer died between `write` and nothing — the data is
//!   whole) or truncated away when it does not, and either way the event
//!   is reported via [`Journal::recovery`] instead of poisoning every
//!   later read of the stream.

use crate::job::JobSpec;
use crate::json::{self, ObjWriter};
use bv_compress::{CompressionStats, SEGMENTS_PER_LINE};
use bv_core::LlcStats;
use bv_sim::{DramStats, RunResult};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Schema version stamped into every record; bump when the serialized
/// shape changes so stale checkpoints are re-simulated, not misread.
const SCHEMA: u64 = 1;

/// Wall-clock phase split for one completed job: how long it waited
/// before a worker claimed it (zero outside serve mode, where jobs run
/// as soon as a pool thread is free) and how long the simulation itself
/// ran. `runs.jsonl` records both (`queue_ms` / `sim_ms`) so a slow row
/// can be attributed to a loaded daemon rather than a slow simulation;
/// `duration_ms` stays their sum for readers of the old single field.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JobTiming {
    /// Seconds spent queued, waiting for a worker claim.
    pub queue_secs: f64,
    /// Seconds the simulation ran on its worker.
    pub sim_secs: f64,
}

impl JobTiming {
    /// A timing with no queue phase — the plain-sweep path.
    #[must_use]
    pub fn sim_only(sim_secs: f64) -> JobTiming {
        JobTiming {
            queue_secs: 0.0,
            sim_secs,
        }
    }

    /// The queue phase in whole milliseconds.
    #[must_use]
    pub fn queue_ms(&self) -> u64 {
        (self.queue_secs * 1000.0).round() as u64
    }

    /// The simulation phase in whole milliseconds.
    #[must_use]
    pub fn sim_ms(&self) -> u64 {
        (self.sim_secs * 1000.0).round() as u64
    }
}

/// What the `runs.jsonl` recovery scan found (and did) when the journal
/// was opened. A previous writer dying mid-append leaves an unterminated
/// trailing line; recovery repairs or drops it so the stream stays
/// parseable line by line, and this report says which happened.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunsRecovery {
    /// Complete, parseable records in the stream after recovery.
    pub rows: usize,
    /// Complete lines that are not valid JSON. They are tolerated in
    /// place (skipped by readers), never deleted: mid-file damage is
    /// evidence worth keeping.
    pub corrupt: usize,
    /// The trailing line lacked its newline but still parsed as a full
    /// record; recovery terminated it in place, losing nothing.
    pub repaired_tail: bool,
    /// A torn (unterminated, unparseable) trailing line was truncated
    /// away; its bytes are reported here for the log.
    pub torn_tail: Option<String>,
}

impl RunsRecovery {
    /// True when the stream needed no intervention at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt == 0 && !self.repaired_tail && self.torn_tail.is_none()
    }

    /// A one-line human-readable summary of what recovery did, or `None`
    /// when the stream was clean.
    #[must_use]
    pub fn summary(&self) -> Option<String> {
        if self.is_clean() {
            return None;
        }
        let mut parts = Vec::new();
        if let Some(tail) = &self.torn_tail {
            let snippet: String = tail.chars().take(40).collect();
            parts.push(format!("dropped a torn trailing line ({snippet:?}…)"));
        }
        if self.repaired_tail {
            parts.push("completed an unterminated trailing line".to_string());
        }
        if self.corrupt > 0 {
            parts.push(format!("tolerating {} corrupt line(s)", self.corrupt));
        }
        Some(format!(
            "runs.jsonl recovery: {} ({} intact row(s) kept)",
            parts.join(", "),
            self.rows
        ))
    }
}

/// Scans `runs.jsonl` and fixes its tail: an unterminated final line is
/// completed when it parses and truncated when it does not. A missing
/// file is a clean (empty) stream.
fn recover_runs(path: &Path) -> std::io::Result<RunsRecovery> {
    let mut rec = RunsRecovery::default();
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(rec),
        Err(e) => return Err(e),
    };
    // Everything up to and including the last newline is the committed
    // prefix; anything after it is a tail some writer never finished.
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    if keep < bytes.len() {
        let tail = String::from_utf8_lossy(&bytes[keep..]).into_owned();
        if json::parse(tail.trim()).is_ok() {
            // The record is whole — only the newline went missing.
            let mut f = fs::OpenOptions::new().append(true).open(path)?;
            f.write_all(b"\n")?;
            rec.repaired_tail = true;
            rec.rows += 1;
        } else {
            fs::OpenOptions::new()
                .write(true)
                .open(path)?
                .set_len(keep as u64)?;
            rec.torn_tail = Some(tail);
        }
    }
    for line in String::from_utf8_lossy(&bytes[..keep]).lines() {
        if line.trim().is_empty() {
            continue;
        }
        if json::parse(line).is_ok() {
            rec.rows += 1;
        } else {
            rec.corrupt += 1;
        }
    }
    Ok(rec)
}

/// A journal directory handle. Thread-safe: checkpoint writes go to
/// distinct files, and the JSONL stream is serialized by a mutex.
pub struct Journal {
    dir: PathBuf,
    log: Mutex<fs::File>,
    recovery: RunsRecovery,
}

impl Journal {
    /// Opens (creating if needed) a journal directory, running the
    /// `runs.jsonl` torn-tail recovery scan before the first append.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory or the JSONL
    /// stream cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let runs = dir.join("runs.jsonl");
        let recovery = recover_runs(&runs)?;
        let log = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(runs)?;
        Ok(Journal {
            dir,
            log: Mutex::new(log),
            recovery,
        })
    }

    /// The journal directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the open-time `runs.jsonl` recovery scan found.
    #[must_use]
    pub fn recovery(&self) -> &RunsRecovery {
        &self.recovery
    }

    fn checkpoint_path(&self, job: &JobSpec) -> PathBuf {
        self.dir.join(format!("{:016x}.json", job.stable_hash()))
    }

    /// Loads the checkpointed result for `job`, if one exists and its
    /// embedded key matches exactly.
    #[must_use]
    pub fn load(&self, job: &JobSpec) -> Option<RunResult> {
        let text = fs::read_to_string(self.checkpoint_path(job)).ok()?;
        let v = json::parse(&text).ok()?;
        if v.get("schema")?.as_u64()? != SCHEMA || v.get("key")?.as_str()? != job.key() {
            return None;
        }
        decode_result(&v)
    }

    /// Checkpoints a completed run and appends its observability record.
    /// `telemetry` is the epoch-sampled JSONL file this run produced, if
    /// any; its path lands in the `runs.jsonl` line so analysis scripts
    /// can join a sweep row to its time series. `trace_id` is the serve
    /// daemon's per-job correlation id (absent for plain sweeps).
    /// I/O failures are reported to stderr but do not fail the sweep: a
    /// lost checkpoint only costs a future re-simulation.
    pub fn record(
        &self,
        job: &JobSpec,
        result: &RunResult,
        timing: JobTiming,
        worker: usize,
        trace_id: Option<&str>,
        telemetry: Option<&Path>,
    ) {
        let path = self.checkpoint_path(job);
        let tmp = path.with_extension("json.tmp");
        let body = encode_result(job, result);
        let write = fs::write(&tmp, &body).and_then(|()| fs::rename(&tmp, &path));
        if let Err(e) = write {
            eprintln!("journal: failed to checkpoint {}: {e}", path.display());
        }

        let mut line = ObjWriter::new();
        line.u64("schema", SCHEMA)
            .str("trace", &job.trace)
            .str("llc", result.llc_name)
            .str("key", &job.key())
            .str("hash", &format!("{:016x}", job.stable_hash()))
            .f64("ipc", result.ipc())
            .f64("llc_hit_rate", result.llc.hit_rate())
            .f64("comp_ratio", result.compression.mean_ratio())
            .u64("dram_reads", result.dram.reads)
            .u64("instructions", result.instructions)
            .f64("wall_secs", timing.sim_secs)
            .u64("duration_ms", timing.queue_ms() + timing.sim_ms())
            .u64("queue_ms", timing.queue_ms())
            .u64("sim_ms", timing.sim_ms())
            .u64("worker", worker as u64);
        if let Some(id) = trace_id {
            line.str("trace_id", id);
        }
        if let Some(path) = telemetry {
            line.str("telemetry", &path.display().to_string());
        }
        // Render the record complete with its newline and append it in a
        // single write_all on the O_APPEND handle: a crash can then only
        // ever leave a *trailing* partial line (which the open-time
        // recovery scan repairs), never a record split mid-stream.
        let mut rendered = line.finish();
        rendered.push('\n');
        let mut log = self.log.lock().expect("journal log");
        if let Err(e) = log.write_all(rendered.as_bytes()) {
            eprintln!("journal: failed to append runs.jsonl: {e}");
        }
    }

    /// The number of checkpoint records currently on disk.
    #[must_use]
    pub fn checkpoint_count(&self) -> usize {
        fs::read_dir(&self.dir).map_or(0, |entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.len() == 21 && name.ends_with(".json")
                })
                .count()
        })
    }
}

fn encode_result(job: &JobSpec, r: &RunResult) -> String {
    let llc = &r.llc;
    let mut llc_obj = ObjWriter::new();
    llc_obj
        .u64("base_hits", llc.base_hits)
        .u64("victim_hits", llc.victim_hits)
        .u64("read_misses", llc.read_misses)
        .u64("writeback_hits", llc.writeback_hits)
        .u64("writeback_misses", llc.writeback_misses)
        .u64("prefetch_fills", llc.prefetch_fills)
        .u64("prefetch_hits", llc.prefetch_hits)
        .u64("demand_fills", llc.demand_fills)
        .u64("memory_writes", llc.memory_writes)
        .u64("back_invalidations", llc.back_invalidations)
        .u64("migrations", llc.migrations)
        .u64("partner_evictions", llc.partner_evictions)
        .u64("victim_inserts", llc.victim_inserts)
        .u64("victim_insert_failures", llc.victim_insert_failures);
    let mut dram_obj = ObjWriter::new();
    dram_obj
        .u64("reads", r.dram.reads)
        .u64("writes", r.dram.writes)
        .u64("row_hits", r.dram.row_hits)
        .u64("row_misses", r.dram.row_misses);

    let mut out = ObjWriter::new();
    out.u64("schema", SCHEMA)
        .str("key", &job.key())
        .str("trace", &job.trace)
        .str("llc_name", r.llc_name)
        .u64("instructions", r.instructions)
        .u64("cycles", r.cycles)
        .raw("llc", &llc_obj.finish())
        .raw("dram", &dram_obj.finish())
        .u64_array("compression", &r.compression.histogram())
        .u64_array("level_hits", &r.level_hits);
    out.finish()
}

fn decode_result(v: &json::Value) -> Option<RunResult> {
    let llc = v.get("llc")?;
    let dram = v.get("dram")?;
    let hist = v.get("compression")?.as_arr()?;
    if hist.len() != SEGMENTS_PER_LINE {
        return None;
    }
    let mut histogram = [0u64; SEGMENTS_PER_LINE];
    for (slot, value) in histogram.iter_mut().zip(hist) {
        *slot = value.as_u64()?;
    }
    let levels = v.get("level_hits")?.as_arr()?;
    if levels.len() != 5 {
        return None;
    }
    let mut level_hits = [0u64; 5];
    for (slot, value) in level_hits.iter_mut().zip(levels) {
        *slot = value.as_u64()?;
    }
    Some(RunResult {
        llc_name: intern_llc_name(v.get("llc_name")?.as_str()?),
        instructions: v.get("instructions")?.as_u64()?,
        cycles: v.get("cycles")?.as_u64()?,
        llc: LlcStats {
            base_hits: llc.get("base_hits")?.as_u64()?,
            victim_hits: llc.get("victim_hits")?.as_u64()?,
            read_misses: llc.get("read_misses")?.as_u64()?,
            writeback_hits: llc.get("writeback_hits")?.as_u64()?,
            writeback_misses: llc.get("writeback_misses")?.as_u64()?,
            prefetch_fills: llc.get("prefetch_fills")?.as_u64()?,
            prefetch_hits: llc.get("prefetch_hits")?.as_u64()?,
            demand_fills: llc.get("demand_fills")?.as_u64()?,
            memory_writes: llc.get("memory_writes")?.as_u64()?,
            back_invalidations: llc.get("back_invalidations")?.as_u64()?,
            migrations: llc.get("migrations")?.as_u64()?,
            partner_evictions: llc.get("partner_evictions")?.as_u64()?,
            victim_inserts: llc.get("victim_inserts")?.as_u64()?,
            victim_insert_failures: llc.get("victim_insert_failures")?.as_u64()?,
        },
        compression: CompressionStats::from_histogram(histogram),
        dram: DramStats {
            reads: dram.get("reads")?.as_u64()?,
            writes: dram.get("writes")?.as_u64()?,
            row_hits: dram.get("row_hits")?.as_u64()?,
            row_misses: dram.get("row_misses")?.as_u64()?,
        },
        level_hits,
    })
}

/// Maps a deserialized organization name back to the `&'static str` the
/// live organizations use. Unknown names (from a future organization)
/// fall back to a leaked allocation — bounded by the number of distinct
/// names, not the number of records.
fn intern_llc_name(name: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "uncompressed",
        "two-tag",
        "two-tag-ecm",
        "base-victim",
        "base-victim-variant",
        "base-victim-ni",
        "base-victim-compressor",
        "vsc-2x",
        "dcc",
    ];
    if let Some(&k) = KNOWN.iter().find(|&&k| k == name) {
        return k;
    }
    use std::collections::HashSet;
    use std::sync::OnceLock;
    static EXTRA: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let extra = EXTRA.get_or_init(|| Mutex::new(HashSet::new()));
    let mut extra = extra.lock().expect("intern table");
    if let Some(&k) = extra.iter().find(|&&k| k == name) {
        return k;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    extra.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bv-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn recovery_is_clean_on_missing_and_intact_streams() {
        let dir = tmp_dir("clean");
        // Absent file: clean.
        let j = Journal::open(&dir).expect("open");
        assert!(j.recovery().is_clean());
        assert_eq!(j.recovery().rows, 0);
        drop(j);
        // Two intact lines: clean, counted.
        fs::write(dir.join("runs.jsonl"), "{\"a\":1}\n{\"a\":2}\n").expect("seed");
        let j = Journal::open(&dir).expect("reopen");
        assert!(j.recovery().is_clean());
        assert_eq!(j.recovery().rows, 2);
        assert!(j.recovery().summary().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_truncated_and_reported() {
        let dir = tmp_dir("torn");
        let runs = dir.join("runs.jsonl");
        fs::write(&runs, "{\"a\":1}\n{\"a\":2}\n{\"a\":3,\"tr").expect("seed");
        let j = Journal::open(&dir).expect("open");
        let rec = j.recovery();
        assert_eq!(rec.rows, 2);
        assert_eq!(rec.torn_tail.as_deref(), Some("{\"a\":3,\"tr"));
        assert!(!rec.repaired_tail);
        assert!(rec.summary().expect("summary").contains("torn"));
        // The stream is whole again: every remaining line parses.
        let text = fs::read_to_string(&runs).expect("read back");
        assert_eq!(text, "{\"a\":1}\n{\"a\":2}\n");
        // And the *next* open sees a clean stream.
        drop(j);
        let j = Journal::open(&dir).expect("reopen");
        assert!(j.recovery().is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unterminated_but_whole_tail_is_repaired_in_place() {
        let dir = tmp_dir("repair");
        let runs = dir.join("runs.jsonl");
        fs::write(&runs, "{\"a\":1}\n{\"a\":2}").expect("seed");
        let j = Journal::open(&dir).expect("open");
        let rec = j.recovery();
        assert_eq!(rec.rows, 2, "the whole tail record is kept");
        assert!(rec.repaired_tail);
        assert!(rec.torn_tail.is_none());
        let text = fs::read_to_string(&runs).expect("read back");
        assert_eq!(text, "{\"a\":1}\n{\"a\":2}\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_stream_corruption_is_tolerated_not_deleted() {
        let dir = tmp_dir("corrupt");
        let runs = dir.join("runs.jsonl");
        fs::write(&runs, "{\"a\":1}\nnot json at all\n{\"a\":2}\n").expect("seed");
        let j = Journal::open(&dir).expect("open");
        let rec = j.recovery();
        assert_eq!((rec.rows, rec.corrupt), (2, 1));
        assert!(rec.summary().expect("summary").contains("corrupt"));
        // Evidence preserved: the damaged line is still in the file.
        let text = fs::read_to_string(&runs).expect("read back");
        assert!(text.contains("not json at all"));
        let _ = fs::remove_dir_all(&dir);
    }
}
