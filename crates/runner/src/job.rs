//! Job identity: a `(trace, SimConfig, budget)` triple and its stable
//! hash, the key under which checkpoints are stored and deduplicated.

use bv_sim::SimConfig;
use std::fmt::Write as _;

/// One unit of schedulable work: simulate `trace` under `cfg` for
/// `warmup + insts` instructions.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Registry name of the trace to drive.
    pub trace: String,
    /// The full system configuration.
    pub cfg: SimConfig,
    /// Warmup instructions (excluded from measurement).
    pub warmup: u64,
    /// Measured instructions.
    pub insts: u64,
}

impl JobSpec {
    /// Creates a job.
    #[must_use]
    pub fn new(trace: impl Into<String>, cfg: SimConfig, warmup: u64, insts: u64) -> JobSpec {
        JobSpec {
            trace: trace.into(),
            cfg,
            warmup,
            insts,
        }
    }

    /// The canonical, human-readable identity string. Two jobs produce
    /// the same simulation result if and only if their keys are equal:
    /// every input the simulator consumes is spelled out, so changing a
    /// budget or any configuration knob changes the key (and therefore
    /// the checkpoint identity).
    #[must_use]
    pub fn key(&self) -> String {
        let c = &self.cfg;
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "trace={};warmup={};insts={};llc={:?};policy={};llc_geom={}x{}x{}",
            self.trace,
            self.warmup,
            self.insts,
            c.llc_kind,
            c.llc_policy.name(),
            c.llc.size_bytes(),
            c.llc.ways(),
            c.llc.line_bytes(),
        );
        let _ = write!(
            s,
            ";l1i={}x{};l1d={}x{};l2={}x{}",
            c.l1i.size_bytes(),
            c.l1i.ways(),
            c.l1d.size_bytes(),
            c.l1d.ways(),
            c.l2.size_bytes(),
            c.l2.ways(),
        );
        let _ = write!(
            s,
            ";core={}w{}rob{}l1_{}l2_{}llc{}",
            c.core.width,
            c.core.rob_size,
            c.core.l1_latency,
            c.core.l2_latency,
            c.core.llc_latency,
            c.extra_llc_latency,
        );
        let d = &c.dram;
        let _ = write!(
            s,
            ";dram={}ch{}bk{}row{}cl{}rcd{}rp{}ras{}bst{}div{}qw{}dw",
            d.channels,
            d.banks_per_channel,
            d.row_bytes,
            d.t_cl,
            d.t_rcd,
            d.t_rp,
            d.t_ras,
            d.t_burst,
            d.core_cycles_per_mem_cycle,
            d.queue_window,
            d.demand_window,
        );
        let _ = write!(s, ";pf={}", c.prefetch_degree);
        s
    }

    /// FNV-1a hash of [`JobSpec::key`]: the checkpoint filename stem.
    /// Records also store the full key, so an (astronomically unlikely)
    /// hash collision is detected at load time rather than silently
    /// returning the wrong run.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        fnv1a(self.key().as_bytes())
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, and stable across platforms and
/// compiler versions (unlike `DefaultHasher`, whose output may change
/// between Rust releases — a checkpoint store must not).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bv_sim::LlcKind;

    fn base_job() -> JobSpec {
        JobSpec::new(
            "specint.mcf.07",
            SimConfig::single_thread(LlcKind::Uncompressed),
            1000,
            2000,
        )
    }

    #[test]
    fn key_is_deterministic() {
        assert_eq!(base_job().key(), base_job().key());
        assert_eq!(base_job().stable_hash(), base_job().stable_hash());
    }

    #[test]
    fn every_knob_changes_the_key() {
        let base = base_job();
        let mut variants = vec![
            JobSpec {
                trace: "other".into(),
                ..base.clone()
            },
            JobSpec {
                warmup: 999,
                ..base.clone()
            },
            JobSpec {
                insts: 999,
                ..base.clone()
            },
        ];
        let mut cfg = base.cfg;
        cfg.llc_kind = LlcKind::BaseVictim;
        variants.push(JobSpec {
            cfg,
            ..base.clone()
        });
        let mut cfg = base.cfg;
        cfg.prefetch_degree += 1;
        variants.push(JobSpec {
            cfg,
            ..base.clone()
        });
        let mut cfg = base.cfg;
        cfg.llc_policy = bv_cache::PolicyKind::Lru;
        variants.push(JobSpec {
            cfg,
            ..base.clone()
        });
        variants.push(JobSpec {
            cfg: base.cfg.with_llc_size(4 * 1024 * 1024, 16),
            ..base.clone()
        });
        for v in variants {
            assert_ne!(v.key(), base.key(), "variant not distinguished: {v:?}");
            assert_ne!(v.stable_hash(), base.stable_hash());
        }
    }

    #[test]
    fn victim_policy_variants_are_distinguished() {
        use bv_core::VictimPolicyKind;
        let a = JobSpec::new("t", SimConfig::single_thread(LlcKind::BaseVictim), 0, 100);
        let b = JobSpec::new(
            "t",
            SimConfig::single_thread(LlcKind::BaseVictimWith(VictimPolicyKind::RandomFit)),
            0,
            100,
        );
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
