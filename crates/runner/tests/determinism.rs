//! The two guarantees the orchestrator is built on:
//!
//! 1. **Determinism** — a parallel sweep produces results bit-identical
//!    to the serial path, regardless of worker count or completion order.
//! 2. **Resume** — an interrupted sweep picks up from the on-disk
//!    journal and re-simulates zero already-completed configurations,
//!    and the resumed results are indistinguishable from fresh ones.

use bv_runner::{JobSpec, Runner};
use bv_sim::{LlcKind, RunResult, SimConfig};
use bv_trace::TraceRegistry;
use std::path::PathBuf;

const WARMUP: u64 = 2_000;
const INSTS: u64 = 4_000;

/// A small but heterogeneous job set: several traces under both the
/// uncompressed baseline and Base-Victim, plus a size variant.
fn job_set(registry: &TraceRegistry) -> Vec<JobSpec> {
    let traces: Vec<String> = registry.all().take(4).map(|t| t.name.clone()).collect();
    let mut jobs = Vec::new();
    for name in &traces {
        for kind in [LlcKind::Uncompressed, LlcKind::BaseVictim] {
            jobs.push(JobSpec::new(
                name,
                SimConfig::single_thread(kind),
                WARMUP,
                INSTS,
            ));
        }
    }
    jobs.push(JobSpec::new(
        &traces[0],
        SimConfig::single_thread(LlcKind::BaseVictim).with_llc_size(4 * 1024 * 1024, 16),
        WARMUP,
        INSTS,
    ));
    jobs
}

fn results_of(runner: &Runner, jobs: &[JobSpec]) -> Vec<RunResult> {
    jobs.iter()
        .map(|j| runner.get(j).expect("every planned job has a result"))
        .collect()
}

/// A scratch directory under `target/tmp`, fresh per test.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let registry = TraceRegistry::paper_default();
    let jobs = job_set(&registry);

    let serial = Runner::new(1);
    let report = serial.execute(&registry, &jobs);
    assert_eq!(report.simulated, jobs.len());

    let parallel = Runner::new(4);
    parallel.execute(&registry, &jobs);

    assert_eq!(results_of(&serial, &jobs), results_of(&parallel, &jobs));
}

#[test]
fn interrupted_sweep_resumes_without_resimulating() {
    let registry = TraceRegistry::paper_default();
    let jobs = job_set(&registry);
    let dir = scratch("resume-journal");

    // Reference results, no journal involved.
    let reference = Runner::new(1);
    reference.execute(&registry, &jobs);

    // First attempt is "killed" after completing only part of the sweep:
    // simulate that by executing a prefix, then dropping the runner.
    let half = jobs.len() / 2;
    {
        let first = Runner::new(4)
            .with_journal(&dir, false)
            .expect("open journal");
        let report = first.execute(&registry, &jobs[..half]);
        assert_eq!(report.simulated, half);
        assert_eq!(
            first
                .journal()
                .expect("journal attached")
                .checkpoint_count(),
            half
        );
    }

    // Second attempt resumes: journaled configs are loaded, not re-run.
    let second = Runner::new(4)
        .with_journal(&dir, true)
        .expect("reopen journal");
    let report = second.execute(&registry, &jobs);
    assert_eq!(report.unique, jobs.len());
    assert_eq!(report.from_journal, half, "every checkpoint must be used");
    assert_eq!(report.simulated, jobs.len() - half);

    // Results served from checkpoints are bit-identical to fresh ones.
    assert_eq!(results_of(&reference, &jobs), results_of(&second, &jobs));

    // A third pass over the now-complete journal re-simulates nothing.
    let third = Runner::new(4)
        .with_journal(&dir, true)
        .expect("reopen journal");
    let report = third.execute(&registry, &jobs);
    assert_eq!(report.from_journal, jobs.len());
    assert_eq!(report.simulated, 0);
    assert_eq!(results_of(&reference, &jobs), results_of(&third, &jobs));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changing_the_budget_invalidates_checkpoints() {
    let registry = TraceRegistry::paper_default();
    let trace = registry.all().next().expect("trace").name.clone();
    let dir = scratch("budget-journal");
    let job = |insts| {
        JobSpec::new(
            &trace,
            SimConfig::single_thread(LlcKind::Uncompressed),
            WARMUP,
            insts,
        )
    };

    {
        let first = Runner::new(1)
            .with_journal(&dir, false)
            .expect("open journal");
        first.execute(&registry, &[job(INSTS)]);
    }
    // A different measurement budget is a different job: nothing to resume.
    let second = Runner::new(1)
        .with_journal(&dir, true)
        .expect("reopen journal");
    let report = second.execute(&registry, &[job(2 * INSTS)]);
    assert_eq!(report.from_journal, 0);
    assert_eq!(report.simulated, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_observability_stream_has_one_line_per_run() {
    let registry = TraceRegistry::paper_default();
    let jobs = job_set(&registry);
    let dir = scratch("jsonl-journal");

    let runner = Runner::new(2)
        .with_journal(&dir, false)
        .expect("open journal");
    runner.execute(&registry, &jobs);

    let log = std::fs::read_to_string(dir.join("runs.jsonl")).expect("runs.jsonl exists");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), jobs.len());
    for line in lines {
        let v = bv_runner::json::parse(line).expect("valid JSON line");
        for field in ["trace", "llc", "key", "hash"] {
            assert!(v.get(field).is_some(), "missing {field}: {line}");
        }
        for field in ["ipc", "llc_hit_rate", "comp_ratio", "wall_secs"] {
            assert!(
                v.get(field).and_then(|x| x.as_f64()).is_some(),
                "missing numeric {field}: {line}"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
