//! Deterministic randomness and lightweight property-test helpers.
//!
//! The build environment has no access to a crate registry, so the
//! workspace's randomized tests cannot use `proptest` or `rand`. This
//! crate supplies the small subset those suites actually need: a fast,
//! seedable, well-mixed PRNG and a `cases` driver that runs a property
//! closure over many seeds, reporting the failing seed so a
//! counterexample can be replayed by hand.
//!
//! Every generator is a pure function of the seed, so any failure is
//! reproducible by construction — the moral equivalent of a proptest
//! regression file is "re-run with the printed seed".

#![warn(missing_docs)]

/// One SplitMix64 step as a stateless mix: advances `x` by the golden
/// gamma and finalizes. This is the workspace's single canonical mixing
/// function — [`Rng`] is exactly this function iterated over an internal
/// state, and hash-like call sites (per-key value shapes, per-region
/// palettes) call it directly so every seed in the workspace derives
/// from one stream family.
#[must_use]
pub fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// SplitMix64: tiny, statistically solid, and seedable from any `u64`.
///
/// This is the generator recommended for seeding xorshift-family state;
/// it passes BigCrush on its own and is more than adequate for test-case
/// generation.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit output: one [`mix`] step of the internal state.
    pub fn next_u64(&mut self) -> u64 {
        let out = mix(self.state);
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        out
    }

    /// Uniform in `[0, 1)`, built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift bounded generation (Lemire); the slight bias at
        // 2^64 scale is irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform choice from a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// A vector of `len` values drawn by `gen`.
    pub fn vec_of<T>(&mut self, len: usize, mut gen: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Runs `property` once per case with an independently seeded generator,
/// panicking with the offending case index on failure so the run can be
/// replayed (`Rng::new(CASE_SEED_BASE + i)`).
///
/// The property receives the case's `Rng`; any panic inside it is
/// reported with the case number attached.
pub fn cases(n: u64, property: impl Fn(&mut Rng)) {
    for i in 0..n {
        let mut rng = Rng::new(CASE_SEED_BASE.wrapping_add(i));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property failed on case {i} (seed base {CASE_SEED_BASE:#x} + {i})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Base seed used by [`cases`]; exposed so a failing case can be replayed
/// in isolation.
pub const CASE_SEED_BASE: u64 = 0xb5e0_c0de_0000_0000;

/// Shared cache-configuration fixtures for the workspace test suites.
///
/// Every LLC-organization test module used to repeat the same "toy"
/// configuration — a 4-set × 4-way × 64 B cache under LRU, matching the
/// paper's worked examples. Centralizing it here keeps the suites in
/// lockstep: a test that wants the toy cache gets exactly the geometry
/// the other suites (and the doc examples) exercise.
pub mod fixtures {
    use bv_cache::{CacheGeometry, PolicyKind};

    /// The 4-set × 4-way × 64 B toy geometry from the paper's worked
    /// examples, shared by every organization's unit-test suite.
    #[must_use]
    pub fn toy_geometry() -> CacheGeometry {
        CacheGeometry::new(1024, 4, 64)
    }

    /// The default baseline policy for toy-cache tests. LRU keeps
    /// eviction order trivially predictable in hand-written scenarios.
    #[must_use]
    pub fn toy_policy() -> PolicyKind {
        PolicyKind::Lru
    }
}

/// A dependency-free stand-in for the Criterion harness: wall-clock
/// timing with warmup, reporting per-iteration cost. Benches built on it
/// stay `harness = false` binaries runnable via `cargo bench`.
pub mod bench {
    use std::time::Instant;

    /// Times `samples` calls of `f` after one warmup call and prints a
    /// `group/name  median .. max` line. Returns the median seconds per
    /// call.
    pub fn time<T>(group: &str, name: &str, samples: usize, mut f: impl FnMut() -> T) -> f64 {
        let secs = sorted_samples(samples, &mut f);
        let median = secs[secs.len() / 2];
        println!(
            "{group}/{name:28} median {} .. max {}",
            human(median),
            human(secs[secs.len() - 1])
        );
        median
    }

    /// Quiet twin of [`time`]: identical warmup and sampling, no printing.
    /// Returns the median seconds per call, for harnesses that do their own
    /// reporting (e.g. `bvsim bench`).
    pub fn measure<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
        let secs = sorted_samples(samples, &mut f);
        secs[secs.len() / 2]
    }

    /// Best-of-N seconds per call: same warmup and sampling as [`measure`]
    /// but returns the *minimum*. Scheduler and frequency noise only ever
    /// add time, so the minimum is the stable statistic for regression
    /// gating on shared or single-core hosts (the median still swings with
    /// sustained background load).
    pub fn fastest<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
        sorted_samples(samples, &mut f)[0]
    }

    /// Per-round seconds for several closures with *interleaved* sampling:
    /// round `r` times every closure once before round `r + 1` starts, so
    /// slow frequency or load drift over the measurement window biases all
    /// of them equally instead of penalizing whichever happened to run
    /// last. Use this when the quantity of interest is a *ratio* between
    /// the closures (e.g. an instrumentation-overhead gate), where a
    /// systematic drift between back-to-back [`fastest`] calls would read
    /// as a real cost: within a round the timings are adjacent, so the
    /// per-round ratio is robust to common-mode noise, and the median
    /// ratio over rounds is robust to bursts that straddle a round
    /// boundary. Returns one `Vec` of `rounds` timings per closure, in
    /// input order.
    pub fn interleaved_samples(rounds: usize, fns: &mut [&mut dyn FnMut()]) -> Vec<Vec<f64>> {
        assert!(rounds > 0, "at least one round required");
        for f in fns.iter_mut() {
            f();
        }
        let mut samples = vec![Vec::with_capacity(rounds); fns.len()];
        for _ in 0..rounds {
            for (f, secs) in fns.iter_mut().zip(samples.iter_mut()) {
                let t = Instant::now();
                f();
                secs.push(t.elapsed().as_secs_f64());
            }
        }
        samples
    }

    fn sorted_samples<T>(samples: usize, f: &mut impl FnMut() -> T) -> Vec<f64> {
        assert!(samples > 0, "at least one sample required");
        std::hint::black_box(f());
        let mut secs: Vec<f64> = (0..samples)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(f64::total_cmp);
        secs
    }

    fn human(secs: f64) -> String {
        if secs < 1e-6 {
            format!("{:8.1} ns", secs * 1e9)
        } else if secs < 1e-3 {
            format!("{:8.2} µs", secs * 1e6)
        } else if secs < 1.0 {
            format!("{:8.2} ms", secs * 1e3)
        } else {
            format!("{secs:8.3} s ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_u64_is_mix_iterated() {
        let mut rng = Rng::new(0xabc);
        let mut state = 0xabcu64.wrapping_add(0x9e37_79b9_7f4a_7c15);
        for _ in 0..16 {
            assert_eq!(rng.next_u64(), mix(state));
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[test]
    fn next_f64_stays_in_unit_interval() {
        let mut rng = Rng::new(5);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(42);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_covers_endpoints_eventually() {
        let mut rng = Rng::new(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.range_u64(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_i64_handles_negative_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..500 {
            let v = rng.range_i64(-128, 128);
            assert!((-128..128).contains(&v));
        }
    }

    #[test]
    fn cases_runs_all_cases() {
        use std::cell::Cell;
        let count = Cell::new(0u64);
        cases(17, |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 17);
    }

    #[test]
    fn timers_sample_the_closure() {
        use std::cell::Cell;
        let calls = Cell::new(0u64);
        let median = bench::measure(5, || calls.set(calls.get() + 1));
        assert_eq!(calls.get(), 6, "5 samples + 1 warmup");
        assert!(median >= 0.0);
        calls.set(0);
        let best = bench::fastest(5, || calls.set(calls.get() + 1));
        assert_eq!(calls.get(), 6);
        assert!(best >= 0.0);
    }
}
