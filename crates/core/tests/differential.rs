//! Differential tests for the Base-Victim hit-rate guarantee.
//!
//! The architecture's central claim (Section IV.A): *"By design, this
//! architecture cannot have a higher miss rate than an uncompressed cache
//! with the same replacement policy"* — because the Baseline cache mirrors
//! the uncompressed cache state exactly. We verify something stronger than
//! the paper states: after **every operation** of a random access stream,
//! the set of Baseline-cache lines equals the set of lines in an
//! uncompressed cache driven with the same stream, for every replacement
//! policy.

use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
use bv_compress::CacheLine;
use bv_core::{
    BaseVictimLlc, InclusionAgent, LlcOrganization, NoInner, UncompressedLlc, VictimPolicyKind,
};
use bv_testkit::{cases, Rng};

/// Deterministic inner-cache mock: some lines always have a dirty inner
/// copy at back-invalidation time.
struct SometimesDirtyInner;

impl InclusionAgent for SometimesDirtyInner {
    fn back_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        if addr.get().is_multiple_of(5) {
            Some(line_for(addr.get(), 3))
        } else {
            None
        }
    }
}

/// Deterministic line data with mixed compressibility.
fn line_for(key: u64, salt: u64) -> CacheLine {
    let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
    match h % 4 {
        0 => CacheLine::zeroed(),
        1 => CacheLine::from_u64_words(&core::array::from_fn(|i| {
            0x4000_0000_0000 + key * 64 + i as u64
        })),
        2 => CacheLine::from_u64_words(&[h; 8]),
        _ => CacheLine::from_u64_words(&core::array::from_fn(|i| {
            h.wrapping_mul(i as u64 + 1).wrapping_add((i as u64) << 55)
        })),
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Read(u64),
    Writeback(u64),
    Prefetch(u64),
}

fn random_op(rng: &mut Rng, addr_space: u64) -> Op {
    let a = rng.below(addr_space);
    match rng.below(10) {
        0..=5 => Op::Read(a),
        6..=7 => Op::Writeback(a),
        _ => Op::Prefetch(a),
    }
}

fn random_ops(rng: &mut Rng, addr_space: u64, max_len: usize) -> Vec<Op> {
    let len = rng.range_u64(1, max_len as u64) as usize;
    rng.vec_of(len, |r| random_op(r, addr_space))
}

/// Drives both organizations with the same stream and checks mirroring
/// after every step.
fn run_differential(policy: PolicyKind, victim_policy: VictimPolicyKind, ops: &[Op]) {
    let geom = CacheGeometry::new(4096, 4, 64); // 16 sets x 4 ways
    let mut unc = UncompressedLlc::new(geom, policy);
    let mut bv = BaseVictimLlc::new(geom, policy, victim_policy);
    let mut inner_u = SometimesDirtyInner;
    let mut inner_b = SometimesDirtyInner;

    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Read(a) => {
                let addr = LineAddr::new(a);
                let hu = unc.read(addr, &mut inner_u).is_hit();
                let hb = bv.read(addr, &mut inner_b).is_hit();
                assert!(
                    hb || !hu,
                    "step {step}: uncompressed hit {addr:?} but Base-Victim missed"
                );
                let data = line_for(a, step as u64 / 16);
                if !hu {
                    unc.fill(addr, data, &mut inner_u);
                }
                if !hb {
                    bv.fill(addr, data, &mut inner_b);
                }
            }
            Op::Writeback(a) => {
                // L2 writebacks can only target lines the L2 holds, which
                // under inclusion are baseline-resident lines.
                let addr = LineAddr::new(a);
                if bv.baseline_lines().contains(&addr) {
                    let data = line_for(a, 7 + step as u64);
                    unc.writeback(addr, data, &mut inner_u);
                    bv.writeback(addr, data, &mut inner_b);
                }
            }
            Op::Prefetch(a) => {
                let addr = LineAddr::new(a);
                let data = line_for(a, 11);
                unc.prefetch_fill(addr, data, &mut inner_u);
                bv.prefetch_fill(addr, data, &mut inner_b);
            }
        }

        bv.assert_invariants();
        let mut base_lines = bv.baseline_lines();
        let mut unc_lines = unc.resident_lines();
        base_lines.sort();
        unc_lines.sort();
        assert_eq!(
            base_lines, unc_lines,
            "step {step} ({op:?}): Baseline cache diverged from the uncompressed mirror"
        );
    }

    // The guarantee in aggregate: never fewer hits, never more memory
    // reads.
    assert!(bv.stats().read_hits() >= unc.stats().read_hits());
    assert!(bv.stats().read_misses <= unc.stats().read_misses);
    assert!(bv.stats().memory_reads() <= unc.stats().memory_reads());
}

fn mirror_property(policy: PolicyKind) {
    cases(48, |rng| {
        let ops = random_ops(rng, 256, 400);
        run_differential(policy, VictimPolicyKind::EcmLargestBase, &ops);
    });
}

#[test]
fn baseline_mirrors_uncompressed_nru() {
    mirror_property(PolicyKind::Nru);
}

#[test]
fn baseline_mirrors_uncompressed_lru() {
    mirror_property(PolicyKind::Lru);
}

#[test]
fn baseline_mirrors_uncompressed_srrip() {
    mirror_property(PolicyKind::Srrip);
}

#[test]
fn baseline_mirrors_uncompressed_char() {
    mirror_property(PolicyKind::CharLite);
}

#[test]
fn baseline_mirrors_uncompressed_camp() {
    // CAMP-style size-aware insertion (the paper's future work). The
    // policy consumes compressed sizes, so the test must model memory
    // consistently: a line's bytes are a function of its address only
    // (the generic runner's evolving data would make a re-fetch and a
    // victim promotion disagree — something real memory cannot do).
    cases(48, |rng| {
        let ops = random_ops(rng, 256, 400);
        let geom = CacheGeometry::new(4096, 4, 64);
        let mut unc = UncompressedLlc::new(geom, PolicyKind::CampLite);
        let mut bv =
            BaseVictimLlc::new(geom, PolicyKind::CampLite, VictimPolicyKind::EcmLargestBase);
        let mut inner = NoInner;
        for (step, &op) in ops.iter().enumerate() {
            let a = match op {
                Op::Read(a) | Op::Writeback(a) | Op::Prefetch(a) => a,
            };
            let addr = LineAddr::new(a);
            let data = line_for(a, 0); // address-stable memory contents
            match op {
                Op::Read(_) => {
                    let hu = unc.read(addr, &mut inner).is_hit();
                    let hb = bv.read(addr, &mut inner).is_hit();
                    assert!(hb || !hu, "step {step}: lost a hit");
                    if !hu {
                        unc.fill(addr, data, &mut inner);
                    }
                    if !hb {
                        bv.fill(addr, data, &mut inner);
                    }
                }
                Op::Writeback(_) => {
                    if bv.baseline_lines().contains(&addr) {
                        unc.writeback(addr, data, &mut inner);
                        bv.writeback(addr, data, &mut inner);
                    }
                }
                Op::Prefetch(_) => {
                    unc.prefetch_fill(addr, data, &mut inner);
                    bv.prefetch_fill(addr, data, &mut inner);
                }
            }
            bv.assert_invariants();
            let mut b = bv.baseline_lines();
            let mut u = unc.resident_lines();
            b.sort();
            u.sort();
            assert_eq!(b, u, "step {step} ({op:?}): CAMP mirror diverged");
        }
    });
}

#[test]
fn baseline_mirrors_uncompressed_all_victim_policies() {
    cases(48, |rng| {
        let ops = random_ops(rng, 128, 200);
        let vp = *rng.choose(&VictimPolicyKind::ALL);
        run_differential(PolicyKind::Nru, vp, &ops);
    });
}

/// Victim lines must always be clean and every pair must fit; checked
/// densely by `assert_invariants` inside `run_differential`, plus here
/// under a pure read/fill stream with a tight working set that
/// stresses promotions.
#[test]
fn promotion_heavy_streams_hold_invariants() {
    cases(48, |rng| {
        let len = rng.range_u64(1, 600) as usize;
        let seeds = rng.vec_of(len, |r| r.below(48));
        let geom = CacheGeometry::new(2048, 4, 64); // 8 sets
        let mut bv = BaseVictimLlc::new(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
        let mut inner = NoInner;
        for (i, &s) in seeds.iter().enumerate() {
            let addr = LineAddr::new(s);
            if !bv.read(addr, &mut inner).is_hit() {
                bv.fill(addr, line_for(s, i as u64 / 32), &mut inner);
            }
            bv.assert_invariants();
        }
    });
}

/// The random-replacement policy cannot mirror (two independent RNG
/// streams), so it is exercised for invariants only.
#[test]
fn random_policy_holds_invariants() {
    let geom = CacheGeometry::new(4096, 4, 64);
    let mut bv = BaseVictimLlc::new(geom, PolicyKind::Random, VictimPolicyKind::RandomFit);
    let mut inner = SometimesDirtyInner;
    for i in 0..5000u64 {
        let a = (i * 37) % 300;
        let addr = LineAddr::new(a);
        if !bv.read(addr, &mut inner).is_hit() {
            bv.fill(addr, line_for(a, i / 64), &mut inner);
        }
        if i % 97 == 0 {
            bv.assert_invariants();
        }
    }
    bv.assert_invariants();
}

/// The non-inclusive variant (Section IV.B.3) keeps the same baseline
/// mirror for demand reads and fills; writebacks are excluded because the
/// uncompressed reference model asserts strict inclusion.
#[test]
fn non_inclusive_baseline_mirrors_on_read_streams() {
    let geom = CacheGeometry::new(4096, 4, 64);
    let mut unc = UncompressedLlc::new(geom, PolicyKind::Nru);
    let mut bv =
        BaseVictimLlc::new_non_inclusive(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
    let mut inner = NoInner;
    for i in 0..20_000u64 {
        let a = (i * 31) % 400;
        let addr = LineAddr::new(a);
        let hu = unc.read(addr, &mut inner).is_hit();
        let hb = bv.read(addr, &mut inner).is_hit();
        assert!(hb || !hu, "step {i}: non-inclusive lost a baseline hit");
        let data = line_for(a, i / 64);
        if !hu {
            unc.fill(addr, data, &mut inner);
        }
        if !hb {
            bv.fill(addr, data, &mut inner);
        }
        if i % 512 == 0 {
            bv.assert_invariants();
            let mut b = bv.baseline_lines();
            let mut u = unc.resident_lines();
            b.sort();
            u.sort();
            assert_eq!(b, u, "step {i}: baseline diverged");
        }
    }
    assert!(bv.stats().read_hits() >= unc.stats().read_hits());
}
