//! Tests for the cached-`SegmentCount` invariant: the size stored in a tag
//! slot is recomputed only when the line's data actually changes, and a
//! writeback carrying unchanged data must not invoke the compressor at all.
//!
//! Also pins down the stale-size bug class: a dirty writeback that changes
//! the data must update the cached size (so a grown line evicts its victim
//! partner instead of silently overlapping it).

use std::cell::Cell;
use std::rc::Rc;

use bv_cache::LineAddr;
use bv_compress::{Bdi, CacheLine, Compressed, Compressor, SegmentCount};
use bv_core::{BaseVictimLlc, InclusionMode, LlcOrganization, NoInner, VictimPolicyKind};
use bv_testkit::fixtures;

/// Wraps BDI and counts how many times the cache asks for a compression
/// (size-only or full), so tests can assert the memoization actually
/// short-circuits the compressor.
struct CountingCompressor {
    inner: Bdi,
    size_calls: Rc<Cell<u64>>,
    compress_calls: Rc<Cell<u64>>,
}

impl CountingCompressor {
    fn new() -> (CountingCompressor, Rc<Cell<u64>>, Rc<Cell<u64>>) {
        let size_calls = Rc::new(Cell::new(0));
        let compress_calls = Rc::new(Cell::new(0));
        let c = CountingCompressor {
            inner: Bdi::new(),
            size_calls: Rc::clone(&size_calls),
            compress_calls: Rc::clone(&compress_calls),
        };
        (c, size_calls, compress_calls)
    }
}

impl Compressor for CountingCompressor {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn compress(&self, line: &CacheLine) -> Compressed {
        self.compress_calls.set(self.compress_calls.get() + 1);
        self.inner.compress(line)
    }

    fn decompress(&self, compressed: &Compressed) -> CacheLine {
        self.inner.decompress(compressed)
    }

    fn compressed_size(&self, line: &CacheLine) -> SegmentCount {
        self.size_calls.set(self.size_calls.get() + 1);
        self.inner.compressed_size(line)
    }
}

fn counting_llc(mode: InclusionMode) -> (BaseVictimLlc, Rc<Cell<u64>>) {
    let (compressor, size_calls, _) = CountingCompressor::new();
    let llc = BaseVictimLlc::with_compressor(
        fixtures::toy_geometry(), // 4 sets x 4 ways toy cache
        fixtures::toy_policy(),
        VictimPolicyKind::EcmLargestBase,
        mode,
        Box::new(compressor),
    );
    (llc, size_calls)
}

fn addr(set: u64, k: u64) -> LineAddr {
    LineAddr::new(set + 4 * k)
}

/// A line with a mid-range BDI size (B8D1, 5 segments).
fn small_line() -> CacheLine {
    CacheLine::from_u64_words(&core::array::from_fn(|i| 0x7f00_0000_0000 + i as u64))
}

/// An incompressible line (16 segments).
fn full_line() -> CacheLine {
    CacheLine::from_u64_words(&core::array::from_fn(|i| {
        (i as u64 + 1).wrapping_mul(0x0123_4567_89ab_cdef)
    }))
}

#[test]
fn unchanged_writeback_skips_recompression() {
    let (mut llc, size_calls) = counting_llc(InclusionMode::Inclusive);
    let mut inner = NoInner;
    let a = addr(0, 0);
    let data = small_line();
    llc.fill(a, data, &mut inner);
    let after_fill = size_calls.get();
    assert!(after_fill >= 1, "fill must compress the incoming line");

    // A clean writeback (inner eviction of an unmodified line) carries the
    // exact bytes the LLC already holds: no compressor call is allowed.
    llc.writeback(a, data, &mut inner);
    assert_eq!(
        size_calls.get(),
        after_fill,
        "writeback of unchanged data must reuse the cached SegmentCount"
    );
    assert_eq!(llc.stats().writeback_hits, 1);
}

#[test]
fn changed_writeback_recompresses_and_updates_size() {
    let (mut llc, size_calls) = counting_llc(InclusionMode::Inclusive);
    let mut inner = NoInner;
    let a = addr(0, 0);
    llc.fill(a, small_line(), &mut inner);
    let after_fill = size_calls.get();

    // A dirty writeback with different bytes must recompress...
    llc.writeback(a, full_line(), &mut inner);
    assert_eq!(
        size_calls.get(),
        after_fill + 1,
        "writeback of changed data must recompress"
    );
    // ...and the updated size must be visible on the next read hit.
    let out = llc.read(a, &mut inner);
    assert!(out.is_hit());
    assert_eq!(
        llc.compression_stats().count(SegmentCount::FULL),
        1,
        "the grown size must have been recorded"
    );
}

#[test]
fn unchanged_writeback_to_victim_slot_skips_recompression() {
    // Non-inclusive mode: a write hit in the Victim cache promotes the
    // line. With unchanged data the promotion must reuse the victim slot's
    // cached size.
    let (mut llc, size_calls) = counting_llc(InclusionMode::NonInclusive);
    let mut inner = NoInner;
    let data = small_line();
    // Park addr(0,0) in the Victim cache by overfilling set 0.
    for k in 0..5 {
        llc.fill(addr(0, k), data, &mut inner);
    }
    assert!(llc.contains(addr(0, 0)), "LRU line parked as victim");
    let before = size_calls.get();
    llc.writeback(addr(0, 0), data, &mut inner);
    assert_eq!(
        size_calls.get(),
        before,
        "victim promotion with unchanged data must not recompress"
    );
    assert_eq!(llc.stats().writeback_hits, 1);
}

#[test]
fn grown_base_evicts_victim_partner_not_overlap() {
    // The stale-size bug class: if a dirty writeback failed to refresh the
    // cached size, a grown base line would silently overlap its victim
    // partner. The partner must be evicted instead.
    let mut llc = BaseVictimLlc::new(
        fixtures::toy_geometry(),
        fixtures::toy_policy(),
        VictimPolicyKind::EcmLargestBase,
    );
    let mut inner = NoInner;
    // Fill set 0 with large lines, then a small one: the displaced LRU
    // line parks as the small line's victim partner.
    let big = CacheLine::from_u64_words(&core::array::from_fn(|i| {
        0x7f00_0000_0000 + i as u64 * 1_000_000 // B8D4, 11 segments
    }));
    for k in 0..4 {
        llc.fill(addr(0, k), big, &mut inner);
    }
    llc.fill(addr(0, 4), small_line(), &mut inner);
    assert!(llc.contains(addr(0, 0)), "victim partner parked");

    // Grow the base line to a full 16 segments: 16 + 11 > 16, so the
    // partner can no longer share the way.
    llc.writeback(addr(0, 4), full_line(), &mut inner);
    assert!(
        !llc.contains(addr(0, 0)),
        "grown base must evict its victim partner, not overlap it"
    );
    assert_eq!(llc.stats().partner_evictions, 1);
    // The grown line itself must still be resident and readable.
    assert!(llc.read(addr(0, 4), &mut inner).is_hit());
}

#[test]
fn shrunken_writeback_updates_cached_size() {
    // The complementary direction: a write that shrinks the line must also
    // refresh the cached size, freeing space for future victim pairing.
    let (mut llc, size_calls) = counting_llc(InclusionMode::Inclusive);
    let mut inner = NoInner;
    let a = addr(1, 0);
    llc.fill(a, full_line(), &mut inner);
    let before = size_calls.get();
    llc.writeback(a, CacheLine::zeroed(), &mut inner);
    assert_eq!(size_calls.get(), before + 1, "shrink must recompress");
    assert_eq!(
        llc.compression_stats().count(SegmentCount::MIN),
        1,
        "the shrunken size must have been recorded"
    );
}
