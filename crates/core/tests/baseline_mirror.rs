//! Hit-count mirror property over the unified set-engine layer.
//!
//! The differential suite (`differential.rs`) checks that the Baseline
//! cache holds the same *lines* as an uncompressed cache after every
//! operation. This suite pins the same guarantee at the counter level,
//! for **every** replacement policy the workspace ships: on randomized
//! traces, the Base-Victim baseline hit count equals the uncompressed hit
//! count exactly, and every read the uncompressed cache misses is either
//! a Base-Victim miss or a victim hit — never anything else.
//!
//! Since both organizations construct their policies through the same
//! monomorphic `PolicyKind::instantiate` path (including the shared
//! `Random` seed), even the random-replacement policy mirrors exactly:
//! the two caches observe identical victim-selection call sequences, so
//! their RNG streams stay in lockstep. Under the old per-organization
//! construction this equality was unverifiable for `Random`.

use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
use bv_compress::CacheLine;
use bv_core::{BaseVictimLlc, LlcOrganization, NoInner, UncompressedLlc, VictimPolicyKind};
use bv_testkit::{cases, Rng};

/// Address-stable memory contents with mixed compressibility: a line's
/// bytes are a function of its address only, so size-aware policies
/// (CAMP) see identical sizes in both caches no matter when a line is
/// fetched, promoted, or written back.
fn line_for(key: u64) -> CacheLine {
    let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    match h % 4 {
        0 => CacheLine::zeroed(),
        1 => CacheLine::from_u64_words(&core::array::from_fn(|i| {
            0x4000_0000_0000 + key * 64 + i as u64
        })),
        2 => CacheLine::from_u64_words(&[h; 8]),
        _ => CacheLine::from_u64_words(&core::array::from_fn(|i| {
            h.wrapping_mul(i as u64 + 1).wrapping_add((i as u64) << 55)
        })),
    }
}

/// Drives both organizations with one randomized trace and checks the
/// counter-level mirror relations at the end.
fn run_mirror(policy: PolicyKind, rng: &mut Rng) {
    let geom = CacheGeometry::new(4096, 4, 64); // 16 sets x 4 ways
    let mut unc = UncompressedLlc::new(geom, policy);
    let mut bv = BaseVictimLlc::new(geom, policy, VictimPolicyKind::EcmLargestBase);
    let mut inner = NoInner;

    let len = rng.range_u64(100, 800) as usize;
    for _ in 0..len {
        let a = rng.below(256);
        let addr = LineAddr::new(a);
        let data = line_for(a);
        match rng.below(10) {
            // Demand read, filling on miss — the common case.
            0..=6 => {
                let hu = unc.read(addr, &mut inner).is_hit();
                let hb = bv.read(addr, &mut inner).is_hit();
                assert!(
                    hb || !hu,
                    "{policy:?}: uncompressed hit but Base-Victim missed"
                );
                if !hu {
                    unc.fill(addr, data, &mut inner);
                }
                if !hb {
                    bv.fill(addr, data, &mut inner);
                }
            }
            // L2 writeback, legal only for lines the L2 could hold (under
            // inclusion: baseline-resident lines).
            7..=8 => {
                if bv.baseline_lines().contains(&addr) {
                    unc.writeback(addr, data, &mut inner);
                    bv.writeback(addr, data, &mut inner);
                }
            }
            // Prefetch fill.
            _ => {
                unc.prefetch_fill(addr, data, &mut inner);
                bv.prefetch_fill(addr, data, &mut inner);
            }
        }
    }

    let u = unc.stats();
    let b = bv.stats();
    // The Baseline cache IS the uncompressed cache: identical hit counts.
    assert_eq!(
        b.base_hits, u.base_hits,
        "{policy:?}: baseline hit count diverged from the uncompressed mirror"
    );
    // Every uncompressed miss is a Base-Victim miss or a victim hit.
    assert_eq!(
        b.read_misses + b.victim_hits,
        u.read_misses,
        "{policy:?}: miss/victim-hit split does not add up to the mirror's misses"
    );
    // The guarantee the paper states, in aggregate form.
    assert!(b.read_hits() >= u.read_hits());
    assert!(b.memory_reads() <= u.memory_reads());
}

/// Every shipped policy — including `Random`, whose mirror depends on the
/// shared seed in the unified construction path.
#[test]
fn baseline_hit_count_equals_uncompressed_for_every_policy() {
    for policy in PolicyKind::ALL {
        cases(24, |rng| run_mirror(policy, rng));
    }
}
