//! A functional model of the Decoupled Variable-Segment Cache (VSC-2X).
//!
//! Alameldeen & Wood's VSC (ISCA 2004) decouples tags from data: a set has
//! `2N` tags and a shared pool of `16 * N` four-byte segments in which
//! compressed lines are compacted back-to-back. Section V of the
//! Base-Victim paper reports that, "when simulated on functional cache
//! models, these policies come close to an 80% increase in cache capacity"
//! — but refuses an IPC comparison because VSC's data-array changes make
//! its access latency incomparable. This model reproduces that functional
//! comparison: hit/miss behavior, capacity utilization, and the
//! re-compaction overhead (VSC's first drawback).

use crate::slot::{line_addr, LineMeta};
use crate::{Effects, HitKind, InclusionAgent, LlcOrganization, LlcStats, OpOutcome, ReadOutcome};
use bv_cache::engine::SetEngine;
use bv_cache::{CacheGeometry, LineAddr, Policy, PolicyKind, ReplacementPolicy};
use bv_compress::{
    Bdi, CacheLine, CompressionStats, Compressor, EncoderStats, SegmentCount, SEGMENTS_PER_LINE,
};
use bv_events::{CacheEvent, EventKind, EventSink, EvictCause, NoEventSink};

/// Functional VSC-2X: twice the tags, compacted variable-size data.
///
/// The delta over the set engine is segmented data-space accounting: a
/// fill needs a free tag *and* enough free segments in the set's shared
/// pool, so one install can evict several small lines and force the
/// survivors to be re-compacted.
///
/// # Examples
///
/// ```
/// use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
/// use bv_compress::CacheLine;
/// use bv_core::{LlcOrganization, NoInner, VscLlc};
///
/// let mut vsc = VscLlc::new(CacheGeometry::new(4096, 4, 64), PolicyKind::Lru);
/// let mut inner = NoInner;
/// vsc.fill(LineAddr::new(1), CacheLine::zeroed(), &mut inner);
/// assert!(vsc.contains(LineAddr::new(1)));
/// ```
#[derive(Debug)]
pub struct VscLlc<P: ReplacementPolicy = Policy, E: EventSink = NoEventSink> {
    geom: CacheGeometry,
    engine: SetEngine<P, LineMeta, E>, // sets x 2*ways logical tags
    compression: CompressionStats,
    bdi: Bdi,
    encoders: EncoderStats,
    /// Set compaction events (any fill/growth that had to evict and
    /// repack).
    recompactions: u64,
    /// Capacity sampling: sum of resident logical lines over all fills.
    resident_samples: u64,
    resident_total: u64,
}

impl VscLlc {
    /// Creates an empty functional VSC over the given physical geometry
    /// with a runtime-selected policy.
    #[must_use]
    pub fn new(geom: CacheGeometry, policy: PolicyKind) -> VscLlc {
        let logical = geom.ways() * 2;
        VscLlc::with_policy(geom, policy.instantiate(geom.sets(), logical))
    }
}

impl<P: ReplacementPolicy> VscLlc<P> {
    /// Creates an empty functional VSC around a concrete policy instance
    /// covering all `2N` logical tags per set.
    #[must_use]
    pub fn with_policy(geom: CacheGeometry, policy: P) -> VscLlc<P> {
        VscLlc::with_sink(geom, policy, NoEventSink)
    }
}

impl<P: ReplacementPolicy, E: EventSink> VscLlc<P, E> {
    /// Creates an empty functional VSC that reports cache events to
    /// `sink`. The untraced constructors route here with [`NoEventSink`],
    /// which compiles the event path out entirely.
    #[must_use]
    pub fn with_sink(geom: CacheGeometry, policy: P, sink: E) -> VscLlc<P, E> {
        let logical = geom.ways() * 2;
        VscLlc {
            geom,
            engine: SetEngine::with_sink(geom.sets(), logical, policy, sink),
            compression: CompressionStats::default(),
            bdi: Bdi::new(),
            encoders: EncoderStats::new(),
            recompactions: 0,
            resident_samples: 0,
            resident_total: 0,
        }
    }

    fn capacity_segments(&self) -> usize {
        self.geom.ways() * SEGMENTS_PER_LINE
    }

    fn find(&self, addr: LineAddr) -> Option<(usize, usize)> {
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        self.engine.find(set, tag).map(|l| (set, l))
    }

    fn used_segments(&self, set: usize) -> usize {
        (0..self.engine.ways())
            .map(|l| {
                let s = self.engine.slot(set, l);
                if s.valid {
                    s.meta.size.get() as usize
                } else {
                    0
                }
            })
            .sum()
    }

    fn resident_count(&self, set: usize) -> usize {
        (0..self.engine.ways())
            .filter(|&l| self.engine.slot(set, l).valid)
            .count()
    }

    /// Evicts valid lines in replacement order (oldest first) until the
    /// set has `needed` free segments *and* a free tag. Exempts `keep`,
    /// used when growing a resident line in place.
    fn make_room(
        &mut self,
        set: usize,
        needed: usize,
        keep: Option<usize>,
        inner: &mut dyn InclusionAgent,
        effects: &mut Effects,
    ) {
        let mut evicted_any = false;
        loop {
            let free_tags =
                (0..self.engine.ways()).any(|l| !self.engine.slot(set, l).valid || Some(l) == keep);
            let free_segs = self.capacity_segments() - self.used_segments(set);
            if free_segs >= needed && free_tags {
                break;
            }
            // Oldest valid line (highest eviction rank), excluding `keep`.
            let victim = (0..self.engine.ways())
                .filter(|&l| self.engine.slot(set, l).valid && Some(l) != keep)
                .max_by_key(|&l| self.engine.eviction_rank(set, l))
                .expect("a victim must exist while the set is over capacity");
            let slot = self.engine.slot(set, victim).copied();
            let addr = line_addr(&self.geom, set, slot.tag);
            effects.back_invalidations += 1;
            let inner_dirty = inner.back_invalidate(addr);
            if inner_dirty.is_some() || slot.meta.dirty {
                effects.memory_writes += 1;
            }
            // VSC's multi-eviction drawback: lines leave under segment
            // pressure, not replacement order alone.
            self.engine
                .invalidate_as(set, victim, EvictCause::SizePressure);
            evicted_any = true;
        }
        if evicted_any {
            // Surviving lines must be repacked to close the holes.
            self.recompactions += 1;
        }
    }

    fn install(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
        prefetch: bool,
    ) -> Effects {
        debug_assert!(self.find(addr).is_none(), "fill of resident line");
        let mut effects = Effects::default();
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        let size = self.encoders.record(&self.bdi, &data);
        self.compression.record(size);

        self.make_room(set, size.get() as usize, None, inner, &mut effects);

        let l = self
            .engine
            .first_invalid(set)
            .expect("make_room guarantees a free tag");
        if E::ENABLED {
            let (_, class) = self.bdi.classified_size(&data);
            self.engine.emit(CacheEvent::new(
                set,
                l,
                EventKind::Compression {
                    encoder: class.map_or(u8::MAX, |c| c as u8),
                    size: size.get(),
                },
            ));
            let kind = if prefetch {
                EventKind::PrefetchFill {
                    tag,
                    size: size.get(),
                }
            } else {
                EventKind::Fill {
                    tag,
                    size: size.get(),
                }
            };
            self.engine.emit(CacheEvent::new(set, l, kind));
        }
        let meta = LineMeta {
            dirty: false,
            data,
            size,
        };
        self.engine.install(set, l, tag, meta, size);

        self.resident_samples += 1;
        self.resident_total += self.resident_count(set) as u64;
        effects
    }

    /// Total set-compaction events so far (VSC's read-modify-write
    /// overhead).
    #[must_use]
    pub fn recompactions(&self) -> u64 {
        self.recompactions
    }

    /// Clears the capacity-sampling accumulators (not the cache contents),
    /// so [`effective_capacity_ratio`](VscLlc::effective_capacity_ratio)
    /// measures steady state after a warmup drive.
    pub fn reset_capacity_samples(&mut self) {
        self.resident_samples = 0;
        self.resident_total = 0;
    }

    /// Average resident logical lines per set, normalized to the physical
    /// way count: 1.0 means no capacity benefit; the paper reports VSC-2X
    /// "comes close to" 1.8 on compressible workloads.
    #[must_use]
    pub fn effective_capacity_ratio(&self) -> f64 {
        if self.resident_samples == 0 {
            return 1.0;
        }
        self.resident_total as f64 / self.resident_samples as f64 / self.geom.ways() as f64
    }

    /// Verifies that every set respects the segment pool capacity.
    ///
    /// # Panics
    ///
    /// Panics if a set's resident compressed sizes exceed the pool.
    pub fn assert_invariants(&self) {
        for set in 0..self.geom.sets() {
            assert!(
                self.used_segments(set) <= self.capacity_segments(),
                "set {set} over capacity"
            );
        }
    }
}

impl<P: ReplacementPolicy, E: EventSink> LlcOrganization for VscLlc<P, E> {
    fn name(&self) -> &'static str {
        "vsc-2x"
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn contains(&self, addr: LineAddr) -> bool {
        self.find(addr).is_some()
    }

    fn read(&mut self, addr: LineAddr, _inner: &mut dyn InclusionAgent) -> ReadOutcome {
        match self.find(addr) {
            Some((set, l)) => {
                self.engine.demand_hit(set, l);
                let size = self.engine.slot(set, l).meta.size;
                ReadOutcome {
                    kind: HitKind::Base(size),
                    effects: Effects::default(),
                }
            }
            None => {
                self.engine.demand_miss(self.geom.set_index(addr.get()));
                ReadOutcome {
                    kind: HitKind::Miss,
                    effects: Effects::default(),
                }
            }
        }
    }

    fn writeback(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        let mut effects = Effects::default();
        match self.find(addr) {
            Some((set, l)) => {
                // Unchanged data (clean writeback) reuses the size cached in
                // the tag slot; only a real data write pays recompression.
                let slot = self.engine.slot(set, l);
                let new_size = if slot.meta.data == data {
                    slot.meta.size
                } else {
                    self.encoders.record(&self.bdi, &data)
                };
                self.compression.record(new_size);
                let old_size = slot.meta.size;
                if new_size > old_size {
                    // Growth: free the delta, evicting LRU lines if needed
                    // (and re-compacting).
                    let delta = (new_size.get() - old_size.get()) as usize;
                    let free = self.capacity_segments() - self.used_segments(set);
                    if free < delta {
                        self.make_room(
                            set,
                            old_size.get() as usize + delta,
                            Some(l),
                            inner,
                            &mut effects,
                        );
                    } else {
                        // In-place growth still moves neighboring lines.
                        self.recompactions += 1;
                    }
                }
                let meta = &mut self.engine.slot_mut(set, l).meta;
                meta.data = data;
                meta.dirty = true;
                meta.size = new_size;
                if E::ENABLED {
                    let tag = self.geom.tag(addr.get());
                    self.engine.emit(CacheEvent::new(
                        set,
                        l,
                        EventKind::Writeback {
                            tag,
                            size: new_size.get(),
                        },
                    ));
                }
                self.engine.stats_mut().writeback_hits += 1;
            }
            None => {
                debug_assert!(false, "L2 writeback to non-resident LLC line {addr:?}");
                self.engine.stats_mut().writeback_misses += 1;
                effects.memory_writes += 1;
            }
        }
        self.engine.absorb(effects);
        OpOutcome { effects }
    }

    fn fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        let effects = self.install(addr, data, inner, false);
        self.engine.stats_mut().demand_fills += 1;
        self.engine.absorb(effects);
        OpOutcome { effects }
    }

    fn prefetch_fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> Option<OpOutcome> {
        if self.contains(addr) {
            self.engine.stats_mut().prefetch_hits += 1;
            return None;
        }
        let effects = self.install(addr, data, inner, true);
        self.engine.stats_mut().prefetch_fills += 1;
        self.engine.absorb(effects);
        Some(OpOutcome { effects })
    }

    fn peek_data(&self, addr: LineAddr) -> Option<CacheLine> {
        let (set, l) = self.find(addr)?;
        Some(self.engine.slot(set, l).meta.data)
    }

    fn hint_downgrade(&mut self, addr: LineAddr) {
        if let Some((set, l)) = self.find(addr) {
            self.engine.hint_downgrade(set, l);
        }
    }

    fn stats(&self) -> &LlcStats {
        self.engine.stats()
    }

    fn compression_stats(&self) -> &CompressionStats {
        &self.compression
    }

    fn tag_latency_penalty(&self) -> u32 {
        1
    }

    fn decompression_latency(&self, size: SegmentCount) -> u32 {
        self.bdi.decompression_latency(size, 2)
    }

    fn resident_lines(&self) -> Vec<LineAddr> {
        self.engine
            .iter_valid()
            .map(|(set, _, s)| line_addr(&self.geom, set, s.tag))
            .collect()
    }

    fn encoder_counts(&self) -> Vec<(&'static str, u64)> {
        self.encoders.counts(&self.bdi)
    }

    fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.engine.drain_events()
    }

    fn events_dropped(&self) -> u64 {
        self.engine.events_dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoInner;
    use bv_testkit::fixtures;

    fn compressible(seed: u64) -> CacheLine {
        CacheLine::from_u64_words(&core::array::from_fn(|i| {
            0x4000_0000_0000 + seed * 0x10_0000 + i as u64
        }))
    }

    fn incompressible(seed: u64) -> CacheLine {
        CacheLine::from_u64_words(&core::array::from_fn(|i| {
            (seed + 1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((i as u64) << 56 | (i as u64).wrapping_mul(0x1234_5678_9abc))
        }))
    }

    fn addr(set: u64, k: u64) -> LineAddr {
        LineAddr::new(set + 4 * k)
    }

    fn toy() -> VscLlc {
        VscLlc::new(fixtures::toy_geometry(), fixtures::toy_policy())
    }

    #[test]
    fn holds_up_to_2x_logical_lines() {
        let mut vsc = toy();
        let mut inner = NoInner;
        // 5-segment lines: the 64-segment pool holds 12, but only 8 tags.
        for k in 0..8 {
            vsc.fill(addr(0, k), compressible(k), &mut inner);
        }
        assert_eq!(vsc.resident_lines().len(), 8);
        vsc.assert_invariants();
    }

    #[test]
    fn incompressible_fill_evicts_multiple_small_lines() {
        let mut vsc = toy();
        let mut inner = NoInner;
        // Fill the pool with 5-segment lines (8 tags, 40/64 segments).
        for k in 0..8 {
            vsc.fill(addr(0, k), compressible(k), &mut inner);
        }
        // Two incompressible lines need 32 segments; only 24 are free, so
        // VSC evicts LRU lines (this is its multi-eviction drawback).
        vsc.fill(addr(0, 8), incompressible(8), &mut inner);
        vsc.fill(addr(0, 9), incompressible(9), &mut inner);
        vsc.assert_invariants();
        assert!(vsc.recompactions() >= 1);
        assert!(!vsc.contains(addr(0, 0)), "LRU line evicted first");
    }

    #[test]
    fn growth_triggers_recompaction() {
        let mut vsc = toy();
        let mut inner = NoInner;
        for k in 0..8 {
            vsc.fill(addr(0, k), compressible(k), &mut inner);
        }
        let before = vsc.recompactions();
        vsc.writeback(addr(0, 7), incompressible(7), &mut inner);
        assert!(vsc.recompactions() > before);
        vsc.assert_invariants();
    }

    #[test]
    fn effective_capacity_approaches_2x_for_compressible_streams() {
        let mut vsc = toy();
        let mut inner = NoInner;
        // A long compressible stream over one set.
        for k in 0..200 {
            if !vsc.read(addr(0, k % 16), &mut inner).is_hit() {
                vsc.fill(addr(0, k % 16), compressible(k % 16), &mut inner);
            }
        }
        let ratio = vsc.effective_capacity_ratio();
        assert!(ratio > 1.5, "expected near-2x capacity, got {ratio:.2}");
        vsc.assert_invariants();
    }

    #[test]
    fn uncompressible_stream_keeps_baseline_capacity() {
        let mut vsc = toy();
        let mut inner = NoInner;
        for k in 0..100 {
            if !vsc.read(addr(0, k % 8), &mut inner).is_hit() {
                vsc.fill(addr(0, k % 8), incompressible(k % 8), &mut inner);
            }
        }
        let ratio = vsc.effective_capacity_ratio();
        assert!(
            ratio <= 1.01,
            "incompressible data cannot exceed 1x, got {ratio:.2}"
        );
    }
}
