//! A functional model of the Decoupled Compressed Cache (DCC).
//!
//! Sardashti & Wood (MICRO 2013) organize the compressed cache around
//! **super-blocks**: one tag covers four consecutive cache lines, and the
//! data array is managed as 16-byte sub-blocks reached through
//! back-pointers, so a line's sub-blocks need not be contiguous and no
//! re-compaction is ever required (fixing VSC's first drawback — Section
//! II of the Base-Victim paper).
//!
//! The Base-Victim paper declines an IPC comparison against DCC for the
//! same reason as VSC — the data-array changes (multi-sub-bank activation,
//! extra indirection latency) make access latency incomparable — so, like
//! [`VscLlc`](crate::VscLlc), this is a *functional* model: hits, misses,
//! effective capacity, and DCC's remaining drawbacks (coarse super-block
//! replacement that can evict several useful lines at once, and tag reach
//! wasted on sparse super-blocks).

use crate::slot::Slot;
use crate::{Effects, HitKind, InclusionAgent, LlcOrganization, LlcStats, OpOutcome, ReadOutcome};
use bv_cache::engine::{SetEngine, SlotMeta};
use bv_cache::{CacheGeometry, LineAddr, Policy, PolicyKind, ReplacementPolicy};
use bv_compress::{Bdi, CacheLine, CompressionStats, Compressor, EncoderStats, SegmentCount};
use bv_events::{CacheEvent, EventKind, EventSink, EvictCause, NoEventSink};

/// Lines per super-block (DCC uses 4).
const SUPER_BLOCK_LINES: usize = 4;
/// Sub-block granularity in bytes (DCC manages data at 16 B).
const SUB_BLOCK_BYTES: usize = 16;
/// Sub-blocks per uncompressed line.
const SUB_BLOCKS_PER_LINE: usize = 64 / SUB_BLOCK_BYTES;

/// Payload of one super-block tag: up to four co-resident neighbor lines
/// (index = line address & 3). Validity and the super-block tag live in
/// the engine slot.
#[derive(Clone, Copy, Debug)]
struct SuperLines {
    lines: [Slot; SUPER_BLOCK_LINES],
}

impl SlotMeta for SuperLines {
    fn empty() -> SuperLines {
        SuperLines {
            lines: [Slot::empty(), Slot::empty(), Slot::empty(), Slot::empty()],
        }
    }
}

impl SuperLines {
    fn sub_blocks_used(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.valid)
            .map(|l| l.size.bytes().div_ceil(SUB_BLOCK_BYTES))
            .sum()
    }

    fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

/// Functional DCC: super-block tags over a 16-byte sub-block pool.
///
/// The delta over the set engine is super-block grouping: an engine slot
/// is a *super-block* tag covering four neighbor lines, sets are indexed
/// by super-block address (`sb % sets`, not geometry bit-extraction), and
/// capacity is accounted in 16 B sub-blocks against a per-set pool.
///
/// # Examples
///
/// ```
/// use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
/// use bv_compress::CacheLine;
/// use bv_core::{DccLlc, LlcOrganization, NoInner};
///
/// let mut dcc = DccLlc::new(CacheGeometry::new(4096, 4, 64), PolicyKind::Lru);
/// let mut inner = NoInner;
/// dcc.fill(LineAddr::new(8), CacheLine::zeroed(), &mut inner);
/// assert!(dcc.contains(LineAddr::new(8)));
/// ```
#[derive(Debug)]
pub struct DccLlc<P: ReplacementPolicy = Policy, E: EventSink = NoEventSink> {
    geom: CacheGeometry,
    /// `sets x 2*ways` super-block tags (DCC doubles tag reach like the
    /// other compressed organizations; each tag covers 4 lines).
    engine: SetEngine<P, SuperLines, E>,
    compression: CompressionStats,
    bdi: Bdi,
    encoders: EncoderStats,
    /// Evictions that removed more than one valid line (DCC's coarse
    /// replacement drawback).
    multi_line_evictions: u64,
    resident_samples: u64,
    resident_total: u64,
}

impl DccLlc {
    /// Creates an empty functional DCC over the given physical geometry
    /// with a runtime-selected policy.
    #[must_use]
    pub fn new(geom: CacheGeometry, policy: PolicyKind) -> DccLlc {
        let tags = geom.ways() * 2;
        DccLlc::with_policy(geom, policy.instantiate(geom.sets(), tags))
    }
}

impl<P: ReplacementPolicy> DccLlc<P> {
    /// Creates an empty functional DCC around a concrete policy instance
    /// covering all `2N` super-block tags per set.
    #[must_use]
    pub fn with_policy(geom: CacheGeometry, policy: P) -> DccLlc<P> {
        DccLlc::with_sink(geom, policy, NoEventSink)
    }
}

impl<P: ReplacementPolicy, E: EventSink> DccLlc<P, E> {
    /// Creates an empty functional DCC that reports cache events to
    /// `sink`. The untraced constructors route here with [`NoEventSink`],
    /// which compiles the event path out entirely.
    #[must_use]
    pub fn with_sink(geom: CacheGeometry, policy: P, sink: E) -> DccLlc<P, E> {
        let tags = geom.ways() * 2;
        DccLlc {
            geom,
            engine: SetEngine::with_sink(geom.sets(), tags, policy, sink),
            compression: CompressionStats::default(),
            bdi: Bdi::new(),
            encoders: EncoderStats::new(),
            multi_line_evictions: 0,
            resident_samples: 0,
            resident_total: 0,
        }
    }

    /// Pool capacity per set, in 16 B sub-blocks.
    fn pool_sub_blocks(&self) -> usize {
        self.geom.ways() * SUB_BLOCKS_PER_LINE
    }

    /// Super-blocks are indexed by the line address with the low two bits
    /// (member index) stripped; sets are selected by super-block address
    /// so neighbors share a set.
    fn locate_super(&self, addr: LineAddr) -> (usize, u64, usize) {
        let sb_addr = addr.get() / SUPER_BLOCK_LINES as u64;
        let set = (sb_addr % self.geom.sets() as u64) as usize;
        let tag = sb_addr / self.geom.sets() as u64;
        let member = (addr.get() % SUPER_BLOCK_LINES as u64) as usize;
        (set, tag, member)
    }

    fn find(&self, addr: LineAddr) -> Option<(usize, usize, usize)> {
        let (set, tag, member) = self.locate_super(addr);
        self.engine.find(set, tag).map(|t| (set, t, member))
    }

    fn used_sub_blocks(&self, set: usize) -> usize {
        (0..self.engine.ways())
            .map(|t| self.engine.slot(set, t).meta.sub_blocks_used())
            .sum()
    }

    /// Rebuilds a member line's address from its super-block coordinates.
    fn member_addr(&self, set: usize, sb_tag: u64, member: usize) -> LineAddr {
        LineAddr::new(
            (sb_tag * self.geom.sets() as u64 + set as u64) * SUPER_BLOCK_LINES as u64
                + member as u64,
        )
    }

    fn evict_super(
        &mut self,
        set: usize,
        t: usize,
        inner: &mut dyn InclusionAgent,
        effects: &mut Effects,
    ) {
        let block = self.engine.slot(set, t).copied();
        if block.meta.resident_lines() > 1 {
            self.multi_line_evictions += 1;
        }
        for (m, line) in block.meta.lines.iter().enumerate() {
            if !line.valid {
                continue;
            }
            let line_addr = self.member_addr(set, block.tag, m);
            effects.back_invalidations += 1;
            let inner_dirty = inner.back_invalidate(line_addr);
            if inner_dirty.is_some() || line.dirty {
                effects.memory_writes += 1;
            }
        }
        // The whole super-block leaves under pool pressure — DCC's
        // coarse-replacement drawback, visible as one size-pressure
        // eviction per displaced super-block tag.
        self.engine.invalidate_as(set, t, EvictCause::SizePressure);
    }

    /// Evicts one member line from super-block `t` (never `protect`),
    /// largest footprint first so pressure resolves in the fewest line
    /// losses. Returns `false` when no member is evictable.
    fn evict_member(
        &mut self,
        set: usize,
        t: usize,
        protect: Option<usize>,
        inner: &mut dyn InclusionAgent,
        effects: &mut Effects,
    ) -> bool {
        let block = self.engine.slot(set, t).copied();
        let Some((m, line)) = block
            .meta
            .lines
            .iter()
            .enumerate()
            .filter(|&(m, l)| l.valid && Some(m) != protect)
            .max_by_key(|&(m, l)| (l.size.get(), m))
        else {
            return false;
        };
        let line_addr = self.member_addr(set, block.tag, m);
        effects.back_invalidations += 1;
        let inner_dirty = inner.back_invalidate(line_addr);
        if inner_dirty.is_some() || line.dirty {
            effects.memory_writes += 1;
        }
        if E::ENABLED {
            self.engine.emit(CacheEvent::new(
                set,
                t,
                EventKind::Eviction {
                    tag: block.tag,
                    cause: EvictCause::SizePressure,
                },
            ));
        }
        self.engine.slot_mut(set, t).meta.lines[m] = Slot::empty();
        true
    }

    /// Frees pool space and/or a tag for an incoming line of `needed`
    /// sub-blocks, evicting whole super-blocks in replacement order. The
    /// `home` super-block is spared whole-block eviction; when it alone
    /// exhausts the pool (narrow geometries: four members can need more
    /// sub-blocks than the set owns), its members are shed one line at a
    /// time instead, never touching `protect` (the member a writeback is
    /// growing in place).
    fn make_room(
        &mut self,
        set: usize,
        needed: usize,
        home: Option<usize>,
        protect: Option<usize>,
        inner: &mut dyn InclusionAgent,
        effects: &mut Effects,
    ) {
        loop {
            let has_tag = home.is_some() || self.engine.first_invalid(set).is_some();
            let free = self.pool_sub_blocks() - self.used_sub_blocks(set);
            if free >= needed && has_tag {
                return;
            }
            let victim = (0..self.engine.ways())
                .filter(|&t| self.engine.slot(set, t).valid && Some(t) != home)
                .max_by_key(|&t| self.engine.eviction_rank(set, t));
            match victim {
                Some(t) => self.evict_super(set, t, inner, effects),
                None => {
                    let t = home.expect("over-capacity set has a victim");
                    if !self.evict_member(set, t, protect, inner, effects) {
                        // Only the protected member remains; a single
                        // line always fits the per-set pool.
                        return;
                    }
                }
            }
        }
    }

    fn install(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
        prefetch: bool,
    ) -> Effects {
        debug_assert!(!self.contains(addr), "fill of resident line");
        let mut effects = Effects::default();
        let (set, tag, member) = self.locate_super(addr);
        let size = self.encoders.record(&self.bdi, &data);
        self.compression.record(size);
        let needed = size.bytes().div_ceil(SUB_BLOCK_BYTES);

        // An existing super-block for this neighbor group is "home".
        let home = self.engine.find(set, tag);
        self.make_room(set, needed, home, None, inner, &mut effects);

        // Home was exempted from whole-block eviction in make_room, so
        // it is still valid here; otherwise claim a free tag.
        let t = home.unwrap_or_else(|| {
            self.engine
                .first_invalid(set)
                .expect("make_room guarantees a free tag")
        });
        if E::ENABLED {
            let (_, class) = self.bdi.classified_size(&data);
            self.engine.emit(CacheEvent::new(
                set,
                t,
                EventKind::Compression {
                    encoder: class.map_or(u8::MAX, |c| c as u8),
                    size: size.get(),
                },
            ));
            let kind = if prefetch {
                EventKind::PrefetchFill {
                    tag,
                    size: size.get(),
                }
            } else {
                EventKind::Fill {
                    tag,
                    size: size.get(),
                }
            };
            self.engine.emit(CacheEvent::new(set, t, kind));
        }
        let mut meta = *self.engine.slot(set, t).meta;
        meta.lines[member] = Slot {
            valid: true,
            tag,
            dirty: false,
            data,
            size,
        };
        self.engine.install(set, t, tag, meta, size);

        self.resident_samples += 1;
        self.resident_total += (0..self.engine.ways())
            .map(|t| self.engine.slot(set, t).meta.resident_lines() as u64)
            .sum::<u64>();
        effects
    }

    /// Evictions that removed more than one valid line at once.
    #[must_use]
    pub fn multi_line_evictions(&self) -> u64 {
        self.multi_line_evictions
    }

    /// Clears the capacity accumulators (for steady-state measurement).
    pub fn reset_capacity_samples(&mut self) {
        self.resident_samples = 0;
        self.resident_total = 0;
    }

    /// Average resident lines per set over the physical way count (1.0 =
    /// no benefit; DCC approaches ~1.8x on compressible spatial data).
    #[must_use]
    pub fn effective_capacity_ratio(&self) -> f64 {
        if self.resident_samples == 0 {
            return 1.0;
        }
        self.resident_total as f64 / self.resident_samples as f64 / self.geom.ways() as f64
    }

    /// Verifies the sub-block pool invariant.
    ///
    /// # Panics
    ///
    /// Panics if any set exceeds its pool.
    pub fn assert_invariants(&self) {
        for set in 0..self.geom.sets() {
            assert!(
                self.used_sub_blocks(set) <= self.pool_sub_blocks(),
                "set {set} over pool capacity"
            );
        }
    }
}

impl<P: ReplacementPolicy, E: EventSink> LlcOrganization for DccLlc<P, E> {
    fn name(&self) -> &'static str {
        "dcc"
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn contains(&self, addr: LineAddr) -> bool {
        self.find(addr)
            .is_some_and(|(set, t, m)| self.engine.slot(set, t).meta.lines[m].valid)
    }

    fn read(&mut self, addr: LineAddr, _inner: &mut dyn InclusionAgent) -> ReadOutcome {
        if let Some((set, t, m)) = self.find(addr) {
            let line = &self.engine.slot(set, t).meta.lines[m];
            if line.valid {
                let size = line.size;
                self.engine.demand_hit(set, t);
                return ReadOutcome {
                    kind: HitKind::Base(size),
                    effects: Effects::default(),
                };
            }
        }
        let (set, _, _) = self.locate_super(addr);
        self.engine.demand_miss(set);
        ReadOutcome {
            kind: HitKind::Miss,
            effects: Effects::default(),
        }
    }

    fn writeback(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        let mut effects = Effects::default();
        if let Some((set, t, m)) = self.find(addr) {
            if self.engine.slot(set, t).meta.lines[m].valid {
                // Unchanged data (clean writeback) reuses the size cached in
                // the tag slot; only a real data write pays recompression.
                let line = &self.engine.slot(set, t).meta.lines[m];
                let new_size = if line.data == data {
                    line.size
                } else {
                    self.encoders.record(&self.bdi, &data)
                };
                self.compression.record(new_size);
                let old = line.size;
                if new_size > old {
                    let delta = new_size.bytes().div_ceil(SUB_BLOCK_BYTES)
                        - old.bytes().div_ceil(SUB_BLOCK_BYTES);
                    let free = self.pool_sub_blocks() - self.used_sub_blocks(set);
                    if free < delta {
                        self.make_room(set, delta, Some(t), Some(m), inner, &mut effects);
                    }
                }
                if E::ENABLED {
                    let (_, sb_tag, _) = self.locate_super(addr);
                    self.engine.emit(CacheEvent::new(
                        set,
                        t,
                        EventKind::Writeback {
                            tag: sb_tag,
                            size: new_size.get(),
                        },
                    ));
                }
                let line = &mut self.engine.slot_mut(set, t).meta.lines[m];
                line.data = data;
                line.dirty = true;
                line.size = new_size;
                self.engine.stats_mut().writeback_hits += 1;
                self.engine.absorb(effects);
                return OpOutcome { effects };
            }
        }
        debug_assert!(false, "L2 writeback to non-resident DCC line {addr:?}");
        self.engine.stats_mut().writeback_misses += 1;
        self.engine.stats_mut().memory_writes += 1;
        OpOutcome {
            effects: Effects {
                memory_writes: 1,
                ..Effects::default()
            },
        }
    }

    fn fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        let effects = self.install(addr, data, inner, false);
        self.engine.stats_mut().demand_fills += 1;
        self.engine.absorb(effects);
        OpOutcome { effects }
    }

    fn prefetch_fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> Option<OpOutcome> {
        if self.contains(addr) {
            self.engine.stats_mut().prefetch_hits += 1;
            return None;
        }
        let effects = self.install(addr, data, inner, true);
        self.engine.stats_mut().prefetch_fills += 1;
        self.engine.absorb(effects);
        Some(OpOutcome { effects })
    }

    fn stats(&self) -> &LlcStats {
        self.engine.stats()
    }

    fn compression_stats(&self) -> &CompressionStats {
        &self.compression
    }

    fn tag_latency_penalty(&self) -> u32 {
        // DCC's tag-data indirection costs extra pipeline stages on top
        // of the doubled tags (Section II); functional model only.
        2
    }

    fn decompression_latency(&self, size: SegmentCount) -> u32 {
        self.bdi.decompression_latency(size, 2)
    }

    fn peek_data(&self, addr: LineAddr) -> Option<CacheLine> {
        let (set, t, m) = self.find(addr)?;
        let line = &self.engine.slot(set, t).meta.lines[m];
        line.valid.then_some(line.data)
    }

    fn resident_lines(&self) -> Vec<LineAddr> {
        let mut out = Vec::new();
        for (set, _, block) in self.engine.iter_valid() {
            for (m, line) in block.meta.lines.iter().enumerate() {
                if line.valid {
                    out.push(self.member_addr(set, block.tag, m));
                }
            }
        }
        out
    }

    fn encoder_counts(&self) -> Vec<(&'static str, u64)> {
        self.encoders.counts(&self.bdi)
    }

    fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.engine.drain_events()
    }

    fn events_dropped(&self) -> u64 {
        self.engine.events_dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoInner;
    use bv_testkit::fixtures;

    fn compressible(seed: u64) -> CacheLine {
        CacheLine::from_u64_words(&core::array::from_fn(|i| {
            0x4000_0000_0000 + seed * 0x10_0000 + i as u64
        }))
    }

    fn incompressible(seed: u64) -> CacheLine {
        CacheLine::from_u64_words(&core::array::from_fn(|i| {
            (seed + 1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((i as u64) << 56 | (i as u64).wrapping_mul(0x1234_5678_9abc))
        }))
    }

    fn toy() -> DccLlc {
        DccLlc::new(fixtures::toy_geometry(), fixtures::toy_policy())
    }

    /// Four consecutive lines share one super-block and one set.
    fn sb_addr(set: u64, sb: u64, member: u64) -> LineAddr {
        LineAddr::new((sb * 4 + set) * 4 + member) // 4 sets
    }

    #[test]
    fn neighbors_share_a_super_block_tag() {
        let mut dcc = toy();
        let mut inner = NoInner;
        for m in 0..4 {
            dcc.fill(sb_addr(0, 0, m), compressible(m), &mut inner);
        }
        // All four lines resident, but only one tag consumed: seven more
        // tag slots remain for other super-blocks.
        for m in 0..4 {
            assert!(dcc.contains(sb_addr(0, 0, m)));
        }
        assert_eq!(dcc.resident_lines().len(), 4);
        dcc.assert_invariants();
    }

    #[test]
    fn spatial_compressible_data_approaches_2x_capacity() {
        let mut dcc = toy();
        let mut inner = NoInner;
        // 8 super-blocks x 4 lines of 5-segment data in one set: 32 lines
        // need 32 x 2 sub-blocks = 64... pool is 16 sub-blocks per way x 4
        // = 16 lines worth. 5-segment lines take 2 sub-blocks (20 B), so
        // 8 lines per way fit: 2x the uncompressed 4.
        let mut resident = 0;
        for sb in 0..8u64 {
            for m in 0..4 {
                dcc.fill(sb_addr(0, sb, m), compressible(sb * 4 + m), &mut inner);
            }
        }
        for sb in 0..8u64 {
            for m in 0..4 {
                if dcc.contains(sb_addr(0, sb, m)) {
                    resident += 1;
                }
            }
        }
        assert!(
            resident >= 8,
            "expected >= 2x capacity, got {resident} lines"
        );
        dcc.assert_invariants();
    }

    #[test]
    fn super_block_eviction_removes_multiple_lines() {
        let mut dcc = toy();
        let mut inner = NoInner;
        for m in 0..4 {
            dcc.fill(sb_addr(1, 0, m), incompressible(m), &mut inner);
        }
        // Fill incompressible super-blocks until the first one is evicted.
        for sb in 1..4u64 {
            dcc.fill(sb_addr(1, sb, 0), incompressible(10 + sb), &mut inner);
        }
        assert!(
            dcc.multi_line_evictions() >= 1,
            "coarse replacement must evict grouped lines"
        );
        dcc.assert_invariants();
    }

    #[test]
    fn growth_makes_room_without_relocating() {
        let mut dcc = toy();
        let mut inner = NoInner;
        // Two full super-blocks of 5-segment lines: 8 lines x 2 sub-blocks
        // fill the 16-sub-block pool exactly.
        for sb in 0..2u64 {
            for m in 0..4 {
                dcc.fill(sb_addr(2, sb, m), compressible(sb * 4 + m), &mut inner);
            }
        }
        // Grow one line to full size: room is made by evicting other
        // super-blocks, never by re-compacting (no recompaction counter
        // exists — that is the point of DCC).
        dcc.writeback(sb_addr(2, 0, 0), incompressible(99), &mut inner);
        assert!(dcc.contains(sb_addr(2, 0, 0)));
        dcc.assert_invariants();
    }

    #[test]
    fn read_hit_miss_accounting() {
        let mut dcc = toy();
        let mut inner = NoInner;
        let a = sb_addr(3, 0, 1);
        assert!(!dcc.read(a, &mut inner).is_hit());
        dcc.fill(a, compressible(1), &mut inner);
        assert!(dcc.read(a, &mut inner).is_hit());
        // A different member of the same super-block is NOT resident.
        assert!(!dcc.read(sb_addr(3, 0, 2), &mut inner).is_hit());
        assert_eq!(dcc.stats().base_hits, 1);
        assert_eq!(dcc.stats().read_misses, 2);
    }
}
