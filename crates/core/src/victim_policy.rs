//! Victim-cache insertion/replacement policies (Section VI.B.4).
//!
//! When the Baseline cache displaces a (now clean) line, the Base-Victim
//! architecture looks for a physical way whose base line leaves enough free
//! segments for the displaced line. Several selection rules are studied in
//! the paper's sensitivity analysis; the default is inspired by ECM (Baek
//! et al., HPCA 2013): *"We first search for the way that can fit the
//! victim line. Then among all the candidates, we select the way with the
//! largest size of the base partner line."*

use bv_compress::SegmentCount;

/// A candidate way for inserting a line into the Victim cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct VictimCandidate {
    /// Physical way index.
    pub way: usize,
    /// Compressed size of the base partner line (MIN if the base slot is
    /// empty).
    pub base_size: SegmentCount,
    /// Whether the victim slot of this way is currently occupied (its
    /// occupant would be silently dropped).
    pub occupied: bool,
    /// Recency rank of the current victim-slot occupant (higher = older);
    /// 0 for empty slots. Used by the LRU variant.
    pub occupant_age: u64,
}

/// How the Victim cache chooses among fitting ways.
///
/// # Examples
///
/// ```
/// use bv_core::VictimPolicyKind;
///
/// assert_eq!(VictimPolicyKind::default(), VictimPolicyKind::EcmLargestBase);
/// assert_eq!(VictimPolicyKind::EcmLargestBase.name(), "ecm-largest-base");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum VictimPolicyKind {
    /// ECM-inspired best fit: the fitting way with the largest base
    /// partner (paper default).
    #[default]
    EcmLargestBase,
    /// Uniform random among fitting ways (used in the paper's worked
    /// examples).
    RandomFit,
    /// Evict the oldest victim-slot occupant among fitting ways,
    /// preferring empty slots (the "LRU" variant of Section VI.B.4).
    LruFit,
    /// The fitting way with the *smallest* base partner (worst fit) — an
    /// intentionally weak control for the sensitivity study.
    SmallestBase,
}

impl VictimPolicyKind {
    /// All variants, for the Section VI.B.4 sweep.
    pub const ALL: [VictimPolicyKind; 4] = [
        VictimPolicyKind::EcmLargestBase,
        VictimPolicyKind::RandomFit,
        VictimPolicyKind::LruFit,
        VictimPolicyKind::SmallestBase,
    ];

    /// Short stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VictimPolicyKind::EcmLargestBase => "ecm-largest-base",
            VictimPolicyKind::RandomFit => "random-fit",
            VictimPolicyKind::LruFit => "lru-fit",
            VictimPolicyKind::SmallestBase => "smallest-base",
        }
    }

    /// Picks the destination way among `candidates` (all already verified
    /// to fit). Returns `None` when `candidates` is empty. `rng_draw` is a
    /// fresh pseudo-random value supplied by the caller so the policy stays
    /// stateless.
    pub(crate) fn choose(
        self,
        candidates: &[VictimCandidate],
        rng_draw: u64,
    ) -> Option<VictimCandidate> {
        if candidates.is_empty() {
            return None;
        }
        let chosen = match self {
            VictimPolicyKind::EcmLargestBase => candidates
                .iter()
                // Largest base first; prefer unoccupied victim slots on
                // ties; finally lowest way index (max_by_key keeps the
                // *last* max, so invert the way index).
                .max_by_key(|c| (c.base_size.get(), !c.occupied, usize::MAX - c.way))
                .copied(),
            VictimPolicyKind::RandomFit => candidates
                .get(rng_draw as usize % candidates.len())
                .copied(),
            VictimPolicyKind::LruFit => candidates
                .iter()
                .max_by_key(|c| (!c.occupied, c.occupant_age, usize::MAX - c.way))
                .copied(),
            VictimPolicyKind::SmallestBase => candidates
                .iter()
                .max_by_key(|c| (u8::MAX - c.base_size.get(), !c.occupied, usize::MAX - c.way))
                .copied(),
        };
        chosen
    }
}

impl core::fmt::Display for VictimPolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(way: usize, base: u8, occupied: bool, age: u64) -> VictimCandidate {
        VictimCandidate {
            way,
            base_size: SegmentCount::new(base),
            occupied,
            occupant_age: age,
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        for kind in VictimPolicyKind::ALL {
            assert_eq!(kind.choose(&[], 0), None);
        }
    }

    #[test]
    fn ecm_picks_largest_base() {
        let cands = [
            cand(0, 4, false, 0),
            cand(1, 10, true, 5),
            cand(2, 7, false, 0),
        ];
        let chosen = VictimPolicyKind::EcmLargestBase.choose(&cands, 0).unwrap();
        assert_eq!(chosen.way, 1, "way 1 has the largest base partner");
    }

    #[test]
    fn ecm_prefers_empty_slot_on_tie() {
        let cands = [cand(0, 8, true, 9), cand(1, 8, false, 0)];
        let chosen = VictimPolicyKind::EcmLargestBase.choose(&cands, 0).unwrap();
        assert_eq!(chosen.way, 1);
    }

    #[test]
    fn ecm_breaks_remaining_ties_by_lowest_way() {
        let cands = [cand(2, 8, false, 0), cand(5, 8, false, 0)];
        let chosen = VictimPolicyKind::EcmLargestBase.choose(&cands, 0).unwrap();
        assert_eq!(chosen.way, 2);
    }

    #[test]
    fn random_fit_is_uniform_over_candidates() {
        let cands = [
            cand(0, 4, false, 0),
            cand(1, 10, true, 5),
            cand(2, 7, false, 0),
        ];
        let mut hits = [0usize; 3];
        for draw in 0..300u64 {
            let c = VictimPolicyKind::RandomFit.choose(&cands, draw).unwrap();
            hits[c.way] += 1;
        }
        assert!(hits.iter().all(|&h| h == 100), "{hits:?}");
    }

    #[test]
    fn lru_fit_prefers_empty_then_oldest() {
        let cands = [
            cand(0, 4, true, 100),
            cand(1, 10, true, 2),
            cand(2, 7, false, 0),
        ];
        let chosen = VictimPolicyKind::LruFit.choose(&cands, 0).unwrap();
        assert_eq!(chosen.way, 2, "empty slots avoid any eviction");
        let occupied = [cand(0, 4, true, 100), cand(1, 10, true, 2)];
        let chosen = VictimPolicyKind::LruFit.choose(&occupied, 0).unwrap();
        assert_eq!(chosen.way, 0, "oldest occupant evicted first");
    }

    #[test]
    fn smallest_base_is_the_inverse_of_ecm() {
        let cands = [cand(0, 4, false, 0), cand(1, 10, true, 5)];
        let chosen = VictimPolicyKind::SmallestBase.choose(&cands, 0).unwrap();
        assert_eq!(chosen.way, 0);
    }
}
