//! Area-overhead model (Section IV.C of the paper).
//!
//! The paper computes the cost of doubling tags analytically: for a 2 MB
//! 16-way cache with 48-bit physical addresses, each way stores 64 B of
//! data, a 31-bit address tag, and one byte of metadata. Opportunistic
//! compression adds a second 31-bit tag plus 9 metadata bits (two 4-bit
//! size fields and a victim valid bit), i.e. 40 extra bits against the
//! original 39-bit tag+metadata and 512-bit data — a 7.3% overhead — and
//! the BDI compression/decompression logic adds another 1.2% (estimate
//! from the DCC paper), for 8.5% total.

/// Parameters of the area model.
///
/// # Examples
///
/// ```
/// use bv_core::area::AreaModel;
///
/// let paper = AreaModel::paper_default();
/// assert!((paper.tag_overhead_fraction() - 0.073).abs() < 0.002);
/// assert!((paper.total_overhead_fraction() - 0.085).abs() < 0.002);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    /// Physical address width in bits.
    pub address_bits: u32,
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Per-way metadata bits in the baseline (replacement, coherence,
    /// tracking — "an additional byte" in the paper).
    pub baseline_metadata_bits: u32,
    /// Size-field bits per tag (4 bits to align at 4-byte boundaries).
    pub size_bits: u32,
    /// Compression/decompression logic area as a fraction of cache area
    /// (1.2%, scaled from the DCC paper).
    pub logic_fraction: f64,
}

impl AreaModel {
    /// The paper's configuration: 2 MB, 16-way, 64 B lines, 48-bit
    /// addresses.
    #[must_use]
    pub fn paper_default() -> AreaModel {
        AreaModel {
            address_bits: 48,
            cache_bytes: 2 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
            baseline_metadata_bits: 8,
            size_bits: 4,
            logic_fraction: 0.012,
        }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.cache_bytes / (u64::from(self.ways) * u64::from(self.line_bytes))
    }

    /// Set-index bits.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// Line-offset bits.
    #[must_use]
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Address-tag width: address bits minus index and offset bits
    /// (31 for the paper's 2 MB configuration).
    #[must_use]
    pub fn tag_bits(&self) -> u32 {
        self.address_bits - self.index_bits() - self.offset_bits()
    }

    /// Bits added per physical way by opportunistic compression: one more
    /// address tag, two size fields, and a victim valid bit.
    #[must_use]
    pub fn added_bits_per_way(&self) -> u32 {
        self.tag_bits() + 2 * self.size_bits + 1
    }

    /// Baseline bits per way: tag + metadata + data.
    #[must_use]
    pub fn baseline_bits_per_way(&self) -> u32 {
        self.tag_bits() + self.baseline_metadata_bits + self.line_bytes * 8
    }

    /// Tag-array overhead as a fraction of the original tag + data array.
    ///
    /// The paper folds the baseline metadata byte out of the denominator
    /// ("40b/(39b+512b) = 7.3%"), so we do the same.
    #[must_use]
    pub fn tag_overhead_fraction(&self) -> f64 {
        let added = f64::from(self.added_bits_per_way());
        let base = f64::from(self.tag_bits() + self.size_bits * 2) + f64::from(self.line_bytes * 8);
        added / base
    }

    /// Total overhead including compression/decompression logic (8.5% for
    /// the paper's configuration).
    #[must_use]
    pub fn total_overhead_fraction(&self) -> f64 {
        self.tag_overhead_fraction() + self.logic_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tag_width_is_31_bits() {
        let m = AreaModel::paper_default();
        // 48 address bits - 11 index bits - 6 offset bits = 31.
        assert_eq!(m.index_bits(), 11);
        assert_eq!(m.offset_bits(), 6);
        assert_eq!(m.tag_bits(), 31);
    }

    #[test]
    fn paper_adds_40_bits_per_way() {
        let m = AreaModel::paper_default();
        // 31-bit tag + 2x4 size bits + 1 valid bit = 40.
        assert_eq!(m.added_bits_per_way(), 40);
    }

    #[test]
    fn overhead_fractions_match_section_4c() {
        let m = AreaModel::paper_default();
        // 40 / (39 + 512) = 7.26% ≈ 7.3%.
        assert!((m.tag_overhead_fraction() - 40.0 / 551.0).abs() < 1e-12);
        assert!((m.total_overhead_fraction() - (40.0 / 551.0 + 0.012)).abs() < 1e-12);
        assert!((m.total_overhead_fraction() - 0.085).abs() < 0.002);
    }

    #[test]
    fn bigger_caches_have_smaller_tags() {
        let mut m = AreaModel::paper_default();
        m.cache_bytes = 4 * 1024 * 1024;
        assert_eq!(m.tag_bits(), 30);
        assert!(m.tag_overhead_fraction() < AreaModel::paper_default().tag_overhead_fraction());
    }
}
