//! The logical-line slot shared by all compressed LLC organizations.

use bv_cache::{CacheGeometry, LineAddr};
use bv_compress::{CacheLine, Compressor, SegmentCount};

/// One logical cache line: tag, coherence/compression metadata, and data.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Slot {
    pub valid: bool,
    pub tag: u64,
    pub dirty: bool,
    pub data: CacheLine,
    pub size: SegmentCount,
}

impl Slot {
    pub fn empty() -> Slot {
        Slot {
            valid: false,
            tag: 0,
            dirty: false,
            data: CacheLine::zeroed(),
            size: SegmentCount::FULL,
        }
    }

    /// Installs a line into this slot, compressing it with `compressor`.
    pub fn install(&mut self, tag: u64, data: CacheLine, dirty: bool, compressor: &dyn Compressor) {
        *self = Slot {
            valid: true,
            tag,
            dirty,
            data,
            size: compressor.compressed_size(&data),
        };
    }

    /// Clears the slot.
    pub fn clear(&mut self) {
        *self = Slot::empty();
    }

    /// Reconstructs the full line address from set and geometry.
    pub fn addr(&self, geom: &CacheGeometry, set: usize) -> LineAddr {
        LineAddr::new((self.tag << geom.index_bits()) | set as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bv_compress::Bdi;

    #[test]
    fn install_compresses() {
        let bdi = Bdi::new();
        let mut s = Slot::empty();
        s.install(7, CacheLine::zeroed(), false, &bdi);
        assert!(s.valid);
        assert_eq!(s.size, SegmentCount::MIN);
        s.clear();
        assert!(!s.valid);
    }

    #[test]
    fn addr_roundtrips_through_tag() {
        let geom = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
        let addr = LineAddr::new(0xdead_beef);
        let set = geom.set_index(addr.get());
        let mut s = Slot::empty();
        s.install(
            geom.tag(addr.get()),
            CacheLine::zeroed(),
            false,
            &Bdi::new(),
        );
        assert_eq!(s.addr(&geom, set), addr);
    }
}
