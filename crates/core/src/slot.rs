//! The logical-line slot shared by all compressed LLC organizations.

use bv_cache::engine::SlotMeta;
use bv_cache::{CacheGeometry, LineAddr};
use bv_compress::{CacheLine, SegmentCount};

/// Per-line payload stored in a [`SetEngine`](bv_cache::engine::SetEngine)
/// slot: dirty bit, data, and compressed size. The engine owns validity
/// and the tag.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LineMeta {
    pub dirty: bool,
    pub data: CacheLine,
    pub size: SegmentCount,
}

impl SlotMeta for LineMeta {
    fn empty() -> LineMeta {
        LineMeta {
            dirty: false,
            data: CacheLine::zeroed(),
            size: SegmentCount::FULL,
        }
    }
}

/// Reconstructs a line address from its geometry-extracted parts.
pub(crate) fn line_addr(geom: &CacheGeometry, set: usize, tag: u64) -> LineAddr {
    LineAddr::new((tag << geom.index_bits()) | set as u64)
}

/// One logical cache line outside the engine's tag array: tag,
/// coherence/compression metadata, and data. Used for the auxiliary tag
/// stores the organizations keep beside the Baseline engine (the
/// Base-Victim victim cache, DCC's super-block members).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Slot {
    pub valid: bool,
    pub tag: u64,
    pub dirty: bool,
    pub data: CacheLine,
    pub size: SegmentCount,
}

impl Slot {
    pub fn empty() -> Slot {
        Slot {
            valid: false,
            tag: 0,
            dirty: false,
            data: CacheLine::zeroed(),
            size: SegmentCount::FULL,
        }
    }

    /// Clears the slot.
    pub fn clear(&mut self) {
        *self = Slot::empty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_is_invalid_and_full_sized() {
        let mut s = Slot::empty();
        assert!(!s.valid);
        assert_eq!(s.size, SegmentCount::FULL);
        s.valid = true;
        s.clear();
        assert!(!s.valid);
    }

    #[test]
    fn line_addr_roundtrips_through_tag() {
        let geom = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
        let addr = LineAddr::new(0xdead_beef);
        let set = geom.set_index(addr.get());
        let tag = geom.tag(addr.get());
        assert_eq!(line_addr(&geom, set, tag), addr);
    }

    #[test]
    fn empty_line_meta_matches_empty_slot() {
        let m = LineMeta::empty();
        let s = Slot::empty();
        assert_eq!(m.dirty, s.dirty);
        assert_eq!(m.size, s.size);
    }
}
