//! Compressed last-level-cache organizations: the Base-Victim architecture
//! and the baselines it is evaluated against.
//!
//! This crate implements the primary contribution of Gaur, Alameldeen, and
//! Subramoney, *"Base-Victim Compression: An Opportunistic Cache
//! Compression Architecture"* (ISCA 2016), plus every LLC organization the
//! paper compares it to:
//!
//! * [`UncompressedLlc`] — the baseline cache every figure normalizes to.
//! * [`TwoTagLlc`] — the naive two-tags-per-way design of Section III that
//!   victimizes partner lines (Figure 6; loses 12% on average).
//! * [`TwoTagEcmLlc`] — the modified two-tag design with ECM-style
//!   size-aware victim selection (Figure 7; still has heavy outliers).
//! * [`BaseVictimLlc`] — the paper's proposal (Section IV): the Baseline
//!   cache mirrors the uncompressed cache exactly, and replacement victims
//!   are *opportunistically* retained in a always-clean Victim cache when
//!   compression lets them share a physical way (Figures 8-13).
//! * [`VscLlc`] — a functional model of the Decoupled Variable-Segment
//!   Cache used for the effective-capacity comparison in Section V.
//! * [`DccLlc`] — a functional model of the Decoupled Compressed Cache
//!   (super-block tags, 16 B sub-blocks), the Section II state of the art
//!   whose data-array complexity Base-Victim avoids.
//!
//! All organizations speak the same [`LlcOrganization`] interface so the
//! timing simulator (`bv-sim`) and the experiment harness can swap them
//! freely.
//!
//! # Examples
//!
//! ```
//! use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
//! use bv_compress::CacheLine;
//! use bv_core::{BaseVictimLlc, LlcOrganization, NoInner, VictimPolicyKind};
//!
//! let geom = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
//! let mut llc = BaseVictimLlc::new(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
//!
//! let mut inner = NoInner;
//! let addr = LineAddr::new(42);
//! assert!(!llc.read(addr, &mut inner).is_hit());
//! llc.fill(addr, CacheLine::zeroed(), &mut inner);
//! assert!(llc.read(addr, &mut inner).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod base_victim;
mod dcc;
mod slot;
mod two_tag;
mod uncompressed;
mod victim_policy;
mod vsc;

pub use base_victim::{BaseVictimLlc, InclusionMode};
pub use dcc::DccLlc;
pub use two_tag::{TwoTagEcmLlc, TwoTagLlc};
pub use uncompressed::UncompressedLlc;
pub use victim_policy::VictimPolicyKind;
pub use vsc::VscLlc;

use bv_cache::{CacheGeometry, LineAddr};
use bv_compress::{CacheLine, CompressionStats, SegmentCount};
use core::fmt;

/// Interface through which the LLC drives inclusive inner caches (L1/L2).
///
/// When an inclusive LLC displaces a line — on eviction, or when the
/// Base-Victim architecture moves a line into its always-clean Victim cache
/// — copies in the inner levels must be invalidated and any modified inner
/// data recovered so it can be written back to memory.
pub trait InclusionAgent {
    /// Invalidates `addr` in every inner cache. Returns the freshest dirty
    /// data if an inner copy was modified, or `None` if all inner copies
    /// were clean or absent.
    fn back_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine>;
}

/// An [`InclusionAgent`] for standalone LLC use (no inner caches).
///
/// Useful in unit tests and in functional (non-timing) studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInner;

impl InclusionAgent for NoInner {
    fn back_invalidate(&mut self, _addr: LineAddr) -> Option<CacheLine> {
        None
    }
}

/// Where a demand read found its line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitKind {
    /// Hit in the Baseline cache (or the only cache, for uncompressed),
    /// with the line's stored compressed size.
    Base(SegmentCount),
    /// Hit in the Victim cache (Base-Victim only); the line was promoted.
    Victim(SegmentCount),
    /// Not present; the caller must fetch from memory and call
    /// [`LlcOrganization::fill`].
    Miss,
}

impl HitKind {
    /// `true` for either hit flavor.
    #[must_use]
    pub fn is_hit(self) -> bool {
        !matches!(self, HitKind::Miss)
    }

    /// The stored compressed size, if this was a hit.
    #[must_use]
    pub fn size(self) -> Option<SegmentCount> {
        match self {
            HitKind::Base(s) | HitKind::Victim(s) => Some(s),
            HitKind::Miss => None,
        }
    }
}

/// Side effects of one LLC operation, for the timing and energy models.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Effects {
    /// Lines written back to memory by this operation.
    pub memory_writes: u64,
    /// Back-invalidation messages sent to the inner caches.
    pub back_invalidations: u64,
    /// Data migrations between physical ways (Baseline <-> Victim moves),
    /// each costing one data-array read plus one write.
    pub migrations: u64,
    /// Compressed partner lines silently dropped to make room.
    pub partner_evictions: u64,
}

impl Effects {
    /// Accumulates another operation's effects.
    pub fn absorb(&mut self, other: Effects) {
        self.memory_writes += other.memory_writes;
        self.back_invalidations += other.back_invalidations;
        self.migrations += other.migrations;
        self.partner_evictions += other.partner_evictions;
    }
}

/// Outcome of a demand read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Hit classification (and size, for the decompression-latency model).
    pub kind: HitKind,
    /// Side effects (victim promotions can evict and write back).
    pub effects: Effects,
}

impl ReadOutcome {
    /// Convenience: `true` for either hit flavor.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        self.kind.is_hit()
    }
}

/// Outcome of a fill or writeback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpOutcome {
    /// Side effects of the operation.
    pub effects: Effects,
}

/// Counters shared by every LLC organization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Demand reads that hit the Baseline cache (or the sole array).
    pub base_hits: u64,
    /// Demand reads that hit the Victim cache.
    pub victim_hits: u64,
    /// Demand reads that missed entirely.
    pub read_misses: u64,
    /// Writebacks from the L2 that hit.
    pub writeback_hits: u64,
    /// Writebacks from the L2 that missed (forwarded to memory; impossible
    /// under strict inclusion and asserted against in tests).
    pub writeback_misses: u64,
    /// Prefetch fills installed.
    pub prefetch_fills: u64,
    /// Prefetch probes that hit (no fill needed).
    pub prefetch_hits: u64,
    /// Demand fills installed (each implies one memory read).
    pub demand_fills: u64,
    /// Total lines written back to memory.
    pub memory_writes: u64,
    /// Total back-invalidations sent to inner caches.
    pub back_invalidations: u64,
    /// Total Baseline <-> Victim data migrations.
    pub migrations: u64,
    /// Compressed partner lines silently evicted.
    pub partner_evictions: u64,
    /// Victim-cache insertion attempts that found a fitting way.
    pub victim_inserts: u64,
    /// Victim-cache insertion attempts that found no fitting way.
    pub victim_insert_failures: u64,
}

impl LlcStats {
    /// Demand reads that hit anywhere in the LLC.
    #[must_use]
    pub fn read_hits(&self) -> u64 {
        self.base_hits + self.victim_hits
    }

    /// Counter-wise difference `self - snapshot`, for excluding warmup
    /// from measurements.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `snapshot` was taken after `self`.
    #[must_use]
    pub fn since(&self, snapshot: &LlcStats) -> LlcStats {
        LlcStats {
            base_hits: self.base_hits - snapshot.base_hits,
            victim_hits: self.victim_hits - snapshot.victim_hits,
            read_misses: self.read_misses - snapshot.read_misses,
            writeback_hits: self.writeback_hits - snapshot.writeback_hits,
            writeback_misses: self.writeback_misses - snapshot.writeback_misses,
            prefetch_fills: self.prefetch_fills - snapshot.prefetch_fills,
            prefetch_hits: self.prefetch_hits - snapshot.prefetch_hits,
            demand_fills: self.demand_fills - snapshot.demand_fills,
            memory_writes: self.memory_writes - snapshot.memory_writes,
            back_invalidations: self.back_invalidations - snapshot.back_invalidations,
            migrations: self.migrations - snapshot.migrations,
            partner_evictions: self.partner_evictions - snapshot.partner_evictions,
            victim_inserts: self.victim_inserts - snapshot.victim_inserts,
            victim_insert_failures: self.victim_insert_failures - snapshot.victim_insert_failures,
        }
    }

    /// All demand reads.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.read_hits() + self.read_misses
    }

    /// Memory reads caused by demand misses plus prefetch fills.
    #[must_use]
    pub fn memory_reads(&self) -> u64 {
        self.demand_fills + self.prefetch_fills
    }

    /// Demand hit rate in [0, 1]; 0 with no reads.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.reads() == 0 {
            0.0
        } else {
            self.read_hits() as f64 / self.reads() as f64
        }
    }

    fn absorb_effects(&mut self, effects: Effects) {
        self.memory_writes += effects.memory_writes;
        self.back_invalidations += effects.back_invalidations;
        self.migrations += effects.migrations;
        self.partner_evictions += effects.partner_evictions;
    }
}

impl fmt::Display for LlcStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {} (hits {} + victim {}), misses {}, mem writes {}",
            self.reads(),
            self.base_hits,
            self.victim_hits,
            self.read_misses,
            self.memory_writes
        )
    }
}

/// A last-level-cache organization.
///
/// The timing simulator drives this interface with demand reads, writebacks
/// arriving from the L2, prefetch probes, and fills after memory fetches.
/// Inclusion is enforced through the [`InclusionAgent`] the caller passes
/// in.
pub trait LlcOrganization {
    /// Organization name for reports (e.g. `"base-victim"`).
    fn name(&self) -> &'static str;

    /// The underlying physical geometry (per-set data ways).
    fn geometry(&self) -> CacheGeometry;

    /// Whether the line is present (in any logical slot). Does not perturb
    /// replacement state.
    fn contains(&self, addr: LineAddr) -> bool;

    /// Demand read. On a miss the caller fetches from memory and calls
    /// [`fill`](LlcOrganization::fill).
    fn read(&mut self, addr: LineAddr, inner: &mut dyn InclusionAgent) -> ReadOutcome;

    /// Dirty writeback arriving from the L2.
    fn writeback(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome;

    /// Installs a (clean) line fetched from memory after a demand miss.
    fn fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome;

    /// Installs a (clean) line fetched by the prefetcher. Returns `None`
    /// if the line was already present (probe hit, nothing installed).
    fn prefetch_fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> Option<OpOutcome>;

    /// The current data contents of a resident line (post-decompression
    /// view), or `None` if absent. Used by the hierarchy to fill inner
    /// caches on LLC hits. Does not perturb replacement state.
    fn peek_data(&self, addr: LineAddr) -> Option<CacheLine>;

    /// Applies a replacement downgrade hint to a resident line (CHAR
    /// sends these on clean L2 evictions). Organizations forward the hint
    /// to their baseline replacement policy; the default ignores it.
    fn hint_downgrade(&mut self, _addr: LineAddr) {}

    /// Accumulated statistics.
    fn stats(&self) -> &LlcStats;

    /// Distribution of compressed sizes observed at fill/writeback time.
    fn compression_stats(&self) -> &CompressionStats;

    /// Extra tag-lookup cycles relative to the uncompressed baseline
    /// (1 for every doubled-tag organization, 0 otherwise).
    fn tag_latency_penalty(&self) -> u32;

    /// Decompression cycles for a hit of the given size (0 for
    /// uncompressed organizations and for zero/full lines).
    fn decompression_latency(&self, size: SegmentCount) -> u32;

    /// Addresses of all currently resident logical lines, in no particular
    /// order. For invariant checks.
    fn resident_lines(&self) -> Vec<LineAddr>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_kind_accessors() {
        let h = HitKind::Base(SegmentCount::new(8));
        assert!(h.is_hit());
        assert_eq!(h.size(), Some(SegmentCount::new(8)));
        assert!(!HitKind::Miss.is_hit());
        assert_eq!(HitKind::Miss.size(), None);
    }

    #[test]
    fn effects_absorb_sums() {
        let mut a = Effects {
            memory_writes: 1,
            ..Effects::default()
        };
        a.absorb(Effects {
            memory_writes: 2,
            migrations: 3,
            ..Effects::default()
        });
        assert_eq!(a.memory_writes, 3);
        assert_eq!(a.migrations, 3);
    }

    #[test]
    fn stats_rates() {
        let stats = LlcStats {
            base_hits: 6,
            victim_hits: 2,
            read_misses: 2,
            demand_fills: 2,
            prefetch_fills: 1,
            ..LlcStats::default()
        };
        assert_eq!(stats.read_hits(), 8);
        assert_eq!(stats.reads(), 10);
        assert_eq!(stats.memory_reads(), 3);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn no_inner_reports_clean() {
        assert_eq!(NoInner.back_invalidate(LineAddr::new(1)), None);
    }
}
