//! Compressed last-level-cache organizations: the Base-Victim architecture
//! and the baselines it is evaluated against.
//!
//! This crate implements the primary contribution of Gaur, Alameldeen, and
//! Subramoney, *"Base-Victim Compression: An Opportunistic Cache
//! Compression Architecture"* (ISCA 2016), plus every LLC organization the
//! paper compares it to:
//!
//! * [`UncompressedLlc`] — the baseline cache every figure normalizes to.
//! * [`TwoTagLlc`] — the naive two-tags-per-way design of Section III that
//!   victimizes partner lines (Figure 6; loses 12% on average).
//! * [`TwoTagEcmLlc`] — the modified two-tag design with ECM-style
//!   size-aware victim selection (Figure 7; still has heavy outliers).
//! * [`BaseVictimLlc`] — the paper's proposal (Section IV): the Baseline
//!   cache mirrors the uncompressed cache exactly, and replacement victims
//!   are *opportunistically* retained in a always-clean Victim cache when
//!   compression lets them share a physical way (Figures 8-13).
//! * [`VscLlc`] — a functional model of the Decoupled Variable-Segment
//!   Cache used for the effective-capacity comparison in Section V.
//! * [`DccLlc`] — a functional model of the Decoupled Compressed Cache
//!   (super-block tags, 16 B sub-blocks), the Section II state of the art
//!   whose data-array complexity Base-Victim avoids.
//!
//! All organizations speak the same [`LlcOrganization`] interface so the
//! timing simulator (`bv-sim`) and the experiment harness can swap them
//! freely.
//!
//! # Examples
//!
//! ```
//! use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
//! use bv_compress::CacheLine;
//! use bv_core::{BaseVictimLlc, LlcOrganization, NoInner, VictimPolicyKind};
//!
//! let geom = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
//! let mut llc = BaseVictimLlc::new(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
//!
//! let mut inner = NoInner;
//! let addr = LineAddr::new(42);
//! assert!(!llc.read(addr, &mut inner).is_hit());
//! llc.fill(addr, CacheLine::zeroed(), &mut inner);
//! assert!(llc.read(addr, &mut inner).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod audit;
mod base_victim;
mod dcc;
mod slot;
mod two_tag;
mod uncompressed;
mod victim_policy;
mod vsc;

pub use base_victim::{BaseVictimLlc, InclusionMode};
pub use dcc::DccLlc;
pub use two_tag::{TwoTagEcmLlc, TwoTagLlc};
pub use uncompressed::UncompressedLlc;
pub use victim_policy::VictimPolicyKind;
pub use vsc::VscLlc;

pub use bv_cache::{Effects, LlcStats};

use bv_cache::{CacheGeometry, LineAddr};
use bv_compress::{CacheLine, CompressionStats, SegmentCount};

/// Interface through which the LLC drives inclusive inner caches (L1/L2).
///
/// When an inclusive LLC displaces a line — on eviction, or when the
/// Base-Victim architecture moves a line into its always-clean Victim cache
/// — copies in the inner levels must be invalidated and any modified inner
/// data recovered so it can be written back to memory.
pub trait InclusionAgent {
    /// Invalidates `addr` in every inner cache. Returns the freshest dirty
    /// data if an inner copy was modified, or `None` if all inner copies
    /// were clean or absent.
    fn back_invalidate(&mut self, addr: LineAddr) -> Option<CacheLine>;
}

/// An [`InclusionAgent`] for standalone LLC use (no inner caches).
///
/// Useful in unit tests and in functional (non-timing) studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInner;

impl InclusionAgent for NoInner {
    fn back_invalidate(&mut self, _addr: LineAddr) -> Option<CacheLine> {
        None
    }
}

/// Where a demand read found its line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitKind {
    /// Hit in the Baseline cache (or the only cache, for uncompressed),
    /// with the line's stored compressed size.
    Base(SegmentCount),
    /// Hit in the Victim cache (Base-Victim only); the line was promoted.
    Victim(SegmentCount),
    /// Not present; the caller must fetch from memory and call
    /// [`LlcOrganization::fill`].
    Miss,
}

impl HitKind {
    /// `true` for either hit flavor.
    #[must_use]
    pub fn is_hit(self) -> bool {
        !matches!(self, HitKind::Miss)
    }

    /// The stored compressed size, if this was a hit.
    #[must_use]
    pub fn size(self) -> Option<SegmentCount> {
        match self {
            HitKind::Base(s) | HitKind::Victim(s) => Some(s),
            HitKind::Miss => None,
        }
    }
}

/// Outcome of a demand read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Hit classification (and size, for the decompression-latency model).
    pub kind: HitKind,
    /// Side effects (victim promotions can evict and write back).
    pub effects: Effects,
}

impl ReadOutcome {
    /// Convenience: `true` for either hit flavor.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        self.kind.is_hit()
    }
}

/// Outcome of a fill or writeback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpOutcome {
    /// Side effects of the operation.
    pub effects: Effects,
}

/// A last-level-cache organization.
///
/// The timing simulator drives this interface with demand reads, writebacks
/// arriving from the L2, prefetch probes, and fills after memory fetches.
/// Inclusion is enforced through the [`InclusionAgent`] the caller passes
/// in.
pub trait LlcOrganization {
    /// Organization name for reports (e.g. `"base-victim"`).
    fn name(&self) -> &'static str;

    /// The underlying physical geometry (per-set data ways).
    fn geometry(&self) -> CacheGeometry;

    /// Whether the line is present (in any logical slot). Does not perturb
    /// replacement state.
    fn contains(&self, addr: LineAddr) -> bool;

    /// Demand read. On a miss the caller fetches from memory and calls
    /// [`fill`](LlcOrganization::fill).
    fn read(&mut self, addr: LineAddr, inner: &mut dyn InclusionAgent) -> ReadOutcome;

    /// Dirty writeback arriving from the L2.
    fn writeback(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome;

    /// Installs a (clean) line fetched from memory after a demand miss.
    fn fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome;

    /// Installs a (clean) line fetched by the prefetcher. Returns `None`
    /// if the line was already present (probe hit, nothing installed).
    fn prefetch_fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> Option<OpOutcome>;

    /// The current data contents of a resident line (post-decompression
    /// view), or `None` if absent. Used by the hierarchy to fill inner
    /// caches on LLC hits. Does not perturb replacement state.
    fn peek_data(&self, addr: LineAddr) -> Option<CacheLine>;

    /// Applies a replacement downgrade hint to a resident line (CHAR
    /// sends these on clean L2 evictions). Organizations forward the hint
    /// to their baseline replacement policy; the default ignores it.
    fn hint_downgrade(&mut self, _addr: LineAddr) {}

    /// Accumulated statistics.
    fn stats(&self) -> &LlcStats;

    /// Distribution of compressed sizes observed at fill/writeback time.
    fn compression_stats(&self) -> &CompressionStats;

    /// Extra tag-lookup cycles relative to the uncompressed baseline
    /// (1 for every doubled-tag organization, 0 otherwise).
    fn tag_latency_penalty(&self) -> u32;

    /// Decompression cycles for a hit of the given size (0 for
    /// uncompressed organizations and for zero/full lines).
    fn decompression_latency(&self, size: SegmentCount) -> u32;

    /// Addresses of all currently resident logical lines, in no particular
    /// order. For invariant checks.
    fn resident_lines(&self) -> Vec<LineAddr>;

    /// Per-encoding selection counts of this organization's compressor, as
    /// `(encoding name, count)` pairs — telemetry for the compressed-size
    /// distribution over the run. Empty (the default) when the
    /// organization does not compress or its algorithm exposes no
    /// encoding classes.
    fn encoder_counts(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Drains retained [`CacheEvent`](bv_events::CacheEvent)s from the
    /// organization's event sink, oldest first. Empty (the default) for
    /// untraced builds, so the simulator can ask through
    /// `Box<dyn LlcOrganization>` without knowing whether tracing is on.
    fn drain_events(&mut self) -> Vec<bv_events::CacheEvent> {
        Vec::new()
    }

    /// How many retained events the organization's sink overwrote with
    /// newer ones (bounded captures); 0 for untraced builds.
    fn events_dropped(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_kind_accessors() {
        let h = HitKind::Base(SegmentCount::new(8));
        assert!(h.is_hit());
        assert_eq!(h.size(), Some(SegmentCount::new(8)));
        assert!(!HitKind::Miss.is_hit());
        assert_eq!(HitKind::Miss.size(), None);
    }

    #[test]
    fn no_inner_reports_clean() {
        assert_eq!(NoInner.back_invalidate(LineAddr::new(1)), None);
    }
}
