//! The uncompressed baseline LLC every experiment normalizes against.

use crate::slot::Slot;
use crate::{Effects, HitKind, InclusionAgent, LlcOrganization, LlcStats, OpOutcome, ReadOutcome};
use bv_cache::{CacheGeometry, LineAddr, PolicyKind, ReplacementPolicy};
use bv_compress::{Bdi, CacheLine, CompressionStats, Compressor, SegmentCount};

/// An ordinary inclusive LLC: one tag per physical way, no compression.
///
/// Besides serving as the normalization baseline, this organization is the
/// reference model in the Base-Victim differential tests: the Baseline
/// cache of [`BaseVictimLlc`](crate::BaseVictimLlc) must mirror it
/// access-for-access.
///
/// # Examples
///
/// ```
/// use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
/// use bv_compress::CacheLine;
/// use bv_core::{LlcOrganization, NoInner, UncompressedLlc};
///
/// let mut llc = UncompressedLlc::new(CacheGeometry::new(4096, 4, 64), PolicyKind::Nru);
/// let mut inner = NoInner;
/// llc.fill(LineAddr::new(3), CacheLine::zeroed(), &mut inner);
/// assert!(llc.contains(LineAddr::new(3)));
/// ```
#[derive(Debug)]
pub struct UncompressedLlc {
    geom: CacheGeometry,
    slots: Vec<Slot>,
    policy: Box<dyn ReplacementPolicy>,
    stats: LlcStats,
    compression: CompressionStats,
    bdi: Bdi,
}

impl UncompressedLlc {
    /// Creates an empty uncompressed LLC.
    #[must_use]
    pub fn new(geom: CacheGeometry, policy: PolicyKind) -> UncompressedLlc {
        let sets = geom.sets();
        let ways = geom.ways();
        UncompressedLlc {
            geom,
            slots: vec![Slot::empty(); sets * ways],
            policy: policy.build(sets, ways),
            stats: LlcStats::default(),
            compression: CompressionStats::default(),
            bdi: Bdi::new(),
        }
    }

    fn locate(&self, addr: LineAddr) -> Option<(usize, usize)> {
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        (0..self.geom.ways())
            .find(|&w| {
                let s = &self.slots[set * self.geom.ways() + w];
                s.valid && s.tag == tag
            })
            .map(|w| (set, w))
    }

    fn slot_mut(&mut self, set: usize, way: usize) -> &mut Slot {
        &mut self.slots[set * self.geom.ways() + way]
    }

    fn slot(&self, set: usize, way: usize) -> &Slot {
        &self.slots[set * self.geom.ways() + way]
    }

    /// Installs a line (shared by demand and prefetch fills).
    fn install(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> Effects {
        debug_assert!(!self.contains(addr), "fill of resident line");
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        let ways = self.geom.ways();

        let way = (0..ways)
            .find(|&w| !self.slot(set, w).valid)
            .unwrap_or_else(|| self.policy.victim(set));

        let mut effects = Effects::default();
        let evicted = *self.slot(set, way);
        if evicted.valid {
            let evicted_addr = evicted.addr(&self.geom, set);
            effects.back_invalidations += 1;
            let inner_dirty = inner.back_invalidate(evicted_addr);
            if inner_dirty.is_some() || evicted.dirty {
                effects.memory_writes += 1;
            }
        }

        // Track compressibility of the access stream even though this
        // organization stores lines uncompressed (used to classify traces,
        // and fed to size-aware policies like CAMP as their predictor).
        let bdi = self.bdi;
        let compressed_size = bdi.compressed_size(&data);
        self.compression.record(compressed_size);

        let slot = self.slot_mut(set, way);
        slot.install(tag, data, false, &bdi);
        slot.size = SegmentCount::FULL; // stored uncompressed
        self.policy.on_fill_sized(set, way, compressed_size);
        self.stats.absorb_effects(effects);
        effects
    }
}

impl LlcOrganization for UncompressedLlc {
    fn name(&self) -> &'static str {
        "uncompressed"
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn contains(&self, addr: LineAddr) -> bool {
        self.locate(addr).is_some()
    }

    fn read(&mut self, addr: LineAddr, _inner: &mut dyn InclusionAgent) -> ReadOutcome {
        match self.locate(addr) {
            Some((set, way)) => {
                self.policy.on_hit(set, way);
                self.stats.base_hits += 1;
                ReadOutcome {
                    kind: HitKind::Base(SegmentCount::FULL),
                    effects: Effects::default(),
                }
            }
            None => {
                let set = self.geom.set_index(addr.get());
                self.policy.on_miss(set);
                self.stats.read_misses += 1;
                ReadOutcome {
                    kind: HitKind::Miss,
                    effects: Effects::default(),
                }
            }
        }
    }

    fn writeback(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        _inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        match self.locate(addr) {
            Some((set, way)) => {
                let slot = self.slot_mut(set, way);
                slot.data = data;
                slot.dirty = true;
                self.stats.writeback_hits += 1;
                OpOutcome::default()
            }
            None => {
                // Impossible under strict inclusion; forward to memory.
                debug_assert!(false, "L2 writeback to non-resident LLC line {addr:?}");
                self.stats.writeback_misses += 1;
                self.stats.memory_writes += 1;
                OpOutcome {
                    effects: Effects {
                        memory_writes: 1,
                        ..Effects::default()
                    },
                }
            }
        }
    }

    fn fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        self.stats.demand_fills += 1;
        OpOutcome {
            effects: self.install(addr, data, inner),
        }
    }

    fn prefetch_fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> Option<OpOutcome> {
        if self.contains(addr) {
            self.stats.prefetch_hits += 1;
            return None;
        }
        self.stats.prefetch_fills += 1;
        Some(OpOutcome {
            effects: self.install(addr, data, inner),
        })
    }

    fn peek_data(&self, addr: LineAddr) -> Option<CacheLine> {
        let (set, way) = self.locate(addr)?;
        Some(self.slot(set, way).data)
    }

    fn hint_downgrade(&mut self, addr: LineAddr) {
        if let Some((set, way)) = self.locate(addr) {
            self.policy.hint_downgrade(set, way);
        }
    }

    fn stats(&self) -> &LlcStats {
        &self.stats
    }

    fn compression_stats(&self) -> &CompressionStats {
        &self.compression
    }

    fn tag_latency_penalty(&self) -> u32 {
        0
    }

    fn decompression_latency(&self, _size: SegmentCount) -> u32 {
        0
    }

    fn resident_lines(&self) -> Vec<LineAddr> {
        let ways = self.geom.ways();
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid)
            .map(|(i, s)| s.addr(&self.geom, i / ways))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoInner;

    fn llc() -> UncompressedLlc {
        UncompressedLlc::new(CacheGeometry::new(1024, 4, 64), PolicyKind::Lru)
    }

    #[test]
    fn read_miss_then_fill_then_hit() {
        let mut c = llc();
        let mut inner = NoInner;
        let a = LineAddr::new(5);
        assert!(!c.read(a, &mut inner).is_hit());
        c.fill(a, CacheLine::zeroed(), &mut inner);
        let out = c.read(a, &mut inner);
        assert_eq!(out.kind, HitKind::Base(SegmentCount::FULL));
        assert_eq!(c.stats().base_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().demand_fills, 1);
    }

    #[test]
    fn eviction_back_invalidates_and_writes_back_dirty() {
        // One-set cache (4 ways): fifth fill evicts the LRU line.
        let mut c = UncompressedLlc::new(CacheGeometry::new(256, 4, 64), PolicyKind::Lru);
        let mut inner = NoInner;
        for i in 0..4 {
            c.fill(LineAddr::new(i), CacheLine::zeroed(), &mut inner);
        }
        // Dirty the LRU line via an L2 writeback.
        c.writeback(
            LineAddr::new(0),
            CacheLine::from_u32_words(&[1; 16]),
            &mut inner,
        );
        let out = c.fill(LineAddr::new(9), CacheLine::zeroed(), &mut inner);
        assert_eq!(out.effects.memory_writes, 1);
        assert_eq!(out.effects.back_invalidations, 1);
        assert!(!c.contains(LineAddr::new(0)));
    }

    #[test]
    fn prefetch_fill_skips_resident_lines() {
        let mut c = llc();
        let mut inner = NoInner;
        let a = LineAddr::new(7);
        assert!(c
            .prefetch_fill(a, CacheLine::zeroed(), &mut inner)
            .is_some());
        assert!(c
            .prefetch_fill(a, CacheLine::zeroed(), &mut inner)
            .is_none());
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn no_compression_latency() {
        let c = llc();
        assert_eq!(c.tag_latency_penalty(), 0);
        assert_eq!(c.decompression_latency(SegmentCount::new(4)), 0);
    }

    #[test]
    fn inner_dirty_copy_forces_writeback_on_eviction() {
        struct DirtyInner;
        impl InclusionAgent for DirtyInner {
            fn back_invalidate(&mut self, _addr: LineAddr) -> Option<CacheLine> {
                Some(CacheLine::from_u32_words(&[9; 16]))
            }
        }
        let mut c = UncompressedLlc::new(CacheGeometry::new(256, 4, 64), PolicyKind::Lru);
        let mut inner = DirtyInner;
        for i in 0..5 {
            c.fill(LineAddr::new(i), CacheLine::zeroed(), &mut inner);
        }
        // The eviction found a dirty inner copy: memory write required.
        assert_eq!(c.stats().memory_writes, 1);
    }
}
