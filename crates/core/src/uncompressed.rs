//! The uncompressed baseline LLC every experiment normalizes against.

use crate::slot::{line_addr, LineMeta};
use crate::{Effects, HitKind, InclusionAgent, LlcOrganization, LlcStats, OpOutcome, ReadOutcome};
use bv_cache::engine::SetEngine;
use bv_cache::{CacheGeometry, LineAddr, Policy, PolicyKind, ReplacementPolicy};
use bv_compress::{Bdi, CacheLine, CompressionStats, Compressor, EncoderStats, SegmentCount};
use bv_events::{CacheEvent, EventKind, EventSink, EvictCause, NoEventSink};

/// An ordinary inclusive LLC: one tag per physical way, no compression.
///
/// Besides serving as the normalization baseline, this organization is the
/// reference model in the Base-Victim differential tests: the Baseline
/// cache of [`BaseVictimLlc`](crate::BaseVictimLlc) must mirror it
/// access-for-access.
///
/// # Examples
///
/// ```
/// use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
/// use bv_compress::CacheLine;
/// use bv_core::{LlcOrganization, NoInner, UncompressedLlc};
///
/// let mut llc = UncompressedLlc::new(CacheGeometry::new(4096, 4, 64), PolicyKind::Nru);
/// let mut inner = NoInner;
/// llc.fill(LineAddr::new(3), CacheLine::zeroed(), &mut inner);
/// assert!(llc.contains(LineAddr::new(3)));
/// ```
#[derive(Debug)]
pub struct UncompressedLlc<P: ReplacementPolicy = Policy, E: EventSink = NoEventSink> {
    geom: CacheGeometry,
    engine: SetEngine<P, LineMeta, E>,
    compression: CompressionStats,
    bdi: Bdi,
    encoders: EncoderStats,
}

impl UncompressedLlc {
    /// Creates an empty uncompressed LLC with a runtime-selected policy.
    #[must_use]
    pub fn new(geom: CacheGeometry, policy: PolicyKind) -> UncompressedLlc {
        let (sets, ways) = (geom.sets(), geom.ways());
        UncompressedLlc::with_policy(geom, policy.instantiate(sets, ways))
    }
}

impl<P: ReplacementPolicy> UncompressedLlc<P> {
    /// Creates an empty uncompressed LLC around a concrete policy
    /// instance, monomorphizing the lookup/fill path over it.
    #[must_use]
    pub fn with_policy(geom: CacheGeometry, policy: P) -> UncompressedLlc<P> {
        UncompressedLlc::with_sink(geom, policy, NoEventSink)
    }
}

impl<P: ReplacementPolicy, E: EventSink> UncompressedLlc<P, E> {
    /// Creates an empty uncompressed LLC that reports cache events to
    /// `sink`. The untraced constructors route here with [`NoEventSink`],
    /// which compiles the event path out entirely.
    #[must_use]
    pub fn with_sink(geom: CacheGeometry, policy: P, sink: E) -> UncompressedLlc<P, E> {
        UncompressedLlc {
            geom,
            engine: SetEngine::with_sink(geom.sets(), geom.ways(), policy, sink),
            compression: CompressionStats::default(),
            bdi: Bdi::new(),
            encoders: EncoderStats::new(),
        }
    }

    fn locate(&self, addr: LineAddr) -> Option<(usize, usize)> {
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        self.engine.find(set, tag).map(|w| (set, w))
    }

    /// Installs a line (shared by demand and prefetch fills).
    fn install(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
        prefetch: bool,
    ) -> Effects {
        debug_assert!(!self.contains(addr), "fill of resident line");
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());

        let way = self.engine.fill_way(set);

        let mut effects = Effects::default();
        let evicted = self.engine.slot(set, way).copied();
        if evicted.valid {
            let evicted_addr = line_addr(&self.geom, set, evicted.tag);
            effects.back_invalidations += 1;
            let inner_dirty = inner.back_invalidate(evicted_addr);
            if inner_dirty.is_some() || evicted.meta.dirty {
                effects.memory_writes += 1;
            }
            if E::ENABLED {
                self.engine.emit(CacheEvent::new(
                    set,
                    way,
                    EventKind::Eviction {
                        tag: evicted.tag,
                        cause: EvictCause::Replacement,
                    },
                ));
            }
        }

        // Track compressibility of the access stream even though this
        // organization stores lines uncompressed (used to classify traces,
        // and fed to size-aware policies like CAMP as their predictor).
        let compressed_size = self.encoders.record(&self.bdi, &data);
        self.compression.record(compressed_size);

        if E::ENABLED {
            let (_, class) = self.bdi.classified_size(&data);
            self.engine.emit(CacheEvent::new(
                set,
                way,
                EventKind::Compression {
                    encoder: class.map_or(u8::MAX, |c| c as u8),
                    size: compressed_size.get(),
                },
            ));
            let kind = if prefetch {
                EventKind::PrefetchFill {
                    tag,
                    size: SegmentCount::FULL.get(),
                }
            } else {
                EventKind::Fill {
                    tag,
                    size: SegmentCount::FULL.get(),
                }
            };
            self.engine.emit(CacheEvent::new(set, way, kind));
        }

        let meta = LineMeta {
            dirty: false,
            data,
            size: SegmentCount::FULL, // stored uncompressed
        };
        self.engine.install(set, way, tag, meta, compressed_size);
        self.engine.absorb(effects);
        effects
    }
}

impl<P: ReplacementPolicy, E: EventSink> LlcOrganization for UncompressedLlc<P, E> {
    fn name(&self) -> &'static str {
        "uncompressed"
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn contains(&self, addr: LineAddr) -> bool {
        self.locate(addr).is_some()
    }

    fn read(&mut self, addr: LineAddr, _inner: &mut dyn InclusionAgent) -> ReadOutcome {
        match self.locate(addr) {
            Some((set, way)) => {
                self.engine.demand_hit(set, way);
                ReadOutcome {
                    kind: HitKind::Base(SegmentCount::FULL),
                    effects: Effects::default(),
                }
            }
            None => {
                self.engine.demand_miss(self.geom.set_index(addr.get()));
                ReadOutcome {
                    kind: HitKind::Miss,
                    effects: Effects::default(),
                }
            }
        }
    }

    fn writeback(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        _inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        match self.locate(addr) {
            Some((set, way)) => {
                let slot = self.engine.slot_mut(set, way);
                slot.meta.data = data;
                slot.meta.dirty = true;
                self.engine.stats_mut().writeback_hits += 1;
                if E::ENABLED {
                    let tag = self.geom.tag(addr.get());
                    self.engine.emit(CacheEvent::new(
                        set,
                        way,
                        EventKind::Writeback {
                            tag,
                            size: SegmentCount::FULL.get(),
                        },
                    ));
                }
                OpOutcome::default()
            }
            None => {
                // Impossible under strict inclusion; forward to memory.
                debug_assert!(false, "L2 writeback to non-resident LLC line {addr:?}");
                self.engine.stats_mut().writeback_misses += 1;
                self.engine.stats_mut().memory_writes += 1;
                OpOutcome {
                    effects: Effects {
                        memory_writes: 1,
                        ..Effects::default()
                    },
                }
            }
        }
    }

    fn fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        self.engine.stats_mut().demand_fills += 1;
        OpOutcome {
            effects: self.install(addr, data, inner, false),
        }
    }

    fn prefetch_fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> Option<OpOutcome> {
        if self.contains(addr) {
            self.engine.stats_mut().prefetch_hits += 1;
            return None;
        }
        self.engine.stats_mut().prefetch_fills += 1;
        Some(OpOutcome {
            effects: self.install(addr, data, inner, true),
        })
    }

    fn peek_data(&self, addr: LineAddr) -> Option<CacheLine> {
        let (set, way) = self.locate(addr)?;
        Some(self.engine.slot(set, way).meta.data)
    }

    fn hint_downgrade(&mut self, addr: LineAddr) {
        if let Some((set, way)) = self.locate(addr) {
            self.engine.hint_downgrade(set, way);
        }
    }

    fn stats(&self) -> &LlcStats {
        self.engine.stats()
    }

    fn compression_stats(&self) -> &CompressionStats {
        &self.compression
    }

    fn tag_latency_penalty(&self) -> u32 {
        0
    }

    fn decompression_latency(&self, _size: SegmentCount) -> u32 {
        0
    }

    fn resident_lines(&self) -> Vec<LineAddr> {
        self.engine
            .iter_valid()
            .map(|(set, _, s)| line_addr(&self.geom, set, s.tag))
            .collect()
    }

    fn encoder_counts(&self) -> Vec<(&'static str, u64)> {
        self.encoders.counts(&self.bdi)
    }

    fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.engine.drain_events()
    }

    fn events_dropped(&self) -> u64 {
        self.engine.events_dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoInner;
    use bv_testkit::fixtures;

    fn llc() -> UncompressedLlc {
        UncompressedLlc::new(fixtures::toy_geometry(), fixtures::toy_policy())
    }

    #[test]
    fn read_miss_then_fill_then_hit() {
        let mut c = llc();
        let mut inner = NoInner;
        let a = LineAddr::new(5);
        assert!(!c.read(a, &mut inner).is_hit());
        c.fill(a, CacheLine::zeroed(), &mut inner);
        let out = c.read(a, &mut inner);
        assert_eq!(out.kind, HitKind::Base(SegmentCount::FULL));
        assert_eq!(c.stats().base_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().demand_fills, 1);
    }

    #[test]
    fn eviction_back_invalidates_and_writes_back_dirty() {
        // One-set cache (4 ways): fifth fill evicts the LRU line.
        let mut c = UncompressedLlc::new(CacheGeometry::new(256, 4, 64), PolicyKind::Lru);
        let mut inner = NoInner;
        for i in 0..4 {
            c.fill(LineAddr::new(i), CacheLine::zeroed(), &mut inner);
        }
        // Dirty the LRU line via an L2 writeback.
        c.writeback(
            LineAddr::new(0),
            CacheLine::from_u32_words(&[1; 16]),
            &mut inner,
        );
        let out = c.fill(LineAddr::new(9), CacheLine::zeroed(), &mut inner);
        assert_eq!(out.effects.memory_writes, 1);
        assert_eq!(out.effects.back_invalidations, 1);
        assert!(!c.contains(LineAddr::new(0)));
    }

    #[test]
    fn prefetch_fill_skips_resident_lines() {
        let mut c = llc();
        let mut inner = NoInner;
        let a = LineAddr::new(7);
        assert!(c
            .prefetch_fill(a, CacheLine::zeroed(), &mut inner)
            .is_some());
        assert!(c
            .prefetch_fill(a, CacheLine::zeroed(), &mut inner)
            .is_none());
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn no_compression_latency() {
        let c = llc();
        assert_eq!(c.tag_latency_penalty(), 0);
        assert_eq!(c.decompression_latency(SegmentCount::new(4)), 0);
    }

    #[test]
    fn monomorphic_construction_matches_runtime_selection() {
        let geom = fixtures::toy_geometry();
        let mut by_kind = UncompressedLlc::new(geom, fixtures::toy_policy());
        let mut by_type = UncompressedLlc::with_policy(geom, bv_cache::replacement::Lru::new(4, 4));
        let mut inner = NoInner;
        for i in 0..200 {
            let a = LineAddr::new(i * 7 % 64);
            let hit_kind = by_kind.read(a, &mut inner).is_hit();
            let hit_type = by_type.read(a, &mut inner).is_hit();
            assert_eq!(hit_kind, hit_type);
            if !hit_kind {
                by_kind.fill(a, CacheLine::zeroed(), &mut inner);
                by_type.fill(a, CacheLine::zeroed(), &mut inner);
            }
        }
        assert_eq!(by_kind.stats(), by_type.stats());
    }

    #[test]
    fn inner_dirty_copy_forces_writeback_on_eviction() {
        struct DirtyInner;
        impl InclusionAgent for DirtyInner {
            fn back_invalidate(&mut self, _addr: LineAddr) -> Option<CacheLine> {
                Some(CacheLine::from_u32_words(&[9; 16]))
            }
        }
        let mut c = UncompressedLlc::new(CacheGeometry::new(256, 4, 64), PolicyKind::Lru);
        let mut inner = DirtyInner;
        for i in 0..5 {
            c.fill(LineAddr::new(i), CacheLine::zeroed(), &mut inner);
        }
        // The eviction found a dirty inner copy: memory write required.
        assert_eq!(c.stats().memory_writes, 1);
    }
}
