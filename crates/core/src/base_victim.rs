//! The Base-Victim opportunistic compressed LLC (Section IV of the paper).
//!
//! Each physical way carries **two tags**: tag 0 forms the **Baseline
//! cache**, tag 1 the **Victim cache**. The Baseline cache runs the
//! unmodified baseline replacement policy and therefore holds, at every
//! instant, exactly the lines an uncompressed cache would hold — this is
//! the architecture's hit-rate guarantee, enforced here and verified by
//! differential tests. Lines displaced from the Baseline cache are written
//! back if dirty (making them clean), then *opportunistically* parked in
//! the Victim cache of any way whose base line leaves enough free
//! segments. Victim lines are always clean, so they can be dropped
//! silently at any time: at most one memory writeback ever happens per
//! fill.
//!
//! The Baseline cache is a stock [`SetEngine`]: tag walk, fill-way choice,
//! and replacement bookkeeping are the shared substrate. Everything in
//! this file is the paper-specific delta — the Victim cache partnering,
//! clean-victim insertion policies, and promotion on victim hits.

use crate::slot::{line_addr, LineMeta, Slot};
use crate::victim_policy::{VictimCandidate, VictimPolicyKind};
use crate::{Effects, HitKind, InclusionAgent, LlcOrganization, LlcStats, OpOutcome, ReadOutcome};
use bv_cache::engine::SetEngine;
use bv_cache::{CacheGeometry, LineAddr, Policy, PolicyKind, ReplacementPolicy};
use bv_compress::{
    Bdi, CacheLine, CompressionStats, Compressor, EncoderStats, SegmentCount, SEGMENTS_PER_LINE,
};
use bv_events::{CacheEvent, DropCause, EventKind, EventSink, EvictCause, NoEventSink};

/// Whether the LLC maintains inclusion with the core caches.
///
/// The paper's primary design is inclusive (Section IV.B): victim lines
/// are always clean, inner copies are back-invalidated before a line
/// enters the Victim cache, and at most one writeback happens per fill.
/// Section IV.B.3 sketches the non-inclusive variant: victim lines may be
/// dirty (saving writeback traffic), no back-invalidations are sent, and
/// a write that hits the Victim cache promotes the line like a read hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum InclusionMode {
    /// Inclusive hierarchy with an always-clean Victim cache (default).
    #[default]
    Inclusive,
    /// Non-inclusive hierarchy; Victim-cache lines may be dirty.
    NonInclusive,
}

/// A clean line displaced from the Baseline cache, awaiting opportunistic
/// insertion into the Victim cache.
#[derive(Clone, Copy, Debug)]
struct DisplacedLine {
    tag: u64,
    data: CacheLine,
    size: SegmentCount,
    /// Only ever `true` in non-inclusive mode, where dirty lines may park
    /// in the Victim cache instead of being written back eagerly.
    dirty: bool,
}

/// The Base-Victim opportunistic compressed LLC.
///
/// # Examples
///
/// ```
/// use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
/// use bv_compress::CacheLine;
/// use bv_core::{BaseVictimLlc, LlcOrganization, NoInner, VictimPolicyKind};
///
/// let geom = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
/// let mut llc = BaseVictimLlc::new(geom, PolicyKind::Nru, VictimPolicyKind::EcmLargestBase);
/// let mut inner = NoInner;
///
/// llc.fill(LineAddr::new(1), CacheLine::zeroed(), &mut inner);
/// assert!(llc.read(LineAddr::new(1), &mut inner).is_hit());
/// ```
pub struct BaseVictimLlc<P: ReplacementPolicy = Policy, E: EventSink = NoEventSink> {
    geom: CacheGeometry,
    /// The Baseline cache: one engine slot per physical way, driven by the
    /// unmodified baseline replacement policy.
    engine: SetEngine<P, LineMeta, E>,
    victim: Vec<Slot>,
    /// Insertion sequence numbers for victim slots (LruFit variant).
    victim_birth: Vec<u64>,
    victim_kind: VictimPolicyKind,
    compression: CompressionStats,
    compressor: Box<dyn Compressor>,
    encoders: EncoderStats,
    mode: InclusionMode,
    clock: u64,
    rng: u64,
}

impl<P: ReplacementPolicy, E: EventSink> core::fmt::Debug for BaseVictimLlc<P, E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BaseVictimLlc")
            .field("geom", &self.geom)
            .field("victim_kind", &self.victim_kind)
            .field("mode", &self.mode)
            .field("compressor", &self.compressor.name())
            .field("stats", self.engine.stats())
            .finish_non_exhaustive()
    }
}

impl BaseVictimLlc {
    /// Creates an empty Base-Victim LLC over the given *physical* geometry
    /// (`geom.ways()` data ways per set, each carrying two tags).
    #[must_use]
    pub fn new(
        geom: CacheGeometry,
        policy: PolicyKind,
        victim_kind: VictimPolicyKind,
    ) -> BaseVictimLlc {
        BaseVictimLlc::with_compressor(
            geom,
            policy,
            victim_kind,
            InclusionMode::Inclusive,
            Box::new(Bdi::new()),
        )
    }

    /// Creates the non-inclusive variant of Section IV.B.3: victim lines
    /// may be dirty (saving writebacks), and writes that hit the Victim
    /// cache promote the line instead of being a protocol violation.
    #[must_use]
    pub fn new_non_inclusive(
        geom: CacheGeometry,
        policy: PolicyKind,
        victim_kind: VictimPolicyKind,
    ) -> BaseVictimLlc {
        BaseVictimLlc::with_compressor(
            geom,
            policy,
            victim_kind,
            InclusionMode::NonInclusive,
            Box::new(Bdi::new()),
        )
    }

    /// Creates a Base-Victim LLC with an explicit inclusion mode and
    /// compression algorithm (the paper uses BDI; FPC and C-Pack plug in
    /// here for ablation studies) and a runtime-selected policy.
    #[must_use]
    pub fn with_compressor(
        geom: CacheGeometry,
        policy: PolicyKind,
        victim_kind: VictimPolicyKind,
        mode: InclusionMode,
        compressor: Box<dyn Compressor>,
    ) -> BaseVictimLlc {
        let policy = policy.instantiate(geom.sets(), geom.ways());
        BaseVictimLlc::with_policy(geom, policy, victim_kind, mode, compressor)
    }
}

impl<P: ReplacementPolicy> BaseVictimLlc<P> {
    /// Creates a Base-Victim LLC around a concrete baseline-policy
    /// instance, monomorphizing the lookup/fill path over it.
    #[must_use]
    pub fn with_policy(
        geom: CacheGeometry,
        policy: P,
        victim_kind: VictimPolicyKind,
        mode: InclusionMode,
        compressor: Box<dyn Compressor>,
    ) -> BaseVictimLlc<P> {
        BaseVictimLlc::with_sink(geom, policy, victim_kind, mode, compressor, NoEventSink)
    }
}

impl<P: ReplacementPolicy, E: EventSink> BaseVictimLlc<P, E> {
    /// Creates a Base-Victim LLC that reports cache events to `sink`.
    /// The untraced constructors route here with [`NoEventSink`], which
    /// compiles the event path out entirely.
    #[must_use]
    pub fn with_sink(
        geom: CacheGeometry,
        policy: P,
        victim_kind: VictimPolicyKind,
        mode: InclusionMode,
        compressor: Box<dyn Compressor>,
        sink: E,
    ) -> BaseVictimLlc<P, E> {
        let sets = geom.sets();
        let ways = geom.ways();
        BaseVictimLlc {
            geom,
            engine: SetEngine::with_sink(sets, ways, policy, sink),
            victim: vec![Slot::empty(); sets * ways],
            victim_birth: vec![0; sets * ways],
            victim_kind,
            compression: CompressionStats::default(),
            compressor,
            encoders: EncoderStats::new(),
            mode,
            clock: 0,
            rng: 0x1234_5678_9abc_def1,
        }
    }

    /// The inclusion mode in use.
    #[must_use]
    pub fn inclusion_mode(&self) -> InclusionMode {
        self.mode
    }

    /// The victim-cache insertion policy in use.
    #[must_use]
    pub fn victim_policy(&self) -> VictimPolicyKind {
        self.victim_kind
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geom.ways() + way
    }

    fn find_base(&self, addr: LineAddr) -> Option<(usize, usize)> {
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        self.engine.find(set, tag).map(|w| (set, w))
    }

    fn find_victim(&self, addr: LineAddr) -> Option<(usize, usize)> {
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        (0..self.geom.ways())
            .find(|&w| {
                let s = &self.victim[self.idx(set, w)];
                s.valid && s.tag == tag
            })
            .map(|w| (set, w))
    }

    fn next_rng(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Displaces the base occupant of `(set, way)`, if any.
    ///
    /// Inclusive mode: back-invalidates inner copies and writes dirty data
    /// to memory, returning a clean line for opportunistic victim
    /// insertion (Section IV.B). Non-inclusive mode: no back-invalidation,
    /// and the line keeps its dirty bit — it may park dirty in the Victim
    /// cache (Section IV.B.3).
    ///
    /// The slot is cleared *without* a policy callback: the baseline
    /// policy only ever observes the fill that triggered the displacement,
    /// exactly as it would in the uncompressed mirror.
    fn displace_base(
        &mut self,
        set: usize,
        way: usize,
        inner: &mut dyn InclusionAgent,
        effects: &mut Effects,
    ) -> Option<DisplacedLine> {
        let slot = self.engine.slot(set, way).copied();
        if !slot.valid {
            return None;
        }
        if E::ENABLED {
            // "Eviction" = left the Baseline cache by replacement; a
            // following victim-insert event shows opportunistic retention.
            self.engine.emit(CacheEvent::new(
                set,
                way,
                EventKind::Eviction {
                    tag: slot.tag,
                    cause: EvictCause::Replacement,
                },
            ));
        }
        let addr = line_addr(&self.geom, set, slot.tag);
        if self.mode == InclusionMode::NonInclusive {
            self.engine.slot_mut(set, way).clear();
            return Some(DisplacedLine {
                tag: slot.tag,
                data: slot.meta.data,
                size: slot.meta.size,
                dirty: slot.meta.dirty,
            });
        }
        effects.back_invalidations += 1;
        let inner_dirty = inner.back_invalidate(addr);
        let (data, dirty) = match inner_dirty {
            Some(fresh) => (fresh, true),
            None => (slot.meta.data, slot.meta.dirty),
        };
        if dirty {
            effects.memory_writes += 1;
        }
        let size = if inner_dirty.is_some() {
            self.encoders.record(self.compressor.as_ref(), &data)
        } else {
            slot.meta.size
        };
        self.engine.slot_mut(set, way).clear();
        Some(DisplacedLine {
            tag: slot.tag,
            data,
            size,
            dirty: false,
        })
    }

    /// Opportunistically inserts a clean displaced line into the Victim
    /// cache of `set`. Silently drops the previous occupant of the chosen
    /// way. Counts one migration on success.
    fn insert_victim(&mut self, set: usize, line: DisplacedLine, effects: &mut Effects) {
        let ways = self.geom.ways();
        let mut candidates = Vec::with_capacity(ways);
        for w in 0..ways {
            let base = self.engine.slot(set, w);
            let used = if base.valid {
                base.meta.size.get() as usize
            } else {
                0
            };
            if used + line.size.get() as usize <= SEGMENTS_PER_LINE {
                let vslot = &self.victim[self.idx(set, w)];
                candidates.push(VictimCandidate {
                    way: w,
                    base_size: if base.valid {
                        base.meta.size
                    } else {
                        SegmentCount::MIN
                    },
                    occupied: vslot.valid,
                    occupant_age: if vslot.valid {
                        self.clock - self.victim_birth[self.idx(set, w)]
                    } else {
                        0
                    },
                });
            }
        }
        let draw = self.next_rng();
        match self.victim_kind.choose(&candidates, draw) {
            Some(c) => {
                let i = self.idx(set, c.way);
                // Inclusive: the previous occupant is clean — silent drop.
                // Non-inclusive: a dirty occupant must be written back.
                if self.victim[i].valid && self.victim[i].dirty {
                    debug_assert_eq!(self.mode, InclusionMode::NonInclusive);
                    effects.memory_writes += 1;
                }
                if E::ENABLED {
                    if self.victim[i].valid {
                        self.engine.emit(CacheEvent::new(
                            set,
                            c.way,
                            EventKind::SilentDrop {
                                tag: self.victim[i].tag,
                                cause: DropCause::Displaced,
                            },
                        ));
                    }
                    self.engine.emit(CacheEvent::new(
                        set,
                        c.way,
                        EventKind::VictimInsert {
                            tag: line.tag,
                            size: line.size.get(),
                        },
                    ));
                }
                self.victim[i] = Slot {
                    valid: true,
                    tag: line.tag,
                    dirty: line.dirty,
                    data: line.data,
                    size: line.size,
                };
                self.clock += 1;
                self.victim_birth[i] = self.clock;
                effects.migrations += 1;
                self.engine.stats_mut().victim_inserts += 1;
            }
            None => {
                // No fitting way: the line leaves the LLC entirely. In
                // inclusive mode it is already clean; in non-inclusive
                // mode a dirty line is written back now.
                if line.dirty {
                    debug_assert_eq!(self.mode, InclusionMode::NonInclusive);
                    effects.memory_writes += 1;
                }
                if E::ENABLED {
                    self.engine.emit(CacheEvent::set_wide(
                        set,
                        EventKind::VictimInsertFail {
                            tag: line.tag,
                            size: line.size.get(),
                        },
                    ));
                }
                self.engine.stats_mut().victim_insert_failures += 1;
            }
        }
    }

    /// Drops the victim partner of `(set, way)` if it no longer fits with
    /// a base line of `base_size`.
    fn enforce_pairing(
        &mut self,
        set: usize,
        way: usize,
        base_size: SegmentCount,
        effects: &mut Effects,
    ) {
        let i = self.idx(set, way);
        let v = &self.victim[i];
        if v.valid && !base_size.fits_with(v.size) {
            // Inclusive: victim lines are clean, so this drop is silent.
            // Non-inclusive: a dirty victim pays a writeback here.
            if v.dirty {
                debug_assert_eq!(self.mode, InclusionMode::NonInclusive);
                effects.memory_writes += 1;
            }
            if E::ENABLED {
                let tag = self.victim[i].tag;
                self.engine.emit(CacheEvent::new(
                    set,
                    way,
                    EventKind::SilentDrop {
                        tag,
                        cause: DropCause::PairOverflow,
                    },
                ));
            }
            self.victim[i].clear();
            effects.partner_evictions += 1;
        }
    }

    /// Common install path for demand fills, prefetch fills, and victim
    /// promotions: displace the baseline victim, install the incoming
    /// line, enforce pairing, and re-insert the displaced line. Returns
    /// the way the line landed in (event emission only).
    #[allow(clippy::too_many_arguments)] // one argument per tag-metadata field
    fn install_base(
        &mut self,
        set: usize,
        tag: u64,
        data: CacheLine,
        size: SegmentCount,
        dirty: bool,
        inner: &mut dyn InclusionAgent,
        effects: &mut Effects,
    ) -> usize {
        let way = self.engine.fill_way(set);

        let displaced = self.displace_base(set, way, inner, effects);

        // Keep the victim partner only if it fits with the incoming line.
        self.enforce_pairing(set, way, size, effects);

        // Size-aware policies (CAMP) receive the compressed size; others
        // ignore it. The uncompressed mirror passes identical sizes, so
        // the mirror property is preserved.
        self.engine
            .install(set, way, tag, LineMeta { dirty, data, size }, size);

        if let Some(line) = displaced {
            self.insert_victim(set, line, effects);
        }
        way
    }

    /// Emits the compression-outcome event for a freshly (re)compressed
    /// line. No-op in untraced builds.
    fn emit_compression(&mut self, set: usize, way: usize, data: &CacheLine, size: SegmentCount) {
        if E::ENABLED {
            let (_, class) = self.compressor.classified_size(data);
            self.engine.emit(CacheEvent::new(
                set,
                way,
                EventKind::Compression {
                    encoder: class.map_or(u8::MAX, |c| c as u8),
                    size: size.get(),
                },
            ));
        }
    }

    /// Verifies the architecture's structural invariants; used by tests
    /// and debug builds.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated: a dirty victim line, a
    /// base/victim pair exceeding the physical way capacity, or a line
    /// resident in both caches of a set.
    pub fn assert_invariants(&self) {
        let ways = self.geom.ways();
        for set in 0..self.geom.sets() {
            for w in 0..ways {
                let b = self.engine.slot(set, w);
                let v = &self.victim[self.idx(set, w)];
                if self.mode == InclusionMode::Inclusive {
                    assert!(
                        !v.valid || !v.dirty,
                        "dirty victim line in set {set} way {w}"
                    );
                }
                if b.valid && v.valid {
                    assert!(
                        b.meta.size.fits_with(v.size),
                        "pair overflow in set {set} way {w}: {} + {}",
                        b.meta.size,
                        v.size
                    );
                }
            }
            // No address may be resident twice within a set.
            let mut tags: Vec<u64> = Vec::new();
            for w in 0..ways {
                let b = self.engine.slot(set, w);
                if b.valid {
                    assert!(
                        !tags.contains(&b.tag),
                        "tag {:#x} duplicated in set {set}",
                        b.tag
                    );
                    tags.push(b.tag);
                }
                let v = &self.victim[self.idx(set, w)];
                if v.valid {
                    assert!(
                        !tags.contains(&v.tag),
                        "tag {:#x} duplicated in set {set}",
                        v.tag
                    );
                    tags.push(v.tag);
                }
            }
        }
    }

    /// Addresses currently resident in the Baseline cache only. The
    /// differential test compares this against an
    /// [`UncompressedLlc`](crate::UncompressedLlc) driven with the same
    /// access stream.
    #[must_use]
    pub fn baseline_lines(&self) -> Vec<LineAddr> {
        self.engine
            .iter_valid()
            .map(|(set, _, s)| line_addr(&self.geom, set, s.tag))
            .collect()
    }

    /// Addresses currently resident in the Victim cache only.
    #[must_use]
    pub fn victim_lines(&self) -> Vec<LineAddr> {
        let ways = self.geom.ways();
        self.victim
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid)
            .map(|(i, s)| line_addr(&self.geom, i / ways, s.tag))
            .collect()
    }
}

impl<P: ReplacementPolicy, E: EventSink> LlcOrganization for BaseVictimLlc<P, E> {
    fn name(&self) -> &'static str {
        "base-victim"
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn contains(&self, addr: LineAddr) -> bool {
        self.find_base(addr).is_some() || self.find_victim(addr).is_some()
    }

    fn read(&mut self, addr: LineAddr, inner: &mut dyn InclusionAgent) -> ReadOutcome {
        let mut effects = Effects::default();

        if let Some((set, way)) = self.find_base(addr) {
            let size = self.engine.slot(set, way).meta.size;
            self.engine.demand_hit(set, way);
            return ReadOutcome {
                kind: HitKind::Base(size),
                effects,
            };
        }

        if let Some((set, vway)) = self.find_victim(addr) {
            // Victim hit (Section IV.B.2): promote to the Baseline cache.
            // The Baseline policy sees exactly what the uncompressed cache
            // would: a miss, then a fill — but no read-miss is counted.
            self.engine.policy_mut().on_miss(set);
            let i = self.idx(set, vway);
            let promoted = self.victim[i];
            debug_assert!(
                !promoted.dirty || self.mode == InclusionMode::NonInclusive,
                "inclusive victim lines must be clean"
            );
            if E::ENABLED {
                self.engine.emit(CacheEvent::new(
                    set,
                    vway,
                    EventKind::VictimHit {
                        tag: promoted.tag,
                        size: promoted.size.get(),
                    },
                ));
            }
            self.victim[i].clear();
            effects.migrations += 1; // victim way -> base way data movement

            self.install_base(
                set,
                promoted.tag,
                promoted.data,
                promoted.size,
                promoted.dirty,
                inner,
                &mut effects,
            );

            self.engine.stats_mut().victim_hits += 1;
            self.engine.absorb(effects);
            return ReadOutcome {
                kind: HitKind::Victim(promoted.size),
                effects,
            };
        }

        let set = self.geom.set_index(addr.get());
        self.engine.demand_miss(set);
        ReadOutcome {
            kind: HitKind::Miss,
            effects,
        }
    }

    fn writeback(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        let mut effects = Effects::default();
        if let Some((set, way)) = self.find_base(addr) {
            // Write hit to the Baseline cache (Section IV.B.5): recompress;
            // if the line grew past its partner's space, silently evict the
            // partner, even if it was the victim set's MRU line. A writeback
            // carrying unchanged data (clean eviction from the inner level)
            // reuses the size cached in the tag slot — the compressed size is
            // a pure function of the data, so it only needs recomputing on an
            // actual data write.
            let slot = self.engine.slot(set, way);
            let new_size = if slot.meta.data == data {
                slot.meta.size
            } else {
                self.encoders.record(self.compressor.as_ref(), &data)
            };
            self.compression.record(new_size);
            let meta = &mut self.engine.slot_mut(set, way).meta;
            meta.data = data;
            meta.dirty = true;
            meta.size = new_size;
            if E::ENABLED {
                let tag = self.geom.tag(addr.get());
                self.engine.emit(CacheEvent::new(
                    set,
                    way,
                    EventKind::Writeback {
                        tag,
                        size: new_size.get(),
                    },
                ));
            }
            self.enforce_pairing(set, way, new_size, &mut effects);
            self.engine.stats_mut().writeback_hits += 1;
            self.engine.absorb(effects);
            return OpOutcome { effects };
        }
        if let Some((set, vway)) = self.find_victim(addr) {
            match self.mode {
                InclusionMode::Inclusive => {
                    // Section IV.B.3: "This case will not occur for
                    // inclusive caches" — victim insertion back-invalidated
                    // all inner copies, so the L2 cannot hold (let alone
                    // dirty) this line.
                    panic!("write hit to Victim cache is impossible under inclusion ({addr:?})");
                }
                InclusionMode::NonInclusive => {
                    // Section IV.B.3: handled exactly like a Victim-cache
                    // read hit, except the line is recompressed with the
                    // written data before promotion.
                    let i = self.idx(set, vway);
                    let promoted = self.victim[i];
                    self.victim[i].clear();
                    effects.migrations += 1;
                    // Same invariant as the base write hit: only recompress
                    // when the written data actually differs from the copy
                    // the victim slot already holds.
                    let new_size = if promoted.data == data {
                        promoted.size
                    } else {
                        self.encoders.record(self.compressor.as_ref(), &data)
                    };
                    self.compression.record(new_size);
                    self.install_base(set, promoted.tag, data, new_size, true, inner, &mut effects);
                    self.engine.stats_mut().writeback_hits += 1;
                    self.engine.absorb(effects);
                    return OpOutcome { effects };
                }
            }
        }
        if self.mode == InclusionMode::NonInclusive {
            // Non-inclusive LLCs allocate on writeback: the line left the
            // LLC earlier but the L2 still held it.
            let set = self.geom.set_index(addr.get());
            let tag = self.geom.tag(addr.get());
            let size = self.encoders.record(self.compressor.as_ref(), &data);
            self.compression.record(size);
            self.install_base(set, tag, data, size, true, inner, &mut effects);
            self.engine.stats_mut().writeback_hits += 1;
            self.engine.absorb(effects);
            return OpOutcome { effects };
        }
        // Impossible under strict inclusion; forward to memory.
        debug_assert!(false, "L2 writeback to non-resident LLC line {addr:?}");
        self.engine.stats_mut().writeback_misses += 1;
        self.engine.stats_mut().memory_writes += 1;
        OpOutcome {
            effects: Effects {
                memory_writes: 1,
                ..Effects::default()
            },
        }
    }

    fn fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> OpOutcome {
        debug_assert!(!self.contains(addr), "fill of resident line {addr:?}");
        let mut effects = Effects::default();
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        let size = self.encoders.record(self.compressor.as_ref(), &data);
        self.compression.record(size);
        let way = self.install_base(set, tag, data, size, false, inner, &mut effects);
        if E::ENABLED {
            self.emit_compression(set, way, &data, size);
            self.engine.emit(CacheEvent::new(
                set,
                way,
                EventKind::Fill {
                    tag,
                    size: size.get(),
                },
            ));
        }
        self.engine.stats_mut().demand_fills += 1;
        self.engine.absorb(effects);
        OpOutcome { effects }
    }

    fn prefetch_fill(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> Option<OpOutcome> {
        if self.find_base(addr).is_some() {
            self.engine.stats_mut().prefetch_hits += 1;
            return None;
        }
        if let Some((set, vway)) = self.find_victim(addr) {
            // A prefetch that hits the Victim cache saves the memory read
            // but must still promote the line: the uncompressed mirror
            // would have installed it in the Baseline cache. The baseline
            // policy sees exactly what the uncompressed prefetch fill
            // would: a fill (no demand-miss event).
            let mut effects = Effects::default();
            let i = self.idx(set, vway);
            let promoted = self.victim[i];
            self.victim[i].clear();
            effects.migrations += 1;
            self.install_base(
                set,
                promoted.tag,
                promoted.data,
                promoted.size,
                promoted.dirty,
                inner,
                &mut effects,
            );
            self.engine.stats_mut().prefetch_hits += 1;
            self.engine.absorb(effects);
            return Some(OpOutcome { effects });
        }
        let mut effects = Effects::default();
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        let size = self.encoders.record(self.compressor.as_ref(), &data);
        self.compression.record(size);
        let way = self.install_base(set, tag, data, size, false, inner, &mut effects);
        if E::ENABLED {
            self.emit_compression(set, way, &data, size);
            self.engine.emit(CacheEvent::new(
                set,
                way,
                EventKind::PrefetchFill {
                    tag,
                    size: size.get(),
                },
            ));
        }
        self.engine.stats_mut().prefetch_fills += 1;
        self.engine.absorb(effects);
        Some(OpOutcome { effects })
    }

    fn peek_data(&self, addr: LineAddr) -> Option<CacheLine> {
        if let Some((set, way)) = self.find_base(addr) {
            return Some(self.engine.slot(set, way).meta.data);
        }
        let (set, way) = self.find_victim(addr)?;
        Some(self.victim[self.idx(set, way)].data)
    }

    fn hint_downgrade(&mut self, addr: LineAddr) {
        // Hints apply to the Baseline cache only — exactly what the
        // uncompressed mirror would do. Victim-cache residency is never
        // hinted (victim lines are invisible to the baseline policy).
        if let Some((set, way)) = self.find_base(addr) {
            self.engine.hint_downgrade(set, way);
        }
    }

    fn stats(&self) -> &LlcStats {
        self.engine.stats()
    }

    fn compression_stats(&self) -> &CompressionStats {
        &self.compression
    }

    fn tag_latency_penalty(&self) -> u32 {
        1 // doubled tags (Section V: "an additional cycle for tag lookup")
    }

    fn decompression_latency(&self, size: SegmentCount) -> u32 {
        self.compressor.decompression_latency(size, 2)
    }

    fn resident_lines(&self) -> Vec<LineAddr> {
        let mut lines = self.baseline_lines();
        lines.extend(self.victim_lines());
        lines
    }

    fn encoder_counts(&self) -> Vec<(&'static str, u64)> {
        self.encoders.counts(self.compressor.as_ref())
    }

    fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.engine.drain_events()
    }

    fn events_dropped(&self) -> u64 {
        self.engine.events_dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoInner;
    use bv_testkit::fixtures;

    /// Builds a line whose BDI size is exactly `segments` (for the sizes
    /// BDI can produce: 1, 2, 5, 6, 7, 10, 11, 16).
    fn line_with_segments(segments: u8) -> CacheLine {
        let line = match segments {
            1 => CacheLine::zeroed(),
            2 => CacheLine::from_u64_words(&[0xdead_beef_f00d_0000; 8]),
            // B8D1: 17 B.
            5 => CacheLine::from_u64_words(&core::array::from_fn(|i| 0x7f00_0000_0000 + i as u64)),
            // B4D1: 22 B.
            6 => CacheLine::from_u32_words(&core::array::from_fn(|i| {
                0x0100_0000 + (i as u32 % 5) * 8 + (i as u32 & 1)
            })),
            // B8D2: 25 B.
            7 => CacheLine::from_u64_words(&core::array::from_fn(|i| {
                0x7f00_0000_0000 + i as u64 * 300
            })),
            // B4D2: 38 B.
            10 => {
                CacheLine::from_u32_words(&core::array::from_fn(|i| 0x0100_0000 + i as u32 * 2000))
            }
            // B8D4: 41 B.
            11 => CacheLine::from_u64_words(&core::array::from_fn(|i| {
                0x7f00_0000_0000 + i as u64 * 1_000_000
            })),
            16 => CacheLine::from_u64_words(&core::array::from_fn(|i| {
                (i as u64 + 1).wrapping_mul(0x0123_4567_89ab_cdef)
            })),
            other => panic!("no constructor for {other} segments"),
        };
        let got = Bdi::new().compressed_size(&line).get();
        assert_eq!(got, segments, "constructor produced {got} segments");
        line
    }

    /// A 4-set, 4-way toy cache, as in the paper's worked examples.
    fn toy() -> BaseVictimLlc {
        BaseVictimLlc::new(
            fixtures::toy_geometry(),
            fixtures::toy_policy(),
            VictimPolicyKind::EcmLargestBase,
        )
    }

    fn addr(set: u64, k: u64) -> LineAddr {
        LineAddr::new(set + 4 * k)
    }

    #[test]
    fn fill_miss_hit_cycle() {
        let mut c = toy();
        let mut inner = NoInner;
        let a = addr(0, 0);
        assert_eq!(c.read(a, &mut inner).kind, HitKind::Miss);
        c.fill(a, line_with_segments(5), &mut inner);
        let out = c.read(a, &mut inner);
        assert_eq!(out.kind, HitKind::Base(SegmentCount::new(5)));
        c.assert_invariants();
    }

    #[test]
    fn displaced_line_parks_in_victim_cache() {
        let mut c = toy();
        let mut inner = NoInner;
        // Fill 4 small lines into set 0; the 5th fill displaces the LRU
        // line, which should be retained in the Victim cache.
        for k in 0..4 {
            c.fill(addr(0, k), line_with_segments(5), &mut inner);
        }
        c.fill(addr(0, 4), line_with_segments(5), &mut inner);
        c.assert_invariants();
        // addr(0,0) left the Baseline cache but is still resident.
        assert!(!c.baseline_lines().contains(&addr(0, 0)));
        assert!(c.victim_lines().contains(&addr(0, 0)));
        assert_eq!(c.stats().victim_inserts, 1);

        // Reading it is a victim hit, which promotes it back.
        let out = c.read(addr(0, 0), &mut inner);
        assert_eq!(out.kind, HitKind::Victim(SegmentCount::new(5)));
        assert!(c.baseline_lines().contains(&addr(0, 0)));
        c.assert_invariants();
    }

    #[test]
    fn incompressible_victims_are_dropped() {
        let mut c = toy();
        let mut inner = NoInner;
        for k in 0..4 {
            c.fill(addr(0, k), line_with_segments(16), &mut inner);
        }
        c.fill(addr(0, 4), line_with_segments(16), &mut inner);
        // No way has 16 free segments: the displaced line is gone.
        assert!(!c.contains(addr(0, 0)));
        assert_eq!(c.stats().victim_insert_failures, 1);
        c.assert_invariants();
    }

    #[test]
    fn victim_hit_promotion_mirrors_miss_plus_fill_for_the_policy() {
        // After a victim hit, the baseline victim (LRU) must be the line an
        // uncompressed cache would have evicted for this access.
        let mut c = toy();
        let mut inner = NoInner;
        for k in 0..5 {
            c.fill(addr(0, k), line_with_segments(5), &mut inner);
        }
        // Baseline: {1,2,3,4}; victim cache: {0}. LRU of baseline is 1.
        let out = c.read(addr(0, 0), &mut inner);
        assert!(matches!(out.kind, HitKind::Victim(_)));
        assert!(
            !c.baseline_lines().contains(&addr(0, 1)),
            "LRU line displaced"
        );
        assert!(c.baseline_lines().contains(&addr(0, 0)), "promoted");
        // The displaced LRU line itself parked in the victim cache.
        assert!(c.victim_lines().contains(&addr(0, 1)));
        c.assert_invariants();
    }

    #[test]
    fn dirty_baseline_victim_writes_back_exactly_once() {
        let mut c = toy();
        let mut inner = NoInner;
        for k in 0..4 {
            c.fill(addr(0, k), line_with_segments(5), &mut inner);
        }
        // Dirty the future victim via an L2 writeback (it stays 5 segments).
        c.writeback(addr(0, 0), line_with_segments(5), &mut inner);
        let out = c.fill(addr(0, 4), line_with_segments(5), &mut inner);
        assert_eq!(
            out.effects.memory_writes, 1,
            "exactly one writeback per fill"
        );
        // The line is now clean and parked in the victim cache.
        assert!(c.victim_lines().contains(&addr(0, 0)));
        c.assert_invariants();
    }

    #[test]
    fn growing_write_evicts_victim_partner() {
        let mut c = toy();
        let mut inner = NoInner;
        // Base line of 5 segments shares way with an 11-segment victim.
        for k in 0..4 {
            c.fill(addr(0, k), line_with_segments(11), &mut inner);
        }
        c.fill(addr(0, 4), line_with_segments(5), &mut inner);
        // addr(0,0) (11 segs) parked with the 5-seg base in the same way.
        assert!(c.victim_lines().contains(&addr(0, 0)));
        // Rewrite the base line so it grows to 16 segments: partner must go.
        c.writeback(addr(0, 4), line_with_segments(16), &mut inner);
        assert!(!c.contains(addr(0, 0)), "grown line displaces its partner");
        assert_eq!(c.stats().partner_evictions, 1);
        c.assert_invariants();
    }

    #[test]
    fn fill_that_does_not_fit_partner_silently_evicts_it() {
        let mut c = toy();
        let mut inner = NoInner;
        for k in 0..4 {
            c.fill(addr(0, k), line_with_segments(11), &mut inner);
        }
        // Fill a 5-seg line: LRU (way 0) displaced, parked somewhere.
        c.fill(addr(0, 4), line_with_segments(5), &mut inner);
        let parked = c.victim_lines();
        assert_eq!(parked, vec![addr(0, 0)]);
        // Fill a 16-seg line: the victim partner of the chosen way cannot
        // stay if it shares that way.
        c.fill(addr(0, 5), line_with_segments(16), &mut inner);
        c.assert_invariants();
    }

    #[test]
    fn paper_figure_5_scenario() {
        // Reproduce the Victim-cache read-hit flow: E hits in the Victim
        // cache, the LRU baseline line B is displaced, E takes its place,
        // and B parks in the Victim cache.
        let mut c = toy();
        let mut inner = NoInner;
        // Build baseline {A0..A3}, all 5 segments.
        for k in 0..4 {
            c.fill(addr(1, k), line_with_segments(5), &mut inner);
        }
        // Displace A0 into the victim cache with a new fill E'.
        c.fill(addr(1, 9), line_with_segments(5), &mut inner);
        assert!(c.victim_lines().contains(&addr(1, 0)));
        // Touch everything but A1 so A1 is LRU.
        for k in [2, 3, 9] {
            assert!(c.read(addr(1, k), &mut inner).is_hit());
        }
        // Victim hit on A0: A1 (LRU) must be displaced and parked.
        let out = c.read(addr(1, 0), &mut inner);
        assert!(matches!(out.kind, HitKind::Victim(_)));
        assert!(c.baseline_lines().contains(&addr(1, 0)));
        assert!(!c.baseline_lines().contains(&addr(1, 1)));
        assert!(c.victim_lines().contains(&addr(1, 1)));
        c.assert_invariants();
    }

    #[test]
    fn back_invalidations_accompany_every_baseline_displacement() {
        let mut c = toy();
        let mut inner = NoInner;
        for k in 0..4 {
            c.fill(addr(2, k), line_with_segments(5), &mut inner);
        }
        let before = c.stats().back_invalidations;
        c.fill(addr(2, 7), line_with_segments(5), &mut inner);
        assert_eq!(c.stats().back_invalidations, before + 1);
    }

    #[test]
    #[should_panic(expected = "Victim cache is impossible")]
    fn writeback_to_victim_line_panics() {
        let mut c = toy();
        let mut inner = NoInner;
        for k in 0..5 {
            c.fill(addr(0, k), line_with_segments(5), &mut inner);
        }
        // addr(0,0) is in the victim cache; an L2 writeback to it violates
        // the inclusion protocol.
        c.writeback(addr(0, 0), line_with_segments(5), &mut inner);
    }

    #[test]
    fn zero_lines_have_no_decompression_latency() {
        let c = toy();
        assert_eq!(c.decompression_latency(SegmentCount::MIN), 0);
        assert_eq!(c.decompression_latency(SegmentCount::FULL), 0);
        assert_eq!(c.decompression_latency(SegmentCount::new(5)), 2);
        assert_eq!(c.tag_latency_penalty(), 1);
    }

    #[test]
    fn victim_insert_best_fit_prefers_fullest_base() {
        let mut c = toy();
        let mut inner = NoInner;
        // Ways get bases of sizes 5, 5, 11, 10 (fills in order, empty ways
        // first, so way index follows fill order).
        c.fill(addr(3, 0), line_with_segments(5), &mut inner);
        c.fill(addr(3, 1), line_with_segments(5), &mut inner);
        c.fill(addr(3, 2), line_with_segments(11), &mut inner);
        c.fill(addr(3, 3), line_with_segments(10), &mut inner);
        // Displace addr(3,0) (5 segs) with a 5-seg fill. Candidates for the
        // displaced line: every way with >= 5 free segments. The largest
        // base that still fits 5 segments is the 11-seg base (way 2).
        c.fill(addr(3, 4), line_with_segments(5), &mut inner);
        assert!(c.victim_lines().contains(&addr(3, 0)));
        // Verify it parked alongside the 11-segment base: reading the
        // 11-seg line and the victim line must coexist.
        c.assert_invariants();
        let i = c.idx(3, 2);
        assert!(c.victim[i].valid, "victim parked in way 2 (largest base)");
    }

    fn toy_non_inclusive() -> BaseVictimLlc {
        BaseVictimLlc::new_non_inclusive(
            fixtures::toy_geometry(),
            fixtures::toy_policy(),
            VictimPolicyKind::EcmLargestBase,
        )
    }

    #[test]
    fn non_inclusive_parks_dirty_victims_without_writeback() {
        let mut c = toy_non_inclusive();
        let mut inner = NoInner;
        for k in 0..4 {
            c.fill(addr(0, k), line_with_segments(5), &mut inner);
        }
        // Dirty the future victim; its displacement must NOT write back.
        c.writeback(addr(0, 0), line_with_segments(5), &mut inner);
        let out = c.fill(addr(0, 4), line_with_segments(5), &mut inner);
        assert_eq!(
            out.effects.memory_writes, 0,
            "dirty victim parks without writeback"
        );
        assert_eq!(
            out.effects.back_invalidations, 0,
            "non-inclusive sends no back-invals"
        );
        assert!(c.victim_lines().contains(&addr(0, 0)));
        c.assert_invariants();
    }

    #[test]
    fn non_inclusive_dirty_victim_writes_back_when_dropped() {
        let mut c = toy_non_inclusive();
        let mut inner = NoInner;
        for k in 0..4 {
            c.fill(addr(0, k), line_with_segments(11), &mut inner);
        }
        c.writeback(addr(0, 0), line_with_segments(11), &mut inner);
        // Park the dirty 11-seg victim next to a 5-seg base.
        c.fill(addr(0, 4), line_with_segments(5), &mut inner);
        assert!(c.victim_lines().contains(&addr(0, 0)));
        // Grow the base so the dirty partner must be dropped: one
        // writeback must happen then.
        let out = c.writeback(addr(0, 4), line_with_segments(16), &mut inner);
        assert_eq!(
            out.effects.memory_writes, 1,
            "dirty partner drop pays the deferred writeback"
        );
        assert!(!c.contains(addr(0, 0)));
        c.assert_invariants();
    }

    #[test]
    fn non_inclusive_write_hit_to_victim_promotes() {
        let mut c = toy_non_inclusive();
        let mut inner = NoInner;
        for k in 0..5 {
            c.fill(addr(0, k), line_with_segments(5), &mut inner);
        }
        assert!(c.victim_lines().contains(&addr(0, 0)));
        // A writeback to the victim-resident line promotes it (Section
        // IV.B.3), rather than panicking as in inclusive mode.
        c.writeback(addr(0, 0), line_with_segments(5), &mut inner);
        assert!(c.baseline_lines().contains(&addr(0, 0)));
        c.assert_invariants();
    }

    #[test]
    fn non_inclusive_allocates_on_writeback_miss() {
        let mut c = toy_non_inclusive();
        let mut inner = NoInner;
        let a = addr(1, 0);
        assert!(!c.contains(a));
        c.writeback(a, line_with_segments(5), &mut inner);
        assert!(c.baseline_lines().contains(&a), "writeback allocate");
        c.assert_invariants();
    }

    #[test]
    fn inclusive_mode_is_the_default() {
        let c = toy();
        assert_eq!(c.inclusion_mode(), InclusionMode::Inclusive);
        let n = toy_non_inclusive();
        assert_eq!(n.inclusion_mode(), InclusionMode::NonInclusive);
    }

    #[test]
    fn alternative_compressors_plug_in() {
        use bv_compress::{Fpc, ZeroOnly};
        let geom = fixtures::toy_geometry();
        let mut inner = NoInner;
        for compressor in [
            Box::new(Fpc::new()) as Box<dyn Compressor>,
            Box::new(ZeroOnly::new()),
        ] {
            let mut c = BaseVictimLlc::with_compressor(
                geom,
                fixtures::toy_policy(),
                VictimPolicyKind::EcmLargestBase,
                InclusionMode::Inclusive,
                compressor,
            );
            // Zero lines compress to one segment under both algorithms:
            // five of them share four physical ways.
            for k in 0..5 {
                c.fill(addr(0, k), CacheLine::zeroed(), &mut inner);
            }
            assert!(c.contains(addr(0, 0)), "{}: victim retained", c.name());
            c.assert_invariants();
        }
    }

    #[test]
    fn stats_track_migrations() {
        let mut c = toy();
        let mut inner = NoInner;
        for k in 0..5 {
            c.fill(addr(0, k), line_with_segments(5), &mut inner);
        }
        assert_eq!(c.stats().migrations, 1); // one base->victim move
        c.read(addr(0, 0), &mut inner); // victim hit: promote + park
        assert_eq!(c.stats().migrations, 3);
    }

    #[test]
    fn monomorphic_construction_matches_runtime_selection() {
        let geom = fixtures::toy_geometry();
        let mut by_kind = toy();
        let mut by_type = BaseVictimLlc::with_policy(
            geom,
            bv_cache::replacement::Lru::new(geom.sets(), geom.ways()),
            VictimPolicyKind::EcmLargestBase,
            InclusionMode::Inclusive,
            Box::new(Bdi::new()),
        );
        let mut inner = NoInner;
        for i in 0..300 {
            let a = addr(i % 4, (i * 7) % 9);
            let hit_kind = by_kind.read(a, &mut inner).is_hit();
            let hit_type = by_type.read(a, &mut inner).is_hit();
            assert_eq!(hit_kind, hit_type);
            if !hit_kind {
                by_kind.fill(a, line_with_segments(5), &mut inner);
                by_type.fill(a, line_with_segments(5), &mut inner);
            }
        }
        assert_eq!(by_kind.stats(), by_type.stats());
    }
}
