//! The simple two-tags-per-way compressed caches of Section III.
//!
//! These organizations demonstrate the paper's negative result: doubling
//! tags and pairing compressed lines in physical ways *without* the
//! Base-Victim split interacts badly with the replacement policy.
//!
//! * [`TwoTagLlc`] treats all `2N` logical slots of a set as peers of one
//!   replacement policy. When the incoming line does not fit with the
//!   victim slot's partner, the partner is evicted too ("partner line
//!   victimization") — even if it is the MRU line. Figure 6 shows this
//!   losing 12% on average.
//! * [`TwoTagEcmLlc`] adds the ECM-inspired fix evaluated in Figure 7: it
//!   searches for an eviction candidate (per the policy's candidate
//!   predicate) whose removal alone frees enough space, choosing the one
//!   with the largest compressed size; partner victimization remains the
//!   fallback. This helps compressible workloads but still breaks the
//!   replacement order, leaving large negative outliers.

use crate::slot::{line_addr, LineMeta};
use crate::{Effects, HitKind, InclusionAgent, LlcOrganization, LlcStats, OpOutcome, ReadOutcome};
use bv_cache::engine::SetEngine;
use bv_cache::{CacheGeometry, LineAddr, Policy, PolicyKind, ReplacementPolicy};
use bv_compress::{
    Bdi, CacheLine, CompressionStats, Compressor, EncoderStats, SegmentCount, SEGMENTS_PER_LINE,
};
use bv_events::{CacheEvent, EventKind, EventSink, EvictCause, NoEventSink};

/// Victim-search flavor for the shared two-tag machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Flavor {
    /// Naive: policy victim + partner victimization (Figure 6).
    PartnerVictimization,
    /// Modified: ECM-style size-aware candidate search (Figure 7).
    EcmSizeAware,
}

/// Shared implementation of both two-tag organizations.
///
/// The set engine holds `sets x 2N` logical slots; slot `l` lives in
/// physical way `l / 2`, its partner is `l ^ 1`. The two-tag delta over
/// the engine is purely the pairing rule: a line may only be installed
/// where it fits with its partner, and lines that stop fitting victimize
/// the partner.
#[derive(Debug)]
pub struct TwoTagCore<P: ReplacementPolicy = Policy, E: EventSink = NoEventSink> {
    geom: CacheGeometry,
    engine: SetEngine<P, LineMeta, E>,
    flavor: Flavor,
    compression: CompressionStats,
    bdi: Bdi,
    encoders: EncoderStats,
}

impl<P: ReplacementPolicy, E: EventSink> TwoTagCore<P, E> {
    fn new(geom: CacheGeometry, policy: P, flavor: Flavor, sink: E) -> TwoTagCore<P, E> {
        let logical = geom.ways() * 2;
        TwoTagCore {
            geom,
            engine: SetEngine::with_sink(geom.sets(), logical, policy, sink),
            flavor,
            compression: CompressionStats::default(),
            bdi: Bdi::new(),
            encoders: EncoderStats::new(),
        }
    }

    fn find(&self, addr: LineAddr) -> Option<(usize, usize)> {
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        self.engine.find(set, tag).map(|l| (set, l))
    }

    /// Evicts the occupant of logical slot `l`, if valid, labeling the
    /// eviction event with `cause`.
    fn evict_slot(
        &mut self,
        set: usize,
        l: usize,
        inner: &mut dyn InclusionAgent,
        effects: &mut Effects,
        cause: EvictCause,
    ) {
        let slot = self.engine.slot(set, l).copied();
        if !slot.valid {
            return;
        }
        let addr = line_addr(&self.geom, set, slot.tag);
        effects.back_invalidations += 1;
        let inner_dirty = inner.back_invalidate(addr);
        if inner_dirty.is_some() || slot.meta.dirty {
            effects.memory_writes += 1;
        }
        self.engine.invalidate_as(set, l, cause);
    }

    /// Whether installing a line of `size` in logical slot `l` fits with
    /// the current partner occupant.
    fn fits_in(&self, set: usize, l: usize, size: SegmentCount) -> bool {
        let partner = self.engine.slot(set, l ^ 1);
        if partner.valid {
            partner.meta.size.fits_with(size)
        } else {
            size.get() as usize <= SEGMENTS_PER_LINE
        }
    }

    fn install(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
        prefetch: bool,
    ) -> Effects {
        debug_assert!(self.find(addr).is_none(), "fill of resident line");
        let mut effects = Effects::default();
        let set = self.geom.set_index(addr.get());
        let tag = self.geom.tag(addr.get());
        let size = self.encoders.record(&self.bdi, &data);
        self.compression.record(size);

        // Warmup path: an invalid logical slot whose partner leaves room.
        let target = (0..self.engine.ways())
            .find(|&l| !self.engine.slot(set, l).valid && self.fits_in(set, l, size));

        let l = match target {
            Some(l) => l,
            None => match self.flavor {
                Flavor::PartnerVictimization => {
                    // Evict the policy's victim; if the incoming line does
                    // not fit with its partner, victimize the partner too —
                    // even if the partner is the MRU line.
                    let v = self.engine.victim(set);
                    self.evict_slot(set, v, inner, &mut effects, EvictCause::Replacement);
                    if !self.fits_in(set, v, size) {
                        self.evict_slot(set, v ^ 1, inner, &mut effects, EvictCause::SizePressure);
                        effects.partner_evictions += 1;
                    }
                    v
                }
                Flavor::EcmSizeAware => {
                    // Candidates: valid slots whose sole removal frees
                    // enough space. Prefer the policy's eviction
                    // candidates (e.g. NRU bit clear), then the largest
                    // compressed size (maximizes retained capacity, as in
                    // ECM). Breaking the policy order like this is exactly
                    // the compromise Figure 7 evaluates.
                    let candidate = (0..self.engine.ways())
                        .filter(|&l| self.engine.slot(set, l).valid && self.fits_in(set, l, size))
                        .max_by_key(|&l| {
                            (
                                self.engine.is_eviction_candidate(set, l),
                                self.engine.slot(set, l).meta.size.get(),
                                usize::MAX - l,
                            )
                        });
                    match candidate {
                        Some(l) => {
                            self.evict_slot(set, l, inner, &mut effects, EvictCause::SizePressure);
                            l
                        }
                        None => {
                            // Fall back to partner victimization.
                            let v = self.engine.victim(set);
                            self.evict_slot(set, v, inner, &mut effects, EvictCause::Replacement);
                            if !self.fits_in(set, v, size) {
                                self.evict_slot(
                                    set,
                                    v ^ 1,
                                    inner,
                                    &mut effects,
                                    EvictCause::SizePressure,
                                );
                                effects.partner_evictions += 1;
                            }
                            v
                        }
                    }
                }
            },
        };

        if E::ENABLED {
            let (_, class) = self.bdi.classified_size(&data);
            self.engine.emit(CacheEvent::new(
                set,
                l,
                EventKind::Compression {
                    encoder: class.map_or(u8::MAX, |c| c as u8),
                    size: size.get(),
                },
            ));
            let kind = if prefetch {
                EventKind::PrefetchFill {
                    tag,
                    size: size.get(),
                }
            } else {
                EventKind::Fill {
                    tag,
                    size: size.get(),
                }
            };
            self.engine.emit(CacheEvent::new(set, l, kind));
        }

        let meta = LineMeta {
            dirty: false,
            data,
            size,
        };
        self.engine.install(set, l, tag, meta, size);
        effects
    }

    fn do_writeback(
        &mut self,
        addr: LineAddr,
        data: CacheLine,
        inner: &mut dyn InclusionAgent,
    ) -> Effects {
        let mut effects = Effects::default();
        match self.find(addr) {
            Some((set, l)) => {
                // Unchanged data (clean writeback) reuses the size cached in
                // the tag slot; only a real data write pays recompression.
                let slot = self.engine.slot(set, l);
                let new_size = if slot.meta.data == data {
                    slot.meta.size
                } else {
                    self.encoders.record(&self.bdi, &data)
                };
                self.compression.record(new_size);
                let meta = &mut self.engine.slot_mut(set, l).meta;
                meta.data = data;
                meta.dirty = true;
                meta.size = new_size;
                if E::ENABLED {
                    let tag = self.geom.tag(addr.get());
                    self.engine.emit(CacheEvent::new(
                        set,
                        l,
                        EventKind::Writeback {
                            tag,
                            size: new_size.get(),
                        },
                    ));
                }
                // If the line grew past its partner's space, the partner
                // must be evicted (with a writeback if dirty).
                let partner = self.engine.slot(set, l ^ 1);
                if partner.valid && !new_size.fits_with(partner.meta.size) {
                    self.evict_slot(set, l ^ 1, inner, &mut effects, EvictCause::SizePressure);
                    effects.partner_evictions += 1;
                }
                self.engine.stats_mut().writeback_hits += 1;
            }
            None => {
                debug_assert!(false, "L2 writeback to non-resident LLC line {addr:?}");
                self.engine.stats_mut().writeback_misses += 1;
                effects.memory_writes += 1;
            }
        }
        effects
    }

    /// Verifies the pairing invariant; used by tests.
    ///
    /// # Panics
    ///
    /// Panics if any physical way's two logical lines exceed 16 segments.
    pub fn assert_invariants(&self) {
        for set in 0..self.geom.sets() {
            for w in 0..self.geom.ways() {
                let a = self.engine.slot(set, 2 * w);
                let b = self.engine.slot(set, 2 * w + 1);
                if a.valid && b.valid {
                    assert!(
                        a.meta.size.fits_with(b.meta.size),
                        "pair overflow set {set} way {w}: {} + {}",
                        a.meta.size,
                        b.meta.size
                    );
                }
            }
        }
    }
}

macro_rules! two_tag_llc {
    ($(#[$doc:meta])* $name:ident, $flavor:expr, $org_name:literal) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name<P: ReplacementPolicy = Policy, E: EventSink = NoEventSink> {
            core: TwoTagCore<P, E>,
        }

        impl $name {
            /// Creates an empty organization over the given physical
            /// geometry (each data way carries two tags) with a
            /// runtime-selected policy.
            #[must_use]
            pub fn new(geom: CacheGeometry, policy: PolicyKind) -> $name {
                let logical = geom.ways() * 2;
                $name::with_policy(geom, policy.instantiate(geom.sets(), logical))
            }
        }

        impl<P: ReplacementPolicy> $name<P> {
            /// Creates an empty organization around a concrete policy
            /// instance covering all `2N` logical slots per set.
            #[must_use]
            pub fn with_policy(geom: CacheGeometry, policy: P) -> $name<P> {
                $name::with_sink(geom, policy, NoEventSink)
            }
        }

        impl<P: ReplacementPolicy, E: EventSink> $name<P, E> {
            /// Creates an empty organization that reports cache events to
            /// `sink`. The untraced constructors route here with
            /// [`NoEventSink`](bv_events::NoEventSink), which compiles the
            /// event path out entirely.
            #[must_use]
            pub fn with_sink(geom: CacheGeometry, policy: P, sink: E) -> $name<P, E> {
                $name {
                    core: TwoTagCore::new(geom, policy, $flavor, sink),
                }
            }

            /// Verifies the pairing invariant; used by tests.
            ///
            /// # Panics
            ///
            /// Panics if two paired lines exceed the physical way capacity.
            pub fn assert_invariants(&self) {
                self.core.assert_invariants();
            }
        }

        impl<P: ReplacementPolicy, E: EventSink> LlcOrganization for $name<P, E> {
            fn name(&self) -> &'static str {
                $org_name
            }

            fn geometry(&self) -> CacheGeometry {
                self.core.geom
            }

            fn contains(&self, addr: LineAddr) -> bool {
                self.core.find(addr).is_some()
            }

            fn read(&mut self, addr: LineAddr, _inner: &mut dyn InclusionAgent) -> ReadOutcome {
                match self.core.find(addr) {
                    Some((set, l)) => {
                        self.core.engine.demand_hit(set, l);
                        let size = self.core.engine.slot(set, l).meta.size;
                        ReadOutcome {
                            kind: HitKind::Base(size),
                            effects: Effects::default(),
                        }
                    }
                    None => {
                        let set = self.core.geom.set_index(addr.get());
                        self.core.engine.demand_miss(set);
                        ReadOutcome {
                            kind: HitKind::Miss,
                            effects: Effects::default(),
                        }
                    }
                }
            }

            fn writeback(
                &mut self,
                addr: LineAddr,
                data: CacheLine,
                inner: &mut dyn InclusionAgent,
            ) -> OpOutcome {
                let effects = self.core.do_writeback(addr, data, inner);
                self.core.engine.absorb(effects);
                OpOutcome { effects }
            }

            fn fill(
                &mut self,
                addr: LineAddr,
                data: CacheLine,
                inner: &mut dyn InclusionAgent,
            ) -> OpOutcome {
                let effects = self.core.install(addr, data, inner, false);
                self.core.engine.stats_mut().demand_fills += 1;
                self.core.engine.absorb(effects);
                OpOutcome { effects }
            }

            fn prefetch_fill(
                &mut self,
                addr: LineAddr,
                data: CacheLine,
                inner: &mut dyn InclusionAgent,
            ) -> Option<OpOutcome> {
                if self.contains(addr) {
                    self.core.engine.stats_mut().prefetch_hits += 1;
                    return None;
                }
                let effects = self.core.install(addr, data, inner, true);
                self.core.engine.stats_mut().prefetch_fills += 1;
                self.core.engine.absorb(effects);
                Some(OpOutcome { effects })
            }

            fn peek_data(&self, addr: LineAddr) -> Option<CacheLine> {
                let (set, l) = self.core.find(addr)?;
                Some(self.core.engine.slot(set, l).meta.data)
            }

            fn hint_downgrade(&mut self, addr: LineAddr) {
                if let Some((set, l)) = self.core.find(addr) {
                    self.core.engine.hint_downgrade(set, l);
                }
            }

            fn stats(&self) -> &LlcStats {
                self.core.engine.stats()
            }

            fn compression_stats(&self) -> &CompressionStats {
                &self.core.compression
            }

            fn tag_latency_penalty(&self) -> u32 {
                1 // doubled tags
            }

            fn decompression_latency(&self, size: SegmentCount) -> u32 {
                self.core.bdi.decompression_latency(size, 2)
            }

            fn resident_lines(&self) -> Vec<LineAddr> {
                self.core
                    .engine
                    .iter_valid()
                    .map(|(set, _, s)| line_addr(&self.core.geom, set, s.tag))
                    .collect()
            }

            fn encoder_counts(&self) -> Vec<(&'static str, u64)> {
                self.core.encoders.counts(&self.core.bdi)
            }

            fn drain_events(&mut self) -> Vec<CacheEvent> {
                self.core.engine.drain_events()
            }

            fn events_dropped(&self) -> u64 {
                self.core.engine.events_dropped()
            }
        }
    };
}

two_tag_llc!(
    /// The naive two-tag organization of Section III (Figure 6): the
    /// policy's victim is evicted and, when the incoming line does not fit
    /// with the victim's partner, the partner is victimized too — even if
    /// it is the hottest line in the set.
    TwoTagLlc,
    Flavor::PartnerVictimization,
    "two-tag"
);

two_tag_llc!(
    /// The modified two-tag organization of Figure 7: an ECM-inspired
    /// size-aware search avoids partner victimization when possible, but
    /// must break the replacement order to do so.
    TwoTagEcmLlc,
    Flavor::EcmSizeAware,
    "two-tag-ecm"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoInner;
    use bv_compress::CacheLine;
    use bv_testkit::fixtures;

    fn compressible(seed: u64) -> CacheLine {
        // B8D1: 5 segments.
        CacheLine::from_u64_words(&core::array::from_fn(|i| {
            0x4000_0000_0000 + seed * 0x10_0000 + i as u64
        }))
    }

    fn incompressible(seed: u64) -> CacheLine {
        CacheLine::from_u64_words(&core::array::from_fn(|i| {
            (seed + 1)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((i as u64) << 56 | (i as u64).wrapping_mul(0x1234_5678_9abc))
        }))
    }

    fn addr(set: u64, k: u64) -> LineAddr {
        LineAddr::new(set + 4 * k) // 4-set caches below
    }

    fn toy_naive() -> TwoTagLlc {
        TwoTagLlc::new(fixtures::toy_geometry(), fixtures::toy_policy())
    }

    fn toy_ecm() -> TwoTagEcmLlc {
        TwoTagEcmLlc::new(fixtures::toy_geometry(), PolicyKind::Nru)
    }

    #[test]
    fn compressible_lines_double_capacity() {
        let mut c = toy_naive();
        let mut inner = NoInner;
        // Eight 5-segment lines fit in four physical ways (5 + 5 <= 16).
        for k in 0..8 {
            c.fill(addr(0, k), compressible(k), &mut inner);
        }
        for k in 0..8 {
            assert!(c.contains(addr(0, k)), "line {k} evicted prematurely");
        }
        c.assert_invariants();
        assert_eq!(c.stats().memory_writes, 0);
    }

    #[test]
    fn incompressible_lines_keep_baseline_capacity() {
        let mut c = toy_naive();
        let mut inner = NoInner;
        for k in 0..4 {
            c.fill(addr(0, k), incompressible(k), &mut inner);
        }
        // A fifth incompressible line evicts one resident line only (its
        // slot's partner is invalid).
        c.fill(addr(0, 4), incompressible(4), &mut inner);
        let resident = c.resident_lines().len();
        assert_eq!(resident, 4);
        c.assert_invariants();
    }

    #[test]
    fn partner_victimization_can_evict_the_mru_line() {
        // The Section III pathology: the LRU victim's physical partner is
        // the MRU line, and an incompressible fill kills them both.
        let mut c = toy_naive();
        let mut inner = NoInner;
        // Fill all 8 logical slots with compressible lines; fills land in
        // slot order, so addr(0,k) occupies slot k and addr(0,0)/addr(0,1)
        // share physical way 0.
        for k in 0..8 {
            c.fill(addr(0, k), compressible(k), &mut inner);
        }
        // Touch everything except addr(0,0), ending with addr(0,1): the
        // LRU line (slot 0) and the MRU line (slot 1) now share a way.
        for k in [2, 3, 4, 5, 6, 7, 1] {
            assert!(c.read(addr(0, k), &mut inner).is_hit());
        }
        // Incompressible fill: the LRU victim is slot 0; the incoming line
        // does not fit with its partner, so the MRU line is victimized.
        c.fill(addr(0, 9), incompressible(9), &mut inner);
        assert!(!c.contains(addr(0, 0)), "LRU line evicted");
        assert!(
            !c.contains(addr(0, 1)),
            "naive two-tag must victimize the MRU partner"
        );
        assert_eq!(c.stats().partner_evictions, 1);
        c.assert_invariants();
    }

    #[test]
    fn full_sets_of_incompressible_lines_waste_the_spare_tags() {
        // With four incompressible residents, the four spare tags can
        // never be used; every further fill victimizes some partner.
        let mut c = toy_naive();
        let mut inner = NoInner;
        for k in 0..4 {
            c.fill(addr(0, k), incompressible(k), &mut inner);
        }
        let before = c.stats().partner_evictions;
        c.fill(addr(0, 9), incompressible(9), &mut inner);
        assert_eq!(c.resident_lines().len(), 4);
        assert_eq!(c.stats().partner_evictions, before + 1);
        c.assert_invariants();
    }

    #[test]
    fn ecm_variant_avoids_partner_victimization_when_possible() {
        let mut c = toy_ecm();
        let mut inner = NoInner;
        c.fill(addr(0, 0), compressible(0), &mut inner);
        c.fill(addr(0, 1), compressible(1), &mut inner);
        for k in 2..5 {
            c.fill(addr(0, k), incompressible(k), &mut inner);
        }
        // Touch the compressible pair so they are protected; the
        // incompressible lines age out.
        assert!(c.read(addr(0, 0), &mut inner).is_hit());
        assert!(c.read(addr(0, 1), &mut inner).is_hit());
        // An incompressible fill should evict one of the stale
        // incompressible lines (whose partners are invalid), not split the
        // protected pair.
        c.fill(addr(0, 9), incompressible(9), &mut inner);
        assert!(c.contains(addr(0, 0)));
        assert!(c.contains(addr(0, 1)));
        assert_eq!(c.stats().partner_evictions, 0);
        c.assert_invariants();
    }

    #[test]
    fn writeback_growth_evicts_partner_with_writeback() {
        let mut c = toy_naive();
        let mut inner = NoInner;
        c.fill(addr(1, 0), compressible(0), &mut inner);
        c.fill(addr(1, 1), compressible(1), &mut inner); // partner pair
                                                         // Dirty the partner so its eviction costs a memory write.
        c.writeback(addr(1, 1), compressible(1), &mut inner);
        // Grow the first line to a full line: partner must be evicted and
        // written back.
        let out = c.writeback(addr(1, 0), incompressible(7), &mut inner);
        assert_eq!(out.effects.partner_evictions, 1);
        assert_eq!(out.effects.memory_writes, 1);
        assert!(!c.contains(addr(1, 1)));
        c.assert_invariants();
    }

    #[test]
    fn doubled_tags_cost_a_cycle() {
        let c = toy_naive();
        assert_eq!(c.tag_latency_penalty(), 1);
        assert_eq!(c.decompression_latency(SegmentCount::new(5)), 2);
        assert_eq!(c.decompression_latency(SegmentCount::FULL), 0);
    }

    #[test]
    fn prefetch_fills_install_once() {
        let mut c = toy_ecm();
        let mut inner = NoInner;
        let a = addr(2, 0);
        assert!(c.prefetch_fill(a, compressible(0), &mut inner).is_some());
        assert!(c.prefetch_fill(a, compressible(0), &mut inner).is_none());
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().prefetch_hits, 1);
    }
}
