//! Baseline-divergence auditor: runs a Base-Victim LLC and an
//! uncompressed LLC in lockstep and explains the first mismatch.
//!
//! The Base-Victim architecture's central guarantee (Section IV of the
//! paper) is that its Baseline cache holds *exactly* the lines an
//! uncompressed cache of the same geometry would hold. The differential
//! and mirror test suites assert that guarantee pass/fail; this module
//! turns it into an explaining tool. [`run_audit`] drives both
//! organizations with the same randomized trace, compares the Baseline
//! contents against the uncompressed contents after **every** operation,
//! and — on the first mismatch — reports which lines differ, which set
//! they live in, and the last few [`CacheEvent`]s recorded for that set,
//! so the decision that caused the divergence is visible, not just its
//! aftermath.
//!
//! A healthy build never diverges, so the auditor also supports *fault
//! injection*: [`AuditConfig::inject_at`] issues extra demand reads to
//! the Base-Victim side only, silently perturbing its replacement state
//! the way a policy bug would. The auditor is then expected to pinpoint
//! the first fill whose victim choice differs — `bvsim trace --audit
//! --inject N` uses this as a self-test of the event pipeline.

use crate::{
    BaseVictimLlc, InclusionMode, LlcOrganization, NoInner, UncompressedLlc, VictimPolicyKind,
};
use bv_cache::{CacheGeometry, LineAddr, PolicyKind};
use bv_compress::{Bdi, CacheLine};
use bv_events::{CacheEvent, RingSink};

/// How the auditor drives the two organizations.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Number of trace operations to run.
    pub ops: usize,
    /// Seed for the deterministic operation stream.
    pub seed: u64,
    /// How many set-local events to report alongside a divergence.
    pub context: usize,
    /// If set, issue extra demand reads (one per Baseline-resident line,
    /// in address order) to the Base-Victim side only, just before this
    /// operation index — a synthetic replacement-state fault the auditor
    /// must catch.
    pub inject_at: Option<usize>,
    /// Baseline replacement policy for both organizations.
    pub policy: PolicyKind,
    /// Victim-cache allocation policy for the Base-Victim side.
    pub victim: VictimPolicyKind,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            ops: 2000,
            seed: 1,
            context: 8,
            inject_at: None,
            policy: PolicyKind::Lru,
            victim: VictimPolicyKind::EcmLargestBase,
        }
    }
}

/// The first point where the Baseline cache stopped mirroring the
/// uncompressed cache.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the operation after which the mismatch was observed.
    pub op: usize,
    /// The set holding the first mismatched line.
    pub set: usize,
    /// Lines the uncompressed cache holds but the Baseline cache lost.
    pub missing: Vec<LineAddr>,
    /// Lines the Baseline cache holds but the uncompressed cache does not.
    pub unexpected: Vec<LineAddr>,
    /// The most recent events recorded for [`Divergence::set`], oldest
    /// first — the offending decision is the last fill/eviction here.
    pub context: Vec<CacheEvent>,
}

/// What an audit run observed.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Operations completed before stopping (equals the configured `ops`
    /// when no divergence was found).
    pub ops_run: usize,
    /// Total events drained from the Base-Victim side's ring.
    pub events_seen: u64,
    /// Whether the configured fault injection actually fired.
    pub injected: bool,
    /// The first mismatch, if any.
    pub divergence: Option<Divergence>,
}

impl AuditReport {
    /// `true` when the run matched expectations: a clean mirror without
    /// injection, or a *caught* divergence with it.
    #[must_use]
    pub fn passed(&self) -> bool {
        if self.injected {
            self.divergence.is_some()
        } else {
            self.divergence.is_none()
        }
    }
}

/// xorshift64* — deterministic, dependency-free op-stream generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One operation in an externally supplied audit stream.
///
/// [`run_audit`] generates these internally from the config seed;
/// [`run_audit_ops`] accepts a caller-built sequence (the fuzzer's
/// adversarial workloads) and drives the same lockstep comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditOp {
    /// Demand read of a line address, filling on miss.
    Read(u64),
    /// L2 writeback; executed only when the line is resident on both
    /// sides (otherwise a no-op, matching L2 inclusion semantics).
    Writeback(u64),
    /// Prefetch fill of a line address.
    Prefetch(u64),
}

/// Address-stable memory contents with mixed compressibility, matching
/// the mirror test suite: a line's bytes are a function of its address
/// only, so size-aware policies see identical sizes on both sides.
#[must_use]
pub fn line_for(key: u64) -> CacheLine {
    let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    match h % 4 {
        0 => CacheLine::zeroed(),
        1 => CacheLine::from_u64_words(&core::array::from_fn(|i| {
            0x4000_0000_0000 + key * 64 + i as u64
        })),
        2 => CacheLine::from_u64_words(&[h; 8]),
        _ => CacheLine::from_u64_words(&core::array::from_fn(|i| {
            h.wrapping_mul(i as u64 + 1).wrapping_add((i as u64) << 55)
        })),
    }
}

fn sorted(mut v: Vec<LineAddr>) -> Vec<LineAddr> {
    v.sort_by_key(|a| a.get());
    v
}

/// Runs the lockstep audit and stops at the first Baseline mismatch.
///
/// The Base-Victim side is built with a [`RingSink`] (capacity scaled to
/// the context request), drained after every operation into a rolling
/// event log; on divergence the log is filtered to the offending set.
#[must_use]
pub fn run_audit(geom: CacheGeometry, cfg: &AuditConfig) -> AuditReport {
    let sets = geom.sets();
    let ways = geom.ways();
    let mut rng = Rng::new(cfg.seed);

    // Address space spans 16x the line capacity's working set at the
    // default audit geometry, matching the mirror suite's trace shape.
    let span = 256u64.max((sets * ways * 4) as u64);

    let ops: Vec<AuditOp> = (0..cfg.ops)
        .map(|_| {
            let a = rng.below(span);
            match rng.below(10) {
                0..=6 => AuditOp::Read(a),
                7..=8 => AuditOp::Writeback(a),
                _ => AuditOp::Prefetch(a),
            }
        })
        .collect();
    run_audit_ops(geom, cfg, &ops, line_for)
}

/// Runs the lockstep audit over a caller-supplied operation stream with
/// caller-supplied memory contents (`data_for` maps a line address to
/// its bytes, and must be address-stable so both sides see identical
/// compressed sizes).
///
/// `cfg.ops` and `cfg.seed` are ignored — the stream *is* the workload;
/// `cfg.inject_at`, `cfg.policy`, `cfg.victim`, and `cfg.context` apply
/// exactly as in [`run_audit`].
#[must_use]
pub fn run_audit_ops(
    geom: CacheGeometry,
    cfg: &AuditConfig,
    ops: &[AuditOp],
    data_for: impl Fn(u64) -> CacheLine,
) -> AuditReport {
    let sets = geom.sets();
    let ways = geom.ways();
    let mut unc = UncompressedLlc::new(geom, cfg.policy);
    let mut bv = BaseVictimLlc::with_sink(
        geom,
        cfg.policy.instantiate(sets, ways),
        cfg.victim,
        InclusionMode::Inclusive,
        Box::new(Bdi::new()),
        RingSink::new(cfg.context.max(1) * 64),
    );
    let mut inner = NoInner;

    // Rolling event log, drained from the ring after every op so the ring
    // never wraps between compares.
    let mut log: Vec<CacheEvent> = Vec::new();
    let mut events_seen = 0u64;
    let mut injected = false;

    for (op, &trace_op) in ops.iter().enumerate() {
        if cfg.inject_at == Some(op) {
            // The synthetic fault: demand reads the uncompressed side
            // never sees, one per resident Baseline line. Contents stay
            // identical at first; only the replacement state skews (every
            // set's recency becomes address order), so the divergence
            // surfaces at a later fill — exactly the delayed-cause shape
            // the event context exists to explain.
            for addr in sorted(bv.baseline_lines()) {
                let _ = bv.read(addr, &mut inner);
            }
            injected = true;
        }

        let a = match trace_op {
            AuditOp::Read(a) | AuditOp::Writeback(a) | AuditOp::Prefetch(a) => a,
        };
        let addr = LineAddr::new(a);
        let data = data_for(a);
        match trace_op {
            // Demand read, filling on miss.
            AuditOp::Read(_) => {
                let hu = unc.read(addr, &mut inner).is_hit();
                let hb = bv.read(addr, &mut inner).is_hit();
                if !hu {
                    unc.fill(addr, data, &mut inner);
                }
                if !hb {
                    bv.fill(addr, data, &mut inner);
                }
            }
            // L2 writeback, legal only for baseline-resident lines.
            AuditOp::Writeback(_) => {
                if bv.baseline_lines().contains(&addr) && unc.contains(addr) {
                    unc.writeback(addr, data, &mut inner);
                    bv.writeback(addr, data, &mut inner);
                }
            }
            // Prefetch fill.
            AuditOp::Prefetch(_) => {
                unc.prefetch_fill(addr, data, &mut inner);
                bv.prefetch_fill(addr, data, &mut inner);
            }
        }

        let fresh = bv.drain_events();
        events_seen += fresh.len() as u64;
        log.extend(fresh);

        let base = sorted(bv.baseline_lines());
        let mirror = sorted(unc.resident_lines());
        if base != mirror {
            let missing: Vec<LineAddr> = mirror
                .iter()
                .filter(|a| !base.contains(a))
                .copied()
                .collect();
            let unexpected: Vec<LineAddr> = base
                .iter()
                .filter(|a| !mirror.contains(a))
                .copied()
                .collect();
            let first = missing.first().or(unexpected.first()).copied();
            let set = first.map_or(0, |a| geom.set_index(a.get()));
            let set_events: Vec<CacheEvent> = log
                .iter()
                .filter(|e| e.set as usize == set)
                .copied()
                .collect();
            let start = set_events.len().saturating_sub(cfg.context.max(1));
            return AuditReport {
                ops_run: op + 1,
                events_seen,
                injected,
                divergence: Some(Divergence {
                    op,
                    set,
                    missing,
                    unexpected,
                    context: set_events[start..].to_vec(),
                }),
            };
        }

        // Keep the rolling log bounded; only the recent tail can ever be
        // reported.
        let cap = cfg.context.max(1) * 256;
        if log.len() > cap {
            log.drain(..log.len() - cap);
        }
    }

    AuditReport {
        ops_run: ops.len(),
        events_seen,
        injected,
        divergence: None,
    }
}

/// One event as a fixed-width audit-log line.
#[must_use]
pub fn describe_event(ev: &CacheEvent) -> String {
    use bv_events::EventKind as K;
    let way = if ev.way == CacheEvent::NO_WAY {
        "  -".to_string()
    } else {
        format!("{:>3}", ev.way)
    };
    let detail = match ev.kind {
        K::Fill { tag, size } | K::PrefetchFill { tag, size } => {
            format!("tag=0x{tag:x} size={size}")
        }
        K::DemandHit { tag } => format!("tag=0x{tag:x}"),
        K::DemandMiss => String::new(),
        K::VictimHit { tag, size }
        | K::VictimInsert { tag, size }
        | K::VictimInsertFail { tag, size }
        | K::Writeback { tag, size } => format!("tag=0x{tag:x} size={size}"),
        K::SilentDrop { tag, cause } => format!("tag=0x{tag:x} cause={}", cause.name()),
        K::Eviction { tag, cause } => format!("tag=0x{tag:x} cause={}", cause.name()),
        K::Compression { encoder, size } => format!("encoder={encoder} size={size}"),
    };
    format!(
        "seq={:>8} set={:>4} way={} {:<18} {}",
        ev.seq,
        ev.set,
        way,
        ev.kind.name(),
        detail
    )
    .trim_end()
    .to_string()
}

/// Renders a [`Divergence`] as the multi-line report `bvsim trace
/// --audit` prints.
#[must_use]
pub fn render_divergence(d: &Divergence) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "baseline divergence after op {} in set {}\n",
        d.op, d.set
    ));
    let list = |addrs: &[LineAddr]| {
        addrs
            .iter()
            .map(|a| format!("0x{:x}", a.get()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    if !d.missing.is_empty() {
        out.push_str(&format!(
            "  missing from Baseline (mirror holds): {}\n",
            list(&d.missing)
        ));
    }
    if !d.unexpected.is_empty() {
        out.push_str(&format!(
            "  unexpected in Baseline (mirror lacks): {}\n",
            list(&d.unexpected)
        ));
    }
    if d.context.is_empty() {
        out.push_str("  no events recorded for this set\n");
    } else {
        out.push_str(&format!(
            "  last {} event(s) for set {}:\n",
            d.context.len(),
            d.set
        ));
        for ev in &d.context {
            out.push_str("    ");
            out.push_str(&describe_event(ev));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(4096, 4, 64)
    }

    #[test]
    fn clean_run_never_diverges() {
        for policy in PolicyKind::ALL {
            let cfg = AuditConfig {
                policy,
                seed: 7,
                ..AuditConfig::default()
            };
            let report = run_audit(geom(), &cfg);
            assert!(
                report.divergence.is_none(),
                "{policy:?}: spurious divergence: {:?}",
                report.divergence
            );
            assert!(report.passed());
            assert_eq!(report.ops_run, cfg.ops);
            assert!(report.events_seen > 0, "traced run recorded no events");
        }
    }

    #[test]
    fn injected_fault_is_pinpointed_with_set_context() {
        let cfg = AuditConfig {
            inject_at: Some(200),
            seed: 3,
            ..AuditConfig::default()
        };
        let report = run_audit(geom(), &cfg);
        assert!(report.injected);
        assert!(report.passed());
        let d = report
            .divergence
            .expect("injected replacement fault must be caught");
        assert!(d.op >= 200, "divergence cannot precede the injection");
        assert!(
            !d.missing.is_empty() || !d.unexpected.is_empty(),
            "divergence must name at least one mismatched line"
        );
        // Set-local context: every reported event belongs to the set the
        // mismatch was found in, and the report stays within the bound.
        assert!(!d.context.is_empty(), "divergence carried no event context");
        assert!(d.context.len() <= cfg.context);
        for ev in &d.context {
            assert_eq!(ev.set as usize, d.set);
        }
        // The rendering names the op, the set, and the events.
        let text = render_divergence(&d);
        assert!(text.contains(&format!("after op {}", d.op)));
        assert!(text.contains(&format!("set {}", d.set)));
        assert!(text.contains("seq="));
    }

    /// An explicit op stream must behave like the generated one: clean
    /// without injection, caught with it, and `ops_run` reflects the
    /// stream length rather than `cfg.ops`.
    #[test]
    fn explicit_op_streams_audit_cleanly_and_catch_injection() {
        let mut rng = Rng::new(11);
        let ops: Vec<AuditOp> = (0..1_000)
            .map(|_| {
                let a = rng.below(4 * 4 * 16);
                match rng.below(10) {
                    0..=6 => AuditOp::Read(a),
                    7..=8 => AuditOp::Writeback(a),
                    _ => AuditOp::Prefetch(a),
                }
            })
            .collect();
        let small = CacheGeometry::new(1024, 4, 64);
        let cfg = AuditConfig::default();
        let clean = run_audit_ops(small, &cfg, &ops, line_for);
        assert!(
            clean.passed(),
            "clean stream diverged: {:?}",
            clean.divergence
        );
        assert_eq!(clean.ops_run, ops.len());
        let cfg = AuditConfig {
            inject_at: Some(100),
            ..AuditConfig::default()
        };
        let faulted = run_audit_ops(small, &cfg, &ops, line_for);
        assert!(faulted.injected);
        assert!(faulted.passed(), "injected fault must be caught");
    }

    #[test]
    fn describe_event_covers_every_kind() {
        use bv_events::{DropCause, EventKind, EvictCause};
        let kinds = [
            EventKind::Fill { tag: 1, size: 4 },
            EventKind::PrefetchFill { tag: 1, size: 4 },
            EventKind::DemandHit { tag: 1 },
            EventKind::DemandMiss,
            EventKind::VictimHit { tag: 1, size: 4 },
            EventKind::VictimInsert { tag: 1, size: 4 },
            EventKind::VictimInsertFail { tag: 1, size: 4 },
            EventKind::SilentDrop {
                tag: 1,
                cause: DropCause::Displaced,
            },
            EventKind::Writeback { tag: 1, size: 4 },
            EventKind::Eviction {
                tag: 1,
                cause: EvictCause::Replacement,
            },
            EventKind::Compression {
                encoder: 0,
                size: 4,
            },
        ];
        for kind in kinds {
            let line = describe_event(&CacheEvent::new(3, 1, kind));
            assert!(line.contains(kind.name()), "{line}");
            assert!(line.contains("set=   3"), "{line}");
        }
    }
}
