//! One function per paper table/figure. Each returns a human-readable
//! summary (also printed by its runner binary) and writes TSV data under
//! `results/`.

use crate::{
    category_table, configs, gain_pct, losers, read_ratio, sweep, write_line_graph, Ctx,
    TraceRatios,
};
use bv_cache::PolicyKind;
use bv_core::area::AreaModel;
use bv_core::{DccLlc, LlcOrganization, NoInner, VictimPolicyKind, VscLlc};
use bv_energy::{EnergyModel, LlcEnergyClass};
use bv_sim::report::geomean;
use bv_sim::{LlcKind, SimConfig};
use bv_trace::mix::paper_mixes;
use bv_trace::WorkloadCategory;
use std::fmt::Write as _;

/// Table I: the workload inventory.
#[must_use]
pub fn table1(ctx: &Ctx) -> String {
    let mut s = String::from("== Table I: workloads ==\n");
    let mut rows = Vec::new();
    for cat in WorkloadCategory::ALL {
        let total = ctx.registry.by_category(cat).count();
        let sensitive = ctx
            .registry
            .by_category(cat)
            .filter(|t| t.cache_sensitive)
            .count();
        let friendly = ctx
            .registry
            .by_category(cat)
            .filter(|t| t.cache_sensitive && t.compression_friendly)
            .count();
        let _ = writeln!(
            s,
            "{:12} total {:>2}  cache-sensitive {:>2}  compression-friendly {:>2}",
            cat.name(),
            total,
            sensitive,
            friendly
        );
        rows.push(vec![
            cat.name().to_string(),
            total.to_string(),
            sensitive.to_string(),
            friendly.to_string(),
        ]);
    }
    ctx.write_tsv(
        "table1_workloads.tsv",
        "category\ttotal\tsensitive\tfriendly",
        &rows,
    );
    let _ = writeln!(
        s,
        "TOTAL        100 traces, 60 cache-sensitive (50 friendly + 10 not), 40 insensitive"
    );
    s
}

/// Section IV.C: area overhead.
#[must_use]
pub fn area(ctx: &Ctx) -> String {
    let m = AreaModel::paper_default();
    let s = format!(
        "== Section IV.C: area overhead (2 MB, 16-way, 48-bit addresses) ==\n\
         tag bits per way           : {} (paper: 31)\n\
         added bits per way         : {} (paper: 40 = 31 tag + 2x4 size + 1 valid)\n\
         tag-array overhead         : {:.1}% (paper: 7.3%)\n\
         compression logic          : {:.1}% (paper: 1.2%)\n\
         total area overhead        : {:.1}% (paper: 8.5%)\n",
        m.tag_bits(),
        m.added_bits_per_way(),
        m.tag_overhead_fraction() * 100.0,
        m.logic_fraction * 100.0,
        m.total_overhead_fraction() * 100.0
    );
    ctx.write_tsv(
        "area_overhead.tsv",
        "metric\tvalue",
        &[
            vec!["tag_bits".into(), m.tag_bits().to_string()],
            vec![
                "added_bits_per_way".into(),
                m.added_bits_per_way().to_string(),
            ],
            vec![
                "tag_overhead_fraction".into(),
                format!("{:.4}", m.tag_overhead_fraction()),
            ],
            vec![
                "total_overhead_fraction".into(),
                format!("{:.4}", m.total_overhead_fraction()),
            ],
        ],
    );
    s
}

fn line_figure(ctx: &Ctx, cfg: SimConfig, file: &str, title: &str, paper: &str) -> String {
    let rows = sweep(ctx, cfg, configs::base2mb(), false);
    let path = write_line_graph(ctx, file, &rows);
    let friendly: Vec<&TraceRatios> = rows.iter().filter(|r| r.friendly).collect();
    let unfriendly: Vec<&TraceRatios> = rows.iter().filter(|r| !r.friendly).collect();
    format!(
        "== {title} ==\n\
         overall IPC gain      : {:+.1}% (geomean over 60 sensitive traces)\n\
         friendly IPC gain     : {:+.1}%\n\
         low-compress IPC gain : {:+.1}%\n\
         DRAM read ratio       : {:.3}\n\
         traces losing IPC     : {}/60\n\
         worst trace IPC ratio : {:.3}\n\
         paper reference       : {paper}\n\
         line-graph data       : {}\n",
        gain_pct(rows.iter()),
        gain_pct(friendly.iter().copied()),
        gain_pct(unfriendly.iter().copied()),
        read_ratio(rows.iter()),
        losers(&rows, 0.999),
        rows.iter().map(|r| r.ipc_ratio).fold(f64::MAX, f64::min),
        path.display()
    )
}

/// Figure 6: the naive two-tag architecture.
#[must_use]
pub fn fig6(ctx: &Ctx) -> String {
    line_figure(
        ctx,
        SimConfig::single_thread(LlcKind::TwoTag),
        "fig6_two_tag.tsv",
        "Figure 6: naive two-tag (partner-line victimization)",
        "-12% average, 37/60 traces lose",
    )
}

/// Figure 7: the modified (ECM-style) two-tag architecture.
#[must_use]
pub fn fig7(ctx: &Ctx) -> String {
    line_figure(
        ctx,
        SimConfig::single_thread(LlcKind::TwoTagEcm),
        "fig7_two_tag_ecm.tsv",
        "Figure 7: modified two-tag (ECM-style victim search)",
        "+4.7% friendly / -3.8% low-compress, 27/60 lose, outliers to -14%",
    )
}

/// Figure 8: Base-Victim opportunistic compression.
#[must_use]
pub fn fig8(ctx: &Ctx) -> String {
    let rows = sweep(ctx, configs::bv2mb(), configs::base2mb(), false);
    let path = write_line_graph(ctx, "fig8_base_victim.tsv", &rows);
    let friendly: Vec<&TraceRatios> = rows.iter().filter(|r| r.friendly).collect();
    let max_read = rows.iter().map(|r| r.read_ratio).fold(0.0f64, f64::max);
    format!(
        "== Figure 8: Base-Victim opportunistic compression ==\n\
         overall IPC gain      : {:+.1}% (paper: +7.3%)\n\
         friendly IPC gain     : {:+.1}% (paper: +8.5%)\n\
         friendly read ratio   : {:.3} (paper: 0.84, i.e. -16% reads)\n\
         traces losing IPC     : {}/60 (paper: 1, by 0.01%)\n\
         max DRAM read ratio   : {:.4} (guarantee: never above 1.0)\n\
         line-graph data       : {}\n",
        gain_pct(rows.iter()),
        gain_pct(friendly.iter().copied()),
        read_ratio(friendly.iter().copied()),
        losers(&rows, 0.999),
        max_read,
        path.display()
    )
}

/// Figure 9: per-category gains vs a 3 MB uncompressed cache.
#[must_use]
pub fn fig9(ctx: &Ctx) -> String {
    let bv = sweep(ctx, configs::bv2mb(), configs::base2mb(), false);
    let big = sweep(ctx, configs::unc3mb(), configs::base2mb(), false);
    let mut rows = Vec::new();
    for cat in WorkloadCategory::ALL {
        rows.push(vec![
            cat.name().to_string(),
            format!(
                "{:.2}",
                gain_pct(big.iter().filter(|r| r.category == cat && r.friendly))
            ),
            format!(
                "{:.2}",
                gain_pct(bv.iter().filter(|r| r.category == cat && r.friendly))
            ),
            format!("{:.2}", gain_pct(big.iter().filter(|r| r.category == cat))),
            format!("{:.2}", gain_pct(bv.iter().filter(|r| r.category == cat))),
        ]);
    }
    ctx.write_tsv(
        "fig9_categories.tsv",
        "category\t3mb_friendly\tbv_friendly\t3mb_overall\tbv_overall",
        &rows,
    );
    format!(
        "== Figure 9: per-category gains (friendly / overall) ==\n\
         3 MB uncompressed:\n{}\
         Base-Victim 2 MB:\n{}\
         paper: 3 MB +8.5%/+8.1%, Base-Victim +8.5%/+7.3%\n",
        category_table(&big),
        category_table(&bv)
    )
}

/// Figure 10: advanced baseline replacement policies (SRRIP, CHAR).
#[must_use]
pub fn fig10(ctx: &Ctx) -> String {
    let mut s = String::from("== Figure 10: replacement-policy sensitivity ==\n");
    let mut tsv = Vec::new();
    for policy in [PolicyKind::Srrip, PolicyKind::CharLite] {
        // Both the policy baseline and the compressed cache are normalized
        // to the NRU uncompressed baseline, as in the paper's figure.
        let plain = sweep(
            ctx,
            configs::with_policy(configs::base2mb(), policy),
            configs::base2mb(),
            false,
        );
        let comp = sweep(
            ctx,
            configs::with_policy(configs::bv2mb(), policy),
            configs::base2mb(),
            false,
        );
        // Gain of compression on top of the policy-managed baseline.
        let on_top = sweep(
            ctx,
            configs::with_policy(configs::bv2mb(), policy),
            configs::with_policy(configs::base2mb(), policy),
            false,
        );
        let _ = writeln!(
            s,
            "{:6}: policy alone {:+.1}%, +compression {:+.1}% (on top: {:+.1}%), losers {}/60",
            policy.name(),
            gain_pct(plain.iter()),
            gain_pct(comp.iter()),
            gain_pct(on_top.iter()),
            losers(&on_top, 0.999),
        );
        tsv.push(vec![
            policy.name().to_string(),
            format!("{:.4}", 1.0 + gain_pct(plain.iter()) / 100.0),
            format!("{:.4}", 1.0 + gain_pct(comp.iter()) / 100.0),
            format!("{:.4}", 1.0 + gain_pct(on_top.iter()) / 100.0),
        ]);
    }
    ctx.write_tsv(
        "fig10_replacement.tsv",
        "policy\tpolicy_ipc_ratio\tpolicy_plus_bv_ipc_ratio\tbv_on_top_ratio",
        &tsv,
    );
    s.push_str("paper: SRRIP +2.9%, +compression +6.4% on top; CHAR +3.2%, +7.2% on top; no negative outliers\n");
    s
}

/// Figure 11: LLC size sensitivity (4 MB baseline).
#[must_use]
pub fn fig11(ctx: &Ctx) -> String {
    let cfg4 = configs::base2mb().with_llc_size(4 * 1024 * 1024, 16);
    let cfg6 = configs::base2mb().with_llc_size(6 * 1024 * 1024, 24);
    let bv4 = SimConfig::single_thread(LlcKind::BaseVictim).with_llc_size(4 * 1024 * 1024, 16);
    let four = sweep(ctx, cfg4, configs::base2mb(), false);
    let six = sweep(ctx, cfg6, configs::base2mb(), false);
    let bv = sweep(ctx, bv4, configs::base2mb(), false);
    let on_top = sweep(ctx, bv4, cfg4, false);
    ctx.write_tsv(
        "fig11_llc_size.tsv",
        "config\tipc_gain_pct_vs_2mb",
        &[
            vec!["4MB".into(), format!("{:.2}", gain_pct(four.iter()))],
            vec!["6MB".into(), format!("{:.2}", gain_pct(six.iter()))],
            vec!["4MB+BV".into(), format!("{:.2}", gain_pct(bv.iter()))],
            vec![
                "BV_on_top_of_4MB".into(),
                format!("{:.2}", gain_pct(on_top.iter())),
            ],
        ],
    );
    format!(
        "== Figure 11: LLC size sensitivity (vs 2 MB baseline) ==\n\
         4 MB uncompressed : {:+.1}% (paper: +15.8%)\n\
         6 MB uncompressed : {:+.1}% (paper: +9% over the 4 MB... reported as 6 MB gain over 2 MB ≈ +26%)\n\
         4 MB Base-Victim  : {:+.1}%\n\
         BV on top of 4 MB : {:+.1}% (paper: +6.8%)\n",
        gain_pct(four.iter()),
        gain_pct(six.iter()),
        gain_pct(bv.iter()),
        gain_pct(on_top.iter())
    )
}

/// Figure 12: all 100 traces, including cache-insensitive ones.
#[must_use]
pub fn fig12(ctx: &Ctx) -> String {
    let bv = sweep(ctx, configs::bv2mb(), configs::base2mb(), true);
    let big = sweep(ctx, configs::unc3mb(), configs::base2mb(), true);
    let path = write_line_graph(ctx, "fig12_all_traces.tsv", &bv);
    format!(
        "== Figure 12: all 100 traces ==\n\
         Base-Victim overall gain : {:+.1}% (paper: +4.3%)\n\
         3 MB overall gain        : {:+.1}% (paper: +4.9%)\n\
         traces losing IPC        : {}/100 (paper: no significant negative outliers)\n\
         line-graph data          : {}\n",
        gain_pct(bv.iter()),
        gain_pct(big.iter()),
        losers(&bv, 0.995),
        path.display()
    )
}

/// Figure 13: 4-way multi-program mixes.
#[must_use]
pub fn fig13(ctx: &Ctx) -> String {
    let mixes = paper_mixes(&ctx.registry);
    // Each mix's six configurations are independent of every other mix's,
    // so mixes are fanned out across the runner's worker pool (mix runs
    // are not checkpointed — each is used exactly once per figure).
    let per_mix =
        bv_runner::pool::parallel_map(mixes, ctx.runner.workers(), |_worker, _idx, mix| {
            let members = mix.resolve(&ctx.registry);
            let base4 = ctx.run_mix(&members, SimConfig::multi_program(LlcKind::Uncompressed));
            let six = ctx.run_mix(
                &members,
                SimConfig::multi_program(LlcKind::Uncompressed).with_llc_size(6 * 1024 * 1024, 24),
            );
            let bv4 = ctx.run_mix(&members, SimConfig::multi_program(LlcKind::BaseVictim));
            let base8 = ctx.run_mix(
                &members,
                SimConfig::multi_program(LlcKind::Uncompressed).with_llc_size(8 * 1024 * 1024, 16),
            );
            let twelve = ctx.run_mix(
                &members,
                SimConfig::multi_program(LlcKind::Uncompressed).with_llc_size(12 * 1024 * 1024, 24),
            );
            let bv8 = ctx.run_mix(
                &members,
                SimConfig::multi_program(LlcKind::BaseVictim).with_llc_size(8 * 1024 * 1024, 16),
            );
            (
                mix.name,
                [
                    six.weighted_speedup(&base4),
                    bv4.weighted_speedup(&base4),
                    base8.weighted_speedup(&base4),
                    twelve.weighted_speedup(&base8),
                    bv8.weighted_speedup(&base8),
                ],
            )
        });
    let mut ws_bv6 = Vec::new(); // 6MB vs 4MB
    let mut ws_bv4 = Vec::new(); // BV-4MB vs 4MB
    let mut ws_8 = Vec::new(); // 8MB vs 4MB
    let mut ws_12 = Vec::new(); // 12MB vs 8MB
    let mut ws_bv8 = Vec::new(); // BV-8MB vs 8MB
    let mut tsv = Vec::new();
    for (name, [w6, w4, w8, w12, wb8]) in per_mix {
        ws_bv6.push(w6);
        ws_bv4.push(w4);
        ws_8.push(w8);
        ws_12.push(w12);
        ws_bv8.push(wb8);
        tsv.push(vec![
            name,
            format!("{w6:.4}"),
            format!("{w4:.4}"),
            format!("{w8:.4}"),
            format!("{w12:.4}"),
            format!("{wb8:.4}"),
        ]);
    }
    ctx.write_tsv(
        "fig13_multiprogram.tsv",
        "mix\t6mb_vs_4mb\tbv4mb_vs_4mb\t8mb_vs_4mb\t12mb_vs_8mb\tbv8mb_vs_8mb",
        &tsv,
    );
    format!(
        "== Figure 13: 4-thread multi-program mixes (20 mixes, weighted speedup) ==\n\
         6 MB vs 4 MB baseline   : {:+.1}% (paper: +9%)\n\
         BV 4 MB vs 4 MB         : {:+.1}% (paper: +8.7%)\n\
         8 MB vs 4 MB            : {:+.1}%\n\
         12 MB vs 8 MB           : {:+.1}% (paper: +15.7%)\n\
         BV 8 MB vs 8 MB         : {:+.1}% (paper: +11.2%)\n\
         mixes losing (BV 4 MB)  : {}/20 (paper: none)\n",
        (geomean(ws_bv6.iter().copied()) - 1.0) * 100.0,
        (geomean(ws_bv4.iter().copied()) - 1.0) * 100.0,
        (geomean(ws_8.iter().copied()) - 1.0) * 100.0,
        (geomean(ws_12.iter().copied()) - 1.0) * 100.0,
        (geomean(ws_bv8.iter().copied()) - 1.0) * 100.0,
        ws_bv4.iter().filter(|&&w| w < 0.999).count()
    )
}

/// Figure 14: energy ratios with and without word enables, all 100 traces.
#[must_use]
pub fn fig14(ctx: &Ctx) -> String {
    let model = EnergyModel::paper_default();
    let traces: Vec<_> = ctx.registry.all().cloned().collect();
    let jobs: Vec<_> = traces
        .iter()
        .flat_map(|t| {
            [
                ctx.job(&t.name, configs::base2mb()),
                ctx.job(&t.name, configs::bv2mb()),
            ]
        })
        .collect();
    ctx.plan(&jobs);
    let mut with_we = Vec::new();
    let mut without_we = Vec::new();
    let mut read_ratios = Vec::new();
    let mut tsv = Vec::new();
    for t in &traces {
        let base_run = ctx.run(t, configs::base2mb());
        let bv_run = ctx.run(t, configs::bv2mb());
        let base = model.evaluate(&base_run, LlcEnergyClass::Uncompressed);
        let w = model
            .evaluate(&bv_run, LlcEnergyClass::BaseVictim { word_enables: true })
            .ratio(&base);
        let wo = model
            .evaluate(
                &bv_run,
                LlcEnergyClass::BaseVictim {
                    word_enables: false,
                },
            )
            .ratio(&base);
        let rr = bv_run.dram_read_ratio(&base_run);
        with_we.push(w);
        without_we.push(wo);
        read_ratios.push(rr);
        tsv.push(vec![
            t.name.clone(),
            format!("{rr:.4}"),
            format!("{w:.4}"),
            format!("{wo:.4}"),
        ]);
    }
    tsv.sort_by(|a, b| a[1].partial_cmp(&b[1]).expect("ordered"));
    ctx.write_tsv(
        "fig14_energy.tsv",
        "trace\tdram_read_ratio\tenergy_ratio_word_enables\tenergy_ratio_no_word_enables",
        &tsv,
    );
    let worst_we = with_we.iter().copied().fold(0.0f64, f64::max);
    let worst_wo = without_we.iter().copied().fold(0.0f64, f64::max);
    format!(
        "== Figure 14: subsystem energy, all 100 traces ==\n\
         mean energy ratio, word enables    : {:.3} (paper: 0.935, i.e. -6.5%)\n\
         mean energy ratio, no word enables : {:.3} (paper: 0.978, i.e. -2.2%)\n\
         worst trace (word enables)         : {:.3} (paper: up to +2.3%)\n\
         worst trace (no word enables)      : {:.3} (paper: up to +6%)\n",
        geomean(with_we.iter().copied()),
        geomean(without_we.iter().copied()),
        worst_we,
        worst_wo
    )
}

/// Section VI.B.1: associativity sensitivity.
#[must_use]
pub fn sens_associativity(ctx: &Ctx) -> String {
    // 16-tags-per-set Base-Victim: 8 physical ways (the baseline it
    // mirrors is 8-way).
    let bv16tag = SimConfig::single_thread(LlcKind::BaseVictim).with_llc_size(2 * 1024 * 1024, 8);
    let unc32 = configs::base2mb().with_llc_size(2 * 1024 * 1024, 32);
    let bv = sweep(ctx, configs::bv2mb(), configs::base2mb(), false);
    let bv8 = sweep(ctx, bv16tag, configs::base2mb(), false);
    let wide = sweep(ctx, unc32, configs::base2mb(), false);
    ctx.write_tsv(
        "sens_associativity.tsv",
        "config\tipc_gain_pct",
        &[
            vec![
                "bv_32tag_16way".into(),
                format!("{:.2}", gain_pct(bv.iter())),
            ],
            vec![
                "bv_16tag_8way".into(),
                format!("{:.2}", gain_pct(bv8.iter())),
            ],
            vec!["unc_32way".into(), format!("{:.2}", gain_pct(wide.iter()))],
        ],
    );
    format!(
        "== Section VI.B.1: associativity ==\n\
         Base-Victim 32 tags (16-way)  : {:+.1}% (paper: +7.3%)\n\
         Base-Victim 16 tags (8-way)   : {:+.1}% (paper: +6.2%)\n\
         Uncompressed 32-way           : {:+.1}% (paper: ~0%)\n",
        gain_pct(bv.iter()),
        gain_pct(bv8.iter()),
        gain_pct(wide.iter())
    )
}

/// Section VI.B.4: Victim-cache replacement policy variants.
#[must_use]
pub fn sens_victim_policy(ctx: &Ctx) -> String {
    let mut s = String::from("== Section VI.B.4: victim-cache replacement variants ==\n");
    let mut tsv = Vec::new();
    for vp in VictimPolicyKind::ALL {
        let cfg = SimConfig::single_thread(LlcKind::BaseVictimWith(vp));
        let rows = sweep(ctx, cfg, configs::base2mb(), false);
        let _ = writeln!(
            s,
            "{:18}: {:+.2}% IPC, read ratio {:.3}",
            vp.name(),
            gain_pct(rows.iter()),
            read_ratio(rows.iter())
        );
        tsv.push(vec![
            vp.name().to_string(),
            format!("{:.2}", gain_pct(rows.iter())),
            format!("{:.4}", read_ratio(rows.iter())),
        ]);
    }
    ctx.write_tsv(
        "sens_victim_policy.tsv",
        "policy\tipc_gain_pct\tread_ratio",
        &tsv,
    );
    s.push_str("paper: no variant significantly beats the ECM-inspired default\n");
    s
}

/// Section VI.A compressibility statistics plus the Section V functional
/// VSC-2X capacity comparison.
#[must_use]
pub fn compressibility(ctx: &Ctx) -> String {
    let mut friendly_ratios = Vec::new();
    let mut unfriendly_ratios = Vec::new();
    let mut all_ratios = Vec::new();
    let sensitive: Vec<_> = ctx.registry.cache_sensitive().cloned().collect();
    let jobs: Vec<_> = sensitive
        .iter()
        .map(|t| ctx.job(&t.name, configs::bv2mb()))
        .collect();
    ctx.plan(&jobs);
    for t in &sensitive {
        let run = ctx.run(t, configs::bv2mb());
        let r = run.compression.mean_ratio();
        all_ratios.push(r);
        if t.compression_friendly {
            friendly_ratios.push(r);
        } else {
            unfriendly_ratios.push(r);
        }
    }
    // Functional VSC-2X capacity: drive the LLC request stream of a
    // compression-friendly trace through the functional model.
    let trace = sensitive
        .iter()
        .find(|t| t.compression_friendly)
        .expect("friendly trace");
    let mut vsc = VscLlc::new(
        bv_cache::CacheGeometry::new(2 * 1024 * 1024, 16, 64),
        PolicyKind::Lru,
    );
    let mut dcc = DccLlc::new(
        bv_cache::CacheGeometry::new(2 * 1024 * 1024, 16, 64),
        PolicyKind::Lru,
    );
    let mut gen = trace.workload.generator();
    let mut inner = NoInner;
    let mut insts = 0u64;
    // Measure occupancy only after a warmup pass has populated the sets.
    let total = 2 * (ctx.budget.warmup + ctx.budget.insts);
    let mut reset_done = false;
    while insts < total {
        let ev = gen.next_event();
        insts += ev.instructions();
        if !reset_done && insts >= total / 2 {
            vsc.reset_capacity_samples();
            dcc.reset_capacity_samples();
            reset_done = true;
        }
        let addr = bv_cache::LineAddr::from_byte_addr(ev.addr);
        if !vsc.read(addr, &mut inner).is_hit() {
            vsc.fill(addr, gen.line_data(ev.addr), &mut inner);
        }
        if !dcc.read(addr, &mut inner).is_hit() {
            dcc.fill(addr, gen.line_data(ev.addr), &mut inner);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let summary = format!(
        "== Section VI.A / V: compressibility and functional capacity ==\n\
         friendly mean compressed size   : {:.0}% of uncompressed (paper: 50%)\n\
         low-compress mean size          : {:.0}% (paper: >75%)\n\
         all-sensitive mean size         : {:.0}% (paper: 55%)\n\
         VSC-2X effective capacity       : {:.2}x (paper: close to 1.8x on functional models)\n\
         VSC-2X re-compactions           : {} (the overhead Base-Victim avoids entirely)\n\
         DCC effective capacity          : {:.2}x (super-block tags; no re-compaction)\n\
         DCC multi-line evictions        : {} (its coarse-replacement drawback)\n",
        mean(&friendly_ratios) * 100.0,
        mean(&unfriendly_ratios) * 100.0,
        mean(&all_ratios) * 100.0,
        vsc.effective_capacity_ratio(),
        vsc.recompactions(),
        dcc.effective_capacity_ratio(),
        dcc.multi_line_evictions()
    );
    ctx.write_tsv(
        "table_compressibility.tsv",
        "metric\tvalue",
        &[
            vec![
                "friendly_mean_ratio".into(),
                format!("{:.4}", mean(&friendly_ratios)),
            ],
            vec![
                "unfriendly_mean_ratio".into(),
                format!("{:.4}", mean(&unfriendly_ratios)),
            ],
            vec!["all_mean_ratio".into(), format!("{:.4}", mean(&all_ratios))],
            vec![
                "vsc_effective_capacity".into(),
                format!("{:.4}", vsc.effective_capacity_ratio()),
            ],
            vec!["vsc_recompactions".into(), vsc.recompactions().to_string()],
            vec![
                "dcc_effective_capacity".into(),
                format!("{:.4}", dcc.effective_capacity_ratio()),
            ],
            vec![
                "dcc_multi_line_evictions".into(),
                dcc.multi_line_evictions().to_string(),
            ],
        ],
    );
    summary
}

/// Ablation: which compression algorithm backs the Base-Victim LLC
/// (the paper uses BDI for its 2-cycle decompression; Section VII.A notes
/// the architecture is algorithm-agnostic).
#[must_use]
pub fn ablation_compressor(ctx: &Ctx) -> String {
    use bv_sim::CompressorKind;
    let mut s =
        String::from("== Ablation: LLC compression algorithm (Base-Victim, 60 traces) ==\n");
    let mut tsv = Vec::new();
    for ck in CompressorKind::ALL {
        let cfg = SimConfig::single_thread(LlcKind::BaseVictimCompressor(ck));
        let rows = sweep(ctx, cfg, configs::base2mb(), false);
        let _ = writeln!(
            s,
            "{:10}: {:+.2}% IPC, read ratio {:.3}, mean compressed size {:.0}%",
            ck.name(),
            gain_pct(rows.iter()),
            read_ratio(rows.iter()),
            rows.iter().map(|r| r.comp_ratio).sum::<f64>() / rows.len() as f64 * 100.0
        );
        tsv.push(vec![
            ck.name().to_string(),
            format!("{:.2}", gain_pct(rows.iter())),
            format!("{:.4}", read_ratio(rows.iter())),
        ]);
    }
    ctx.write_tsv(
        "ablation_compressor.tsv",
        "algorithm\tipc_gain_pct\tread_ratio",
        &tsv,
    );
    s.push_str(
        "expected: BDI leads; zero-only detection alone captures a fraction of the benefit\n",
    );
    s
}

/// Ablation: inclusive (paper default) vs non-inclusive (Section IV.B.3)
/// Base-Victim. The non-inclusive variant can park dirty victims, saving
/// writeback traffic at the cost of more protocol complexity.
#[must_use]
pub fn ablation_inclusion(ctx: &Ctx) -> String {
    let traces: Vec<_> = ctx.registry.cache_sensitive().cloned().collect();
    let jobs: Vec<_> = traces
        .iter()
        .flat_map(|t| {
            [
                ctx.job(&t.name, configs::base2mb()),
                ctx.job(&t.name, configs::bv2mb()),
                ctx.job(
                    &t.name,
                    SimConfig::single_thread(LlcKind::BaseVictimNonInclusive),
                ),
            ]
        })
        .collect();
    ctx.plan(&jobs);
    let mut ipc_inc = Vec::new();
    let mut ipc_ni = Vec::new();
    let mut wr_inc = 0u64;
    let mut wr_ni = 0u64;
    let mut wr_base = 0u64;
    for t in &traces {
        let base = ctx.run(t, configs::base2mb());
        let inc = ctx.run(t, configs::bv2mb());
        let ni = ctx.run(t, SimConfig::single_thread(LlcKind::BaseVictimNonInclusive));
        ipc_inc.push(inc.ipc() / base.ipc());
        ipc_ni.push(ni.ipc() / base.ipc());
        wr_inc += inc.dram.writes;
        wr_ni += ni.dram.writes;
        wr_base += base.dram.writes;
    }
    ctx.write_tsv(
        "ablation_inclusion.tsv",
        "metric\tinclusive\tnon_inclusive",
        &[
            vec![
                "ipc_gain_pct".into(),
                format!("{:.2}", (geomean(ipc_inc.iter().copied()) - 1.0) * 100.0),
                format!("{:.2}", (geomean(ipc_ni.iter().copied()) - 1.0) * 100.0),
            ],
            vec![
                "dram_write_ratio_vs_base".into(),
                format!("{:.4}", wr_inc as f64 / wr_base as f64),
                format!("{:.4}", wr_ni as f64 / wr_base as f64),
            ],
        ],
    );
    format!(
        "== Ablation: inclusion mode (Section IV.B.3) ==\n\
         inclusive     : {:+.1}% IPC, DRAM write ratio {:.3} (clean victims: no write savings, by design)\n\
         non-inclusive : {:+.1}% IPC, DRAM write ratio {:.3} (dirty victims park, deferring writebacks)\n",
        (geomean(ipc_inc.iter().copied()) - 1.0) * 100.0,
        wr_inc as f64 / wr_base as f64,
        (geomean(ipc_ni.iter().copied()) - 1.0) * 100.0,
        wr_ni as f64 / wr_base as f64,
    )
}

/// Ablation: prefetching x compression interplay. The paper builds on the
/// observation (Alameldeen & Wood, HPCA 2007) that LLC compression and
/// prefetching interact positively: the victim cache catches
/// prematurely-evicted prefetched lines.
#[must_use]
pub fn ablation_prefetch(ctx: &Ctx) -> String {
    let traces: Vec<_> = ctx.registry.cache_sensitive().cloned().collect();
    let degrees = [0u32, 2, 4, 8];
    let mut jobs = Vec::with_capacity(traces.len() * degrees.len() * 2);
    for degree in degrees {
        for t in &traces {
            for base in [configs::base2mb(), configs::bv2mb()] {
                let mut cfg = base;
                cfg.prefetch_degree = degree;
                jobs.push(ctx.job(&t.name, cfg));
            }
        }
    }
    ctx.plan(&jobs);
    let mut s = String::from("== Ablation: prefetch x compression interplay ==\n");
    let mut tsv = Vec::new();
    for degree in degrees {
        let mut base_cfg = configs::base2mb();
        base_cfg.prefetch_degree = degree;
        let mut bv_cfg = configs::bv2mb();
        bv_cfg.prefetch_degree = degree;
        let mut ratios = Vec::new();
        for t in &traces {
            let base = ctx.run(t, base_cfg);
            let bv = ctx.run(t, bv_cfg);
            ratios.push(bv.ipc() / base.ipc());
        }
        let gain = (geomean(ratios.iter().copied()) - 1.0) * 100.0;
        let _ = writeln!(s, "prefetch degree {degree}: compression gains {gain:+.2}%");
        tsv.push(vec![degree.to_string(), format!("{gain:.2}")]);
    }
    ctx.write_tsv(
        "ablation_prefetch.tsv",
        "prefetch_degree\tbv_gain_pct",
        &tsv,
    );
    s.push_str(
        "expected: compression gains persist (and often grow) with aggressive prefetching\n",
    );
    s
}

/// Future work (paper §VII.C): CAMP-style size-aware insertion in the
/// Baseline cache, on top of Base-Victim compression.
#[must_use]
pub fn future_work_camp(ctx: &Ctx) -> String {
    let camp_base = configs::with_policy(configs::base2mb(), PolicyKind::CampLite);
    let camp_bv = configs::with_policy(configs::bv2mb(), PolicyKind::CampLite);
    // All normalized to the NRU uncompressed baseline.
    let camp_alone = sweep(ctx, camp_base, configs::base2mb(), false);
    let camp_plus_bv = sweep(ctx, camp_bv, configs::base2mb(), false);
    let bv_alone = sweep(ctx, configs::bv2mb(), configs::base2mb(), false);
    let on_top = sweep(ctx, camp_bv, camp_base, false);
    ctx.write_tsv(
        "future_work_camp.tsv",
        "config\tipc_gain_pct",
        &[
            vec![
                "camp_alone".into(),
                format!("{:.2}", gain_pct(camp_alone.iter())),
            ],
            vec![
                "bv_alone".into(),
                format!("{:.2}", gain_pct(bv_alone.iter())),
            ],
            vec![
                "camp_plus_bv".into(),
                format!("{:.2}", gain_pct(camp_plus_bv.iter())),
            ],
            vec![
                "bv_on_top_of_camp".into(),
                format!("{:.2}", gain_pct(on_top.iter())),
            ],
        ],
    );
    format!(
        "== Future work (§VII.C): CAMP in the Baseline cache ==\n\
         CAMP insertion alone      : {:+.1}% vs NRU baseline\n\
         Base-Victim alone         : {:+.1}%\n\
         CAMP + Base-Victim        : {:+.1}%\n\
         BV on top of CAMP baseline: {:+.1}% (losers {}/60 — the guarantee composes)\n",
        gain_pct(camp_alone.iter()),
        gain_pct(bv_alone.iter()),
        gain_pct(camp_plus_bv.iter()),
        gain_pct(on_top.iter()),
        losers(&on_top, 0.999),
    )
}

/// Plans every single-core job the standard experiment suite needs and
/// submits them to the runner as one deduplicated batch. The
/// `experiments` binary (and `bvsim sweep`) call this first so the whole
/// suite's simulations run across the worker pool at once; the figure
/// functions then assemble their tables from the result store.
pub fn plan_suite(ctx: &Ctx) -> bv_runner::ExecutionReport {
    use bv_sim::CompressorKind;
    let mut jobs = Vec::new();
    let sensitive: Vec<String> = ctx
        .registry
        .cache_sensitive()
        .map(|t| t.name.clone())
        .collect();
    let all: Vec<String> = ctx.registry.all().map(|t| t.name.clone()).collect();

    let mut sensitive_cfgs = vec![
        configs::base2mb(),
        configs::bv2mb(),
        SimConfig::single_thread(LlcKind::TwoTag),
        SimConfig::single_thread(LlcKind::TwoTagEcm),
        configs::unc3mb(),
        // fig11: size sensitivity.
        configs::base2mb().with_llc_size(4 * 1024 * 1024, 16),
        configs::base2mb().with_llc_size(6 * 1024 * 1024, 24),
        SimConfig::single_thread(LlcKind::BaseVictim).with_llc_size(4 * 1024 * 1024, 16),
        // associativity sensitivity.
        SimConfig::single_thread(LlcKind::BaseVictim).with_llc_size(2 * 1024 * 1024, 8),
        configs::base2mb().with_llc_size(2 * 1024 * 1024, 32),
        // inclusion ablation.
        SimConfig::single_thread(LlcKind::BaseVictimNonInclusive),
    ];
    // fig10 + future work: replacement policies under and over compression.
    for policy in [
        PolicyKind::Srrip,
        PolicyKind::CharLite,
        PolicyKind::CampLite,
    ] {
        sensitive_cfgs.push(configs::with_policy(configs::base2mb(), policy));
        sensitive_cfgs.push(configs::with_policy(configs::bv2mb(), policy));
    }
    for vp in VictimPolicyKind::ALL {
        sensitive_cfgs.push(SimConfig::single_thread(LlcKind::BaseVictimWith(vp)));
    }
    for ck in CompressorKind::ALL {
        sensitive_cfgs.push(SimConfig::single_thread(LlcKind::BaseVictimCompressor(ck)));
    }
    // prefetch ablation.
    for degree in [0u32, 2, 4, 8] {
        for base in [configs::base2mb(), configs::bv2mb()] {
            let mut cfg = base;
            cfg.prefetch_degree = degree;
            sensitive_cfgs.push(cfg);
        }
    }
    for cfg in &sensitive_cfgs {
        for name in &sensitive {
            jobs.push(ctx.job(name, *cfg));
        }
    }
    // fig12 + fig14: every trace, including cache-insensitive ones.
    for cfg in [configs::base2mb(), configs::bv2mb(), configs::unc3mb()] {
        for name in &all {
            jobs.push(ctx.job(name, cfg));
        }
    }
    ctx.plan(&jobs)
}
