//! The `bvsim bench` regression suite: fixed kernel and end-to-end
//! workloads timed with [`bv_testkit::bench`], reported as a `BENCH.json`
//! perf-trajectory file that CI diffs against the committed baseline.
//!
//! Two suites:
//!
//! * **Kernel** — `compressed_size` throughput (lines/s) over a fixed
//!   synthetic corpus, for each compression algorithm in both its
//!   optimized word-wise form and the frozen byte-at-a-time
//!   [`bv_compress::reference`] form. The optimized/reference pair yields
//!   a speedup figure; a segment-count checksum guards against the two
//!   implementations silently diverging inside the timing loop.
//! * **End-to-end** — simulated instructions per wall-clock second for a
//!   registry trace under the main LLC organizations.
//!
//! The report serializes through `bv_runner::json` (the workspace has no
//! serde) so the same reader that parses run journals parses `BENCH.json`.

use bv_cache::engine::{SetEngine, SlotMeta};
use bv_cache::{Policy, PolicyKind};
use bv_compress::reference::{RefBdi, RefCPack, RefFpc};
use bv_compress::{Bdi, CPack, CacheLine, Compressor, Fpc, SegmentCount};
use bv_kvcache::{run_kv as run_kv_tier, KvConfig, KvOrgKind};
use bv_metrics::Registry;
use bv_runner::json::{self, ObjWriter, Value};
use bv_sim::{EventBatch, LlcKind, SimConfig, SimTelemetry, System, DEFAULT_EPOCH_INSTS};
use bv_trace::request::RequestProfile;
use bv_trace::{DataProfile, TraceRegistry};

/// Schema marker written into every report.
///
/// v2 extends the end-to-end suite from three organizations to all five
/// (adding VSC and DCC) plus the telemetry-enabled [`TELEMETRY_ROW`]; the
/// row format itself is unchanged, so the reader also accepts
/// [`SCHEMA_V1`] files.
pub const SCHEMA: &str = "bvsim-bench-v2";

/// The previous schema marker, still accepted by [`BenchReport::from_json`]
/// (identical row format; shorter end-to-end suite).
pub const SCHEMA_V1: &str = "bvsim-bench-v1";

/// Implementation label for the fast word-wise kernels.
pub const IMPL_OPTIMIZED: &str = "optimized";
/// Implementation label for the frozen scalar reference kernels.
pub const IMPL_REFERENCE: &str = "reference";

/// Suite sizing: how much work each measurement does.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Cache lines in the kernel corpus.
    pub corpus_lines: usize,
    /// Timing samples per kernel measurement (best-of-N is reported).
    pub kernel_samples: usize,
    /// Measured instructions per end-to-end run.
    pub sim_insts: u64,
    /// Timing samples per end-to-end measurement (best-of-N is reported).
    pub sim_samples: usize,
    /// Measured requests per kv-tier run (warmup is a quarter of this,
    /// mirroring the end-to-end warmup ratio).
    pub kv_requests: u64,
}

impl BenchConfig {
    /// The full suite, used to produce the committed `BENCH.json`.
    ///
    /// `sim_insts` is sized so one timed run lasts tens of milliseconds
    /// even at post-SoA hot-loop speeds: the events-disabled gate compares
    /// two runs of identical machine code, so its measured "overhead" is
    /// pure timing noise and must stay well under
    /// [`EVENTS_DISABLED_MAX_PCT`].
    #[must_use]
    pub fn full() -> BenchConfig {
        BenchConfig {
            corpus_lines: 4096,
            kernel_samples: 15,
            sim_insts: 1_200_000,
            sim_samples: 5,
            kv_requests: 100_000,
        }
    }

    /// The CI gate: identical per-measurement work to [`BenchConfig::full`]
    /// (so lines/s and insts/s are directly comparable to the committed
    /// baseline), just fewer timing samples.
    #[must_use]
    pub fn quick() -> BenchConfig {
        BenchConfig {
            corpus_lines: 4096,
            kernel_samples: 5,
            sim_insts: 1_200_000,
            sim_samples: 3,
            kv_requests: 100_000,
        }
    }

    /// Minimal sizing for unit tests of the harness itself.
    #[must_use]
    pub fn tiny() -> BenchConfig {
        BenchConfig {
            corpus_lines: 32,
            kernel_samples: 1,
            sim_insts: 2_000,
            sim_samples: 1,
            kv_requests: 2_000,
        }
    }
}

/// One kernel measurement: an algorithm under one implementation.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelBench {
    /// Algorithm name (`"bdi"`, `"fpc"`, `"cpack"`).
    pub kernel: String,
    /// [`IMPL_OPTIMIZED`] or [`IMPL_REFERENCE`].
    pub implementation: String,
    /// `compressed_size` calls per second over the fixed corpus.
    pub lines_per_sec: f64,
    /// Sum of reported segment counts over the corpus; identical between
    /// implementations by construction (differential tests enforce it),
    /// so a mismatch inside the bench means the timing loop is broken.
    pub segment_checksum: u64,
}

/// One end-to-end measurement: a full simulated system on one trace.
#[derive(Clone, Debug, PartialEq)]
pub struct EndToEndBench {
    /// LLC organization name (e.g. `"base-victim"`).
    pub llc: String,
    /// Simulated instructions per wall-clock second.
    pub insts_per_sec: f64,
}

/// A complete `bvsim bench` report.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Kernel-suite rows.
    pub kernels: Vec<KernelBench>,
    /// End-to-end rows.
    pub end_to_end: Vec<EndToEndBench>,
}

/// The fixed kernel corpus: every [`DataProfile`] in equal proportion so
/// each encoding path gets exercised (zeros, repeats, pointers, small
/// ints, floats, and incompressible noise).
#[must_use]
pub fn corpus(lines: usize) -> Vec<CacheLine> {
    const PROFILES: [DataProfile; 8] = [
        DataProfile::Zero,
        DataProfile::Repeated,
        DataProfile::PointerLike,
        DataProfile::SmallInt,
        DataProfile::Clustered,
        DataProfile::WideInt,
        DataProfile::FloatLike,
        DataProfile::Random,
    ];
    (0..lines)
        .map(|i| {
            PROFILES[i % PROFILES.len()].synthesize(i as u64 * 131, (i / PROFILES.len()) as u64)
        })
        .collect()
}

/// A kernel name with its optimized and reference implementations.
type KernelPair = (&'static str, Box<dyn Compressor>, Box<dyn Compressor>);

fn kernel_pairs() -> Vec<KernelPair> {
    vec![
        ("bdi", Box::new(Bdi::new()), Box::new(RefBdi::new())),
        ("fpc", Box::new(Fpc::new()), Box::new(RefFpc::new())),
        ("cpack", Box::new(CPack::new()), Box::new(RefCPack::new())),
    ]
}

fn time_kernel(
    kernel: &str,
    implementation: &str,
    comp: &dyn Compressor,
    lines: &[CacheLine],
    samples: usize,
) -> KernelBench {
    let mut checksum = 0u64;
    let secs = bv_testkit::bench::fastest(samples, || {
        checksum = lines
            .iter()
            .map(|l| u64::from(comp.compressed_size(l).get()))
            .sum();
        checksum
    });
    KernelBench {
        kernel: kernel.to_string(),
        implementation: implementation.to_string(),
        lines_per_sec: lines.len() as f64 / secs.max(f64::MIN_POSITIVE),
        segment_checksum: checksum,
    }
}

/// Runs the kernel suite: each algorithm, optimized then reference.
///
/// # Panics
///
/// Panics if the two implementations of a kernel disagree on the corpus's
/// total segment count (they are differential-tested to agree).
#[must_use]
pub fn run_kernel_suite(cfg: &BenchConfig) -> Vec<KernelBench> {
    let lines = corpus(cfg.corpus_lines);
    let mut rows = Vec::new();
    for (name, optimized, reference) in kernel_pairs() {
        let opt = time_kernel(
            name,
            IMPL_OPTIMIZED,
            optimized.as_ref(),
            &lines,
            cfg.kernel_samples,
        );
        let reference = time_kernel(
            name,
            IMPL_REFERENCE,
            reference.as_ref(),
            &lines,
            cfg.kernel_samples,
        );
        assert_eq!(
            opt.segment_checksum, reference.segment_checksum,
            "{name}: optimized and reference kernels diverged during timing"
        );
        rows.push(opt);
        rows.push(reference);
    }
    rows
}

/// Kernel-row label for the set-probe microbench: `SetEngine::find`
/// (optimized bitmask scan) vs `find_reference` (scalar walk) over a fixed
/// probe stream. `lines_per_sec` carries probes/s; the checksum sums the
/// returned ways so a divergence between the two probe paths fails the
/// bench, not just the differential tests.
pub const PROBE_ROW: &str = "probe-only";

/// Kernel-row label for the trace-decode microbench: batched decoding
/// through [`EventBatch`] (optimized) vs the per-call `next_event` loop
/// (reference), with no cache attached. `lines_per_sec` carries events/s;
/// the checksum folds every decoded event so the two decode paths must
/// produce the identical stream.
pub const DECODE_ROW: &str = "decode-only";

/// Probe-stream geometry for the [`PROBE_ROW`] microbench: the default
/// single-thread LLC shape (2 MB / 16-way at 64 B lines).
const PROBE_SETS: usize = 2048;
const PROBE_WAYS: usize = 16;

/// Payload-free slot metadata for the probe microbench engine.
#[derive(Clone, Copy, Debug)]
struct NoMeta;

impl SlotMeta for NoMeta {
    fn empty() -> NoMeta {
        NoMeta
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the [`PROBE_ROW`] pair: a populated LLC-shaped engine probed with
/// a fixed ~3:1 hit:miss stream, timed through the optimized bitmask
/// `find` and the retained scalar `find_reference`.
///
/// # Panics
///
/// Panics if the two probe paths disagree on the stream's way checksum.
#[must_use]
pub fn run_probe_suite(cfg: &BenchConfig) -> Vec<KernelBench> {
    let mut rng = 0x0bad_cafe_f00d_d00du64;
    let mut engine: SetEngine<Policy, NoMeta> = SetEngine::new(
        PROBE_SETS,
        PROBE_WAYS,
        PolicyKind::Lru.instantiate(PROBE_SETS, PROBE_WAYS),
    );
    let mut resident = vec![0u64; PROBE_SETS * PROBE_WAYS];
    for set in 0..PROBE_SETS {
        for way in 0..PROBE_WAYS {
            let tag = splitmix(&mut rng) | 1;
            resident[set * PROBE_WAYS + way] = tag;
            engine.install(set, way, tag, NoMeta, SegmentCount::FULL);
        }
    }
    // Leave some holes so probes also exercise the validity mask.
    for set in (0..PROBE_SETS).step_by(5) {
        engine.invalidate(set, set % PROBE_WAYS);
    }
    let probes: Vec<(usize, u64)> = (0..cfg.corpus_lines * 64)
        .map(|_| {
            let r = splitmix(&mut rng);
            let set = (r as usize >> 8) % PROBE_SETS;
            let tag = if r & 3 != 0 {
                resident[set * PROBE_WAYS + (r as usize >> 40) % PROBE_WAYS]
            } else {
                splitmix(&mut rng) | 1 // near-certain miss
            };
            (set, tag)
        })
        .collect();

    let mut opt_checksum = 0u64;
    let opt_secs = bv_testkit::bench::fastest(cfg.kernel_samples, || {
        opt_checksum = probes
            .iter()
            .map(|&(set, tag)| engine.find(set, tag).map_or(0, |w| w as u64 + 1))
            .sum();
        opt_checksum
    });
    let mut ref_checksum = 0u64;
    let ref_secs = bv_testkit::bench::fastest(cfg.kernel_samples, || {
        ref_checksum = probes
            .iter()
            .map(|&(set, tag)| engine.find_reference(set, tag).map_or(0, |w| w as u64 + 1))
            .sum();
        ref_checksum
    });
    assert_eq!(
        opt_checksum, ref_checksum,
        "probe-only: find and find_reference diverged during timing"
    );
    vec![
        KernelBench {
            kernel: PROBE_ROW.to_string(),
            implementation: IMPL_OPTIMIZED.to_string(),
            lines_per_sec: probes.len() as f64 / opt_secs.max(f64::MIN_POSITIVE),
            segment_checksum: opt_checksum,
        },
        KernelBench {
            kernel: PROBE_ROW.to_string(),
            implementation: IMPL_REFERENCE.to_string(),
            lines_per_sec: probes.len() as f64 / ref_secs.max(f64::MIN_POSITIVE),
            segment_checksum: ref_checksum,
        },
    ]
}

fn fold_event(sum: u64, ev: &bv_trace::TraceEvent) -> u64 {
    sum.wrapping_mul(31)
        .wrapping_add(ev.addr ^ (u64::from(ev.gap) << 1) ^ ev.kind as u64)
}

/// Runs the [`DECODE_ROW`] pair: the end-to-end trace decoded with no
/// cache attached, through the batched ring and the per-call loop.
///
/// # Panics
///
/// Panics if the registry trace is missing or the two decode paths
/// produce different event streams.
#[must_use]
pub fn run_decode_suite(cfg: &BenchConfig) -> Vec<KernelBench> {
    let registry = TraceRegistry::paper_default();
    let workload = &registry
        .get(END_TO_END_TRACE)
        .expect("decode bench trace in registry")
        .workload;
    let events = cfg.sim_insts;

    let mut opt_checksum = 0u64;
    let opt_secs = bv_testkit::bench::fastest(cfg.kernel_samples, || {
        let mut gen = workload.generator();
        let mut batch = EventBatch::new();
        let mut sum = 0u64;
        for _ in 0..events {
            sum = fold_event(sum, &batch.next(&mut gen));
        }
        opt_checksum = sum;
        sum
    });
    let mut ref_checksum = 0u64;
    let ref_secs = bv_testkit::bench::fastest(cfg.kernel_samples, || {
        let mut gen = workload.generator();
        let mut sum = 0u64;
        for _ in 0..events {
            sum = fold_event(sum, &gen.next_event());
        }
        ref_checksum = sum;
        sum
    });
    assert_eq!(
        opt_checksum, ref_checksum,
        "decode-only: batched and unbatched decode diverged during timing"
    );
    vec![
        KernelBench {
            kernel: DECODE_ROW.to_string(),
            implementation: IMPL_OPTIMIZED.to_string(),
            lines_per_sec: events as f64 / opt_secs.max(f64::MIN_POSITIVE),
            segment_checksum: opt_checksum,
        },
        KernelBench {
            kernel: DECODE_ROW.to_string(),
            implementation: IMPL_REFERENCE.to_string(),
            lines_per_sec: events as f64 / ref_secs.max(f64::MIN_POSITIVE),
            segment_checksum: ref_checksum,
        },
    ]
}

/// The trace the end-to-end suite runs (a mid-size, cache-sensitive
/// registry workload).
pub const END_TO_END_TRACE: &str = "specint.mcf.07";

/// The organizations the end-to-end suite times: every LLC built on the
/// shared set-engine layer, so a throughput regression in any of the five
/// paper organizations trips the CI gate.
pub const END_TO_END_LLCS: [LlcKind; 5] = [
    LlcKind::Uncompressed,
    LlcKind::BaseVictim,
    LlcKind::TwoTag,
    LlcKind::Vsc,
    LlcKind::Dcc,
];

/// Label for the telemetry-enabled end-to-end row: base-victim with
/// epoch sampling at the `--telemetry` default epoch. Its baseline entry
/// in `BENCH.json` puts instrumentation overhead under the same
/// regression gate as the raw organizations.
pub const TELEMETRY_ROW: &str = "base-victim+telemetry";

/// Label for the events-disabled end-to-end row: base-victim built as
/// usual (every organization monomorphizes over `NoEventSink` by
/// default) but driven through the `run_traced` entry point `bvsim
/// trace` uses. Together with the plain `base-victim` row it prices the
/// disabled event path — the emission guards compiled into every
/// organization plus the boxed-LLC driver — which [`compare`] caps at
/// [`EVENTS_DISABLED_MAX_PCT`]. Both this row and [`TELEMETRY_ROW`] are
/// timed interleaved with the base row and reported via the median
/// per-round ratio, so the gate measures instrumentation cost rather
/// than background-load drift between separate timing windows.
pub const EVENTS_DISABLED_ROW: &str = "base-victim+events-disabled";

/// The [`compare`] bound on [`BenchReport::events_disabled_overhead_pct`]:
/// the disabled event path may cost at most this much of base-victim
/// throughput. The bound sits just above the paired-measurement noise
/// floor on a shared single-core host (~±2–3% per-round ratio spread at
/// post-SoA loop speeds, where one measured run lasts ~100 ms); a real
/// cost on the disabled path — e.g. an emission guard that escapes the
/// monomorphized fast path — shows up well past it.
pub const EVENTS_DISABLED_MAX_PCT: f64 = 4.0;

/// Label for the serve-metrics end-to-end row: the ~8 metric records
/// the daemon's worker makes per job (queue-wait, busy flag edges,
/// sim/total/journal latency, completion counters) against an *enabled*
/// [`bv_metrics::Registry`], timed as an amplified loop against the
/// identical loop holding disabled handles and spread over the measured
/// base job time. That difference is exactly what `bvsim serve` pays
/// for metrics — pre-registered handles, relaxed atomic RMWs on the
/// record path — and [`compare`] caps it at [`SERVE_METRICS_MAX_PCT`].
pub const SERVE_METRICS_ROW: &str = "serve+metrics";

/// The [`compare`] bound on [`BenchReport::serve_metrics_overhead_pct`]:
/// the enabled metric registry may cost at most this much of the
/// metrics-off job path. A handful of uncontended relaxed atomics
/// against a multi-millisecond simulation sits far below this; crossing
/// it means a record call grew a lock, an allocation, or a registration
/// onto the per-job path.
pub const SERVE_METRICS_MAX_PCT: f64 = 2.0;

/// Runs the end-to-end suite: sim insts/s for [`END_TO_END_LLCS`], then
/// the [`TELEMETRY_ROW`] sampled run and the [`EVENTS_DISABLED_ROW`]
/// traced-driver run.
///
/// # Panics
///
/// Panics if [`END_TO_END_TRACE`] is missing from the registry.
#[must_use]
pub fn run_end_to_end_suite(cfg: &BenchConfig) -> Vec<EndToEndBench> {
    let registry = TraceRegistry::paper_default();
    let trace = registry
        .get(END_TO_END_TRACE)
        .expect("end-to-end bench trace in registry");
    let mut rows: Vec<EndToEndBench> = END_TO_END_LLCS
        .iter()
        .map(|&kind| {
            let mut llc_name = "";
            let secs = bv_testkit::bench::fastest(cfg.sim_samples, || {
                let result = System::new(SimConfig::single_thread(kind)).run_with_warmup(
                    &trace.workload,
                    cfg.sim_insts / 4,
                    cfg.sim_insts,
                );
                llc_name = result.llc_name;
                result.cycles
            });
            EndToEndBench {
                llc: llc_name.to_string(),
                insts_per_sec: cfg.sim_insts as f64 / secs.max(f64::MIN_POSITIVE),
            }
        })
        .collect();

    // The telemetry and events-disabled rows are priced as *ratios*
    // against base-victim (the 2% events-off gate in particular holds two
    // runs of identical machine code to near-parity), so their absolute
    // rates are derived: base-victim's measured rate divided by the
    // median per-round slowdown from an interleaved block of short runs.
    // Short rounds make a background-load burst *longer* than a round, so
    // it inflates every closure of the rounds it covers equally and
    // cancels in the ratio; the median then rides on the majority of
    // clean rounds. Timing the instrumented variants with independent
    // full-length windows instead reads any drift between the windows as
    // instrumentation cost.
    let short_insts = (cfg.sim_insts / 8).max(50_000).min(cfg.sim_insts);
    let mut base =
        || {
            let result = System::new(SimConfig::single_thread(LlcKind::BaseVictim))
                .run_with_warmup(&trace.workload, short_insts / 4, short_insts);
            std::hint::black_box(result.cycles);
        };
    let mut sampled = || {
        let mut tel = SimTelemetry::new(DEFAULT_EPOCH_INSTS);
        let result = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_sampled(
            &trace.workload,
            short_insts / 4,
            short_insts,
            &mut tel,
        );
        std::hint::black_box(result.cycles);
    };
    let mut traced = || {
        let sim_cfg = SimConfig::single_thread(LlcKind::BaseVictim);
        let llc = sim_cfg.llc_kind.build(sim_cfg.llc, sim_cfg.llc_policy);
        let (result, _llc) =
            System::new(sim_cfg).run_traced(&trace.workload, short_insts / 4, short_insts, llc);
        std::hint::black_box(result.cycles);
    };
    // The serve+metrics pair prices the daemon worker's per-job record
    // sequence — the handful of counter/gauge/histogram updates made
    // around one simulation — with connected vs disconnected handles.
    // One sequence is nanoseconds against a job's milliseconds of
    // simulation, far below round-timing noise, so each round runs the
    // sequence `METRIC_SEQS_PER_ROUND` times back to back; the derived
    // row then spreads the measured enabled-minus-disabled cost over
    // the base job time instead of trusting a sim-dominated ratio.
    const METRIC_SEQS_PER_ROUND: u32 = 10_000;
    let job_records = |reg: &Registry| {
        let done = reg.counter("jobs_completed_total", &[("source", "simulated")]);
        let jobs = reg.counter("worker_jobs_total", &[("worker", "0")]);
        let busy = reg.gauge("worker_busy", &[("worker", "0")]);
        let queue_wait = reg.histogram("job_queue_wait_ms", &[]);
        let sim = reg.histogram("job_sim_ms", &[]);
        let total = reg.histogram("job_total_ms", &[]);
        let journal = reg.histogram("job_journal_ms", &[]);
        move || {
            for i in 0..METRIC_SEQS_PER_ROUND {
                let ms = u64::from(i % 97);
                busy.set(1);
                queue_wait.observe(ms / 3);
                sim.observe(ms);
                total.observe(ms + ms / 3);
                journal.observe(0);
                done.inc();
                jobs.inc();
                busy.set(0);
            }
        }
    };
    let enabled = Registry::new();
    let disabled = Registry::disabled();
    let mut metrics_off = job_records(&disabled);
    let mut metrics_on = job_records(&enabled);
    let samples = bv_testkit::bench::interleaved_samples(
        cfg.sim_samples * 6,
        &mut [
            &mut base,
            &mut sampled,
            &mut traced,
            &mut metrics_off,
            &mut metrics_on,
        ],
    );
    let ratio_of = |num: usize, den: usize| {
        let mut ratios: Vec<f64> = samples[num]
            .iter()
            .zip(&samples[den])
            .map(|(&a, &b)| a / b.max(f64::MIN_POSITIVE))
            .collect();
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };
    let base_rate = rows
        .iter()
        .find(|r| r.llc == "base-victim")
        .expect("BaseVictim is in END_TO_END_LLCS")
        .insts_per_sec;
    rows.push(EndToEndBench {
        llc: TELEMETRY_ROW.to_string(),
        insts_per_sec: base_rate / ratio_of(1, 0).max(f64::MIN_POSITIVE),
    });
    rows.push(EndToEndBench {
        llc: EVENTS_DISABLED_ROW.to_string(),
        insts_per_sec: base_rate / ratio_of(2, 0).max(f64::MIN_POSITIVE),
    });
    // Per-job registry cost: the median round delta between the enabled
    // and disabled record loops, divided down to one sequence, spread
    // over the measured base job time. Negative deltas are timer noise
    // around a sub-noise cost — clamp to zero rather than report a
    // speedup.
    let med = |idx: usize| {
        let mut s = samples[idx].clone();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let per_job_extra = ((med(4) - med(3)) / f64::from(METRIC_SEQS_PER_ROUND)).max(0.0);
    let serve_slowdown = 1.0 + per_job_extra / med(0).max(f64::MIN_POSITIVE);
    rows.push(EndToEndBench {
        llc: SERVE_METRICS_ROW.to_string(),
        insts_per_sec: base_rate / serve_slowdown,
    });
    rows
}

/// Runs the kv-tier suite: replayed requests per wall-clock second for
/// each organization on the `web` request profile, reported as
/// `kv-<org>` rows (the `insts_per_sec` field carries requests/s).
/// Rides in the end-to-end vector so the same 20% regression gate covers
/// the tier's hot path — the per-miss BDI chunk walk plus the
/// victim-area bookkeeping.
#[must_use]
pub fn run_kv_suite(cfg: &BenchConfig) -> Vec<EndToEndBench> {
    KvOrgKind::ALL
        .into_iter()
        .map(|org| {
            let mut kv_cfg = KvConfig::new(org, RequestProfile::web());
            kv_cfg.requests = cfg.kv_requests;
            kv_cfg.warmup = cfg.kv_requests / 4;
            let secs =
                bv_testkit::bench::fastest(cfg.sim_samples, || run_kv_tier(&kv_cfg).stats.gets);
            EndToEndBench {
                llc: format!("kv-{}", org.name()),
                insts_per_sec: cfg.kv_requests as f64 / secs.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// Runs every suite: compression kernels, the probe/decode stage
/// microbenches, the end-to-end organizations, and the kv tier.
#[must_use]
pub fn run(cfg: &BenchConfig) -> BenchReport {
    let mut kernels = run_kernel_suite(cfg);
    kernels.extend(run_probe_suite(cfg));
    kernels.extend(run_decode_suite(cfg));
    let mut end_to_end = run_end_to_end_suite(cfg);
    end_to_end.extend(run_kv_suite(cfg));
    BenchReport {
        kernels,
        end_to_end,
    }
}

impl BenchReport {
    /// The row for one kernel under one implementation.
    #[must_use]
    pub fn kernel(&self, kernel: &str, implementation: &str) -> Option<&KernelBench> {
        self.kernels
            .iter()
            .find(|k| k.kernel == kernel && k.implementation == implementation)
    }

    /// Optimized-over-reference speedup per kernel, in suite order.
    #[must_use]
    pub fn kernel_speedups(&self) -> Vec<(String, f64)> {
        self.kernels
            .iter()
            .filter(|k| k.implementation == IMPL_OPTIMIZED)
            .filter_map(|opt| {
                let reference = self.kernel(&opt.kernel, IMPL_REFERENCE)?;
                Some((
                    opt.kernel.clone(),
                    opt.lines_per_sec / reference.lines_per_sec.max(f64::MIN_POSITIVE),
                ))
            })
            .collect()
    }

    /// Instrumentation cost of the [`TELEMETRY_ROW`] relative to the
    /// plain base-victim row, as a percentage (positive means the
    /// sampled run is slower). `None` when either row is absent.
    #[must_use]
    pub fn telemetry_overhead_pct(&self) -> Option<f64> {
        let plain = self.end_to_end.iter().find(|e| e.llc == "base-victim")?;
        let sampled = self.end_to_end.iter().find(|e| e.llc == TELEMETRY_ROW)?;
        Some((plain.insts_per_sec / sampled.insts_per_sec.max(f64::MIN_POSITIVE) - 1.0) * 100.0)
    }

    /// Cost of the disabled event path ([`EVENTS_DISABLED_ROW`]) relative
    /// to the plain base-victim row, as a percentage (positive means the
    /// traced-driver run is slower). `None` when either row is absent.
    #[must_use]
    pub fn events_disabled_overhead_pct(&self) -> Option<f64> {
        let plain = self.end_to_end.iter().find(|e| e.llc == "base-victim")?;
        let traced = self
            .end_to_end
            .iter()
            .find(|e| e.llc == EVENTS_DISABLED_ROW)?;
        Some((plain.insts_per_sec / traced.insts_per_sec.max(f64::MIN_POSITIVE) - 1.0) * 100.0)
    }

    /// Cost of the enabled metric registry ([`SERVE_METRICS_ROW`])
    /// relative to the plain base-victim row, as a percentage (positive
    /// means the instrumented job path is slower). `None` when either
    /// row is absent.
    #[must_use]
    pub fn serve_metrics_overhead_pct(&self) -> Option<f64> {
        let plain = self.end_to_end.iter().find(|e| e.llc == "base-victim")?;
        let metered = self
            .end_to_end
            .iter()
            .find(|e| e.llc == SERVE_METRICS_ROW)?;
        Some((plain.insts_per_sec / metered.insts_per_sec.max(f64::MIN_POSITIVE) - 1.0) * 100.0)
    }

    /// Serializes to the `BENCH.json` schema (one pretty-stable JSON
    /// object; round-trips through [`bv_runner::json::parse`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|k| {
                ObjWriter::new()
                    .str("kernel", &k.kernel)
                    .str("impl", &k.implementation)
                    .f64("lines_per_sec", k.lines_per_sec)
                    .u64("segment_checksum", k.segment_checksum)
                    .finish()
            })
            .collect();
        let end_to_end: Vec<String> = self
            .end_to_end
            .iter()
            .map(|e| {
                ObjWriter::new()
                    .str("llc", &e.llc)
                    .f64("insts_per_sec", e.insts_per_sec)
                    .finish()
            })
            .collect();
        let mut root = ObjWriter::new();
        root.str("schema", SCHEMA)
            .raw("kernels", &format!("[{}]", kernels.join(",")))
            .raw("end_to_end", &format!("[{}]", end_to_end.join(",")));
        root.finish()
    }

    /// Parses a report previously written by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema violation.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema field")?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(format!(
                "unsupported schema '{schema}' (want '{SCHEMA}' or '{SCHEMA_V1}')"
            ));
        }
        let kernels = v
            .get("kernels")
            .and_then(Value::as_arr)
            .ok_or("missing kernels array")?
            .iter()
            .map(|k| {
                Ok(KernelBench {
                    kernel: req_str(k, "kernel")?,
                    implementation: req_str(k, "impl")?,
                    lines_per_sec: req_f64(k, "lines_per_sec")?,
                    segment_checksum: k
                        .get("segment_checksum")
                        .and_then(Value::as_u64)
                        .ok_or("missing segment_checksum")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let end_to_end = v
            .get("end_to_end")
            .and_then(Value::as_arr)
            .ok_or("missing end_to_end array")?
            .iter()
            .map(|e| {
                Ok(EndToEndBench {
                    llc: req_str(e, "llc")?,
                    insts_per_sec: req_f64(e, "insts_per_sec")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport {
            kernels,
            end_to_end,
        })
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing number field '{key}'"))
}

/// Compares a fresh report against a committed baseline. Returns one
/// message per regression: a throughput figure present in the baseline
/// that dropped by more than `max_regress_pct` percent, or that vanished
/// from the current report. Only optimized-kernel and end-to-end rows are
/// gated — the reference kernels exist as a yardstick, not a contract.
///
/// Additionally, when the current report carries both the plain
/// base-victim row and [`EVENTS_DISABLED_ROW`], their ratio is held to
/// [`EVENTS_DISABLED_MAX_PCT`] — an absolute bound independent of the
/// baseline, because the disabled event path is designed to be free.
#[must_use]
pub fn compare(current: &BenchReport, baseline: &BenchReport, max_regress_pct: f64) -> Vec<String> {
    let floor = 1.0 - max_regress_pct / 100.0;
    let mut regressions = Vec::new();
    if let Some(pct) = current.events_disabled_overhead_pct() {
        if pct > EVENTS_DISABLED_MAX_PCT {
            regressions.push(format!(
                "disabled event path costs {pct:.2}% of base-victim throughput \
                 (budget {EVENTS_DISABLED_MAX_PCT}%)"
            ));
        }
    }
    if let Some(pct) = current.serve_metrics_overhead_pct() {
        if pct > SERVE_METRICS_MAX_PCT {
            regressions.push(format!(
                "metric registry costs {pct:.2}% of the metrics-off job path \
                 (budget {SERVE_METRICS_MAX_PCT}%)"
            ));
        }
    }
    for base in &baseline.kernels {
        if base.implementation != IMPL_OPTIMIZED {
            continue;
        }
        match current.kernel(&base.kernel, &base.implementation) {
            None => regressions.push(format!(
                "kernel {}/{} missing from current report",
                base.kernel, base.implementation
            )),
            Some(cur) if cur.lines_per_sec < base.lines_per_sec * floor => {
                regressions.push(format!(
                    "kernel {}: {:.3e} lines/s is {:.1}% below baseline {:.3e}",
                    base.kernel,
                    cur.lines_per_sec,
                    (1.0 - cur.lines_per_sec / base.lines_per_sec) * 100.0,
                    base.lines_per_sec
                ));
            }
            Some(_) => {}
        }
    }
    for base in &baseline.end_to_end {
        match current.end_to_end.iter().find(|e| e.llc == base.llc) {
            None => regressions.push(format!(
                "end-to-end {} missing from current report",
                base.llc
            )),
            Some(cur) if cur.insts_per_sec < base.insts_per_sec * floor => {
                regressions.push(format!(
                    "end-to-end {}: {:.3e} insts/s is {:.1}% below baseline {:.3e}",
                    base.llc,
                    cur.insts_per_sec,
                    (1.0 - cur.insts_per_sec / base.insts_per_sec) * 100.0,
                    base.insts_per_sec
                ));
            }
            Some(_) => {}
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            kernels: vec![
                KernelBench {
                    kernel: "bdi".into(),
                    implementation: IMPL_OPTIMIZED.into(),
                    lines_per_sec: 1.5e8,
                    segment_checksum: 12345,
                },
                KernelBench {
                    kernel: "bdi".into(),
                    implementation: IMPL_REFERENCE.into(),
                    lines_per_sec: 5.0e7,
                    segment_checksum: 12345,
                },
            ],
            end_to_end: vec![EndToEndBench {
                llc: "base-victim".into(),
                insts_per_sec: 2.5e6,
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_runner_json() {
        let report = sample_report();
        let text = report.to_json();
        // The schema must be readable by the journal's generic parser...
        let generic = json::parse(&text).expect("generic parse");
        assert_eq!(generic.get("schema").unwrap().as_str(), Some(SCHEMA));
        // ...and by the typed reader, losslessly.
        let back = BenchReport::from_json(&text).expect("typed parse");
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let text = sample_report().to_json().replace(SCHEMA, "other-v9");
        assert!(BenchReport::from_json(&text).is_err());
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn from_json_accepts_v1_reports() {
        // A committed v1 baseline (three end-to-end rows) must stay
        // readable after the v2 schema bump.
        let text = sample_report().to_json().replace(SCHEMA, SCHEMA_V1);
        let report = BenchReport::from_json(&text).expect("v1 parse");
        assert_eq!(report, sample_report());
    }

    #[test]
    fn speedup_is_optimized_over_reference() {
        let speedups = sample_report().kernel_speedups();
        assert_eq!(speedups.len(), 1);
        assert_eq!(speedups[0].0, "bdi");
        assert!((speedups[0].1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let baseline = sample_report();
        let mut current = sample_report();
        assert!(compare(&current, &baseline, 20.0).is_empty());

        // A 10% dip is inside the 20% envelope.
        current.kernels[0].lines_per_sec = 1.35e8;
        assert!(compare(&current, &baseline, 20.0).is_empty());

        // A 30% dip is not.
        current.kernels[0].lines_per_sec = 1.05e8;
        let regressions = compare(&current, &baseline, 20.0);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("bdi"));

        // Reference-kernel rows are never gated.
        let mut current = sample_report();
        current.kernels[1].lines_per_sec = 1.0;
        assert!(compare(&current, &baseline, 20.0).is_empty());

        // A vanished end-to-end row is a regression.
        let mut current = sample_report();
        current.end_to_end.clear();
        assert_eq!(compare(&current, &baseline, 20.0).len(), 1);
    }

    #[test]
    fn tiny_kernel_suite_runs_and_checksums_agree() {
        let rows = run_kernel_suite(&BenchConfig::tiny());
        assert_eq!(rows.len(), 6, "three kernels, two implementations each");
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].kernel, pair[1].kernel);
            assert_eq!(pair[0].implementation, IMPL_OPTIMIZED);
            assert_eq!(pair[1].implementation, IMPL_REFERENCE);
            assert_eq!(pair[0].segment_checksum, pair[1].segment_checksum);
            assert!(pair[0].lines_per_sec > 0.0);
        }
    }

    #[test]
    fn tiny_microbench_suites_run_and_checksums_agree() {
        for rows in [
            run_probe_suite(&BenchConfig::tiny()),
            run_decode_suite(&BenchConfig::tiny()),
        ] {
            assert_eq!(rows.len(), 2, "optimized + reference");
            assert_eq!(rows[0].kernel, rows[1].kernel);
            assert_eq!(rows[0].implementation, IMPL_OPTIMIZED);
            assert_eq!(rows[1].implementation, IMPL_REFERENCE);
            assert_eq!(rows[0].segment_checksum, rows[1].segment_checksum);
            assert!(rows[0].lines_per_sec > 0.0);
            assert!(rows[1].lines_per_sec > 0.0);
        }
    }

    #[test]
    fn events_disabled_row_is_gated() {
        let mut report = sample_report();
        assert_eq!(report.events_disabled_overhead_pct(), None, "row absent");
        report.end_to_end.push(EndToEndBench {
            llc: EVENTS_DISABLED_ROW.into(),
            insts_per_sec: 2.49e6,
        });
        let pct = report.events_disabled_overhead_pct().expect("both rows");
        assert!((pct - (2.5 / 2.49 - 1.0) * 100.0).abs() < 1e-9);
        // Within budget: no regression even against an empty baseline row
        // set for this label.
        let baseline = sample_report();
        assert!(compare(&report, &baseline, 20.0).is_empty());

        // A disabled-path cost past EVENTS_DISABLED_MAX_PCT trips the
        // absolute gate regardless of the baseline.
        report.end_to_end.last_mut().unwrap().insts_per_sec = 2.3e6;
        let regressions = compare(&report, &baseline, 20.0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(
            regressions[0].contains("disabled event path"),
            "{}",
            regressions[0]
        );
    }

    #[test]
    fn serve_metrics_row_is_gated() {
        let mut report = sample_report();
        assert_eq!(report.serve_metrics_overhead_pct(), None, "row absent");
        report.end_to_end.push(EndToEndBench {
            llc: SERVE_METRICS_ROW.into(),
            insts_per_sec: 2.49e6,
        });
        let pct = report.serve_metrics_overhead_pct().expect("both rows");
        assert!((pct - (2.5 / 2.49 - 1.0) * 100.0).abs() < 1e-9);
        // ~0.4% is inside the 2% budget, even with no baseline row.
        let baseline = sample_report();
        assert!(compare(&report, &baseline, 20.0).is_empty());

        // A 4% registry cost trips the absolute gate.
        report.end_to_end.last_mut().unwrap().insts_per_sec = 2.4e6;
        let regressions = compare(&report, &baseline, 20.0);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(
            regressions[0].contains("metric registry"),
            "{}",
            regressions[0]
        );
    }

    #[test]
    fn telemetry_overhead_pct_reads_both_rows() {
        let mut report = sample_report();
        assert_eq!(report.telemetry_overhead_pct(), None, "row absent");
        report.end_to_end.push(EndToEndBench {
            llc: TELEMETRY_ROW.into(),
            insts_per_sec: 2.45e6,
        });
        let pct = report.telemetry_overhead_pct().expect("both rows present");
        assert!((pct - (2.5 / 2.45 - 1.0) * 100.0).abs() < 1e-9);
    }

    /// One interleaved overhead measurement: alternating plain/sampled
    /// runs so both sides see the same machine conditions, best-of-N on
    /// each side so transient stalls drop out of the ratio.
    fn measure_telemetry_overhead_pct(iterations: usize) -> f64 {
        use std::time::Instant;
        let registry = TraceRegistry::paper_default();
        let trace = registry.get(END_TO_END_TRACE).expect("trace");
        let mut plain = f64::MAX;
        let mut sampled = f64::MAX;
        for _ in 0..iterations {
            let t = Instant::now();
            let r = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_with_warmup(
                &trace.workload,
                50_000,
                200_000,
            );
            plain = plain.min(t.elapsed().as_secs_f64());
            std::hint::black_box(r.cycles);

            let t = Instant::now();
            let mut tel = SimTelemetry::new(DEFAULT_EPOCH_INSTS);
            let r = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_sampled(
                &trace.workload,
                50_000,
                200_000,
                &mut tel,
            );
            sampled = sampled.min(t.elapsed().as_secs_f64());
            std::hint::black_box(r.cycles);
        }
        (sampled / plain - 1.0) * 100.0
    }

    #[test]
    fn telemetry_overhead_stays_within_five_percent() {
        // The acceptance bound for the instrumentation layer: sampling at
        // the default 100k-instruction epoch must cost under 5% of
        // end-to-end throughput. On a shared machine a single measurement
        // can be swamped by scheduler noise, so the gate takes the best
        // of up to three measurements: a genuine regression fails all
        // three, while a noise spike passes on retry.
        let mut best = f64::MAX;
        for _ in 0..3 {
            best = best.min(measure_telemetry_overhead_pct(10));
            if best < 5.0 {
                return;
            }
        }
        panic!("telemetry overhead {best:.2}% exceeds the 5% budget in all attempts");
    }

    #[test]
    fn corpus_is_deterministic_and_mixed() {
        let a = corpus(64);
        let b = corpus(64);
        assert_eq!(a, b);
        // The corpus must contain both highly compressible and
        // incompressible lines, or the bench exercises only one path.
        let bdi = Bdi::new();
        let sizes: Vec<u8> = a.iter().map(|l| bdi.compressed_size(l).get()).collect();
        assert!(sizes.contains(&1));
        assert!(sizes.contains(&16));
    }
}
