//! Runner for the `sens_victim_policy` experiment (see bv_bench::figures::sens_victim_policy).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::sens_victim_policy(&ctx));
}
