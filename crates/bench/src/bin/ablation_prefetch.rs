//! Runner for the `ablation_prefetch` experiment (see bv_bench::figures::ablation_prefetch).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::ablation_prefetch(&ctx));
}
