//! Runner for the `fig11` experiment (see bv_bench::figures::fig11).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig11(&ctx));
}
