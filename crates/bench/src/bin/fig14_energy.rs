//! Runner for the `fig14` experiment (see bv_bench::figures::fig14).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig14(&ctx));
}
