//! Calibration sweep: check the registry's aggregate behavior against the
//! paper's Section VI.A numbers before running the full experiment suite.

use bv_sim::report::geomean;
use bv_sim::{LlcKind, SimConfig, System};
use bv_trace::TraceRegistry;

fn main() {
    let insts: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let registry = TraceRegistry::paper_default();
    let t0 = std::time::Instant::now();

    let warmup = insts;
    let mut rows = Vec::new();
    for t in registry.cache_sensitive() {
        let base = System::new(SimConfig::single_thread(LlcKind::Uncompressed)).run_with_warmup(
            &t.workload,
            warmup,
            insts,
        );
        let bv = System::new(SimConfig::single_thread(LlcKind::BaseVictim)).run_with_warmup(
            &t.workload,
            warmup,
            insts,
        );
        let big = System::new(
            SimConfig::single_thread(LlcKind::Uncompressed).with_llc_size(3 * 1024 * 1024, 24),
        )
        .run_with_warmup(&t.workload, warmup, insts);
        let row = (
            t.name.clone(),
            t.compression_friendly,
            bv.ipc_ratio(&base),
            bv.dram_read_ratio(&base),
            big.ipc_ratio(&base),
            bv.compression.mean_ratio(),
            base.ipc(),
            base.dram_reads_per_kilo_inst(),
        );
        println!(
            "{:28} friendly={} ipcR={:.3} readR={:.3} 3mbR={:.3} comp={:.2} baseIPC={:.3} rpki={:.1}",
            row.0, row.1 as u8, row.2, row.3, row.4, row.5, row.6, row.7
        );
        rows.push(row);
    }

    let friendly: Vec<_> = rows.iter().filter(|r| r.1).collect();
    let unfriendly: Vec<_> = rows.iter().filter(|r| !r.1).collect();
    println!(
        "\n=== aggregates over {} sensitive traces ({} friendly / {} unfriendly) ===",
        rows.len(),
        friendly.len(),
        unfriendly.len()
    );
    println!(
        "friendly:  ipc gain {:+.1}%  read ratio {:.3}  comp {:.2}  (paper: +8.5%, 0.84, 0.50)",
        (geomean(friendly.iter().map(|r| r.2)) - 1.0) * 100.0,
        geomean(friendly.iter().map(|r| r.3)),
        friendly.iter().map(|r| r.5).sum::<f64>() / friendly.len().max(1) as f64
    );
    println!(
        "unfriendly: ipc gain {:+.1}%  comp {:.2}  (paper: +1.45%, >0.75)",
        (geomean(unfriendly.iter().map(|r| r.2)) - 1.0) * 100.0,
        unfriendly.iter().map(|r| r.5).sum::<f64>() / unfriendly.len().max(1) as f64
    );
    println!(
        "all:       ipc gain {:+.1}%  (paper: +7.3%)",
        (geomean(rows.iter().map(|r| r.2)) - 1.0) * 100.0
    );
    println!(
        "3MB:       ipc gain {:+.1}%  (paper: +8.1% overall, +8.5% friendly)",
        (geomean(rows.iter().map(|r| r.4)) - 1.0) * 100.0
    );
    let losers = rows.iter().filter(|r| r.2 < 0.999).count();
    println!("negative outliers: {losers} (paper: 1, losing 0.01%)");
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f32());
}
