//! Runner for the `fig12` experiment (see bv_bench::figures::fig12).
fn main() {
    let mut ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig12(&mut ctx));
}
