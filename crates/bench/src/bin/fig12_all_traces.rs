//! Runner for the `fig12` experiment (see bv_bench::figures::fig12).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig12(&ctx));
}
