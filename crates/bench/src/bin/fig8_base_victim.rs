//! Runner for the `fig8` experiment (see bv_bench::figures::fig8).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig8(&ctx));
}
