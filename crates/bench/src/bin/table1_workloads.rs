//! Runner for the `table1` experiment (see bv_bench::figures::table1).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::table1(&ctx));
}
