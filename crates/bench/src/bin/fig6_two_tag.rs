//! Runner for the `fig6` experiment (see bv_bench::figures::fig6).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig6(&ctx));
}
