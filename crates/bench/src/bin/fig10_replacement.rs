//! Runner for the `fig10` experiment (see bv_bench::figures::fig10).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig10(&ctx));
}
