//! Runner for the `fig13` experiment (see bv_bench::figures::fig13).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig13(&ctx));
}
