//! Runner for the `fig9` experiment (see bv_bench::figures::fig9).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::fig9(&ctx));
}
