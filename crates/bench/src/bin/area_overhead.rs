//! Runner for the `area` experiment (see bv_bench::figures::area).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::area(&ctx));
}
