//! Runner for the `ablation_inclusion` experiment (see bv_bench::figures::ablation_inclusion).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::ablation_inclusion(&ctx));
}
