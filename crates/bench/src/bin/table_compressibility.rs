//! Runner for the `compressibility` experiment (see bv_bench::figures::compressibility).
fn main() {
    let ctx = bv_bench::Ctx::new();
    print!("{}", bv_bench::figures::compressibility(&ctx));
}
